//! # figlint — repo-specific static analysis for the FIGARO workspace
//!
//! FIGARO's headline claim is **bit-identical reproduction**: four
//! kernels, four schedulers and a sweep grid must all agree to the last
//! bit, and a shared on-disk result cache must never return anything a
//! fresh run would not produce. The invariants that make that true are
//! domain rules no generic linter knows:
//!
//! | Rule | ID | Bug class it mechanizes |
//! |---|---|---|
//! | [`rules::determinism`] | FIG001 | order-dependent `HashMap`/`HashSet` iteration, wall-clock reads, unseeded RNG in result-affecting crates |
//! | [`rules::horizon`] | FIG002 | `Cycle::MAX`/`u64::MAX` as `unwrap_or`/`fold` defaults in `*horizon*`/`next_*`/`earliest_*` functions (the PR-3 refresh-disable bug) |
//! | [`rules::floats`] | FIG003 | lossy `{}`/`{:?}` float formatting in cache-key/serialization functions (the PR-6 cache-corruption bug) |
//! | [`rules::cache_key`] | FIG004 | result-affecting config fields missing from the result-cache key builders |
//! | [`rules::env_registry`] | FIG005 | `FIGARO_*` env vars read in code but undocumented (or documented but unread) |
//! | [`rules::panics`] | FIG006 | unbudgeted `unwrap`/`expect`/`panic!` growth in library code |
//! | [`rules::probe`] | FIG007 | telemetry emits in result-affecting crates not behind the zero-cost `probe!` guard |
//! | (driver) | FIG000 | stale allowlist entries that no longer match anything |
//!
//! The analyzer is a hand-rolled line/token scanner (see [`scan`]) — no
//! `syn`, no registry dependencies, consistent with the workspace's
//! offline-shims constraint. Rules are configured by a root
//! `figlint.toml` ([`config`]) whose allowlists **require a
//! justification string** and fail the run when they go stale.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p figlint --release
//! ```
//!
//! Exit status: `0` clean, `1` violations, `2` configuration/IO errors.

#![forbid(unsafe_code)]

pub mod config;
pub mod rules;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

use config::LintConfig;
use scan::SourceFile;

/// One finding, printable as `file:line: [RULE] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule ID (`FIG000` … `FIG007`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The scanned workspace rules operate on.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// Lexed `.rs` files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Parsed `figlint.toml`.
    pub config: LintConfig,
}

impl Workspace {
    /// The lexed file at a workspace-relative path.
    #[must_use]
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel)
    }

    /// Reads a non-Rust text file (e.g. `README.md`) relative to root.
    pub fn read_text(&self, rel: &str) -> Result<String, String> {
        std::fs::read_to_string(self.root.join(rel)).map_err(|e| format!("{rel}: cannot read: {e}"))
    }
}

/// Directory names the walker never descends into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// Collects every `.rs` file under `root` (skipping build output, VCS
/// metadata and figlint's own lint fixtures), lexes them, and loads
/// `figlint.toml`.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let toml_path = root.join("figlint.toml");
    let toml_text = std::fs::read_to_string(&toml_path)
        .map_err(|e| format!("{}: cannot read: {e}", toml_path.display()))?;
    let config = LintConfig::parse(&toml_text)?;
    let mut rel_paths = Vec::new();
    walk(root, root, &mut rel_paths)?;
    rel_paths.sort();
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let text = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("{rel}: cannot read: {e}"))?;
        files.push(SourceFile::lex(&rel, &text));
    }
    Ok(Workspace { root: root.to_path_buf(), files, config })
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot list: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: cannot list: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs the full rule catalog on the workspace at `root`.
///
/// Returns diagnostics sorted by `(file, line, rule)`; an empty vector
/// means the workspace is clean.
pub fn analyze_root(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = load_workspace(root)?;
    let mut tracker = rules::AllowTracker::default();
    let mut diags = Vec::new();
    diags.extend(rules::determinism::run(&ws, &mut tracker)?);
    diags.extend(rules::horizon::run(&ws, &mut tracker)?);
    diags.extend(rules::floats::run(&ws, &mut tracker)?);
    diags.extend(rules::cache_key::run(&ws, &mut tracker)?);
    diags.extend(rules::env_registry::run(&ws, &mut tracker)?);
    diags.extend(rules::panics::run(&ws, &mut tracker)?);
    diags.extend(rules::probe::run(&ws, &mut tracker)?);
    diags.extend(tracker.stale());
    diags.sort();
    diags.dedup();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            file: "crates/core/src/engine.rs".into(),
            line: 42,
            rule: "FIG001",
            message: "HashMap iteration".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/engine.rs:42: [FIG001] HashMap iteration");
    }
}
