//! FIG005 — env-var registry: every `FIGARO_*` variable read in code
//! must be documented, and every documented one must still be read.
//!
//! Environment toggles are the least discoverable configuration surface
//! the simulator has — nothing type-checks them, and an undocumented
//! one is invisible until someone greps. The rule keeps three sets in
//! sync:
//!
//! * **reads** — string literals starting with `[env_registry] prefix`
//!   on lines that call `env::var` / `env::var_os`, anywhere in the
//!   workspace (test code included: a test-only knob still needs docs);
//! * **docs** — `FIGARO_*` tokens appearing in the `[env_registry]
//!   docs` files (e.g. `README.md`);
//! * **usage** — tokens in string literals of the `[env_registry]
//!   usage` files (e.g. the `diag` binary's `usage()` text).
//!
//! A read missing from docs or usage is flagged at the read site; a
//! documented/usage token nothing reads is flagged where it is written
//! (a rename that forgot the docs). `[env_registry] allow` entries use
//! the variable name as the path: `"FIGARO_FOO -- why"`.

use crate::rules::AllowTracker;
use crate::{Diagnostic, Workspace};

/// Runs FIG005 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let prefix = ws.config.string_or("env_registry.prefix", "FIGARO_");
    tracker.register("env_registry", ws.config.allow("env_registry")?);

    // (var, file, line) for every same-line `env::var*("PREFIX…")` read.
    let mut reads: Vec<(String, String, usize)> = Vec::new();
    for file in &ws.files {
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if !(code.contains("env::var(") || code.contains("env::var_os(")) {
                continue;
            }
            for lit in file.strings_on(line) {
                if lit.text.starts_with(&prefix) && is_var_name(&lit.text) {
                    reads.push((lit.text.clone(), file.rel_path.clone(), line));
                }
            }
        }
    }

    // Tokens mentioned in docs files and usage files.
    let mut docs: Vec<(String, String, usize)> = Vec::new();
    for doc in ws.config.strings("env_registry.docs") {
        let text = ws.read_text(&doc)?;
        for (i, line) in text.lines().enumerate() {
            for tok in extract_tokens(line, &prefix) {
                docs.push((tok, doc.clone(), i + 1));
            }
        }
    }
    let mut usage: Vec<(String, String, usize)> = Vec::new();
    for path in ws.config.strings("env_registry.usage") {
        let Some(file) = ws.file(&path) else {
            return Err(format!("figlint.toml: [env_registry] usage: no such file `{path}`"));
        };
        for lit in &file.strings {
            for tok in extract_tokens(&lit.text, &prefix) {
                usage.push((tok, path.clone(), lit.line));
            }
        }
    }

    let mut diags = Vec::new();
    let mut flag = |var: &str, file: &str, line: usize, msg: String, tr: &mut AllowTracker| {
        if tr.take("env_registry", var).is_none() {
            diags.push(Diagnostic { file: file.into(), line, rule: "FIG005", message: msg });
        }
    };
    let read_vars: Vec<&String> = reads.iter().map(|(v, _, _)| v).collect();
    let mut seen = Vec::new();
    for (var, file, line) in &reads {
        if seen.contains(var) {
            continue;
        }
        seen.push(var.clone());
        if !docs.iter().any(|(v, _, _)| v == var) {
            flag(
                var,
                file,
                *line,
                format!("`{var}` is read here but not documented in the env-var registry"),
                tracker,
            );
        }
        if !usage.is_empty() && !usage.iter().any(|(v, _, _)| v == var) {
            flag(
                var,
                file,
                *line,
                format!("`{var}` is read here but missing from the diag usage catalog"),
                tracker,
            );
        }
    }
    for set in [&docs, &usage] {
        let mut seen = Vec::new();
        for (var, file, line) in set {
            if seen.contains(var) || read_vars.contains(&var) {
                continue;
            }
            seen.push(var.clone());
            flag(
                var,
                file,
                *line,
                format!("`{var}` is documented here but nothing in the workspace reads it"),
                tracker,
            );
        }
    }
    Ok(diags)
}

/// Whether `s` is a well-formed env-var name (`A–Z`, `0–9`, `_`).
fn is_var_name(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Maximal `PREFIX[A-Z0-9_]*` tokens in `text`.
fn extract_tokens(text: &str, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = text[start..].find(prefix) {
        let abs = start + p;
        // Reject mid-identifier matches (`XFIGARO_Y`).
        let boundary = abs == 0
            || !text[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let rest = &text[abs..];
        let len = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_'))
            .map_or(rest.len(), |(i, _)| i);
        let tok = &rest[..len];
        if boundary && tok.len() > prefix.len() && !out.contains(&tok.to_string()) {
            out.push(tok.to_string());
        }
        start = abs + prefix.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_extraction() {
        let toks = extract_tokens(
            "| `FIGARO_KERNEL` | picks kernel | also FIGARO_THREADS. XFIGARO_NOPE",
            "FIGARO_",
        );
        assert_eq!(toks, vec!["FIGARO_KERNEL", "FIGARO_THREADS"]);
    }

    #[test]
    fn var_name_shape() {
        assert!(is_var_name("FIGARO_FREE_RELOC"));
        assert!(!is_var_name("FIGARO_lower"));
        assert!(!is_var_name(""));
    }
}
