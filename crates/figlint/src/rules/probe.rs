//! FIG007 — probe discipline: telemetry emits in result-affecting
//! crates must sit behind the zero-cost `probe!` guard.
//!
//! The telemetry subsystem is **result-neutral by contract**: a run with
//! `FIGARO_STATS_INTERVAL`/`FIGARO_TRACE` set must produce bit-identical
//! `RunStats` to one without, and a run with telemetry off must pay
//! nothing beyond one `Option` discriminant test per probe site. Both
//! properties hinge on every emit call in simulator code being wrapped
//! in `figaro_telemetry::probe!` (or an equivalent guard listed under
//! `[probe] guards`): the macro tests the `Option` and only then runs
//! the emit body, so the disabled path allocates nothing and the body
//! can never feed data back into simulated state.
//!
//! The scan is lexical: a line in a `[probe] crates` file that contains
//! an emit token from `[probe] emit` (e.g. `.job_retire(`) must have a
//! guard token on the same line **or one of the two preceding lines** —
//! rustfmt wraps `probe!(sink, t => t.emit(…))` across three lines, with
//! the macro name first. `#[cfg(test)]` code is exempt. Sanctioned glue
//! (the one module that *implements* the probes and therefore calls the
//! emit primitives directly) carries a justified `[probe] allow` entry.

use crate::rules::{in_crates, AllowTracker};
use crate::{Diagnostic, Workspace};

/// How many preceding lines may carry the guard for a wrapped call.
const GUARD_LOOKBACK: usize = 2;

/// Runs FIG007 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let crates = ws.config.strings("probe.crates");
    let emit = ws.config.strings("probe.emit");
    let guards = ws.config.strings("probe.guards");
    tracker.register("probe", ws.config.allow("probe")?);
    let mut diags = Vec::new();
    for file in &ws.files {
        if !in_crates(&file.rel_path, &crates) {
            continue;
        }
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if file.is_test_line(line) {
                continue;
            }
            for tok in &emit {
                if !code.contains(tok.as_str()) {
                    continue;
                }
                let guarded = file.code_lines[i.saturating_sub(GUARD_LOOKBACK)..=i]
                    .iter()
                    .any(|l| guards.iter().any(|g| l.contains(g.as_str())));
                if guarded {
                    continue;
                }
                let fn_name = file.fn_at(line).map(|f| f.name.clone());
                if tracker.allows("probe", &file.rel_path, code, fn_name.as_deref()) {
                    continue;
                }
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line,
                    rule: "FIG007",
                    message: format!(
                        "unguarded telemetry emit `{tok}` in a result-affecting crate — wrap \
                         the call in `figaro_telemetry::probe!` so the disabled path stays \
                         zero-cost and telemetry can never perturb simulated state"
                    ),
                });
            }
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;
    use crate::scan::SourceFile;
    use std::path::PathBuf;

    fn ws(src: &str, toml: &str) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::lex("crates/memctrl/src/lib.rs", src)],
            config: LintConfig::parse(toml).unwrap(),
        }
    }

    const TOML: &str = "[probe]\ncrates = [\"crates/memctrl\"]\n\
                        emit = [\".job_retire(\"]\nguards = [\"probe!(\"]\n";

    #[test]
    fn flags_a_bare_emit_and_accepts_a_guarded_one() {
        let src = "fn a(t: &mut T) { t.job_retire(0, 1); }\n\
                   fn b(s: &mut S) { probe!(s.trace, t => t.job_retire(0, 1)); }\n";
        let mut tracker = AllowTracker::default();
        let diags = run(&ws(src, TOML), &mut tracker).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, "FIG007");
    }

    #[test]
    fn guard_lookback_spans_a_wrapped_call() {
        let src = "fn a(s: &mut S) {\n    probe!(\n        s.trace,\n        t => t.job_retire(0, 1)\n    );\n}\n";
        let mut tracker = AllowTracker::default();
        let diags = run(&ws(src, TOML), &mut tracker).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: &mut T) { x.job_retire(0, 1); }\n}\n";
        let mut tracker = AllowTracker::default();
        assert!(run(&ws(src, TOML), &mut tracker).unwrap().is_empty());
    }
}
