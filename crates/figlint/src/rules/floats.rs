//! FIG003 — lossless floats: cache-key/serialization functions must not
//! format floats with `{}` / `{:?}`.
//!
//! The PR-6 bug class: `{}` (and `{:?}`) print the *shortest* decimal
//! that round-trips, so two different `f64`s can share a display string
//! under truncating format specs, and hand-rolled parsing of the
//! display form loses ULPs. Inside the result cache that turns into
//! silent cross-config collisions. The workspace convention is the
//! bit-pattern form — `b<hex>` via `f64_text` / `.to_bits()` — which is
//! exact by construction.
//!
//! The rule knows two things from `figlint.toml`:
//!
//! * `[floats] float_structs` — `"path: Struct"` entries whose `f32` /
//!   `f64` (incl. `Vec<f64>`) fields are the values at risk;
//! * `[floats] scopes` — names of serialization/key functions where the
//!   convention is mandatory (`to_text`, `config_key`, …).
//!
//! Inside a scope function, a formatting-macro line that mentions a
//! float field (as an argument or as a `{field}` inline placeholder) or
//! casts with `as f64` / `as f32` must also contain one of the
//! `[floats] sanitizers` tokens (`f64_text`, `to_bits`, …); otherwise
//! it is flagged. Everything outside the configured scopes — logs,
//! human-facing tables — may format floats freely.

use crate::rules::AllowTracker;
use crate::scan::contains_word;
use crate::{Diagnostic, Workspace};

/// Formatting macros the rule inspects.
const FORMAT_MACROS: &[&str] =
    &["format!(", "write!(", "writeln!(", "print!(", "println!(", "eprint!(", "eprintln!("];

/// Runs FIG003 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let scopes = ws.config.strings("floats.scopes");
    let sanitizers = ws.config.strings("floats.sanitizers");
    tracker.register("floats", ws.config.allow("floats")?);
    let float_fields = collect_float_fields(ws)?;
    let mut diags = Vec::new();
    for file in &ws.files {
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if file.is_test_line(line) {
                continue;
            }
            let Some(f) = file.fn_at(line) else { continue };
            if !scopes.iter().any(|s| s == &f.name) {
                continue;
            }
            if !FORMAT_MACROS.iter().any(|m| code.contains(m)) {
                continue;
            }
            if sanitizers.iter().any(|s| code.contains(s.as_str())) {
                continue;
            }
            let mut mention: Option<String> = None;
            for field in &float_fields {
                if contains_word(code, field) {
                    mention = Some(format!("float field `{field}`"));
                    break;
                }
                // `{field}` / `{field:?}` inline placeholders live in the
                // (blanked) string literal, not the code line.
                for lit in file.strings_on(line) {
                    if lit.text.contains(&format!("{{{field}}}"))
                        || lit.text.contains(&format!("{{{field}:"))
                    {
                        mention = Some(format!("float field `{field}` (inline placeholder)"));
                        break;
                    }
                }
                if mention.is_some() {
                    break;
                }
            }
            if mention.is_none() && (code.contains("as f64") || code.contains("as f32")) {
                mention = Some("a float cast".to_string());
            }
            let Some(what) = mention else { continue };
            if tracker.allows("floats", &file.rel_path, code, Some(&f.name)) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                rule: "FIG003",
                message: format!(
                    "lossy float formatting of {what} in serialization/key fn `{}` — use the \
                     bit-pattern convention (`f64_text` / `.to_bits()` → `b<hex>`), not \
                     `{{}}`/`{{:?}}` (PR-6 bug class)",
                    f.name
                ),
            });
        }
    }
    Ok(diags)
}

/// Names of `f32`/`f64`-typed fields of the configured structs.
fn collect_float_fields(ws: &Workspace) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for spec in ws.config.strings("floats.float_structs") {
        let Some((path, name)) = spec.split_once(": ") else {
            return Err(format!(
                "figlint.toml: [floats] float_structs entry `{spec}` must be `\"path: Struct\"`"
            ));
        };
        let Some(file) = ws.file(path.trim()) else {
            return Err(format!("figlint.toml: [floats] float_structs: no such file `{path}`"));
        };
        for (fname, ftype, _line) in crate::rules::cache_key::struct_fields(file, name.trim())? {
            if (contains_word(&ftype, "f64") || contains_word(&ftype, "f32"))
                && !fields.contains(&fname)
            {
                fields.push(fname);
            }
        }
    }
    Ok(fields)
}
