//! FIG006 — panic audit: panic sites in library code are budgeted, not
//! free.
//!
//! `unwrap`/`expect`/`panic!` in the simulator crates are sometimes the
//! right call (an invariant the type system cannot carry), but each one
//! is a latent abort in a long sweep, so growth must be deliberate. The
//! rule counts panic sites (`.unwrap()`, `.expect(`, `panic!(`,
//! `unreachable!(`, `todo!(`, `unimplemented!(`) per file in the
//! `[panics] crates` scope, outside `#[cfg(test)]` code, and compares
//! the count against that file's allowlist **budget**:
//!
//! ```text
//! allow = ["crates/sim/src/runner.rs: 12 -- cache I/O asserts documented invariants"]
//! ```
//!
//! * more sites than the budget → FIG006 (growth must be reviewed);
//! * fewer sites than the budget → FIG006 (tighten the budget so the
//!   ratchet only ever moves down by accident, never up);
//! * a file with sites but no entry → FIG006;
//! * an entry for a file with no sites → FIG000 (stale).

use crate::rules::{in_crates, AllowTracker};
use crate::{Diagnostic, Workspace};

/// Tokens that abort the process.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Runs FIG006 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let crates = ws.config.strings("panics.crates");
    tracker.register("panics", ws.config.allow("panics")?);
    let mut diags = Vec::new();
    for file in &ws.files {
        if !in_crates(&file.rel_path, &crates) {
            continue;
        }
        let mut count = 0usize;
        let mut first_line = 0usize;
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if file.is_test_line(line) {
                continue;
            }
            let sites: usize = PANIC_TOKENS.iter().map(|t| code.matches(t).count()).sum();
            if sites > 0 && first_line == 0 {
                first_line = line;
            }
            count += sites;
        }
        if count == 0 {
            continue; // an allow entry for this file will surface as FIG000
        }
        let Some(entry) = tracker.take("panics", &file.rel_path) else {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: first_line,
                rule: "FIG006",
                message: format!(
                    "{count} panic site(s) in library code with no `[panics]` allow budget — \
                     add `\"{}: {count} -- <why>\"` after review",
                    file.rel_path
                ),
            });
            continue;
        };
        let budget: usize = match entry.token.as_deref().map(str::parse) {
            Some(Ok(n)) => n,
            _ => {
                return Err(format!(
                    "figlint.toml:{}: [panics] allow entry for `{}` needs a decimal site \
                     budget token (`\"path: N -- why\"`)",
                    entry.line, entry.path
                ))
            }
        };
        if count > budget {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: first_line,
                rule: "FIG006",
                message: format!(
                    "{count} panic site(s) exceed the budget of {budget} — new aborts in \
                     library code must be reviewed; fix them or raise the budget with a \
                     justification"
                ),
            });
        } else if count < budget {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: first_line,
                rule: "FIG006",
                message: format!(
                    "{count} panic site(s) under the budget of {budget} — tighten the budget \
                     to {count} so the ratchet cannot silently grow back"
                ),
            });
        }
    }
    Ok(diags)
}
