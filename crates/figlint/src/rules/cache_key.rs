//! FIG004 — cache-key completeness: every result-affecting config field
//! must reach the result-cache key.
//!
//! The on-disk result cache returns a stored summary whenever the key
//! matches, so any config field that changes simulated results but is
//! absent from the key builders makes the cache lie (the
//! `FIGARO_FREE_RELOC` near-miss: an env toggle that changed relocation
//! accounting but not the key). This rule mechanizes the audit:
//!
//! * `[cache_key] structs` — `"path: Struct"` entries whose fields are
//!   the result-affecting knobs (`SystemConfig`, `McConfig`,
//!   `Scenario`);
//! * `[cache_key] key_fns` — `"path: fn"` entries naming the functions
//!   that build cache keys and key suffixes.
//!
//! A field **covered** is one whose name appears (as a word) somewhere
//! in a key-fn body — either interpolated directly or consumed by a
//! suffix builder. Anything else needs an `[cache_key] allow` entry of
//! the form `"Struct.field -- justification"` (e.g. fields that only
//! select *how fast* to simulate, not *what* is simulated), or it is
//! flagged at its declaration line.
//!
//! The check is name-based, so renaming a field and forgetting the key
//! builder fails loudly — which is exactly the point.

use crate::rules::AllowTracker;
use crate::scan::{contains_word, SourceFile};
use crate::{Diagnostic, Workspace};

/// Runs FIG004 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    tracker.register("cache_key", ws.config.allow("cache_key")?);
    // Concatenate the bodies of every configured key function.
    let mut corpus = String::new();
    for spec in ws.config.strings("cache_key.key_fns") {
        let Some((path, fn_name)) = spec.split_once(": ") else {
            return Err(format!(
                "figlint.toml: [cache_key] key_fns entry `{spec}` must be `\"path: fn\"`"
            ));
        };
        let (path, fn_name) = (path.trim(), fn_name.trim());
        let Some(file) = ws.file(path) else {
            return Err(format!("figlint.toml: [cache_key] key_fns: no such file `{path}`"));
        };
        let Some(span) = file.fns.iter().find(|f| f.name == fn_name) else {
            return Err(format!(
                "figlint.toml: [cache_key] key_fns: no fn `{fn_name}` in `{path}`"
            ));
        };
        corpus.push_str(&file.code_span(span.start, span.end));
        corpus.push('\n');
    }
    if corpus.is_empty() {
        return Ok(Vec::new());
    }
    let mut diags = Vec::new();
    for spec in ws.config.strings("cache_key.structs") {
        let Some((path, struct_name)) = spec.split_once(": ") else {
            return Err(format!(
                "figlint.toml: [cache_key] structs entry `{spec}` must be `\"path: Struct\"`"
            ));
        };
        let (path, struct_name) = (path.trim(), struct_name.trim());
        let Some(file) = ws.file(path) else {
            return Err(format!("figlint.toml: [cache_key] structs: no such file `{path}`"));
        };
        for (field, _ty, line) in struct_fields(file, struct_name)? {
            if contains_word(&corpus, &field) {
                continue;
            }
            if tracker.take("cache_key", &format!("{struct_name}.{field}")).is_some() {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                rule: "FIG004",
                message: format!(
                    "`{struct_name}.{field}` never appears in a cache-key builder — a \
                     result-affecting knob missing from the key silently corrupts the result \
                     cache; key it, or allowlist `{struct_name}.{field}` with a justification"
                ),
            });
        }
    }
    Ok(diags)
}

/// `(name, type, decl_line)` for each named field of `struct_name` in
/// `file`. Errors when the struct is not found.
pub fn struct_fields(
    file: &SourceFile,
    struct_name: &str,
) -> Result<Vec<(String, String, usize)>, String> {
    let decl = file
        .code_lines
        .iter()
        .position(|c| {
            contains_word(c, "struct") && contains_word(c, struct_name) && !c.contains("impl")
        })
        .ok_or_else(|| format!("figlint.toml: no `struct {struct_name}` in `{}`", file.rel_path))?;
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut opened = false;
    for (i, code) in file.code_lines.iter().enumerate().skip(decl) {
        if opened && depth == 1 {
            let t = code.trim();
            let t = t.strip_prefix("pub ").unwrap_or(t);
            if let Some((name, ty)) = t.split_once(':') {
                let name = name.trim();
                if !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                {
                    fields.push((name.to_string(), ty.trim().to_string(), i + 1));
                }
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if opened && depth == 0 {
            break;
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_fields_with_lines() {
        let src = "\
/// Doc.\n\
pub struct Cfg {\n\
    /// Cores.\n\
    pub cores: usize,\n\
    pub sched: Sched, // which\n\
    limits: Vec<f64>,\n\
}\n\
pub struct Other { pub x: u8 }\n";
        let f = SourceFile::lex("a.rs", src);
        let fields = struct_fields(&f, "Cfg").unwrap();
        let names: Vec<&str> = fields.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["cores", "sched", "limits"]);
        assert_eq!(fields[0].2, 4);
        assert!(fields[2].1.contains("f64"));
        assert!(struct_fields(&f, "Missing").is_err());
    }
}
