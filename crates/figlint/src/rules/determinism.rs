//! FIG001 — determinism: result-affecting crates must not iterate hash
//! containers, read wall clocks, or draw unseeded randomness.
//!
//! Simulated results are pure functions of `(workload, config, seed)`;
//! anything that lets host state leak into a run breaks bit-identical
//! reproduction and poisons the shared result cache. Three idioms are
//! banned in the crates listed under `[determinism] crates`:
//!
//! 1. **Hash-container iteration.** `HashMap`/`HashSet` iteration order
//!    is randomized per process, so any walk over one is a determinism
//!    hazard. The scanner tracks identifiers declared with a
//!    `HashMap`/`HashSet` type (fields, params, typed lets, and
//!    `= HashMap::new()` initializers) and flags `for … in` loops and
//!    ordering-sensitive method calls (`iter`, `keys`, `values`,
//!    `drain`, `retain`, `into_iter`, `into_keys`, `into_values`) whose
//!    receiver is a tracked name. Point lookups (`get`, `insert`,
//!    `remove`, `len`, `contains_key`) stay legal — hash maps are fine
//!    as long as nothing observes their order.
//! 2. **Wall clocks.** `std::time::Instant` / `SystemTime` reads make
//!    results depend on host timing.
//! 3. **Unseeded RNG.** `thread_rng`, `from_entropy` and `rand::random`
//!    draw from OS entropy; every simulator RNG must be seeded from the
//!    run description.
//!
//! `#[cfg(test)]` modules are exempt (tests may use hash sets to check
//! set-shaped properties). Exemptions in live code need an
//! `[determinism] allow` entry with a justification.

use crate::rules::{in_crates, AllowTracker};
use crate::scan::{contains_word, ident_ending_at, SourceFile};
use crate::{Diagnostic, Workspace};

/// Ordering-sensitive methods on hash containers.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Tokens whose mere presence in live code is a violation.
const FORBIDDEN_TOKENS: &[(&str, &str)] = &[
    ("std::time::Instant", "wall-clock read"),
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "unseeded RNG"),
    ("from_entropy", "unseeded RNG"),
    ("rand::random", "unseeded RNG"),
];

/// Runs FIG001 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let crates = ws.config.strings("determinism.crates");
    tracker.register("determinism", ws.config.allow("determinism")?);
    let mut diags = Vec::new();
    for file in &ws.files {
        if !in_crates(&file.rel_path, &crates) {
            continue;
        }
        let hash_names = collect_hash_names(file);
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if file.is_test_line(line) {
                continue;
            }
            let fn_name = file.fn_at(line).map(|f| f.name.clone());
            let flag = |msg: String, diags: &mut Vec<Diagnostic>, tr: &mut AllowTracker| {
                if !tr.allows("determinism", &file.rel_path, code, fn_name.as_deref()) {
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line,
                        rule: "FIG001",
                        message: msg,
                    });
                }
            };
            for (tok, what) in FORBIDDEN_TOKENS {
                if code.contains(tok) {
                    flag(
                        format!(
                            "{what}: `{tok}` in a result-affecting crate — results must be \
                             pure functions of (workload, config, seed)"
                        ),
                        &mut diags,
                        tracker,
                    );
                }
            }
            if !hash_names.is_empty() {
                for name in iteration_receivers(code) {
                    if hash_names.contains(&name) {
                        flag(
                            format!(
                                "iteration over hash container `{name}` — `HashMap`/`HashSet` \
                                 order is nondeterministic; use `BTreeMap`/`BTreeSet` or sort \
                                 before iterating"
                            ),
                            &mut diags,
                            tracker,
                        );
                    }
                }
            }
        }
    }
    Ok(diags)
}

/// Identifiers in `file` declared with a hash-container type.
fn collect_hash_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for code in &file.code_lines {
        for marker in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(p) = code[start..].find(marker) {
                let abs = start + p;
                // `name: HashMap<…>` / `name: std::collections::HashMap<…>`
                // (fields, params, typed lets) and `name = HashMap::new()`.
                let before = &code[..abs];
                let before = before.trim_end();
                let before = before
                    .strip_suffix("std::collections::")
                    .or_else(|| before.strip_suffix("collections::"))
                    .unwrap_or(before)
                    .trim_end();
                for sep in [':', '='] {
                    if let Some(head) = before.strip_suffix(sep) {
                        let head = head.trim_end().trim_end_matches(':');
                        if let Some(name) = ident_ending_at(head, head.len()) {
                            if name != "mut" && !names.contains(&name.to_string()) {
                                names.push(name.to_string());
                            }
                        }
                    }
                }
                start = abs + marker.len();
            }
        }
    }
    names
}

/// Receiver identifiers of iteration constructs on `code`.
fn iteration_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for m in ITER_METHODS {
        let mut start = 0;
        while let Some(p) = code[start..].find(m) {
            let abs = start + p;
            if let Some(name) = ident_ending_at(code, abs) {
                out.push(name.to_string());
            }
            start = abs + m.len();
        }
    }
    // `for x in &name {` / `for x in name {` / `for x in &mut name {`.
    if contains_word(code, "for") {
        if let Some(in_pos) = code.find(" in ") {
            let tail = &code[in_pos + 4..];
            let expr = tail.split('{').next().unwrap_or(tail).trim();
            let expr = expr.strip_prefix('&').unwrap_or(expr);
            let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
            let expr = expr.strip_prefix("self.").unwrap_or(expr);
            if !expr.is_empty() && expr.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                out.push(expr.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_declared_hash_names() {
        let f = SourceFile::lex(
            "a.rs",
            "struct S { pending: HashMap<u32, Vec<u8>>, rows: std::collections::HashSet<u64> }\n\
             fn f() { let mut seen = HashMap::new(); }\n",
        );
        let names = collect_hash_names(&f);
        assert!(names.contains(&"pending".to_string()));
        assert!(names.contains(&"rows".to_string()));
        assert!(names.contains(&"seen".to_string()));
    }

    #[test]
    fn finds_iteration_receivers() {
        assert_eq!(iteration_receivers("for (c, b) in &pending {"), vec!["pending"]);
        assert_eq!(iteration_receivers("self.counts.values().max()"), vec!["counts"]);
        assert_eq!(iteration_receivers("x.drain(..)"), vec!["x"]);
        assert!(iteration_receivers("map.get(&k)").is_empty());
    }
}
