//! The rule catalog. Each rule module exposes
//! `run(&Workspace, &mut AllowTracker) -> Result<Vec<Diagnostic>, String>`.

pub mod cache_key;
pub mod determinism;
pub mod env_registry;
pub mod floats;
pub mod horizon;
pub mod panics;
pub mod probe;

use crate::config::AllowEntry;
use crate::Diagnostic;

/// Tracks allowlist usage across rules so unused entries can be
/// reported as `FIG000` — an allowlist may only describe violations
/// that still exist.
#[derive(Debug, Default)]
pub struct AllowTracker {
    entries: Vec<(String, AllowEntry, bool)>,
}

impl AllowTracker {
    /// Registers a rule section's entries (called once per rule).
    pub fn register(&mut self, section: &str, entries: Vec<AllowEntry>) {
        for e in entries {
            self.entries.push((section.to_string(), e, false));
        }
    }

    /// Whether `section` allows a violation in `file` whose line text is
    /// `line_text` inside function `fn_name`. A matching entry is marked
    /// used. Entry semantics: the path must match the file (exact
    /// workspace-relative path), and the token — when present — must
    /// appear in the violating line or equal the enclosing function name.
    pub fn allows(
        &mut self,
        section: &str,
        file: &str,
        line_text: &str,
        fn_name: Option<&str>,
    ) -> bool {
        let mut hit = false;
        for (sec, e, used) in &mut self.entries {
            if sec != section || e.path != file {
                continue;
            }
            let token_ok = match &e.token {
                None => true,
                Some(t) => line_text.contains(t.as_str()) || fn_name == Some(t.as_str()),
            };
            if token_ok {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Direct lookup for rules with non-line-shaped exemptions (cache-key
    /// fields, env vars, panic budgets). Marks the entry used.
    pub fn take(&mut self, section: &str, path: &str) -> Option<AllowEntry> {
        for (sec, e, used) in &mut self.entries {
            if sec == section && e.path == path {
                *used = true;
                return Some(e.clone());
            }
        }
        None
    }

    /// `FIG000` diagnostics for entries that matched nothing.
    #[must_use]
    pub fn stale(&self) -> Vec<Diagnostic> {
        self.entries
            .iter()
            .filter(|(_, _, used)| !used)
            .map(|(sec, e, _)| Diagnostic {
                file: "figlint.toml".into(),
                line: e.line,
                rule: "FIG000",
                message: format!(
                    "stale `[{sec}]` allow entry `{}{}` — it no longer matches any violation; \
                     delete it (justification was: {})",
                    e.path,
                    e.token.as_ref().map_or_else(String::new, |t| format!(": {t}")),
                    e.justification
                ),
            })
            .collect()
    }
}

/// Whether `rel_path` lives under one of the configured crate roots.
#[must_use]
pub fn in_crates(rel_path: &str, crates: &[String]) -> bool {
    crates.iter().any(|c| {
        let c = c.trim_end_matches('/');
        rel_path.starts_with(&format!("{c}/"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, token: Option<&str>) -> AllowEntry {
        AllowEntry {
            path: path.into(),
            token: token.map(Into::into),
            justification: "test".into(),
            line: 1,
        }
    }

    #[test]
    fn token_matches_line_or_fn_name() {
        let mut t = AllowTracker::default();
        t.register("horizon", vec![entry("a.rs", Some("in_order_horizon"))]);
        assert!(t.allows("horizon", "a.rs", "x.unwrap_or(Cycle::MAX)", Some("in_order_horizon")));
        assert!(!t.allows("horizon", "a.rs", "x.unwrap_or(Cycle::MAX)", Some("other_fn")));
        assert!(t.stale().is_empty());
    }

    #[test]
    fn unused_entries_go_stale() {
        let mut t = AllowTracker::default();
        t.register("determinism", vec![entry("gone.rs", None)]);
        let stale = t.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "FIG000");
        assert!(stale[0].message.contains("gone.rs"));
    }

    #[test]
    fn crate_scoping() {
        let crates = vec!["crates/core".to_string()];
        assert!(in_crates("crates/core/src/engine.rs", &crates));
        assert!(!in_crates("crates/corex/src/lib.rs", &crates));
        assert!(!in_crates("crates/sim/src/lib.rs", &crates));
    }
}
