//! FIG002 — horizon sentinels: no `::MAX` defaults in horizon-shaped
//! functions.
//!
//! The PR-3 bug class: a conservative-PDES horizon function that folds
//! per-source bounds with `unwrap_or(Cycle::MAX)` silently treats "this
//! source has no pending event" as "this source never constrains the
//! horizon". When a whole category is empty (e.g. refresh disabled) the
//! horizon jumps to infinity and the parallel kernel commits events it
//! should have held, diverging from the serial kernels.
//!
//! The rule scans functions whose name contains `horizon` or starts
//! with `next_` / `earliest_` inside the crates listed under `[horizon]
//! crates`, and flags lines that combine a defaulting combinator
//! (`unwrap_or`, `unwrap_or_else`, `map_or`, `map_or_else`, `.fold(`)
//! or a `None =>` match arm with a `::MAX` sentinel. The fix is a
//! dedicated backstop (PR-3's `compute_horizon` clamps against the
//! global event floor) or an explicit `Option` return; a deliberate
//! sentinel needs an `[horizon] allow` entry naming the function.
//!
//! Known limitation: the check is line-based, so a combinator split
//! across lines (`.map_or(\n    Cycle::MAX, …)`) evades it. `rustfmt`
//! keeps these on one line at the widths used in this workspace.

use crate::rules::{in_crates, AllowTracker};
use crate::{Diagnostic, Workspace};

/// Combinators that substitute a default for an absent value.
const DEFAULTING: &[&str] =
    &["unwrap_or(", "unwrap_or_else(", "map_or(", "map_or_else(", ".fold(", "None =>"];

/// Whether a function name is horizon-shaped.
#[must_use]
pub fn is_horizon_fn(name: &str) -> bool {
    name.contains("horizon") || name.starts_with("next_") || name.starts_with("earliest_")
}

/// Runs FIG002 over the workspace.
pub fn run(ws: &Workspace, tracker: &mut AllowTracker) -> Result<Vec<Diagnostic>, String> {
    let crates = ws.config.strings("horizon.crates");
    tracker.register("horizon", ws.config.allow("horizon")?);
    let mut diags = Vec::new();
    for file in &ws.files {
        if !in_crates(&file.rel_path, &crates) {
            continue;
        }
        for (i, code) in file.code_lines.iter().enumerate() {
            let line = i + 1;
            if file.is_test_line(line) {
                continue;
            }
            let Some(f) = file.fn_at(line) else { continue };
            if !is_horizon_fn(&f.name) {
                continue;
            }
            if !code.contains("::MAX") {
                continue;
            }
            let Some(comb) = DEFAULTING.iter().find(|d| code.contains(**d)) else {
                continue;
            };
            if tracker.allows("horizon", &file.rel_path, code, Some(&f.name)) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line,
                rule: "FIG002",
                message: format!(
                    "`::MAX` used as a `{}` default in horizon-shaped fn `{}` — an empty \
                     event source must not unbound the horizon (PR-3 bug class); clamp \
                     against a global backstop or return `Option` instead",
                    comb.trim_end_matches('('),
                    f.name
                ),
            });
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_fn_names() {
        assert!(is_horizon_fn("in_order_horizon"));
        assert!(is_horizon_fn("compute_horizon"));
        assert!(is_horizon_fn("next_refresh"));
        assert!(is_horizon_fn("earliest_ready"));
        assert!(!is_horizon_fn("advance"));
        assert!(!is_horizon_fn("renext_thing"));
    }
}
