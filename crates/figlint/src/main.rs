//! CLI driver: `figlint [workspace-root]`.
//!
//! With no argument, walks upward from the current directory until a
//! `figlint.toml` is found (so `cargo run -p figlint` works from any
//! workspace subdirectory). Prints one `file:line: [RULE] message` per
//! finding. Exit status: `0` clean, `1` violations, `2` config/IO
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1).map(PathBuf::from) {
        Some(p) => p,
        None => match find_root() {
            Some(p) => p,
            None => {
                eprintln!("figlint: no figlint.toml found walking up from the current directory");
                return ExitCode::from(2);
            }
        },
    };
    match figlint::analyze_root(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("figlint: clean ({} ok)", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("figlint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("figlint: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor directory containing `figlint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("figlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
