//! Source scanning: a comment/string-aware lexical pass over Rust files.
//!
//! figlint deliberately avoids a full parser (`syn` would be a network
//! dependency; the workspace builds offline). Instead every file is run
//! through a character-level state machine that produces:
//!
//! * **code text** — the source with comment bodies and string/char
//!   literal contents blanked to spaces (line structure preserved), so
//!   token scans never match inside a comment or a string;
//! * **string literals** — each literal's line, column and content, for
//!   the rules that *do* care about strings (env-var reads, format
//!   strings);
//! * **test spans** — lines inside `#[cfg(test)]` modules, which most
//!   rules skip;
//! * **function spans** — `(name, start..end)` line ranges found by
//!   lexical brace matching, so rules can scope checks to functions by
//!   name (`*horizon*`, cache-key builders, …).
//!
//! The model is heuristic by design: it trades exhaustive syntactic
//! fidelity for zero dependencies and total transparency. Each rule
//! documents the idioms it recognizes; code that defeats the scanner
//! (e.g. building an env-var name by concatenation) is a review problem,
//! not a lint problem.

/// One extracted string literal.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 0-based byte column of the opening quote within that line.
    pub col: usize,
    /// Literal content (escapes left as written; no unescaping).
    pub text: String,
}

/// A function span found by lexical scanning.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the closing brace.
    pub end: usize,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Code text per line (comments and literal contents blanked).
    pub code_lines: Vec<String>,
    /// All string literals in order of appearance.
    pub strings: Vec<StrLit>,
    /// `true` for lines inside a `#[cfg(test)]` module.
    pub test_mask: Vec<bool>,
    /// Function spans (outer and nested, in source order).
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes `source` into the scan model.
    #[must_use]
    pub fn lex(rel_path: &str, source: &str) -> SourceFile {
        let (code, strings) = blank_noncode(source);
        let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
        let test_mask = mask_test_mods(&code_lines);
        let fns = find_fns(&code_lines);
        SourceFile { rel_path: rel_path.to_string(), code_lines, strings, test_mask, fns }
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]` module.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The innermost function span containing 1-based `line`.
    #[must_use]
    pub fn fn_at(&self, line: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.start <= line && line <= f.end).min_by_key(|f| f.end - f.start)
    }

    /// String literals whose opening quote sits on 1-based `line`.
    pub fn strings_on(&self, line: usize) -> impl Iterator<Item = &StrLit> {
        self.strings.iter().filter(move |s| s.line == line)
    }

    /// Code text of a 1-based inclusive line range, joined with newlines.
    #[must_use]
    pub fn code_span(&self, start: usize, end: usize) -> String {
        self.code_lines[start - 1..end.min(self.code_lines.len())].join("\n")
    }
}

/// Lexer state for [`blank_noncode`].
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Blanks comments and literal contents: returns the code text (same
/// line structure as the input) and the extracted string literals.
fn blank_noncode(src: &str) -> (String, Vec<StrLit>) {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut state = State::Normal;
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 0usize;
    let mut cur_lit: Option<StrLit> = None;
    let mut cur_text = String::new();
    while i < bytes.len() {
        let c = bytes[i];
        let push = |out: &mut Vec<u8>, b: u8| out.push(b);
        match state {
            State::Normal => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    push(&mut out, b' ');
                    push(&mut out, b' ');
                    i += 2;
                    col += 2;
                    continue;
                }
                if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    push(&mut out, b' ');
                    push(&mut out, b' ');
                    i += 2;
                    col += 2;
                    continue;
                }
                if c == b'"' {
                    cur_lit = Some(StrLit { line, col, text: String::new() });
                    cur_text.clear();
                    state = State::Str { raw_hashes: None };
                    push(&mut out, b'"');
                    i += 1;
                    col += 1;
                    continue;
                }
                if c == b'r' && matches!(bytes.get(i + 1), Some(b'"' | b'#')) {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        cur_lit = Some(StrLit { line, col, text: String::new() });
                        cur_text.clear();
                        state = State::Str { raw_hashes: Some(hashes) };
                        for _ in i..=j {
                            push(&mut out, b' ');
                        }
                        col += j - i + 1;
                        i = j + 1;
                        continue;
                    }
                }
                if c == b'\'' {
                    // Char literal vs lifetime: a lifetime is `'ident` not
                    // followed by a closing quote.
                    let next = bytes.get(i + 1).copied().unwrap_or(0);
                    let is_lifetime = (next.is_ascii_alphabetic() || next == b'_')
                        && bytes.get(i + 2) != Some(&b'\'');
                    if !is_lifetime {
                        state = State::Char;
                        push(&mut out, b'\'');
                        i += 1;
                        col += 1;
                        continue;
                    }
                }
                push(&mut out, c);
            }
            State::LineComment => {
                if c == b'\n' {
                    state = State::Normal;
                    push(&mut out, b'\n');
                } else {
                    push(&mut out, b' ');
                }
            }
            State::BlockComment(depth) => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    push(&mut out, b' ');
                    push(&mut out, b' ');
                    i += 2;
                    col += 2;
                    continue;
                }
                if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    push(&mut out, b' ');
                    push(&mut out, b' ');
                    i += 2;
                    col += 2;
                    continue;
                }
                push(&mut out, if c == b'\n' { b'\n' } else { b' ' });
            }
            State::Str { raw_hashes } => {
                let closed = match raw_hashes {
                    None => {
                        if c == b'\\' {
                            // Skip the escaped byte too.
                            cur_text.push('\\');
                            if let Some(&e) = bytes.get(i + 1) {
                                cur_text.push(e as char);
                                push(&mut out, b' ');
                                push(&mut out, if e == b'\n' { b'\n' } else { b' ' });
                                if e == b'\n' {
                                    line += 1;
                                    col = 0;
                                } else {
                                    col += 2;
                                }
                                i += 2;
                                continue;
                            }
                            false
                        } else {
                            c == b'"'
                        }
                    }
                    Some(h) => {
                        if c == b'"' {
                            let mut j = i + 1;
                            let mut seen = 0u32;
                            while seen < h && bytes.get(j) == Some(&b'#') {
                                seen += 1;
                                j += 1;
                            }
                            seen == h
                        } else {
                            false
                        }
                    }
                };
                if closed {
                    let skip = 1 + raw_hashes.unwrap_or(0) as usize;
                    for _ in 0..skip {
                        push(&mut out, if skip == 1 { b'"' } else { b' ' });
                    }
                    if let Some(mut lit) = cur_lit.take() {
                        lit.text = std::mem::take(&mut cur_text);
                        strings.push(lit);
                    }
                    state = State::Normal;
                    i += skip;
                    col += skip;
                    continue;
                }
                cur_text.push(c as char);
                push(&mut out, if c == b'\n' { b'\n' } else { b' ' });
            }
            State::Char => {
                if c == b'\\' {
                    push(&mut out, b' ');
                    if bytes.get(i + 1).is_some() {
                        push(&mut out, b' ');
                        i += 2;
                        col += 2;
                        continue;
                    }
                } else if c == b'\'' {
                    state = State::Normal;
                    push(&mut out, b'\'');
                } else {
                    push(&mut out, if c == b'\n' { b'\n' } else { b' ' });
                }
            }
        }
        if c == b'\n' {
            line += 1;
            col = 0;
        } else {
            col += 1;
        }
        i += 1;
    }
    (String::from_utf8_lossy(&out).into_owned(), strings)
}

/// Marks the line spans of `#[cfg(test)] mod … { … }` blocks.
fn mask_test_mods(code_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if code_lines[i].contains("#[cfg(test)]") {
            // Find the `mod` item this attribute decorates (skipping
            // further attributes) and mask to its matching close brace.
            let mut j = i;
            let mut found_mod = false;
            while j < code_lines.len() {
                let t = code_lines[j].trim_start();
                if t.contains("mod ") || t.starts_with("mod") {
                    found_mod = true;
                    break;
                }
                // Attribute applied to a single fn/item instead of a
                // module: mask that item the same way.
                if t.contains("fn ") || t.contains("impl ") {
                    found_mod = true;
                    break;
                }
                j += 1;
                if j > i + 4 {
                    break;
                }
            }
            if found_mod {
                if let Some((_, end)) = brace_block(code_lines, j) {
                    for m in &mut mask[i..end] {
                        *m = true;
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// From `start_line` (0-based), finds the first `{` and returns the
/// 0-based start line and **1-based exclusive** end line of the block.
fn brace_block(code_lines: &[String], start_line: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut seen_open = false;
    for (li, l) in code_lines.iter().enumerate().skip(start_line) {
        for b in l.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    seen_open = true;
                }
                b'}' => depth -= 1,
                b';' if !seen_open => {
                    // Item without a body (trait method, use decl).
                    return None;
                }
                _ => {}
            }
            if seen_open && depth == 0 {
                return Some((start_line, li + 1));
            }
        }
    }
    None
}

/// Finds `fn name` items and their brace spans (lexical, nested included).
fn find_fns(code_lines: &[String]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for (li, l) in code_lines.iter().enumerate() {
        let mut rest: &str = l;
        let mut off = 0usize;
        while let Some(p) = rest.find("fn ") {
            // Token boundary on the left ("fn" must not be a suffix of a
            // longer ident or keyword chain).
            let abs = off + p;
            let left_ok = abs == 0
                || !l.as_bytes()[abs - 1].is_ascii_alphanumeric() && l.as_bytes()[abs - 1] != b'_';
            if left_ok {
                let after = &l[abs + 3..];
                let name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    if let Some((_, end)) = brace_block(code_lines, li) {
                        spans.push(FnSpan { name, start: li + 1, end });
                    }
                }
            }
            off = abs + 3;
            rest = &l[off..];
        }
    }
    spans
}

/// Whether `text` contains `word` bounded by non-identifier characters.
#[must_use]
pub fn contains_word(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(p) = text[start..].find(word) {
        let abs = start + p;
        let before_ok = abs == 0 || {
            let b = text.as_bytes()[abs - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        let after = abs + word.len();
        let after_ok = after >= text.len() || {
            let b = text.as_bytes()[after];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len().max(1);
    }
    false
}

/// The identifier ending at byte offset `end` (exclusive) of `line`,
/// e.g. the receiver name just before a `.method(` call.
#[must_use]
pub fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut s = end;
    while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
        s -= 1;
    }
    if s == end {
        return None;
    }
    Some(&line[s..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap\nlet y = 1; /* HashMap */ let z = 2;\n";
        let f = SourceFile::lex("a.rs", src);
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(!f.code_lines[1].contains("HashMap"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, "HashMap");
        assert_eq!(f.strings[0].line, 1);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"a \"quoted\" b\"#;\nlet c = '\"';\nlet lt: &'static str = \"x\";\n";
        let f = SourceFile::lex("a.rs", src);
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[0].text, "a \"quoted\" b");
        assert_eq!(f.strings[1].text, "x");
    }

    #[test]
    fn multiline_string_with_continuation() {
        let src = "eprintln!(\n    \"line one\\n\\\n     line two\"\n);\nlet x = 1;\n";
        let f = SourceFile::lex("a.rs", src);
        assert_eq!(f.strings.len(), 1);
        assert!(f.strings[0].text.contains("line two"));
        assert!(f.code_lines[4].contains("let x = 1;"));
    }

    #[test]
    fn test_mod_masking() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let f = SourceFile::lex("a.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn fn_spans_nested() {
        let src = "fn outer() {\n    let f = 1;\n    fn inner_horizon() {\n        let x = 2;\n    }\n}\n";
        let f = SourceFile::lex("a.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fn_at(4).unwrap().name, "inner_horizon");
        assert_eq!(f.fn_at(2).unwrap().name, "outer");
    }

    #[test]
    fn word_and_ident_helpers() {
        assert!(contains_word("a.pending.iter()", "pending"));
        assert!(!contains_word("suspending.iter()", "pending"));
        let line = "self.pending.iter()";
        let dot = line.rfind(".iter").unwrap();
        assert_eq!(ident_ending_at(line, dot), Some("pending"));
    }
}
