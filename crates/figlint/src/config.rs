//! `figlint.toml` loading: a minimal, dependency-free TOML subset.
//!
//! The configuration language is the subset the rule catalog needs —
//! `[section]` tables, `key = "string"`, and `key = [ "…", "…" ]` string
//! arrays (multi-line, trailing commas allowed, `#` comments). Unknown
//! sections or keys are **errors**: a typo in a rule name must not
//! silently disable the rule.
//!
//! ## Allowlist entries
//!
//! Every rule accepts an `allow` array. Each entry is one string:
//!
//! ```text
//! "<path>[: <token>] -- <justification>"
//! ```
//!
//! * `path` — workspace-relative file the exemption applies to;
//! * `token` — optional refinement: the violating line must contain the
//!   token, **or** the enclosing function must be named exactly `token`
//!   (for the panic audit the token is instead a decimal **site
//!   budget**);
//! * `justification` — required free text; an entry without one is a
//!   configuration error. Allowlists exist to *record* why a violation
//!   is acceptable, not to hide it.
//!
//! Entries that match nothing are reported as `FIG000` (stale allow) so
//! the list can only shrink when the code improves.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the exemption applies to.
    pub path: String,
    /// Optional refinement token (or budget, for the panic audit).
    pub token: Option<String>,
    /// Why the exemption is sound (required).
    pub justification: String,
    /// `figlint.toml` line the entry was defined on (for FIG000).
    pub line: usize,
}

impl AllowEntry {
    /// Parses `"<path>[: <token>] -- <justification>"`.
    fn parse(raw: &str, line: usize) -> Result<AllowEntry, String> {
        let Some((head, justification)) = raw.split_once(" -- ") else {
            return Err(format!(
                "figlint.toml:{line}: allow entry `{raw}` is missing a ` -- justification`"
            ));
        };
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!(
                "figlint.toml:{line}: allow entry `{raw}` has an empty justification"
            ));
        }
        let (path, token) = match head.split_once(": ") {
            Some((p, t)) => (p.trim(), Some(t.trim().to_string())),
            None => (head.trim(), None),
        };
        if path.is_empty() {
            return Err(format!("figlint.toml:{line}: allow entry `{raw}` has an empty path"));
        }
        Ok(AllowEntry {
            path: path.to_string(),
            token,
            justification: justification.to_string(),
            line,
        })
    }
}

/// A raw string value with its source line.
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The string value.
    pub value: String,
    /// 1-based `figlint.toml` line.
    pub line: usize,
}

/// Parsed configuration: `section.key` → list of spanned strings.
#[derive(Debug, Default)]
pub struct LintConfig {
    values: BTreeMap<String, Vec<Spanned>>,
}

/// The sections and keys the rule catalog understands.
const SCHEMA: &[&str] = &[
    "determinism.crates",
    "determinism.allow",
    "horizon.crates",
    "horizon.allow",
    "floats.float_structs",
    "floats.scopes",
    "floats.sanitizers",
    "floats.allow",
    "cache_key.structs",
    "cache_key.key_fns",
    "cache_key.allow",
    "env_registry.prefix",
    "env_registry.docs",
    "env_registry.usage",
    "env_registry.allow",
    "panics.crates",
    "panics.allow",
    "probe.crates",
    "probe.emit",
    "probe.guards",
    "probe.allow",
];

impl LintConfig {
    /// Parses `figlint.toml` text.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("figlint.toml:{lineno}: expected `key = value`, got `{line}`"));
            };
            let key = key.trim();
            let full =
                if section.is_empty() { key.to_string() } else { format!("{section}.{key}") };
            if !SCHEMA.contains(&full.as_str()) {
                let mut known = String::new();
                for s in SCHEMA {
                    let _ = write!(known, " {s}");
                }
                return Err(format!("figlint.toml:{lineno}: unknown key `{full}` (known:{known})"));
            }
            let mut value = value.trim().to_string();
            let entry = cfg.values.entry(full).or_default();
            if let Some(s) = parse_bare_string(&value) {
                entry.push(Spanned { value: s, line: lineno });
                continue;
            }
            if !value.starts_with('[') {
                return Err(format!(
                    "figlint.toml:{lineno}: expected a \"string\" or [array], got `{value}`"
                ));
            }
            // Accumulate array text until the closing bracket.
            while !array_closed(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("figlint.toml:{lineno}: unterminated array"));
                };
                value.push('\n');
                value.push_str(strip_comment(next).trim_end());
            }
            for (at, piece) in (lineno..).zip(value.split('\n')) {
                for s in split_array_strings(piece, at)? {
                    entry.push(s);
                }
            }
        }
        Ok(cfg)
    }

    /// String-list value of `section.key` (empty when absent).
    #[must_use]
    pub fn list(&self, key: &str) -> Vec<Spanned> {
        self.values.get(key).cloned().unwrap_or_default()
    }

    /// Plain string values of `section.key`.
    #[must_use]
    pub fn strings(&self, key: &str) -> Vec<String> {
        self.list(key).into_iter().map(|s| s.value).collect()
    }

    /// Single string value (last one wins), or `default`.
    #[must_use]
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.list(key).last().map_or_else(|| default.to_string(), |s| s.value.clone())
    }

    /// Parsed allowlist for a rule section.
    pub fn allow(&self, section: &str) -> Result<Vec<AllowEntry>, String> {
        self.list(&format!("{section}.allow"))
            .iter()
            .map(|s| AllowEntry::parse(&s.value, s.line))
            .collect()
    }
}

/// Strips a `#` comment (quote-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// `"string"` → contents, else `None`.
fn parse_bare_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

/// Whether the accumulated array text has its closing `]` (quote-aware).
fn array_closed(text: &str) -> bool {
    let mut in_str = false;
    for b in text.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

/// Extracts the `"…"` elements of one physical line of array text.
fn split_array_strings(piece: &str, line: usize) -> Result<Vec<Spanned>, String> {
    let mut out = Vec::new();
    let bytes = piece.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j >= bytes.len() {
                return Err(format!("figlint.toml:{line}: unterminated string in array"));
            }
            out.push(Spanned { value: piece[start..j].to_string(), line });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_strings() {
        let text = "\n# top comment\n[determinism]\ncrates = [\n    \"crates/core\", # inline\n    \"crates/sim\",\n]\nallow = [\"a.rs: tok -- why\"]\n\n[env_registry]\nprefix = \"FIGARO_\"\n";
        let cfg = LintConfig::parse(text).unwrap();
        assert_eq!(cfg.strings("determinism.crates"), vec!["crates/core", "crates/sim"]);
        assert_eq!(cfg.string_or("env_registry.prefix", "X"), "FIGARO_");
        let allow = cfg.allow("determinism").unwrap();
        assert_eq!(allow.len(), 1);
        assert_eq!(allow[0].path, "a.rs");
        assert_eq!(allow[0].token.as_deref(), Some("tok"));
        assert_eq!(allow[0].justification, "why");
    }

    #[test]
    fn rejects_unknown_keys() {
        let err = LintConfig::parse("[determinism]\ncrate = [\"x\"]\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn rejects_missing_justification() {
        let cfg = LintConfig::parse("[horizon]\nallow = [\"a.rs: tok\"]\n").unwrap();
        let err = cfg.allow("horizon").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn entry_lines_point_into_the_file() {
        let text = "[panics]\nallow = [\n  \"a.rs: 3 -- documented\",\n  \"b.rs -- fine\",\n]\n";
        let cfg = LintConfig::parse(text).unwrap();
        let allow = cfg.allow("panics").unwrap();
        assert_eq!(allow[0].line, 3);
        assert_eq!(allow[1].line, 4);
    }
}
