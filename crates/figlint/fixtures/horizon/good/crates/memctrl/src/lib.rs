pub type Cycle = u64;

pub struct Controller {
    next_refresh: Option<Cycle>,
    next_demand: Option<Cycle>,
}

impl Controller {
    pub fn in_order_horizon(&self) -> Cycle {
        let refresh = self.next_refresh.unwrap_or(Cycle::MAX);
        self.next_demand.map_or(Cycle::MAX, |d| d.min(refresh))
    }

    pub fn next_event(&self) -> Option<Cycle> {
        match (self.next_refresh, self.next_demand) {
            (Some(r), Some(d)) => Some(r.min(d)),
            (r, d) => r.or(d),
        }
    }
}
