pub type Cycle = u64;

pub struct Controller {
    next_refresh: Option<Cycle>,
    next_demand: Option<Cycle>,
}

impl Controller {
    pub fn in_order_horizon(&self) -> Cycle {
        let refresh = self.next_refresh.unwrap_or(Cycle::MAX);
        self.next_demand.map_or(Cycle::MAX, |d| d.min(refresh))
    }

    pub fn advance(&self) -> Cycle {
        self.next_demand.unwrap_or(Cycle::MAX)
    }
}
