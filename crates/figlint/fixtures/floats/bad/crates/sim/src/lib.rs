pub struct RunSummary {
    pub ipc: f64,
    pub cycles: u64,
}

impl RunSummary {
    pub fn to_text(&self) -> String {
        format!("ipc {}\ncycles {}\n", self.ipc, self.cycles)
    }

    pub fn report(&self) -> String {
        format!("IPC was {:.3}", self.ipc)
    }
}
