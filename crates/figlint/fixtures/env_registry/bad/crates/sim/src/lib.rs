pub fn kernel() -> Option<String> {
    std::env::var("FIGARO_KERNEL").ok()
}

pub fn undocumented() -> bool {
    std::env::var_os("FIGARO_SECRET").is_some()
}
