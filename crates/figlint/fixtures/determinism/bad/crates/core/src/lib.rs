use std::collections::HashMap;
use std::time::Instant;

pub struct Engine {
    pending: HashMap<u32, u64>,
}

impl Engine {
    pub fn drain(&mut self) -> u64 {
        let t = Instant::now();
        let mut sum = 0;
        for (_k, v) in &self.pending {
            sum += v;
        }
        let _ = t.elapsed();
        sum
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn test_code_is_exempt() {
        let seen: HashSet<u32> = HashSet::new();
        for x in &seen {
            let _ = x;
        }
    }
}
