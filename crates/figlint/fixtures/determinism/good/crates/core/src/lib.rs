use std::collections::{BTreeMap, HashMap};

pub struct Engine {
    pending: BTreeMap<u32, u64>,
    lookup: HashMap<u32, u64>,
}

impl Engine {
    pub fn drain(&mut self) -> u64 {
        let mut sum = 0;
        for (_k, v) in &self.pending {
            sum += v;
        }
        sum + self.lookup.get(&0).copied().unwrap_or(0)
    }
}
