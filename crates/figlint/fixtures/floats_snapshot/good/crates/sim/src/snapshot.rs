pub struct EnergyState {
    pub dram_nj: f64,
    pub events: u64,
}

impl EnergyState {
    // The FGSN convention: floats cross the word stream as IEEE-754 bit
    // patterns, so the round trip is lossless by construction.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.dram_nj.to_bits());
        out.push(self.events);
    }

    pub fn load_state(&mut self, src: &mut &[u64]) {
        self.dram_nj = f64::from_bits(src[0]);
        self.events = src[1];
        *src = &src[2..];
    }

    // Human-facing report: out of scope by design.
    pub fn report(&self) -> String {
        format!("dram energy {:.1} nJ", self.dram_nj)
    }
}
