pub struct EnergyState {
    pub dram_nj: f64,
    pub events: u64,
}

impl EnergyState {
    // The FGSN bug shape: a float crosses the snapshot as formatted
    // text, so a save/restore round trip can differ in the last ulp and
    // resumed runs stop being bit-identical.
    pub fn save_state(&self, out: &mut Vec<String>) {
        out.push(format!("dram_nj {}", self.dram_nj));
        out.push(format!("events {}", self.events));
    }

    // Human-facing report: out of scope by design.
    pub fn report(&self) -> String {
        format!("dram energy {:.1} nJ", self.dram_nj)
    }
}
