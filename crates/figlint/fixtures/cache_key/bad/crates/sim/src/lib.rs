pub struct Config {
    pub channels: u32,
    pub sched: u32,
    pub free_reloc: bool,
}

pub fn cache_key(c: &Config) -> String {
    format!("ch{}-s{}", c.channels, c.sched)
}
