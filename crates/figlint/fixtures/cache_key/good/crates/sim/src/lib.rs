pub struct Config {
    pub channels: u32,
    pub sched: u32,
    pub free_reloc: bool,
    pub threads: usize,
}

pub fn cache_key(c: &Config) -> String {
    let ablation = if c.free_reloc { "-freereloc" } else { "" };
    format!("ch{}-s{}{}", c.channels, c.sched, ablation)
}
