pub struct Glue {
    trace: Trace,
}

impl Glue {
    pub fn flush(&mut self, now: u64) {
        // Direct emit, sanctioned by the [probe] allow entry: this module
        // is the implementation layer the probe! sites dispatch into.
        self.trace.note_refresh(now);
    }
}
