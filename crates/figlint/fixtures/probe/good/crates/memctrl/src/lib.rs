pub struct Controller {
    trace: Option<Trace>,
}

impl Controller {
    pub fn retire(&mut self, bank: usize, now: u64) {
        probe!(self.trace, t => t.job_retire(bank, now));
    }

    pub fn refresh(&mut self, now: u64) {
        // rustfmt-wrapped form: the guard sits two lines above the emit.
        probe!(
            self.trace,
            t => t.note_refresh(now)
        );
    }
}
