pub struct Controller {
    trace: Option<Trace>,
}

impl Controller {
    pub fn retire(&mut self, bank: usize, now: u64) {
        // Bare emit: runs (and may allocate) even when tracing is off.
        if let Some(t) = self.trace.as_mut() {
            t.job_retire(bank, now);
        }
    }

    pub fn refresh(&mut self, now: u64) {
        // Guarded emit: legal.
        probe!(self.trace, t => t.note_refresh(now));
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut t = Trace::default();
        t.job_retire(0, 1);
    }
}
