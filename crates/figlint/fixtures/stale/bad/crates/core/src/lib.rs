pub fn clean() -> u32 {
    7
}
