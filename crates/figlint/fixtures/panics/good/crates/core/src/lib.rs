pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_free() {
        assert_eq!(super::must(Some(3)), 3);
        let v: Vec<u32> = vec![1];
        let _ = v.first().unwrap();
    }
}
