//! Positive/negative fixture tests: every rule must still catch the bug
//! class it was built for (`bad` trees) and stay quiet on the idiomatic
//! form (`good` trees). Each fixture under `fixtures/<rule>/` is a
//! miniature workspace with its own `figlint.toml`.

use std::path::PathBuf;

use figlint::analyze_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

/// Runs figlint on a fixture and returns its rendered diagnostics.
fn lint(name: &str) -> Vec<String> {
    analyze_root(&fixture(name))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn assert_clean(name: &str) {
    let diags = lint(name);
    assert!(diags.is_empty(), "fixture {name} should be clean, got:\n{}", diags.join("\n"));
}

/// Asserts the fixture produces exactly the rules in `expect` (with
/// multiplicity), in any order.
fn assert_rules(name: &str, expect: &[&str]) {
    let diags = lint(name);
    let mut got: Vec<&str> = diags
        .iter()
        .map(|d| {
            let open = d.find('[').unwrap_or_else(|| panic!("no rule tag in `{d}`"));
            &d[open + 1..open + 7]
        })
        .collect();
    let mut want = expect.to_vec();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "fixture {name} diagnostics:\n{}", diags.join("\n"));
}

#[test]
fn determinism_catches_hash_iteration_and_wall_clock() {
    // Two Instant tokens on one line (`std::time::Instant` import is a
    // separate line) plus the hash-map walk.
    let diags = lint("determinism/bad");
    assert!(
        diags.iter().any(|d| d.contains("FIG001") && d.contains("`pending`")),
        "want hash-iteration finding:\n{}",
        diags.join("\n")
    );
    assert!(
        diags.iter().any(|d| d.contains("FIG001") && d.contains("wall-clock")),
        "want wall-clock finding:\n{}",
        diags.join("\n")
    );
    // The #[cfg(test)] HashSet walk must not be flagged.
    assert!(
        !diags.iter().any(|d| d.contains("seen")),
        "test-module code must be exempt:\n{}",
        diags.join("\n")
    );
}

#[test]
fn determinism_accepts_btreemap_and_point_lookups() {
    assert_clean("determinism/good");
}

#[test]
fn horizon_catches_the_pr3_sentinel_shape() {
    // `unwrap_or(Cycle::MAX)` and `map_or(Cycle::MAX, …)` inside
    // `in_order_horizon`, and `unwrap_or(Cycle::MAX)` inside a fn that
    // is *not* horizon-shaped stays legal.
    assert_rules("horizon/bad", &["FIG002", "FIG002"]);
}

#[test]
fn horizon_allowlist_and_option_return_are_clean() {
    assert_clean("horizon/good");
}

#[test]
fn floats_catch_the_pr6_lossy_format() {
    // Only the `{}` in `to_text` — the human-facing `report` is out of
    // scope by design.
    assert_rules("floats/bad", &["FIG003"]);
}

#[test]
fn floats_accept_the_bit_pattern_convention() {
    assert_clean("floats/good");
}

#[test]
fn floats_catch_a_lossy_snapshot_serializer() {
    // The FGSN bug shape: a float crossing a `save_state` word stream as
    // formatted text instead of a to_bits bit pattern.
    let diags = lint("floats_snapshot/bad");
    assert_rules("floats_snapshot/bad", &["FIG003"]);
    assert!(diags[0].contains("save_state"), "{}", diags.join("\n"));
}

#[test]
fn floats_accept_the_fgsn_word_stream_convention() {
    assert_clean("floats_snapshot/good");
}

#[test]
fn cache_key_catches_an_unkeyed_field() {
    let diags = lint("cache_key/bad");
    assert_rules("cache_key/bad", &["FIG004"]);
    assert!(diags[0].contains("Config.free_reloc"), "{}", diags.join("\n"));
}

#[test]
fn cache_key_accepts_keyed_fields_and_justified_allows() {
    assert_clean("cache_key/good");
}

#[test]
fn env_registry_catches_both_directions() {
    let diags = lint("env_registry/bad");
    assert!(
        diags.iter().any(|d| d.contains("FIG005") && d.contains("FIGARO_SECRET")),
        "want undocumented-read finding:\n{}",
        diags.join("\n")
    );
    assert!(
        diags.iter().any(|d| d.contains("FIG005") && d.contains("FIGARO_GONE")),
        "want documented-but-unread finding:\n{}",
        diags.join("\n")
    );
}

#[test]
fn env_registry_accepts_a_synced_registry() {
    assert_clean("env_registry/good");
}

#[test]
fn panics_enforce_the_budget_both_ways() {
    // 2 live sites vs a budget of 1 (test-module sites are free).
    let diags = lint("panics/bad");
    assert_rules("panics/bad", &["FIG006"]);
    assert!(diags[0].contains("exceed the budget of 1"), "{}", diags.join("\n"));
}

#[test]
fn panics_accept_an_exact_budget() {
    assert_clean("panics/good");
}

#[test]
fn probe_catches_a_bare_emit() {
    // One bare `.job_retire(` behind a hand-rolled `if let` — the guard
    // must be the probe! macro, not an ad-hoc Option test.
    let diags = lint("probe/bad");
    assert_rules("probe/bad", &["FIG007"]);
    assert!(diags[0].contains("job_retire"), "{}", diags.join("\n"));
}

#[test]
fn probe_accepts_guarded_and_sanctioned_emits() {
    // Single-line probe!, the rustfmt-wrapped three-line form, and a
    // justified allow for the glue module that implements the probes.
    assert_clean("probe/good");
}

#[test]
fn stale_allow_entries_fail_the_run() {
    let diags = lint("stale/bad");
    assert_rules("stale/bad", &["FIG000"]);
    assert!(diags[0].contains("old_fn"), "{}", diags.join("\n"));
}
