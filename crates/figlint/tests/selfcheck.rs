//! The live workspace must stay figlint-clean: the whole point of the
//! tool is that these invariants hold *now*, not aspirationally. This
//! is the same check CI runs via `cargo run -p figlint --release`,
//! wired into `cargo test` so a violation fails the fast tier too.

use std::path::Path;

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("figlint lives two levels below the workspace root");
    let diags = figlint::analyze_root(root).expect("figlint configuration must load");
    assert!(
        diags.is_empty(),
        "figlint violations in the live workspace:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
