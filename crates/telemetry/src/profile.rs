//! Kernel self-profiling — the **one sanctioned wall-clock island** in
//! the workspace (figlint FIG001 allowlists exactly this file, with
//! justification, in `figlint.toml`).
//!
//! Everything here is result-neutral by construction: wall-clock
//! readings are accumulated into side buckets that no simulation state
//! ever reads. The primitives are deliberately closure/handle based so
//! the *callers* in `crates/sim` never mention `Instant` — keeping the
//! determinism lint's token scan meaningful everywhere else.

use std::env;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether `FIGARO_PROFILE=1` asked for kernel self-profiling (read
/// once; the knob is registered as *never-affects-results*).
pub fn profile_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| env::var("FIGARO_PROFILE").is_ok_and(|v| v == "1"))
}

/// Runs `f` and returns its result plus the elapsed wall time in
/// nanoseconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let t0 = Instant::now();
    let r = f();
    (r, u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

/// One accumulation bucket of a [`LapClock`].
#[derive(Debug, Clone, Copy)]
pub struct Bucket {
    /// Component label.
    pub label: &'static str,
    /// Accumulated wall time, nanoseconds.
    pub nanos: u64,
    /// Times the bucket was charged.
    pub laps: u64,
}

/// A lap-style stopwatch attributing consecutive wall-time segments to
/// labelled component buckets: `lap(i)` charges the time since the
/// previous `lap`/creation to bucket `i`.
#[derive(Debug)]
pub struct LapClock {
    started: Instant,
    last: Instant,
    buckets: Vec<Bucket>,
}

impl LapClock {
    /// A clock with one bucket per label, started now.
    #[must_use]
    pub fn new(labels: &[&'static str]) -> Self {
        let now = Instant::now();
        Self {
            started: now,
            last: now,
            buckets: labels.iter().map(|&label| Bucket { label, nanos: 0, laps: 0 }).collect(),
        }
    }

    /// Charges the segment since the previous lap to bucket `idx`.
    pub fn lap(&mut self, idx: usize) {
        let now = Instant::now();
        let ns = u64::try_from((now - self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
        let b = &mut self.buckets[idx];
        b.nanos += ns;
        b.laps += 1;
    }

    /// Resets the segment origin without charging anyone (use when
    /// entering untimed territory).
    pub fn skip(&mut self) {
        self.last = Instant::now();
    }

    /// The buckets, in label order.
    #[must_use]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total wall time since creation, nanoseconds.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Per-shard busy-time accumulators for the parallel kernel, shared
/// with worker threads (relaxed atomics: the numbers are diagnostics,
/// never simulation input).
#[derive(Debug, Default)]
pub struct ShardTimers {
    nanos: Vec<AtomicU64>,
}

impl ShardTimers {
    /// Timers for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { nanos: (0..shards).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Adds `ns` busy nanoseconds to shard `idx`.
    pub fn add(&self, idx: usize, ns: u64) {
        self.nanos[idx].fetch_add(ns, Ordering::Relaxed);
    }

    /// Busy nanoseconds per shard.
    #[must_use]
    pub fn totals(&self) -> Vec<u64> {
        self.nanos.iter().map(|n| n.load(Ordering::Relaxed)).collect()
    }

    /// Idle imbalance in `[0, 1]`: `1 - mean/max` of per-shard busy
    /// time — `0` means perfectly balanced shards, `→1` means one
    /// shard did all the work while the others idled at the barrier.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let totals = self.totals();
        let max = totals.iter().copied().max().unwrap_or(0);
        if max == 0 || totals.is_empty() {
            return 0.0;
        }
        let mean = totals.iter().copied().sum::<u64>() as f64 / totals.len() as f64;
        1.0 - mean / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lap_clock_charges_segments() {
        let mut c = LapClock::new(&["a", "b"]);
        c.lap(0);
        c.lap(1);
        assert_eq!(c.buckets()[0].laps, 1);
        assert_eq!(c.buckets()[1].laps, 1);
        assert!(c.elapsed_ns() >= c.buckets()[0].nanos);
    }

    #[test]
    fn shard_imbalance_bounds() {
        let t = ShardTimers::new(2);
        assert_eq!(t.imbalance(), 0.0);
        t.add(0, 100);
        t.add(1, 100);
        assert!(t.imbalance().abs() < 1e-12);
        let skew = ShardTimers::new(2);
        skew.add(0, 1_000);
        assert!((skew.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timed_returns_result() {
        let (v, ns) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        let _ = ns;
    }
}
