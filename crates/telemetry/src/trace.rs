//! Structured event tracing: per-shard buffers of sim-time-stamped
//! spans/instants, merged in channel order into Chrome trace-event
//! JSON (the `chrome://tracing` / Perfetto format).
//!
//! ## Determinism
//!
//! Events carry **simulated** timestamps only. Each controller (shard)
//! owns its own [`TraceBuffer`], filled in simulated-time order
//! regardless of which worker thread advances the shard; the writer
//! merges buffers with a stable sort on `(timestamp, lane, sequence)`,
//! so the output file is **byte-identical** across worker-thread
//! counts — and, because every emit site fires at a simulator *state
//! change* (which the kernel-equivalence suite proves happens at the
//! same cycle under every exact kernel), across the Reference, Event
//! and Parallel kernels too. The integration suite pins both claims.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Event categories. A closed set so the per-emit filter check is one
/// bit test and filter typos abort loudly at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cat {
    /// Relocation-job spans (FIGCache segment moves, LISA clones).
    Reloc,
    /// Write-drain hysteresis spans (high/low watermark crossings).
    Drain,
    /// Refresh command instants.
    Refresh,
    /// Sampled-kernel detailed-window boundaries and fast-forward jumps.
    Window,
    /// Warm-start resume markers.
    Warm,
    /// Parallel-kernel epoch barriers (high volume — muted by the
    /// default filter; opt in with `:epoch` or `:all`).
    Epoch,
}

/// All categories, in bit order.
pub const CATEGORIES: [Cat; 6] =
    [Cat::Reloc, Cat::Drain, Cat::Refresh, Cat::Window, Cat::Warm, Cat::Epoch];

impl Cat {
    /// The category label written to the JSON `cat` field and accepted
    /// by `FIGARO_TRACE` filters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Cat::Reloc => "reloc",
            Cat::Drain => "drain",
            Cat::Refresh => "refresh",
            Cat::Window => "window",
            Cat::Warm => "warm",
            Cat::Epoch => "epoch",
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// Which categories a trace records, decided once at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    mask: u8,
}

impl Default for TraceFilter {
    /// Everything except the high-volume [`Cat::Epoch`] stream.
    fn default() -> Self {
        Self { mask: !Cat::Epoch.bit() }
    }
}

impl TraceFilter {
    /// Parses a comma-separated category list (`"reloc,drain"`), or
    /// `"all"` for every category including `epoch`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown category name (loud-env convention).
    #[must_use]
    pub fn parse(spec: &str) -> Self {
        let mut mask = 0u8;
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if tok == "all" {
                mask = 0xff;
                continue;
            }
            let cat = CATEGORIES
                .iter()
                .find(|c| c.name() == tok)
                .unwrap_or_else(|| panic!("unknown FIGARO_TRACE filter category {tok:?}"));
            mask |= cat.bit();
        }
        Self { mask }
    }

    /// Whether every comma token of `spec` is a known category name —
    /// used to disambiguate `path:filter` from a path containing `:`.
    #[must_use]
    pub fn looks_like_filter(spec: &str) -> bool {
        !spec.is_empty()
            && spec
                .split(',')
                .map(str::trim)
                .all(|t| t == "all" || CATEGORIES.iter().any(|c| c.name() == t))
    }

    /// Whether the named category is recorded (test/CLI convenience;
    /// the hot path uses the bit mask directly).
    #[must_use]
    pub fn allows(&self, name: &str) -> bool {
        CATEGORIES.iter().any(|c| c.name() == name && self.mask & c.bit() != 0)
    }
}

/// Chrome trace-event phase subset the writer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `ph:"X"` — a complete span with a duration.
    Complete,
    /// `ph:"i"` — an instant.
    Instant,
}

/// One recorded event. Names and categories are `&'static str`/enums:
/// recording never allocates beyond buffer growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated timestamp, in the emitting component's clock domain
    /// (rescaled to CPU cycles at merge time).
    pub ts: u64,
    /// Span length for [`Phase::Complete`]; `0` for instants.
    pub dur: u64,
    /// Event phase.
    pub ph: Phase,
    /// Category.
    pub cat: Cat,
    /// Event name.
    pub name: &'static str,
    /// One numeric payload (job id, queue depth, …), written as
    /// `args:{"v":…}`.
    pub arg: u64,
}

/// An append-only, filter-aware event buffer owned by one lane
/// (controller shard or the main simulation loop).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    filter: TraceFilter,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer recording the filtered categories.
    #[must_use]
    pub fn new(filter: TraceFilter) -> Self {
        Self { filter, events: Vec::new() }
    }

    /// Records an instant event (subject to the filter).
    pub fn instant(&mut self, cat: Cat, name: &'static str, ts: u64, arg: u64) {
        if self.filter.mask & cat.bit() != 0 {
            self.events.push(TraceEvent { ts, dur: 0, ph: Phase::Instant, cat, name, arg });
        }
    }

    /// Records a complete span (subject to the filter). `ts` is the
    /// span start; `dur` its length in the same clock domain.
    pub fn complete(&mut self, cat: Cat, name: &'static str, ts: u64, dur: u64, arg: u64) {
        if self.filter.mask & cat.bit() != 0 {
            self.events.push(TraceEvent { ts, dur, ph: Phase::Complete, cat, name, arg });
        }
    }

    /// Recorded events, in emit order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The buffer's filter.
    #[must_use]
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }
}

/// Per-controller trace adapter: turns controller lifecycle callbacks
/// (job start/retire, queue-length changes, refresh issue) into spans
/// and instants. Lives here — not in `crates/memctrl` — so every emit
/// primitive stays out of the result-affecting crates and the figlint
/// FIG007 probe-guard rule stays simple: controllers only ever touch
/// this type through the `probe!` macro.
///
/// The write-drain span tracks the *pure* hysteresis function of the
/// queue length (≥ high → draining, ≤ low → not), re-evaluated at
/// every queue-length change. The controller's own lazy flag may
/// recompute later under the event kernels (deferral is observably
/// equivalent); tracing the pure function instead keeps the trace
/// byte-identical across kernels.
#[derive(Debug, Clone)]
pub struct ControllerTrace {
    buf: TraceBuffer,
    /// Per-bank open relocation-job span: `(start_ts, job_id)`.
    job_open: Vec<Option<(u64, u64)>>,
    drain: bool,
    drain_since: u64,
    drain_peak: u64,
}

impl ControllerTrace {
    /// A fresh adapter for a controller with `banks` banks.
    #[must_use]
    pub fn new(banks: usize, filter: TraceFilter) -> Self {
        Self {
            buf: TraceBuffer::new(filter),
            job_open: vec![None; banks],
            drain: false,
            drain_since: 0,
            drain_peak: 0,
        }
    }

    /// A relocation job was taken by `bank` at `now`.
    pub fn job_start(&mut self, bank: usize, id: u64, now: u64) {
        self.job_open[bank] = Some((now, id));
    }

    /// The job on `bank` retired at `now`: closes its span.
    pub fn job_retire(&mut self, bank: usize, now: u64) {
        if let Some((start, id)) = self.job_open[bank].take() {
            self.buf.complete(Cat::Reloc, "reloc_job", start, now - start, id);
        }
    }

    /// The write queue changed length at `now`: advance the pure
    /// drain-hysteresis function and emit a span on falling edges.
    pub fn drain_update(&mut self, now: u64, wq_len: usize, high: usize, low: usize) {
        let next = if wq_len >= high {
            true
        } else if wq_len <= low {
            false
        } else {
            self.drain
        };
        if next && !self.drain {
            self.drain_since = now;
            self.drain_peak = wq_len as u64;
        } else if next {
            self.drain_peak = self.drain_peak.max(wq_len as u64);
        } else if self.drain {
            self.buf.complete(
                Cat::Drain,
                "write_drain",
                self.drain_since,
                now - self.drain_since,
                self.drain_peak,
            );
        }
        self.drain = next;
    }

    /// A refresh command issued at `now`.
    pub fn note_refresh(&mut self, now: u64) {
        self.buf.instant(Cat::Refresh, "refresh", now, 0);
    }

    /// Closes any still-open spans at end of run (`now`) and returns
    /// the finished buffer.
    #[must_use]
    pub fn finish(mut self, now: u64) -> TraceBuffer {
        for bank in 0..self.job_open.len() {
            self.job_retire(bank, now);
        }
        if self.drain {
            self.buf.complete(
                Cat::Drain,
                "write_drain",
                self.drain_since,
                now - self.drain_since,
                self.drain_peak,
            );
        }
        self.buf
    }
}

/// One lane feeding the merged trace file.
#[derive(Debug)]
pub struct MergeSource {
    /// Chrome `tid` this lane's events render under (`0` = the main
    /// simulation loop, `1 + channel` = that channel's controller).
    pub tid: u32,
    /// Multiplier rescaling the lane's timestamps to CPU cycles
    /// (controllers stamp bus cycles; the bus runs slower).
    pub ts_scale: u64,
    /// The lane's events.
    pub buf: TraceBuffer,
}

/// Merges lanes and writes Chrome trace-event JSON atomically
/// (temp file + rename). Events are stably ordered by
/// `(scaled timestamp, tid, emit order)`, which is independent of
/// worker threading — the byte-identity anchor.
///
/// Timestamps are written in CPU cycles via the `ts` field (Perfetto
/// renders them as microseconds; only relative placement matters).
///
/// # Errors
///
/// Propagates I/O errors from writing or renaming the file.
pub fn write_chrome_trace(path: &Path, sources: &[MergeSource]) -> io::Result<()> {
    let mut order: Vec<(u64, u32, usize, usize)> = Vec::new();
    for (lane, src) in sources.iter().enumerate() {
        for (seq, e) in src.buf.events().iter().enumerate() {
            order.push((e.ts * src.ts_scale, src.tid, lane, seq));
        }
    }
    order.sort_by_key(|&(ts, tid, _, seq)| (ts, tid, seq));

    let mut out = String::with_capacity(order.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, &(ts, tid, lane, seq)) in order.iter().enumerate() {
        let src = &sources[lane];
        let e = &src.buf.events()[seq];
        if i > 0 {
            out.push_str(",\n");
        }
        match e.ph {
            Phase::Complete => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"v\":{}}}}}",
                    e.name,
                    e.cat.name(),
                    ts,
                    e.dur * src.ts_scale,
                    tid,
                    e.arg
                ));
            }
            Phase::Instant => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":0,\"tid\":{},\"args\":{{\"v\":{}}}}}",
                    e.name,
                    e.cat.name(),
                    ts,
                    tid,
                    e.arg
                ));
            }
        }
    }
    out.push_str("\n]}\n");

    let tmp = path.with_extension("json.tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let mut f = fs::File::create(&tmp)?;
    f.write_all(out.as_bytes())?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)
}

/// Summary of a parsed Chrome-trace file (`diag trace`, and the
/// well-formedness test).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFileSummary {
    /// Total events.
    pub events: usize,
    /// `(category, count)` sorted by category name.
    pub by_cat: Vec<(String, usize)>,
    /// `ph:"X"` spans.
    pub complete: usize,
    /// `ph:"i"` instants.
    pub instant: usize,
    /// `ph:"B"` span-begin events (a generic Chrome trace may use
    /// begin/end pairs; our writer emits none).
    pub begins: usize,
    /// `ph:"E"` span-end events.
    pub ends: usize,
    /// Events with any other phase.
    pub other_ph: usize,
    /// Largest `ts` (plus `dur` for spans) seen.
    pub max_ts: u64,
}

impl TraceFileSummary {
    /// Whether begin/end spans pair up (trivially true for our
    /// `X`-only writer, checked anyway for foreign files).
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.begins == self.ends
    }
}

/// Parses and validates a Chrome-trace JSON file.
///
/// # Errors
///
/// Returns a description of the first problem: unreadable file,
/// malformed JSON, or a structure that is not a
/// `{"traceEvents":[…]}` object of well-formed event objects.
pub fn summarize_file(path: &Path) -> Result<TraceFileSummary, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    summarize_str(&text)
}

/// [`summarize_file`] on an in-memory document.
///
/// # Errors
///
/// Same conditions as [`summarize_file`], minus the I/O.
pub fn summarize_str(text: &str) -> Result<TraceFileSummary, String> {
    let root = json::parse(text)?;
    let json::Val::Obj(fields) = &root else {
        return Err("root is not a JSON object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing \"traceEvents\" key")?;
    let json::Val::Arr(items) = events else {
        return Err("\"traceEvents\" is not an array".into());
    };
    let mut sum = TraceFileSummary::default();
    let mut cats: Vec<(String, usize)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let json::Val::Obj(ev) = item else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let field = |k: &str| ev.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let str_field = |k: &str| match field(k) {
            Some(json::Val::Str(s)) => Ok(s.clone()),
            _ => Err(format!("traceEvents[{i}] missing string field {k:?}")),
        };
        let num_field = |k: &str| match field(k) {
            Some(json::Val::Num(n)) => {
                n.parse::<u64>().map_err(|_| format!("traceEvents[{i}].{k} is not a u64: {n}"))
            }
            _ => Err(format!("traceEvents[{i}] missing numeric field {k:?}")),
        };
        str_field("name")?;
        let cat = str_field("cat")?;
        let ph = str_field("ph")?;
        let ts = num_field("ts")?;
        let end = match ph.as_str() {
            "X" => {
                sum.complete += 1;
                ts + num_field("dur")?
            }
            "i" => {
                sum.instant += 1;
                ts
            }
            "B" => {
                sum.begins += 1;
                ts
            }
            "E" => {
                sum.ends += 1;
                ts
            }
            _ => {
                sum.other_ph += 1;
                ts
            }
        };
        sum.max_ts = sum.max_ts.max(end);
        sum.events += 1;
        match cats.iter_mut().find(|(c, _)| *c == cat) {
            Some((_, n)) => *n += 1,
            None => cats.push((cat, 1)),
        }
    }
    cats.sort();
    sum.by_cat = cats;
    Ok(sum)
}

/// Dependency-free minimal JSON parser — just enough to validate and
/// walk the trace files this crate writes (and reasonable foreign
/// ones). Numbers are kept as raw text: the caller decides how to
/// interpret them, and no lossy float round-trip happens here.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Val {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, as raw text.
        Num(String),
        /// A string (escapes decoded minimally).
        Str(String),
        /// An array.
        Arr(Vec<Val>),
        /// An object, fields in document order.
        Obj(Vec<(String, Val)>),
    }

    pub fn parse(text: &str) -> Result<Val, String> {
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Val, String> {
        skip_ws(b, i);
        match b.get(*i) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Val::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Val::Bool(true)),
            Some(b'f') => lit(b, i, "false", Val::Bool(false)),
            Some(b'n') => lit(b, i, "null", Val::Null),
            Some(_) => number(b, i),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Val) -> Result<Val, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {i}", i = *i))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Val, String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        let digits_from = *i;
        while *i < b.len()
            && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *i += 1;
        }
        if *i == digits_from {
            return Err(format!("invalid number at byte {start}"));
        }
        Ok(Val::Num(String::from_utf8_lossy(&b[start..*i]).into_owned()))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*i], b'"');
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*i) {
            *i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = b.get(*i) else { break };
                    *i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Val, String> {
        *i += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            skip_ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected object key at byte {i}", i = *i));
            }
            let key = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at byte {i}", i = *i));
            }
            *i += 1;
            fields.push((key, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Val, String> {
        *i += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parse_and_default() {
        let f = TraceFilter::default();
        assert!(f.allows("reloc") && f.allows("warm") && !f.allows("epoch"));
        assert!(TraceFilter::parse("all").allows("epoch"));
        let only = TraceFilter::parse("drain");
        assert!(only.allows("drain") && !only.allows("reloc"));
        assert!(TraceFilter::looks_like_filter("reloc,drain"));
        assert!(!TraceFilter::looks_like_filter("out.json"));
    }

    #[test]
    #[should_panic(expected = "unknown FIGARO_TRACE filter")]
    fn filter_typo_panics() {
        let _ = TraceFilter::parse("relocs");
    }

    #[test]
    fn controller_trace_spans_and_roundtrip() {
        let mut t = ControllerTrace::new(2, TraceFilter::default());
        t.job_start(0, 7, 100);
        t.drain_update(110, 24, 24, 8); // enter drain
        t.drain_update(120, 8, 24, 8); // exit drain
        t.note_refresh(130);
        t.job_retire(0, 150);
        t.job_start(1, 9, 160); // left open → closed by finish()
        let buf = t.finish(200);
        assert_eq!(buf.events().len(), 4);

        let src = MergeSource { tid: 1, ts_scale: 4, buf };
        let dir = std::env::temp_dir().join("figaro-telemetry-test");
        let path = dir.join("t1.json");
        write_chrome_trace(&path, &[src]).unwrap();
        let sum = summarize_file(&path).unwrap();
        assert_eq!(sum.events, 4);
        assert_eq!(sum.complete, 3);
        assert_eq!(sum.instant, 1);
        assert!(sum.balanced());
        assert_eq!(sum.max_ts, 200 * 4);
        assert_eq!(
            sum.by_cat,
            vec![("drain".into(), 1), ("refresh".into(), 1), ("reloc".into(), 2)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_orders_by_time_then_lane() {
        let mut a = TraceBuffer::new(TraceFilter::parse("all"));
        a.instant(Cat::Epoch, "epoch", 5, 0);
        let mut b = TraceBuffer::new(TraceFilter::parse("all"));
        b.instant(Cat::Refresh, "refresh", 3, 0);
        let dir = std::env::temp_dir().join("figaro-telemetry-test");
        let path = dir.join("t2.json");
        write_chrome_trace(
            &path,
            &[
                MergeSource { tid: 0, ts_scale: 1, buf: a },
                MergeSource { tid: 1, ts_scale: 1, buf: b },
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let refresh_at = text.find("refresh").unwrap();
        let epoch_at = text.find("epoch").unwrap();
        assert!(refresh_at < epoch_at, "earlier ts must be written first");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summarize_rejects_malformed() {
        assert!(summarize_str("{\"traceEvents\":}").is_err());
        assert!(summarize_str("[]").is_err());
        assert!(summarize_str("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
    }
}
