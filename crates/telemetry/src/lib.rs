//! # figaro-telemetry — deterministic observability primitives
//!
//! Everything the repo reports elsewhere is an end-of-run aggregate;
//! this crate adds the time-resolved layers without compromising the
//! workspace's bit-identity discipline:
//!
//! * [`series`] — interval time-series: per-channel/per-core counter
//!   deltas and occupancy gauges snapshotted every
//!   `FIGARO_STATS_INTERVAL` CPU cycles into ring-buffered columns,
//!   exported as CSV / ASCII sparklines.
//! * [`trace`] — structured event tracing: sim-time-stamped spans and
//!   instants collected into per-shard [`trace::TraceBuffer`]s and
//!   merged (in channel order, stably sorted by timestamp) into Chrome
//!   trace-event JSON loadable in Perfetto (`FIGARO_TRACE=<path>`).
//! * [`profile`] — the **one sanctioned wall-clock island** (figlint
//!   FIG001 allowlists exactly this module): kernel self-profiling of
//!   time-per-component, epochs/sec and parallel-shard imbalance.
//!   Wall-clock readings never feed back into simulation state.
//!
//! ## Contract
//!
//! Telemetry is **result-neutral by construction**: probes only *read*
//! simulator counters, and every emit site in result-affecting crates
//! sits behind the [`probe!`] guard (enforced by figlint FIG007), so
//! the disabled path does no work and allocates nothing. The
//! `telemetry` integration suite proptests `RunStats` bit-identity
//! with telemetry on vs. off across all kernels, and byte-identity of
//! traced output across kernels and worker-thread counts.
//!
//! The env knobs (`FIGARO_STATS_INTERVAL`, `FIGARO_TRACE`,
//! `FIGARO_PROFILE`) are registered as *never-affects-results* in the
//! README env tables and deliberately appear in **no** result-cache
//! key.

pub mod profile;
pub mod series;
pub mod trace;

pub use series::SeriesSet;
pub use trace::{TraceBuffer, TraceFilter};

use std::env;
use std::sync::OnceLock;

/// Runs a telemetry emit only when the optional sink is live.
///
/// The one sanctioned way to touch a telemetry sink from a
/// result-affecting crate (figlint FIG007 flags bare emit calls): the
/// disabled path is a single `Option` discriminant test — no
/// formatting, no allocation, no argument evaluation.
///
/// ```
/// let mut t: Option<u64> = None;
/// figaro_telemetry::probe!(t, s => *s += 1);
/// assert!(t.is_none());
/// ```
#[macro_export]
macro_rules! probe {
    ($opt:expr, $t:ident => $body:expr) => {
        if let Some($t) = $opt.as_mut() {
            let _ = $body;
        }
    };
}

/// Process-wide telemetry configuration, parsed once from the
/// environment (or built programmatically by tests, which must not
/// mutate process env).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample the interval time-series every this many CPU cycles
    /// (`FIGARO_STATS_INTERVAL`). `None` disables the series layer.
    pub interval: Option<u64>,
    /// Structured event-trace sink (`FIGARO_TRACE=<path>[:filter]`).
    /// `None` disables tracing.
    pub trace: Option<TraceSink>,
}

/// Where and what the event-trace layer writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSink {
    /// Output path for the Chrome trace-event JSON file.
    pub path: std::path::PathBuf,
    /// Category filter applied at emit time.
    pub filter: TraceFilter,
}

impl TelemetryConfig {
    /// Fully disabled configuration.
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether any layer is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.interval.is_some() || self.trace.is_some()
    }

    /// Parses `FIGARO_STATS_INTERVAL` / `FIGARO_TRACE` from the
    /// process environment. Malformed values abort loudly (the
    /// workspace-wide env convention: a typo must never silently run
    /// an untelemetered simulation).
    ///
    /// # Panics
    ///
    /// Panics on a non-numeric or zero interval, or an empty trace
    /// path / unknown trace filter category.
    #[must_use]
    pub fn from_env() -> Self {
        let interval = env::var("FIGARO_STATS_INTERVAL").ok().map(|v| {
            let n: u64 = v
                .parse()
                .unwrap_or_else(|_| panic!("FIGARO_STATS_INTERVAL must be a cycle count: {v:?}"));
            assert!(n > 0, "FIGARO_STATS_INTERVAL must be positive");
            n
        });
        let trace = env::var("FIGARO_TRACE").ok().map(|v| parse_trace_spec(&v));
        Self { interval, trace }
    }
}

/// Parses a `FIGARO_TRACE` value: `<path>[:filter]` where `filter` is
/// a comma-separated category list (see [`TraceFilter::parse`]). The
/// filter, if any, follows the *last* colon, so plain relative/absolute
/// paths work; a path whose final component itself contains a colon is
/// not supported.
///
/// # Panics
///
/// Panics on an empty path or an unknown filter category.
#[must_use]
pub fn parse_trace_spec(spec: &str) -> TraceSink {
    let (path, filter) = match spec.rsplit_once(':') {
        Some((p, f)) if !p.is_empty() && TraceFilter::looks_like_filter(f) => {
            (p, TraceFilter::parse(f))
        }
        _ => (spec, TraceFilter::default()),
    };
    assert!(!path.is_empty(), "FIGARO_TRACE path must not be empty");
    TraceSink { path: std::path::PathBuf::from(path), filter }
}

/// The process-wide config as seen by `System::new` (tests bypass this
/// via an explicit setter so parallel test binaries never race on
/// process env).
pub fn env_config() -> &'static TelemetryConfig {
    static CONFIG: OnceLock<TelemetryConfig> = OnceLock::new();
    CONFIG.get_or_init(TelemetryConfig::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_spec_splits_path_and_filter() {
        let s = parse_trace_spec("out/trace.json:reloc,drain");
        assert_eq!(s.path, std::path::PathBuf::from("out/trace.json"));
        assert!(s.filter.allows("reloc") && s.filter.allows("drain"));
        assert!(!s.filter.allows("refresh"));
    }

    #[test]
    fn trace_spec_without_filter_keeps_colonless_path() {
        let s = parse_trace_spec("trace.json");
        assert_eq!(s.path, std::path::PathBuf::from("trace.json"));
        assert!(s.filter.allows("reloc"));
        // The default filter mutes only the high-volume epoch stream.
        assert!(!s.filter.allows("epoch"));
    }

    #[test]
    fn probe_macro_skips_disabled_sink() {
        let mut sink: Option<u64> = None;
        probe!(sink, s => *s += 1);
        assert!(sink.is_none());
        let mut sink = Some(0u64);
        probe!(sink, s => *s += 1);
        assert_eq!(sink.unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "FIGARO_TRACE path")]
    fn empty_trace_path_panics() {
        let _ = parse_trace_spec("");
    }
}
