//! Interval time-series: ring-buffered columns of counter deltas and
//! occupancy gauges, sampled together at a fixed stride of the
//! simulated clock.
//!
//! All columns share one clock column ([`SeriesSet::cycles`]) because
//! the sampler snapshots every series in the same simulator step —
//! this keeps a sample row self-consistent and the CSV export trivial.
//! Values are exact `u64`s (never floats): the reconciliation suite
//! asserts that a delta column's [`Col::total`] equals the end-of-run
//! aggregate counter **exactly**, which lossy representations could
//! not promise.

use std::collections::VecDeque;

/// How a column's samples relate to the underlying counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// Per-interval increment of a monotonic counter; the column's
    /// running [`Col::total`] reconciles exactly with the end-of-run
    /// aggregate.
    Delta,
    /// Point-in-time occupancy (queue depth, MSHRs in flight);
    /// peak/trough are the interesting reductions.
    Gauge,
}

/// One ring-buffered series column.
#[derive(Debug, Clone)]
pub struct Col {
    /// Column name, e.g. `ch0.row_hits` or `core1.mshr`.
    pub name: String,
    /// Delta vs. gauge semantics.
    pub kind: ColKind,
    /// Retained sample values, parallel to [`SeriesSet::cycles`].
    pub vals: VecDeque<u64>,
    /// Sum of every **delta** sample ever pushed (including samples
    /// already evicted from the ring). Equals the final aggregate
    /// counter once the end-of-run flush sample lands.
    pub total: u64,
    /// Largest sample ever pushed.
    pub peak: u64,
    /// Smallest sample ever pushed (`u64::MAX` until the first push).
    pub trough: u64,
}

/// A set of series columns sampled on a common clock, ring-buffered to
/// a fixed capacity (oldest rows evicted first; [`SeriesSet::dropped`]
/// counts evictions so truncation is never silent).
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Sample cycle of each retained row.
    pub cycles: VecDeque<u64>,
    /// The columns, in registration order.
    pub cols: Vec<Col>,
    /// Maximum retained rows.
    pub cap: usize,
    /// Rows evicted from the ring so far.
    pub dropped: u64,
}

/// Default ring capacity: generous for any realistic interval choice
/// at the repo's run scales, small enough to never matter for memory.
pub const DEFAULT_CAP: usize = 1 << 16;

impl SeriesSet {
    /// An empty set retaining at most `cap` sample rows.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "series ring capacity must be positive");
        Self { cycles: VecDeque::new(), cols: Vec::new(), cap, dropped: 0 }
    }

    /// Registers a column and returns its index. All columns must be
    /// registered before the first [`SeriesSet::push_row`].
    pub fn add_col(&mut self, name: impl Into<String>, kind: ColKind) -> usize {
        assert!(self.cycles.is_empty(), "register all columns before sampling");
        self.cols.push(Col {
            name: name.into(),
            kind,
            vals: VecDeque::new(),
            total: 0,
            peak: 0,
            trough: u64::MAX,
        });
        self.cols.len() - 1
    }

    /// Appends one sample row: the cycle stamp plus one value per
    /// registered column (same order as registration). Evicts the
    /// oldest row when the ring is full.
    ///
    /// # Panics
    ///
    /// Panics if `vals` does not match the registered column count.
    pub fn push_row(&mut self, cycle: u64, vals: &[u64]) {
        assert_eq!(vals.len(), self.cols.len(), "sample row arity mismatch");
        if self.cycles.len() == self.cap {
            self.cycles.pop_front();
            for c in &mut self.cols {
                c.vals.pop_front();
            }
            self.dropped += 1;
        }
        self.cycles.push_back(cycle);
        for (c, &v) in self.cols.iter_mut().zip(vals) {
            c.vals.push_back(v);
            if c.kind == ColKind::Delta {
                c.total += v;
            }
            c.peak = c.peak.max(v);
            c.trough = c.trough.min(v);
        }
    }

    /// Retained sample rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether no row has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Index of the column named `name`, or any column whose name ends
    /// with `.{name}` (so `row_hits` finds `ch0.row_hits` when
    /// unambiguous — handy for the `diag timeline` CLI).
    #[must_use]
    pub fn col_index(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.cols.iter().position(|c| c.name == name) {
            return Some(i);
        }
        let suffix = format!(".{name}");
        let mut hits = self.cols.iter().enumerate().filter(|(_, c)| c.name.ends_with(&suffix));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Some(i),
            _ => None,
        }
    }

    /// The full table as CSV: a `cycle` column then one column per
    /// series, one row per retained sample.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle");
        for c in &self.cols {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        for (i, cy) in self.cycles.iter().enumerate() {
            out.push_str(&cy.to_string());
            for c in &self.cols {
                out.push(',');
                out.push_str(&c.vals[i].to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// Renders values as a Unicode sparkline (▁▂▃▄▅▆▇█), scaled to the
/// slice's own min..max (a flat series renders as all-▁).
#[must_use]
pub fn sparkline(vals: impl Iterator<Item = u64> + Clone) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = vals.clone().min().unwrap_or(0);
    let hi = vals.clone().max().unwrap_or(0);
    let span = (hi - lo).max(1);
    vals.map(|v| BARS[((v - lo) * 7 / span) as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_reconcile_and_ring_evicts() {
        let mut s = SeriesSet::new(4);
        let d = s.add_col("ch0.row_hits", ColKind::Delta);
        let g = s.add_col("ch0.read_q", ColKind::Gauge);
        for i in 0..10u64 {
            s.push_row(i * 100, &[i, 10 - i]);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.cols[d].total, (0..10).sum::<u64>());
        assert_eq!(s.cols[d].peak, 9);
        assert_eq!(s.cols[g].peak, 10);
        assert_eq!(s.cols[g].trough, 1);
        // Ring keeps the newest rows.
        assert_eq!(s.cycles.front(), Some(&600));
    }

    #[test]
    fn csv_and_suffix_lookup() {
        let mut s = SeriesSet::new(8);
        s.add_col("ch0.row_hits", ColKind::Delta);
        s.add_col("ch1.row_hits", ColKind::Delta);
        s.add_col("core0.mshr", ColKind::Gauge);
        s.push_row(100, &[1, 2, 3]);
        assert_eq!(s.to_csv(), "cycle,ch0.row_hits,ch1.row_hits,core0.mshr\n100,1,2,3\n");
        assert_eq!(s.col_index("core0.mshr"), Some(2));
        assert_eq!(s.col_index("mshr"), Some(2), "unambiguous suffix resolves");
        assert_eq!(s.col_index("row_hits"), None, "ambiguous suffix does not");
    }

    #[test]
    fn sparkline_spans_the_range() {
        assert_eq!(sparkline([0u64, 7].iter().copied()), "▁█");
        assert_eq!(sparkline([5u64, 5, 5].iter().copied()), "▁▁▁");
    }
}
