//! Run-level statistics and the paper's performance metrics.

use figaro_core::CacheStats;
use figaro_cpu::{CoreStats, HierarchyStats};
use figaro_dram::DramStats;
use figaro_energy::SystemEnergyBreakdown;
use figaro_memctrl::McStats;

/// Everything a finished simulation reports.
///
/// `PartialEq` compares every counter and energy figure bit-for-bit; the
/// kernel-equivalence suite relies on this to prove [`crate::Kernel::Event`]
/// and [`crate::Kernel::Reference`] runs indistinguishable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// CPU cycles the run took (until the last core finished).
    pub cpu_cycles: u64,
    /// Per-core finish cycle.
    pub finish_cycles: Vec<u64>,
    /// Per-core retired instructions.
    pub instructions: Vec<u64>,
    /// Per-core detailed counters.
    pub cores: Vec<CoreStats>,
    /// Merged request-level controller stats (all channels).
    pub mc: McStats,
    /// Merged DRAM command stats (all channels).
    pub dram: DramStats,
    /// Merged cache-engine stats (all channels).
    pub cache: CacheStats,
    /// Cache-hierarchy stats.
    pub hierarchy: HierarchyStats,
    /// System energy breakdown.
    pub energy: SystemEnergyBreakdown,
}

impl RunStats {
    /// IPC of `core` (instructions / its finish cycle).
    #[must_use]
    pub fn ipc(&self, core: usize) -> f64 {
        let cycles = self.finish_cycles[core].max(1);
        self.instructions[core] as f64 / cycles as f64
    }

    /// LLC misses per kilo-instruction of `core` (the paper's intensity
    /// classifier: MPKI > 10 → memory intensive).
    #[must_use]
    pub fn mpki(&self, core: usize) -> f64 {
        let insts = self.instructions[core].max(1);
        self.hierarchy.llc_misses_per_core[core] as f64 * 1000.0 / insts as f64
    }

    /// DRAM row-buffer hit rate (Fig. 10).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        self.mc.row_hit_rate()
    }

    /// In-DRAM cache hit rate (Fig. 9).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Weighted speedup of a multiprogrammed run:
/// `WS = Σᵢ IPCᵢ^shared / IPCᵢ^alone` (paper Section 7, citing
/// Snavely & Tullsen). Figures normalize `WS(config) / WS(Base)`.
///
/// # Panics
///
/// Panics if the slices differ in length or an alone-IPC is zero.
#[must_use]
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> f64 {
    assert_eq!(shared_ipc.len(), alone_ipc.len(), "per-core IPC slices must match");
    shared_ipc
        .iter()
        .zip(alone_ipc)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            s / a
        })
        .sum()
}

/// Geometric mean (used for figure-level averages of speedups).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_of_equal_runs_is_core_count() {
        let ipc = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipc, &ipc) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_reflects_slowdown() {
        let shared = [0.5, 0.5];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0]);
    }
}
