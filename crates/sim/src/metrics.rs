//! Run-level statistics and the paper's performance metrics.

use figaro_core::CacheStats;
use figaro_cpu::{CoreStats, HierarchyStats};
use figaro_dram::DramStats;
use figaro_energy::SystemEnergyBreakdown;
use figaro_memctrl::McStats;

/// Everything a finished simulation reports.
///
/// `PartialEq` compares every counter and energy figure bit-for-bit; the
/// kernel-equivalence suite relies on this to prove [`crate::Kernel::Event`]
/// and [`crate::Kernel::Reference`] runs indistinguishable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// CPU cycles the run took (until the last core finished).
    pub cpu_cycles: u64,
    /// Per-core finish cycle.
    pub finish_cycles: Vec<u64>,
    /// Per-core retired instructions.
    pub instructions: Vec<u64>,
    /// Per-core detailed counters.
    pub cores: Vec<CoreStats>,
    /// Merged request-level controller stats (all channels).
    pub mc: McStats,
    /// Merged DRAM command stats (all channels).
    pub dram: DramStats,
    /// Merged cache-engine stats (all channels).
    pub cache: CacheStats,
    /// Per-channel controller breakdown, in channel order — the merged
    /// `mc` view hides cross-channel imbalance (a hot channel's
    /// conflicts average away), so summaries surface these gauges too.
    pub per_channel: Vec<ChannelStats>,
    /// Cache-hierarchy stats.
    pub hierarchy: HierarchyStats,
    /// System energy breakdown.
    pub energy: SystemEnergyBreakdown,
    /// Sampling bookkeeping — `Some` only for [`crate::Kernel::Sampled`]
    /// runs, whose results are approximate by construction. `None` for
    /// the three exact kernels, so their bit-identity comparisons are
    /// unaffected.
    pub sampled: Option<SampledStats>,
}

/// Per-channel slice of the controller statistics — what the merged
/// [`RunStats::mc`] view cannot show: which channel ran hot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Row-buffer hits on this channel.
    pub row_hits: u64,
    /// Row-buffer misses (closed row) on this channel.
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open) on this channel.
    pub row_conflicts: u64,
    /// Reads served by this channel.
    pub reads_served: u64,
    /// Writes served by this channel.
    pub writes_served: u64,
    /// Peak read-queue occupancy (sampled after each enqueue).
    pub read_q_peak: u64,
    /// Peak write-queue occupancy (sampled after each enqueue).
    pub write_q_peak: u64,
}

impl ChannelStats {
    /// Row-buffer hit rate of this channel alone.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        safe_ratio(self.row_hits as f64, total as f64)
    }
}

/// Bookkeeping of a [`crate::Kernel::Sampled`] run: how much of the clock
/// was simulated in detail versus functionally fast-forwarded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampledStats {
    /// Detailed windows executed.
    pub windows: u64,
    /// CPU cycles simulated in detail (the measured region).
    pub detailed_cycles: u64,
    /// CPU cycles fast-forwarded.
    pub skipped_cycles: u64,
    /// Per-core instructions retired inside detailed windows.
    pub detailed_insts: Vec<u64>,
}

impl SampledStats {
    /// IPC of `core` measured over the detailed windows only — the
    /// sampled estimator compared against full-run IPC in
    /// `BENCH_checkpoint.json`'s error bars.
    #[must_use]
    pub fn sampled_ipc(&self, core: usize) -> f64 {
        safe_ratio(self.detailed_insts[core] as f64, self.detailed_cycles as f64)
    }

    /// Fraction of the simulated clock that ran in detail.
    #[must_use]
    pub fn detail_fraction(&self) -> f64 {
        safe_ratio(self.detailed_cycles as f64, (self.detailed_cycles + self.skipped_cycles) as f64)
    }
}

impl RunStats {
    /// IPC of `core` (instructions / its finish cycle).
    #[must_use]
    pub fn ipc(&self, core: usize) -> f64 {
        let cycles = self.finish_cycles[core].max(1);
        self.instructions[core] as f64 / cycles as f64
    }

    /// LLC misses per kilo-instruction of `core` (the paper's intensity
    /// classifier: MPKI > 10 → memory intensive).
    #[must_use]
    pub fn mpki(&self, core: usize) -> f64 {
        let insts = self.instructions[core].max(1);
        self.hierarchy.llc_misses_per_core[core] as f64 * 1000.0 / insts as f64
    }

    /// Number of cores that did **not** reach their instruction target
    /// before the run hit its cycle cap. A core that never finished
    /// reports the final clock as its finish cycle (`finished_at`
    /// defaults to `cpu_cycles` in the collector), while a core that
    /// finished did so strictly before the loop's final increment — so
    /// `finish_cycles[c] == cpu_cycles` identifies truncation exactly.
    /// Reports use this to flag truncated data points instead of letting
    /// them masquerade as measurements.
    #[must_use]
    pub fn unfinished_cores(&self) -> usize {
        self.finish_cycles.iter().filter(|&&f| f == self.cpu_cycles).count()
    }

    /// DRAM row-buffer hit rate (Fig. 10).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        self.mc.row_hit_rate()
    }

    /// In-DRAM cache hit rate (Fig. 9).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Weighted speedup of a multiprogrammed run:
/// `WS = Σᵢ IPCᵢ^shared / IPCᵢ^alone` (paper Section 7, citing
/// Snavely & Tullsen). Figures normalize `WS(config) / WS(Base)`.
///
/// Degenerate cores — an alone-IPC of zero (a core that retired nothing
/// in its alone run, e.g. a truncated measurement) or a non-finite
/// entry — contribute `0` instead of poisoning the sum with `inf`/`NaN`:
/// a report cell must stay a number even when one run was degenerate
/// (see [`safe_ratio`], the single place this policy lives).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> f64 {
    assert_eq!(shared_ipc.len(), alone_ipc.len(), "per-core IPC slices must match");
    shared_ipc.iter().zip(alone_ipc).map(|(&s, &a)| safe_ratio(s, a)).sum()
}

/// `num / den` with degenerate denominators (zero, negative, non-finite
/// result) mapped to `0.0` — the workspace-wide policy keeping `NaN`/
/// `inf` out of reports when a run was degenerate (zero retired
/// instructions, truncated measurement).
#[must_use]
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    let r = num / den;
    if den > 0.0 && r.is_finite() {
        r
    } else {
        0.0
    }
}

/// Geometric mean (used for figure-level averages of speedups).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_of_equal_runs_is_core_count() {
        let ipc = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipc, &ipc) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_reflects_slowdown() {
        let shared = [0.5, 0.5];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_survives_zero_and_nonfinite_alone_ipc() {
        // Degenerate denominators must never leak NaN/inf into reports.
        let shared = [1.0, 0.5, 2.0];
        assert!((weighted_speedup(&shared, &[0.0, 1.0, 2.0]) - 1.5).abs() < 1e-12);
        assert!((weighted_speedup(&shared, &[f64::NAN, 1.0, f64::INFINITY]) - 0.5).abs() < 1e-12);
        assert_eq!(weighted_speedup(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!(weighted_speedup(&shared, &[0.0, 0.0, 0.0]).is_finite());
    }

    #[test]
    fn ipc_and_mpki_are_finite_with_zero_retired_instructions() {
        // A run truncated at cycle 0 retires nothing; every report metric
        // must still be a finite number.
        use crate::config::{ConfigKind, SystemConfig};
        use crate::system::System;
        use figaro_workloads::{generate_trace, profile_by_name};
        let p = profile_by_name("mcf").unwrap();
        let trace = generate_trace(&p, 1_000, 1);
        let mut sys = System::new(SystemConfig::paper(1, ConfigKind::Base), vec![trace], &[1_000]);
        let s = sys.run(0);
        assert_eq!(s.instructions[0], 0);
        assert!(s.ipc(0).is_finite() && s.ipc(0) == 0.0);
        assert!(s.mpki(0).is_finite() && s.mpki(0) == 0.0);
        assert!(s.row_hit_rate().is_finite());
        assert!(s.cache_hit_rate().is_finite());
        assert!(weighted_speedup(&[s.ipc(0)], &[s.ipc(0)]).is_finite());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0]);
    }
}
