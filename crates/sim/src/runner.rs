//! The experiment runner: scales, deterministic trace construction,
//! alone-IPC measurement for weighted speedup, a file-backed result cache
//! (so benches that share runs — e.g. Figs. 7/9/10/11 — do not recompute
//! them), and a parallel batch API over independent runs.
//!
//! ## Parallel batches
//!
//! Every run is a pure function of `(scale, workload, config)`, so
//! independent runs parallelize trivially. The `*_batch` / `*_matrix`
//! methods fan a job list out over rayon and return results **in input
//! order**, which makes a parallel batch bit-identical to the equivalent
//! serial loop — same `RunSummary` values, same cache keys, same on-disk
//! cache contents. The on-disk cache is safe under this concurrency: a
//! process-wide per-key mutex serializes compute-and-publish per cache
//! key (so duplicate jobs in one batch compute once), and files are
//! published with a write-temp-then-rename so concurrent *processes*
//! never observe torn files.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;

use figaro_workloads::{
    generate_trace, AppProfile, ArrivalKind, ArrivalSchedule, Mix, PageMapKind, PhasedGenerator,
    PhasedProfile, Trace, TraceGenerator, TraceOp, TraceSource,
};

use figaro_dram::MapKind;
use figaro_memctrl::SchedPolicyKind;

use crate::config::{ConfigKind, Kernel, SystemConfig};
use crate::metrics::{ChannelStats, RunStats};
use crate::system::System;

/// Simulation scale: instructions per core.
///
/// The paper runs ≥1 B instructions per core; these scales trade fidelity
/// for turnaround. Set the `FIGARO_SCALE` environment variable to
/// `tiny`/`small`/`full` (default `small`) — EXPERIMENTS.md records which
/// scale produced its numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 100 k instructions per core — CI/integration tests.
    Tiny,
    /// 400 k instructions per core — default for `cargo bench`.
    Small,
    /// 2 M instructions per core — overnight-quality numbers.
    Full,
}

impl Scale {
    /// Reads `FIGARO_SCALE` (default [`Scale::Small`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_or(Scale::Small)
    }

    /// Reads `FIGARO_SCALE`, falling back to `default` when unset or
    /// unrecognized. The integration suite's fast tier uses
    /// `from_env_or(Scale::Tiny)` so CI stays fast while a local
    /// `FIGARO_SCALE=small` run can still exercise bigger runs.
    #[must_use]
    pub fn from_env_or(default: Scale) -> Self {
        match std::env::var("FIGARO_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "full" => Scale::Full,
            _ => default,
        }
    }

    /// Retired instructions each core targets.
    #[must_use]
    pub fn target_insts(&self) -> u64 {
        match self {
            Scale::Tiny => 100_000,
            Scale::Small => 400_000,
            Scale::Full => 2_000_000,
        }
    }

    /// Safety bound on simulated CPU cycles.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        self.target_insts() * 400
    }

    /// Label for cache keys and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// The flattened per-run numbers the figures need (cacheable on disk).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Per-core IPC.
    pub ipc: Vec<f64>,
    /// Per-core MPKI.
    pub mpki: Vec<f64>,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// In-DRAM cache hit rate.
    pub cache_hit_rate: f64,
    /// Energy components `(cpu, l1l2, llc, offchip, dram)` in nJ.
    pub energy: (f64, f64, f64, f64, f64),
    /// CPU cycles of the run.
    pub cpu_cycles: u64,
    /// RELOC commands issued.
    pub relocs: u64,
    /// LISA clones issued.
    pub lisa_clones: u64,
    /// Average read latency (bus cycles).
    pub avg_read_latency: f64,
    /// Reads the memory controllers served (the numerator of achieved
    /// throughput in serving sweeps).
    pub reads_served: u64,
    /// Median read latency (bus cycles; histogram bucket floor, ≤ 12.5%
    /// quantization error — see `figaro_memctrl::LatencyHistogram`).
    pub read_lat_p50: u64,
    /// 95th-percentile read latency (bus cycles, bucket floor).
    pub read_lat_p95: u64,
    /// 99th-percentile read latency (bus cycles, bucket floor).
    pub read_lat_p99: u64,
    /// 99.9th-percentile read latency (bus cycles, bucket floor).
    pub read_lat_p999: u64,
    /// Exact maximum read latency (bus cycles).
    pub read_lat_max: u64,
    /// Segment/row insertions completed.
    pub insertions: u64,
    /// Cores that hit the cycle cap before their instruction target
    /// (see [`RunStats::unfinished_cores`]); non-zero means the summary
    /// is a truncated measurement, and report builders flag it.
    pub truncated_cores: u64,
    /// Per-channel row-buffer hit rate, in channel order — the merged
    /// `row_hit_rate` averages away a hot channel (see
    /// [`crate::metrics::ChannelStats`]). Empty in summaries restored
    /// from cache files written before the field existed.
    pub ch_row_hit_rate: Vec<f64>,
    /// Per-channel peak read-queue occupancy.
    pub ch_read_q_peak: Vec<u64>,
    /// Per-channel peak write-queue occupancy.
    pub ch_write_q_peak: Vec<u64>,
}

impl RunSummary {
    /// Builds the summary from full run statistics.
    #[must_use]
    pub fn from_stats(s: &RunStats) -> Self {
        let cores = s.instructions.len();
        Self {
            ipc: (0..cores).map(|c| s.ipc(c)).collect(),
            mpki: (0..cores).map(|c| s.mpki(c)).collect(),
            row_hit_rate: s.row_hit_rate(),
            cache_hit_rate: s.cache_hit_rate(),
            energy: (s.energy.cpu, s.energy.l1l2, s.energy.llc, s.energy.offchip, s.energy.dram),
            cpu_cycles: s.cpu_cycles,
            relocs: s.dram.relocs,
            lisa_clones: s.dram.lisa_clones,
            avg_read_latency: s.mc.avg_read_latency(),
            reads_served: s.mc.reads_served,
            read_lat_p50: s.mc.read_latency_hist.percentile(0.50),
            read_lat_p95: s.mc.read_latency_hist.percentile(0.95),
            read_lat_p99: s.mc.read_latency_hist.percentile(0.99),
            read_lat_p999: s.mc.read_latency_hist.percentile(0.999),
            read_lat_max: s.mc.read_latency_hist.max(),
            insertions: s.cache.insertions,
            truncated_cores: s.unfinished_cores() as u64,
            ch_row_hit_rate: s.per_channel.iter().map(ChannelStats::row_hit_rate).collect(),
            ch_read_q_peak: s.per_channel.iter().map(|c| c.read_q_peak).collect(),
            ch_write_q_peak: s.per_channel.iter().map(|c| c.write_q_peak).collect(),
        }
    }

    /// Total energy (nJ).
    #[must_use]
    pub fn energy_total(&self) -> f64 {
        let (a, b, c, d, e) = self.energy;
        a + b + c + d + e
    }

    /// Exact text encoding of an `f64`: the bit pattern in hex. A `{}`
    /// float round trip can differ in the last ulp, so a cached result
    /// would not equal a fresh run bit for bit; the bit pattern is
    /// lossless by construction (and NaN-safe).
    fn f64_text(x: f64) -> String {
        format!("b{:016x}", x.to_bits())
    }

    /// Parses [`RunSummary::f64_text`], plus the decimal form older cache
    /// files used.
    fn f64_parse(s: &str) -> Option<f64> {
        match s.strip_prefix('b') {
            Some(hex) => u64::from_str_radix(hex, 16).ok().map(f64::from_bits),
            None => s.parse().ok(),
        }
    }

    fn to_text(&self) -> String {
        let vec_join =
            |v: &[f64]| v.iter().map(|x| Self::f64_text(*x)).collect::<Vec<_>>().join(",");
        let u64_join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!(
            "ipc {}\nmpki {}\nrow_hit_rate {}\ncache_hit_rate {}\nenergy {},{},{},{},{}\ncpu_cycles {}\nrelocs {}\nlisa_clones {}\navg_read_latency {}\nreads_served {}\nread_lat_p50 {}\nread_lat_p95 {}\nread_lat_p99 {}\nread_lat_p999 {}\nread_lat_max {}\ninsertions {}\ntruncated_cores {}\nch_row_hit_rate {}\nch_read_q_peak {}\nch_write_q_peak {}\n",
            vec_join(&self.ipc),
            vec_join(&self.mpki),
            Self::f64_text(self.row_hit_rate),
            Self::f64_text(self.cache_hit_rate),
            Self::f64_text(self.energy.0),
            Self::f64_text(self.energy.1),
            Self::f64_text(self.energy.2),
            Self::f64_text(self.energy.3),
            Self::f64_text(self.energy.4),
            self.cpu_cycles,
            self.relocs,
            self.lisa_clones,
            Self::f64_text(self.avg_read_latency),
            self.reads_served,
            self.read_lat_p50,
            self.read_lat_p95,
            self.read_lat_p99,
            self.read_lat_p999,
            self.read_lat_max,
            self.insertions,
            self.truncated_cores,
            vec_join(&self.ch_row_hit_rate),
            u64_join(&self.ch_read_q_peak),
            u64_join(&self.ch_write_q_peak),
        )
    }

    fn from_text(text: &str) -> Option<Self> {
        let mut map = HashMap::new();
        for line in text.lines() {
            let (k, v) = line.split_once(' ')?;
            map.insert(k.to_string(), v.to_string());
        }
        let parse_vec =
            |s: &str| -> Option<Vec<f64>> { s.split(',').map(Self::f64_parse).collect() };
        let e = parse_vec(map.get("energy")?)?;
        if e.len() != 5 {
            return None;
        }
        // Fields absent in cache files written before they existed
        // default to 0 / empty (matching what those runs would have
        // reported).
        let legacy_u64 = |k: &str| map.get(k).map_or(Some(0), |v| v.parse().ok());
        let legacy_f64_vec = |k: &str| -> Option<Vec<f64>> {
            match map.get(k) {
                None => Some(Vec::new()),
                Some(v) if v.is_empty() => Some(Vec::new()),
                Some(v) => parse_vec(v),
            }
        };
        let legacy_u64_vec = |k: &str| -> Option<Vec<u64>> {
            match map.get(k) {
                None => Some(Vec::new()),
                Some(v) if v.is_empty() => Some(Vec::new()),
                Some(v) => v.split(',').map(|x| x.parse().ok()).collect(),
            }
        };
        Some(Self {
            ipc: parse_vec(map.get("ipc")?)?,
            mpki: parse_vec(map.get("mpki")?)?,
            row_hit_rate: Self::f64_parse(map.get("row_hit_rate")?)?,
            cache_hit_rate: Self::f64_parse(map.get("cache_hit_rate")?)?,
            energy: (e[0], e[1], e[2], e[3], e[4]),
            cpu_cycles: map.get("cpu_cycles")?.parse().ok()?,
            relocs: map.get("relocs")?.parse().ok()?,
            lisa_clones: map.get("lisa_clones")?.parse().ok()?,
            avg_read_latency: Self::f64_parse(map.get("avg_read_latency")?)?,
            reads_served: legacy_u64("reads_served")?,
            read_lat_p50: legacy_u64("read_lat_p50")?,
            read_lat_p95: legacy_u64("read_lat_p95")?,
            read_lat_p99: legacy_u64("read_lat_p99")?,
            read_lat_p999: legacy_u64("read_lat_p999")?,
            read_lat_max: legacy_u64("read_lat_max")?,
            insertions: map.get("insertions")?.parse().ok()?,
            truncated_cores: legacy_u64("truncated_cores")?,
            ch_row_hit_rate: legacy_f64_vec("ch_row_hit_rate")?,
            ch_read_q_peak: legacy_u64_vec("ch_read_q_peak")?,
            ch_write_q_peak: legacy_u64_vec("ch_write_q_peak")?,
        })
    }
}

/// Instruction target for the idle companion cores of an alone-IPC run.
pub const IDLE_COMPANION_TARGET: u64 = 1_000;

/// The idle-companion trace used by alone-IPC measurements (the
/// weighted-speedup denominators; see [`Runner::alone_ipc`] and the
/// `sim_kernel` bench): a pure non-memory loop whose tiny instruction
/// target retires immediately and never touches memory.
#[must_use]
pub fn idle_companion_trace() -> Trace {
    Trace {
        name: "idle".into(),
        ops: vec![TraceOp { nonmem: 1_000_000, addr: 0, is_write: false }],
    }
}

/// Reads `FIGARO_WARMUP` (warm-start CPU cycles; unset, empty or `0`
/// disables warm-start). Malformed values abort loudly — a typo that
/// silently ran cold would skew every number in a warm sweep.
fn warmup_from_env() -> Option<u64> {
    match std::env::var("FIGARO_WARMUP") {
        Ok(raw) if !raw.is_empty() => {
            let parsed = raw.parse::<u64>();
            assert!(parsed.is_ok(), "FIGARO_WARMUP must be a CPU-cycle count, got `{raw}`");
            parsed.ok().filter(|&w| w > 0)
        }
        _ => None,
    }
}

/// Deterministic per-run trace seed.
fn seed_for(app: &str, core: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app.bytes().chain([core as u8]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// How many trace ops cover `insts` instructions for `profile`.
fn ops_for(profile: &AppProfile, insts: u64) -> usize {
    let per_op = profile.nonmem_per_mem + 1.0;
    ((insts as f64 / per_op) * 1.2) as usize + 4096
}

/// Effective instruction target for a profile: scaled so every
/// application performs a comparable number of *memory operations*
/// (sparse-access applications get proportionally more instructions;
/// they are cheap to simulate because their IPC is high).
fn insts_for(profile: &AppProfile, scale: Scale) -> u64 {
    let base = scale.target_insts();
    let scaled = (base as f64 * (profile.nonmem_per_mem + 1.0) / 3.0) as u64;
    scaled.clamp(base, base * 12)
}

/// The workload of a [`Scenario`] — always **streamed** (cores pull from
/// generators on demand; nothing materializes a full trace in memory, so
/// scenario length is bounded by simulation time, not RAM).
#[derive(Debug, Clone)]
pub enum ScenarioWorkload {
    /// One application per core (defines the core count).
    Apps(Vec<AppProfile>),
    /// An eight-application multiprogrammed mix.
    Mix(Mix),
    /// One phase-switching workload per core.
    Phased(Vec<PhasedProfile>),
}

impl ScenarioWorkload {
    /// Number of cores the workload occupies.
    #[must_use]
    pub fn cores(&self) -> usize {
        match self {
            ScenarioWorkload::Apps(apps) => apps.len(),
            ScenarioWorkload::Mix(m) => m.apps.len(),
            ScenarioWorkload::Phased(ps) => ps.len(),
        }
    }

    /// Mean non-memory instructions per memory op of core `i` (used to
    /// convert op targets to instruction targets).
    fn nonmem_per_mem(&self, core: usize) -> f64 {
        match self {
            ScenarioWorkload::Apps(apps) => apps[core].nonmem_per_mem,
            ScenarioWorkload::Mix(m) => m.apps[core].nonmem_per_mem,
            ScenarioWorkload::Phased(ps) => ps[core].base.nonmem_per_mem,
        }
    }

    fn profile_for_insts(&self, core: usize) -> AppProfile {
        match self {
            ScenarioWorkload::Apps(apps) => apps[core],
            ScenarioWorkload::Mix(m) => m.apps[core],
            ScenarioWorkload::Phased(ps) => ps[core].base,
        }
    }

    /// Cache-key fragment identifying the workload (so two scenarios that
    /// reuse a name with different workloads never share a cached
    /// result). Phased workloads include the schedule in the signature:
    /// a reconfigured schedule is a different workload.
    fn cache_signature(&self) -> String {
        match self {
            ScenarioWorkload::Apps(apps) => {
                format!("apps.{}", apps.iter().map(|p| p.name).collect::<Vec<_>>().join("."))
            }
            ScenarioWorkload::Mix(m) => format!("mix.{}", m.name),
            ScenarioWorkload::Phased(ps) => {
                let parts: Vec<String> = ps
                    .iter()
                    .map(|p| {
                        let sched: Vec<String> = p
                            .phases
                            .iter()
                            .map(|ph| format!("{}{}", ph.kind.label(), ph.ops))
                            .collect();
                        format!("{}.{}", p.name, sched.join("-"))
                    })
                    .collect();
                format!("phased.{}", parts.join("."))
            }
        }
    }

    /// Streaming source for core `core` (deterministic per scenario).
    fn source_for(&self, core: usize) -> Box<dyn TraceSource> {
        match self {
            ScenarioWorkload::Apps(apps) => {
                let p = &apps[core];
                Box::new(TraceGenerator::new(p, seed_for(p.name, core)))
            }
            ScenarioWorkload::Mix(m) => {
                let p = &m.apps[core];
                Box::new(TraceGenerator::new(p, seed_for(p.name, core)))
            }
            ScenarioWorkload::Phased(ps) => {
                let p = &ps[core];
                Box::new(PhasedGenerator::new(p, seed_for(&p.name, core)))
            }
        }
    }
}

/// One named simulation scenario: a streamed workload, a mechanism, and
/// optional system-shape overrides (the sensitivity-sweep axes). Runs
/// through [`Runner::run_scenario`] / [`Runner::run_scenario_batch`] and
/// shares the runner's result cache.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (reports; part of the cache key together with the
    /// workload signature and every override, so reused names with
    /// different shapes or workloads never collide).
    pub name: String,
    /// Mechanism under evaluation.
    pub kind: ConfigKind,
    /// The streamed workload.
    pub workload: ScenarioWorkload,
    /// Memory-channel override (power of two; default: paper rule).
    pub channels: Option<u32>,
    /// Per-core MSHR override (default: paper's 8).
    pub mshrs_per_core: Option<usize>,
    /// Per-core instruction-target override (default: the runner scale's
    /// per-profile target). This is what long-run scenarios set.
    pub target_insts: Option<u64>,
    /// Memory-controller scheduling-policy override (default: the
    /// runner's policy, itself FR-FCFS unless `FIGARO_SCHED` says
    /// otherwise).
    pub sched: Option<SchedPolicyKind>,
    /// Address-mapping override (default: the runner's mapping, itself
    /// the paper slice unless `FIGARO_MAP` says otherwise).
    pub map: Option<MapKind>,
    /// Page-placement override (default: the runner's policy, itself
    /// identity unless `FIGARO_PAGEMAP` says otherwise).
    pub page_map: Option<PageMapKind>,
    /// Open-loop arrival-pacing override (default: the runner's pacing,
    /// itself closed-loop unless `FIGARO_LOAD` says otherwise). When
    /// set, every core's source is wrapped in an
    /// [`figaro_workloads::ArrivalSchedule`], making offered load the
    /// swept axis instead of the workload's own issue rate.
    pub arrival: Option<ArrivalKind>,
    /// Warm-start override (default: the runner's warmup, itself off
    /// unless `FIGARO_WARMUP` says otherwise): run the first N CPU
    /// cycles once, snapshot the warmed state (FGSN, see
    /// [`crate::snapshot`]), and let every later run of the same warm
    /// prefix resume from the snapshot instead of re-simulating it.
    /// Resumed runs are bit-identical to uninterrupted ones, but warmed
    /// results still get their own `-warm-<N>` cache keys.
    pub warmup_cycles: Option<u64>,
}

impl Scenario {
    /// A scenario with no overrides.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: ConfigKind, workload: ScenarioWorkload) -> Self {
        Self {
            name: name.into(),
            kind,
            workload,
            channels: None,
            mshrs_per_core: None,
            target_insts: None,
            sched: None,
            map: None,
            page_map: None,
            arrival: None,
            warmup_cycles: None,
        }
    }

    /// Overrides the channel count.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = Some(channels);
        self
    }

    /// Overrides the per-core MSHR count.
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: usize) -> Self {
        self.mshrs_per_core = Some(mshrs);
        self
    }

    /// Overrides the per-core instruction target.
    #[must_use]
    pub fn with_target_insts(mut self, insts: u64) -> Self {
        self.target_insts = Some(insts);
        self
    }

    /// Overrides the memory-controller scheduling policy.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicyKind) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Overrides the physical→DRAM address mapping.
    #[must_use]
    pub fn with_mapping(mut self, map: MapKind) -> Self {
        self.map = Some(map);
        self
    }

    /// Overrides the OS page-frame placement policy.
    #[must_use]
    pub fn with_page_map(mut self, page_map: PageMapKind) -> Self {
        self.page_map = Some(page_map);
        self
    }

    /// Paces every core's source with an open-loop arrival process (the
    /// serving-sweep axis).
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalKind) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// Warm-starts this scenario: the first `cycles` CPU cycles are
    /// simulated once and snapshotted; later runs sharing the warm
    /// prefix resume from the snapshot.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup_cycles = Some(cycles);
        self
    }

    /// A long-run streaming scenario: `ops_per_core` memory operations
    /// per core, converted to an instruction target via each core's mean
    /// non-memory-per-memory ratio. The **maximum** across cores is used
    /// so even the sparsest core retires enough instructions to reach its
    /// op count. With streamed sources the memory footprint is
    /// independent of `ops_per_core`.
    #[must_use]
    pub fn long_run(
        name: impl Into<String>,
        kind: ConfigKind,
        workload: ScenarioWorkload,
        ops_per_core: u64,
    ) -> Self {
        let insts = (0..workload.cores())
            .map(|c| (ops_per_core as f64 * (workload.nonmem_per_mem(c) + 1.0)) as u64)
            .max()
            .unwrap_or(ops_per_core);
        Self::new(name, kind, workload).with_target_insts(insts)
    }
}

/// The experiment runner.
#[derive(Debug)]
pub struct Runner {
    scale: Scale,
    kernel: Kernel,
    sched: SchedPolicyKind,
    map: MapKind,
    page_map: PageMapKind,
    /// Open-loop arrival pacing applied to **scenario** runs (the
    /// serving paths); `None` leaves sources closed-loop. The figure
    /// paths (`run_single`/`run_mix`/...) never pace — their results
    /// model the applications' own issue rates.
    arrival: Option<ArrivalKind>,
    /// Warm-start applied to **scenario** runs (see
    /// [`Scenario::warmup_cycles`]); `None` runs everything cold.
    warmup: Option<u64>,
    cache_dir: Option<PathBuf>,
    /// Where FGSN warm-state snapshots live (`FIGARO_SNAPSHOT_DIR`,
    /// default `<cache_dir>/snapshots`); `None` disables snapshot
    /// persistence (warmup still runs, once per process call).
    snapshot_dir: Option<PathBuf>,
}

impl Runner {
    /// A runner at `scale` with the on-disk result cache enabled, the
    /// kernel selected by `FIGARO_KERNEL` (default: event-driven), the
    /// scheduling policy selected by `FIGARO_SCHED` (default: FR-FCFS),
    /// the address mapping selected by `FIGARO_MAP` (default: the
    /// paper's slice), the page placement selected by
    /// `FIGARO_PAGEMAP` (default: identity) and, for scenario runs, the
    /// open-loop arrival pacing selected by `FIGARO_LOAD` (default:
    /// closed-loop).
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(|ws| ws.join("target").join("figaro-cache"));
        Self::build(scale, dir)
    }

    /// A runner without the on-disk cache (tests).
    #[must_use]
    pub fn uncached(scale: Scale) -> Self {
        Self::build(scale, None)
    }

    /// A runner with the result cache at an explicit directory (tests,
    /// tooling that wants an isolated cache).
    #[must_use]
    pub fn with_cache_dir(scale: Scale, dir: PathBuf) -> Self {
        Self::build(scale, Some(dir))
    }

    fn build(scale: Scale, cache_dir: Option<PathBuf>) -> Self {
        let snapshot_dir = match std::env::var("FIGARO_SNAPSHOT_DIR") {
            Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
            _ => cache_dir.as_ref().map(|d| d.join("snapshots")),
        };
        Self {
            scale,
            kernel: Kernel::from_env(),
            sched: SchedPolicyKind::from_env(),
            map: MapKind::from_env(),
            page_map: PageMapKind::from_env(),
            arrival: ArrivalKind::from_env(),
            warmup: warmup_from_env(),
            cache_dir,
            snapshot_dir,
        }
    }

    /// Pins the simulation kernel for every run this runner launches
    /// (serial and batch alike). Event-kernel results are bit-identical
    /// to the reference, so they share the canonical cache keys;
    /// reference runs get their own keys (see [`Runner::kernel_suffix`])
    /// so the oracle really executes when asked for.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Pins the memory-controller scheduling policy for every run this
    /// runner launches. Non-default policies change results, so they get
    /// their own cache keys (see [`Runner::sched_suffix`]); the FR-FCFS
    /// default keeps the canonical keys.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicyKind) -> Self {
        self.sched = sched;
        self
    }

    /// Pins the physical→DRAM address mapping for every run this runner
    /// launches. Non-default mappings change results, so they get their
    /// own cache keys (see [`Runner::map_suffix`]).
    #[must_use]
    pub fn with_mapping(mut self, map: MapKind) -> Self {
        self.map = map;
        self
    }

    /// Pins the OS page-frame placement policy for every run this
    /// runner launches. Non-identity placements change results, so they
    /// get their own cache keys (see [`Runner::pagemap_suffix`]).
    #[must_use]
    pub fn with_page_map(mut self, page_map: PageMapKind) -> Self {
        self.page_map = page_map;
        self
    }

    /// Pins open-loop arrival pacing for every **scenario** run this
    /// runner launches (defaults to the `FIGARO_LOAD` override, or
    /// closed-loop when unset). Pacing changes results, so it gets its
    /// own cache keys (see [`Runner::arrival_suffix`]).
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalKind) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// Warm-starts every **scenario** run this runner launches
    /// (defaults to the `FIGARO_WARMUP` override, or cold when unset).
    /// Warmed runs get their own `-warm-<N>` cache keys (see
    /// [`Runner::warm_suffix`]) even though resumption is bit-identical,
    /// so a canonical entry is always a cold, uninterrupted run.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup = Some(cycles);
        self
    }

    /// Pins the FGSN snapshot directory (default: `FIGARO_SNAPSHOT_DIR`,
    /// falling back to `<cache_dir>/snapshots`).
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: PathBuf) -> Self {
        self.snapshot_dir = Some(dir);
        self
    }

    /// Cache-key suffix for the non-default kernel. Without it, a
    /// cross-check run under `FIGARO_KERNEL=reference` could silently
    /// return a cached event-kernel result instead of exercising the
    /// per-cycle oracle — and a `FIGARO_KERNEL=sampled` run, which is
    /// approximate by construction, would poison the canonical entries
    /// outright.
    fn kernel_suffix(&self) -> String {
        match self.kernel {
            // The parallel kernel is bit-identical to the event kernel,
            // so the two share the canonical cache keys — a result
            // computed by either is valid for both.
            Kernel::Event | Kernel::Parallel => String::new(),
            Kernel::Reference => "-refkernel".to_string(),
            // Sampled results depend on the window/skip geometry, so
            // each geometry keys separately.
            Kernel::Sampled { window, skip } => format!("-sampled-{window},{skip}"),
        }
    }

    /// Cache-key fragment for warm-started runs: empty for cold runs, a
    /// `-warm-<N>` suffix otherwise. Resuming from a warm snapshot is
    /// bit-identical to an uninterrupted run, but the suffix keeps the
    /// invariant that a canonical cache entry never depended on a
    /// snapshot file — a bad snapshot can at worst taint `-warm-`
    /// entries, never the cold baselines figures are built from.
    fn warm_suffix(warmup: Option<u64>) -> String {
        warmup.map_or_else(String::new, |w| format!("-warm-{w}"))
    }

    /// Cache-key fragment for a scheduling policy: empty for the
    /// FR-FCFS default (canonical keys stay stable), a labeled suffix
    /// otherwise — a policy change alters results, so it must never
    /// share a cached summary with the default ladder.
    fn sched_suffix(sched: SchedPolicyKind) -> String {
        match sched {
            SchedPolicyKind::FrFcfs => String::new(),
            other => format!("-sched-{}", other.label()),
        }
    }

    /// Cache-key fragment for an address mapping: empty for the paper
    /// default (canonical keys stay stable), a labeled suffix otherwise.
    fn map_suffix(map: MapKind) -> String {
        if map == MapKind::default() {
            String::new()
        } else {
            format!("-map-{}", map.label())
        }
    }

    /// Cache-key fragment for a page-placement policy: empty for the
    /// identity default, a labeled suffix otherwise.
    fn pagemap_suffix(page_map: PageMapKind) -> String {
        if page_map == PageMapKind::Identity {
            String::new()
        } else {
            format!("-pg-{}", page_map.label())
        }
    }

    /// Cache-key fragment for arrival pacing: empty for the closed-loop
    /// default (canonical scenario keys stay stable), a labeled suffix
    /// otherwise — a paced run must never share a cached summary with
    /// the closed-loop run of the same scenario.
    fn arrival_suffix(arrival: Option<ArrivalKind>) -> String {
        arrival.map_or_else(String::new, |a| format!("-arr-{}", a.label()))
    }

    /// Cache-key fragment for the `FIGARO_FREE_RELOC` debug ablation:
    /// empty normally, `-freereloc` when the ablation is active. The
    /// toggle changes relocation accounting (and therefore results), so
    /// without this suffix an ablated run would poison — or be poisoned
    /// by — the canonical cache entries.
    fn freereloc_suffix() -> &'static str {
        Self::ablation_suffix_for(figaro_memctrl::free_reloc_active())
    }

    /// Pure mapping behind [`Self::freereloc_suffix`], split out so tests
    /// can cover both arms without mutating process environment.
    fn ablation_suffix_for(active: bool) -> &'static str {
        if active {
            "-freereloc"
        } else {
            ""
        }
    }

    /// All non-canonical cache-key suffixes of this runner's fixed
    /// configuration (kernel, scheduler, mapping, page placement,
    /// debug ablations).
    fn config_suffixes(&self) -> String {
        format!(
            "{}{}{}{}{}",
            self.kernel_suffix(),
            Self::sched_suffix(self.sched),
            Self::map_suffix(self.map),
            Self::pagemap_suffix(self.page_map),
            Self::freereloc_suffix()
        )
    }

    /// The runner's scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The simulation kernel this runner uses.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The memory-controller scheduling policy this runner uses.
    #[must_use]
    pub fn sched(&self) -> SchedPolicyKind {
        self.sched
    }

    /// The physical→DRAM address mapping this runner uses.
    #[must_use]
    pub fn mapping(&self) -> MapKind {
        self.map
    }

    /// The OS page-frame placement policy this runner uses.
    #[must_use]
    pub fn page_map(&self) -> PageMapKind {
        self.page_map
    }

    /// A [`SystemConfig::paper`] system with this runner's kernel,
    /// scheduling policy, address mapping and page placement.
    ///
    /// While a batch/matrix fan-out is in flight, the parallel kernel's
    /// intra-run worker threads are capped at 1: the batch already
    /// saturates the machine with independent runs, and `runs × shards`
    /// threads would only oversubscribe it. Thread count never affects
    /// simulated results, so the cap is invisible in every `RunSummary`.
    fn system_config(&self, cores: usize, kind: ConfigKind) -> SystemConfig {
        let cfg = SystemConfig { kernel: self.kernel, ..SystemConfig::paper(cores, kind) }
            .with_sched(self.sched)
            .with_mapping(self.map)
            .with_page_map(self.page_map);
        if BATCH_ACTIVE.load(Ordering::Relaxed) > 0 {
            cfg.with_threads(1)
        } else {
            cfg
        }
    }

    /// The process-wide per-cache-file lock: concurrent batch workers
    /// that land on the same `(cache_dir, key)` serialize here, so the
    /// first computes and publishes while the rest read the published
    /// file. Entries are never evicted — the registry is bounded by the
    /// number of distinct run keys in a process (a few hundred for the
    /// full sweep set, each a few dozen bytes).
    fn key_lock(path: &std::path::Path) -> Arc<Mutex<()>> {
        static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
        LOCKS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("lock registry never poisoned")
            .entry(path.to_path_buf())
            .or_default()
            .clone()
    }

    fn cached<F: FnOnce() -> RunSummary>(&self, key: &str, run: F) -> RunSummary {
        let Some(dir) = &self.cache_dir else { return run() };
        let safe: String = key
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        let path = dir.join(format!("{safe}.txt"));
        let lock = Self::key_lock(&path);
        let _guard = lock.lock().expect("cache key lock never poisoned");
        if let Ok(text) = fs::read_to_string(&path) {
            if let Some(s) = RunSummary::from_text(&text) {
                return s;
            }
        }
        let s = run();
        let _ = fs::create_dir_all(dir);
        // Publish atomically (temp + rename) so a concurrent reader in
        // another process never sees a torn file.
        let tmp = dir.join(format!("{safe}.{}.tmp", std::process::id()));
        if fs::write(&tmp, s.to_text()).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
        s
    }

    /// Trace for `profile` on logical core `core`.
    #[must_use]
    pub fn trace_for(&self, profile: &AppProfile, core: usize) -> Trace {
        generate_trace(
            profile,
            ops_for(profile, insts_for(profile, self.scale)),
            seed_for(profile.name, core),
        )
    }

    /// Runs one application on the single-core system under `kind`.
    pub fn run_single(&self, profile: &AppProfile, kind: ConfigKind) -> RunSummary {
        let key = format!(
            "{}-1core-{}-{}{}",
            self.scale.label(),
            profile.name,
            config_key(&kind),
            self.config_suffixes()
        );
        let insts = insts_for(profile, self.scale);
        let trace = self.trace_for(profile, 0);
        let cfg = self.system_config(1, kind);
        self.cached(&key, move || {
            let mut sys = System::new(cfg, vec![trace], &[insts]);
            RunSummary::from_stats(&sys.run(insts * 400))
        })
    }

    /// Runs an eight-application mix under `kind`.
    pub fn run_mix(&self, mix: &Mix, kind: ConfigKind) -> RunSummary {
        let key = format!(
            "{}-8core-{}-{}{}",
            self.scale.label(),
            mix.name,
            config_key(&kind),
            self.config_suffixes()
        );
        let targets: Vec<u64> = mix.apps.iter().map(|p| insts_for(p, self.scale)).collect();
        let max_cycles = targets.iter().max().copied().unwrap_or(1) * 400;
        let traces: Vec<Trace> =
            mix.apps.iter().enumerate().map(|(i, p)| self.trace_for(p, i)).collect();
        let cfg = self.system_config(8, kind);
        self.cached(&key, move || {
            let mut sys = System::new(cfg, traces, &targets);
            RunSummary::from_stats(&sys.run(max_cycles))
        })
    }

    /// Runs a multithreaded workload: eight threads of one program sharing
    /// a footprint (different seeds ⇒ different interleavings of the same
    /// address space).
    pub fn run_multithreaded(&self, profile: &AppProfile, kind: ConfigKind) -> RunSummary {
        let key = format!(
            "{}-8mt-{}-{}{}",
            self.scale.label(),
            profile.name,
            config_key(&kind),
            self.config_suffixes()
        );
        let insts = insts_for(profile, self.scale);
        let traces: Vec<Trace> = (0..8).map(|i| self.trace_for(profile, i)).collect();
        let cfg = self.system_config(8, kind);
        self.cached(&key, move || {
            let mut sys = System::new(cfg, traces, &[insts; 8]);
            RunSummary::from_stats(&sys.run(insts * 400))
        })
    }

    /// IPC of `profile` running **alone** on the eight-core Base system
    /// (the denominator of weighted speedup).
    pub fn alone_ipc(&self, profile: &AppProfile) -> f64 {
        let key =
            format!("{}-alone-{}{}", self.scale.label(), profile.name, self.config_suffixes());
        let insts = insts_for(profile, self.scale);
        let trace = self.trace_for(profile, 0);
        let cfg = self.system_config(8, ConfigKind::Base);
        let summary = self.cached(&key, move || {
            let mut traces = vec![trace];
            // Seven idle companion cores.
            for _ in 1..8 {
                traces.push(idle_companion_trace());
            }
            let mut targets = vec![insts];
            targets.extend([IDLE_COMPANION_TARGET; 7]);
            let mut sys = System::new(cfg, traces, &targets);
            RunSummary::from_stats(&sys.run(insts * 400))
        });
        summary.ipc[0]
    }

    /// Runs one [`Scenario`]: builds the system shape (paper defaults plus
    /// the scenario's overrides) and drives it from **streaming** sources,
    /// so even 100M-op-per-core runs hold no materialized traces.
    pub fn run_scenario(&self, sc: &Scenario) -> RunSummary {
        let cores = sc.workload.cores();
        assert!(cores > 0, "scenario needs at least one core");
        let sched = sc.sched.unwrap_or(self.sched);
        let map = sc.map.unwrap_or(self.map);
        let page_map = sc.page_map.unwrap_or(self.page_map);
        let arrival = sc.arrival.or(self.arrival);
        let warmup = sc.warmup_cycles.or(self.warmup).filter(|&w| w > 0);
        // Everything that determines the simulated state, *except* the
        // kernel and warm-start: the exact kernels are bit-identical and
        // warmup always runs exactly, so every kernel (and every sampled
        // geometry) branches from one snapshot of this warm prefix.
        let base = format!(
            "{}-scn-{}-{}-{}-ch{}-m{}-t{}{}{}{}{}{}",
            self.scale.label(),
            sc.name,
            sc.workload.cache_signature(),
            config_key(&sc.kind),
            sc.channels.map_or_else(|| "def".into(), |c| c.to_string()),
            sc.mshrs_per_core.map_or_else(|| "def".into(), |m| m.to_string()),
            sc.target_insts.map_or_else(|| "def".into(), |t| t.to_string()),
            Self::sched_suffix(sched),
            Self::map_suffix(map),
            Self::pagemap_suffix(page_map),
            Self::arrival_suffix(arrival),
            Self::freereloc_suffix()
        );
        let key = format!("{base}{}{}", self.kernel_suffix(), Self::warm_suffix(warmup));
        let warm_key = warmup.map(|w| format!("{base}-w{w}"));
        let mut cfg = self
            .system_config(cores, sc.kind.clone())
            .with_sched(sched)
            .with_mapping(map)
            .with_page_map(page_map);
        if let Some(ch) = sc.channels {
            cfg = cfg.with_channels(ch);
        }
        if let Some(m) = sc.mshrs_per_core {
            cfg = cfg.with_mshrs(m);
        }
        let targets: Vec<u64> = (0..cores)
            .map(|c| {
                sc.target_insts
                    .unwrap_or_else(|| insts_for(&sc.workload.profile_for_insts(c), self.scale))
            })
            .collect();
        let max_cycles = targets.iter().max().copied().unwrap_or(1).saturating_mul(400);
        let workload = sc.workload.clone();
        self.cached(&key, move || {
            let build = |cfg: SystemConfig| -> System {
                let sources: Vec<Box<dyn TraceSource>> = (0..cores)
                    .map(|c| {
                        let src = workload.source_for(c);
                        match arrival {
                            // Per-core seeds tied to the arrival label, so
                            // cores draw independent gap streams and a kind
                            // change redraws them.
                            Some(kind) => Box::new(ArrivalSchedule::new(
                                src,
                                kind,
                                seed_for(&kind.label(), c),
                            )) as Box<dyn TraceSource>,
                            None => src,
                        }
                    })
                    .collect();
                System::from_sources(cfg, sources, &targets)
            };
            let mut sys = build(cfg.clone());
            if let (Some(w), Some(wkey)) = (warmup, &warm_key) {
                self.warm_start(&mut sys, &cfg, w.min(max_cycles), wkey, &build);
            }
            RunSummary::from_stats(&sys.run(max_cycles))
        })
    }

    /// Brings `sys` to the scenario's warm point: restores the FGSN
    /// snapshot for `warm_key` when one exists, otherwise simulates the
    /// warm prefix once — under the exact event kernel, so a snapshot
    /// never embeds sampled-mode approximation — and publishes the
    /// snapshot for every later run sharing the prefix. `build` must
    /// reconstruct the system from the same run description (fresh
    /// deterministic sources).
    fn warm_start<F: Fn(SystemConfig) -> System>(
        &self,
        sys: &mut System,
        cfg: &SystemConfig,
        warm_cycles: u64,
        warm_key: &str,
        build: &F,
    ) {
        let path = self.snapshot_path(warm_key);
        if let Some(p) = &path {
            if crate::snapshot::restore(sys, p).is_ok() {
                sys.note_warm_resume();
                return;
            }
        }
        let mut warm = build(SystemConfig { kernel: Kernel::Event, ..cfg.clone() });
        let _ = warm.run(warm_cycles);
        if let Some(p) = &path {
            if let Some(dir) = p.parent() {
                let _ = fs::create_dir_all(dir);
            }
            let _ = crate::snapshot::save(&warm, p);
        }
        // Hand the warmed state over in memory — the run must not depend
        // on the snapshot write having succeeded.
        let mut words = Vec::new();
        warm.save_state(&mut words);
        sys.load_state(&mut &words[..]);
        sys.note_warm_resume();
    }

    /// On-disk location of the FGSN snapshot for a warm-prefix key
    /// (`None` when snapshot persistence is disabled). The key is
    /// FNV-hashed into the filename: warm keys repeat the whole scenario
    /// key and overflow comfortable filename lengths.
    fn snapshot_path(&self, warm_key: &str) -> Option<PathBuf> {
        self.snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.fgsn", crate::snapshot::key_hash(warm_key))))
    }

    /// Runs a batch of scenarios in parallel; results in input order,
    /// bit-identical to calling [`Runner::run_scenario`] serially.
    pub fn run_scenario_batch(&self, scenarios: &[Scenario]) -> Vec<RunSummary> {
        scenarios.par_iter().map(|sc| self.run_scenario(sc)).collect::<Vec<_>>()
    }

    /// Runs a batch of single-core jobs in parallel; results in input
    /// order, bit-identical to calling [`Runner::run_single`] serially.
    pub fn run_single_batch(&self, jobs: &[(AppProfile, ConfigKind)]) -> Vec<RunSummary> {
        jobs.par_iter().map(|(p, k)| self.run_single(p, k.clone())).collect::<Vec<_>>()
    }

    /// Runs a batch of eight-core mix jobs in parallel; results in input
    /// order, bit-identical to calling [`Runner::run_mix`] serially.
    pub fn run_mix_batch(&self, jobs: &[(Mix, ConfigKind)]) -> Vec<RunSummary> {
        jobs.par_iter().map(|(m, k)| self.run_mix(m, k.clone())).collect::<Vec<_>>()
    }

    /// Runs a batch of eight-thread multithreaded jobs in parallel;
    /// results in input order.
    pub fn run_multithreaded_batch(&self, jobs: &[(AppProfile, ConfigKind)]) -> Vec<RunSummary> {
        jobs.par_iter().map(|(p, k)| self.run_multithreaded(p, k.clone())).collect::<Vec<_>>()
    }

    /// Alone-IPCs for `profiles` in parallel (the weighted-speedup
    /// denominators); results in input order.
    pub fn alone_ipc_batch(&self, profiles: &[AppProfile]) -> Vec<f64> {
        profiles.par_iter().map(|p| self.alone_ipc(p)).collect::<Vec<_>>()
    }

    /// Runs the `apps × kinds` single-core matrix in parallel; result
    /// indexed `[app][kind]`. This is the shared shape of Figs. 7/9/10/11
    /// and the sweep figures.
    pub fn run_single_matrix(
        &self,
        apps: &[AppProfile],
        kinds: &[ConfigKind],
    ) -> Vec<Vec<RunSummary>> {
        let specs: Vec<(usize, usize)> =
            (0..apps.len()).flat_map(|a| (0..kinds.len()).map(move |k| (a, k))).collect();
        let _batch = BatchGuard::enter();
        let flat: Vec<RunSummary> = specs
            .into_par_iter()
            .map(|(a, k)| self.run_single(&apps[a], kinds[k].clone()))
            .collect::<Vec<_>>();
        flat.chunks(kinds.len().max(1)).map(<[RunSummary]>::to_vec).collect()
    }

    /// Runs the `mixes × kinds` eight-core matrix in parallel; result
    /// indexed `[mix][kind]`.
    pub fn run_mix_matrix(&self, mixes: &[Mix], kinds: &[ConfigKind]) -> Vec<Vec<RunSummary>> {
        let specs: Vec<(usize, usize)> =
            (0..mixes.len()).flat_map(|m| (0..kinds.len()).map(move |k| (m, k))).collect();
        let _batch = BatchGuard::enter();
        let flat: Vec<RunSummary> = specs
            .into_par_iter()
            .map(|(m, k)| self.run_mix(&mixes[m], kinds[k].clone()))
            .collect::<Vec<_>>();
        flat.chunks(kinds.len().max(1)).map(<[RunSummary]>::to_vec).collect()
    }

    /// Maps `f` over `0..n` on the worker pool (runs are independent;
    /// results come back in index order). Prefer the typed `*_batch` /
    /// `*_matrix` methods for simulation runs; this remains for
    /// irregular job shapes.
    pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let _batch = BatchGuard::enter();
        (0..n).into_par_iter().map(f).collect::<Vec<_>>()
    }
}

/// Number of batch/matrix fan-outs currently in flight, process-wide.
/// Non-zero means the rayon pool is already busy with whole runs, so
/// [`Runner::system_config`] pins each run's shard-parallel kernel to one
/// worker thread instead of stacking pools (`runs × shards` threads).
static BATCH_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// RAII scope for [`BATCH_ACTIVE`]; drops on unwind too, so a panicking
/// batch cannot leave later serial runs permanently single-threaded.
struct BatchGuard;

impl BatchGuard {
    fn enter() -> Self {
        BATCH_ACTIVE.fetch_add(1, Ordering::Relaxed);
        Self
    }
}

impl Drop for BatchGuard {
    fn drop(&mut self) {
        BATCH_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

fn config_key(kind: &ConfigKind) -> String {
    match kind {
        ConfigKind::FigCacheCustom(c) => {
            format!(
                "custom-r{}-b{}-{:?}-t{}-{}",
                c.cache_rows_per_bank,
                c.blocks_per_segment,
                c.replacement,
                c.insertion.miss_threshold,
                match c.region {
                    figaro_core::CacheRegion::FastSubarrays => "fast",
                    figaro_core::CacheRegion::ReservedSlowRows => "slow",
                }
            )
        }
        other => other.label().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_workloads::profile_by_name;

    #[test]
    fn freereloc_ablation_gets_its_own_cache_keys() {
        // Both arms of the env-derived suffix, without mutating the
        // process environment (tests run in parallel).
        assert_eq!(Runner::ablation_suffix_for(false), "");
        assert_eq!(Runner::ablation_suffix_for(true), "-freereloc");
    }

    #[test]
    fn summary_round_trips_through_text() {
        // Deliberately awkward floats: values whose shortest decimal
        // rendering used to round-trip off by an ulp through `{}`.
        let s = RunSummary {
            ipc: vec![0.1 + 0.2, 1.0 / 3.0],
            mpki: vec![12.0, 3.0_f64.sqrt()],
            row_hit_rate: 0.42,
            cache_hit_rate: f64::from_bits(0x3FD5_5555_5555_5556),
            energy: (1.0, 2.0, 3.0, 4.0, 5.0e-300),
            cpu_cycles: 1000,
            relocs: 77,
            lisa_clones: 0,
            avg_read_latency: 55.5,
            reads_served: 12_345,
            read_lat_p50: 28,
            read_lat_p95: 96,
            read_lat_p99: 224,
            read_lat_p999: 1792,
            read_lat_max: 2011,
            insertions: 9,
            truncated_cores: 1,
            ch_row_hit_rate: vec![0.75, 1.0 / 7.0],
            ch_read_q_peak: vec![31, 12],
            ch_write_q_peak: vec![16, 0],
        };
        let t = s.to_text();
        let loaded = RunSummary::from_text(&t).expect("round trip must parse");
        assert_eq!(loaded, s.clone());
        // Bit-exactness, not just PartialEq (the cache-vs-fresh contract).
        for (a, b) in loaded.ipc.iter().zip(s.ipc.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(loaded.cache_hit_rate.to_bits(), s.cache_hit_rate.to_bits());
        assert_eq!(loaded.energy.4.to_bits(), s.energy.4.to_bits());
        // Cache files written before the newer fields existed still load
        // (decimal floats, no percentile lines).
        let legacy: String = t
            .lines()
            .filter(|l| {
                !l.starts_with("truncated_cores")
                    && !l.starts_with("reads_served")
                    && !l.starts_with("read_lat_")
                    && !l.starts_with("ch_")
            })
            .map(|l| {
                // Rewrite hex-bit floats back to the old decimal form.
                let (k, v) = l.split_once(' ').unwrap();
                let dec: Vec<String> = v
                    .split(',')
                    .map(|x| match RunSummary::f64_parse(x) {
                        Some(f) if x.starts_with('b') => f.to_string(),
                        _ => x.to_string(),
                    })
                    .collect();
                format!("{k} {}\n", dec.join(","))
            })
            .collect();
        let loaded = RunSummary::from_text(&legacy).expect("legacy cache entry must parse");
        assert_eq!(loaded.truncated_cores, 0);
        assert_eq!(loaded.reads_served, 0);
        assert_eq!(loaded.read_lat_p99, 0);
        assert!(loaded.ch_row_hit_rate.is_empty() && loaded.ch_read_q_peak.is_empty());
        assert_eq!(loaded.ipc, s.ipc, "shortest-decimal legacy floats still parse exactly");
    }

    #[test]
    fn cached_scenario_result_is_bit_identical_to_fresh() {
        // The satellite-2 contract end to end: write a summary through
        // the on-disk cache, read it back, and require full bit equality
        // with the freshly computed run (floats included).
        let dir = std::env::temp_dir()
            .join(format!("figaro-cache-test-{}", std::process::id()))
            .join("exact");
        let _ = std::fs::remove_dir_all(&dir);
        let sc = Scenario::new(
            "exactness",
            ConfigKind::FigCacheFast,
            ScenarioWorkload::Apps(vec![profile_by_name("mcf").unwrap()]),
        )
        .with_target_insts(10_000);
        let fresh = Runner::uncached(Scale::Tiny).run_scenario(&sc);
        let writer = Runner::with_cache_dir(Scale::Tiny, dir.clone());
        let first = writer.run_scenario(&sc); // computes and publishes
        let cached = Runner::with_cache_dir(Scale::Tiny, dir.clone()).run_scenario(&sc);
        for s in [&first, &cached] {
            assert_eq!(s, &fresh);
            for (a, b) in s.ipc.iter().zip(fresh.ipc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "cached float differs from fresh");
            }
            assert_eq!(s.avg_read_latency.to_bits(), fresh.avg_read_latency.to_bits());
        }
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn truncated_runs_are_flagged_in_the_summary() {
        // A run stopped by its cycle cap short of the instruction target
        // must say so instead of passing the truncation off as a
        // measurement; a completed run must not.
        let p = profile_by_name("mcf").unwrap();
        let run_capped = |max_cycles: u64| {
            let trace = generate_trace(&p, 20_000, 3);
            let mut sys =
                System::new(SystemConfig::paper(1, ConfigKind::Base), vec![trace], &[20_000]);
            RunSummary::from_stats(&sys.run(max_cycles))
        };
        let truncated = run_capped(5_000);
        assert_eq!(truncated.truncated_cores, 1);
        let completed = run_capped(20_000 * 400);
        assert_eq!(completed.truncated_cores, 0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = Runner::parallel_map(10, |i| i * i);
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn seeds_differ_by_core_and_app() {
        assert_ne!(seed_for("mcf", 0), seed_for("mcf", 1));
        assert_ne!(seed_for("mcf", 0), seed_for("lbm", 0));
    }

    #[test]
    fn tiny_single_run_works_uncached() {
        let runner = Runner::uncached(Scale::Tiny);
        let p = profile_by_name("sjeng").unwrap();
        let s = runner.run_single(&p, ConfigKind::Base);
        assert!(s.ipc[0] > 0.0);
        assert!(s.mpki[0] < 10.0, "sjeng must classify non-intensive, mpki {}", s.mpki[0]);
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        let runner = Runner::uncached(Scale::Tiny);
        let jobs: Vec<_> = ["sjeng", "grep"]
            .iter()
            .flat_map(|n| {
                let p = profile_by_name(n).unwrap();
                [(p, ConfigKind::Base), (p, ConfigKind::FigCacheFast)]
            })
            .collect();
        let parallel = runner.run_single_batch(&jobs);
        let serial: Vec<RunSummary> =
            jobs.iter().map(|(p, k)| runner.run_single(p, k.clone())).collect();
        assert_eq!(parallel, serial, "batch must equal the serial loop bit-for-bit");
    }

    #[test]
    fn matrix_indexing_matches_flat_jobs() {
        let runner = Runner::uncached(Scale::Tiny);
        let apps = vec![profile_by_name("sjeng").unwrap(), profile_by_name("grep").unwrap()];
        let kinds = vec![ConfigKind::Base, ConfigKind::FigCacheFast];
        let matrix = runner.run_single_matrix(&apps, &kinds);
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0].len(), 2);
        assert_eq!(matrix[1][0], runner.run_single(&apps[1], ConfigKind::Base));
    }

    #[test]
    fn shared_cache_dedups_duplicate_jobs_and_survives_reload() {
        let dir = std::env::temp_dir()
            .join(format!("figaro-cache-test-{}", std::process::id()))
            .join("dedup");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = Runner::with_cache_dir(Scale::Tiny, dir.clone());
        let p = profile_by_name("grep").unwrap();
        // Four copies of the same job racing over one cache key.
        let jobs = vec![(p, ConfigKind::Base); 4];
        let out = runner.run_single_batch(&jobs);
        assert!(out.windows(2).all(|w| w[0] == w[1]), "duplicates must agree");
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .filter_map(Result::ok)
            .map(|e| e.file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 1, "one key -> one published file, got {files:?}");
        assert!(files[0].ends_with(".txt"), "no stray temp files: {files:?}");
        // A fresh runner over the same dir must load the identical summary.
        let reloaded = Runner::with_cache_dir(Scale::Tiny, dir.clone());
        assert_eq!(reloaded.run_single(&p, ConfigKind::Base), out[0]);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn scenario_runs_streamed_and_deterministic() {
        let runner = Runner::uncached(Scale::Tiny);
        let sc = Scenario::new(
            "smoke",
            ConfigKind::FigCacheFast,
            ScenarioWorkload::Apps(vec![profile_by_name("mcf").unwrap()]),
        )
        .with_target_insts(20_000);
        let a = runner.run_scenario(&sc);
        let b = runner.run_scenario(&sc);
        assert_eq!(a, b, "scenario runs must be deterministic");
        assert!(a.ipc[0] > 0.0);
    }

    #[test]
    fn scenario_overrides_change_the_system_shape() {
        let runner = Runner::uncached(Scale::Tiny);
        let mix = figaro_workloads::eight_core_mixes()
            .into_iter()
            .find(|m| m.category == figaro_workloads::MixCategory::Intensive100)
            .unwrap();
        let base = Scenario::new("shape", ConfigKind::Base, ScenarioWorkload::Mix(mix.clone()))
            .with_target_insts(4_000);
        let narrow = base.clone().with_channels(1).with_mshrs(4);
        let wide = base.with_channels(4).with_mshrs(16);
        let results = runner.run_scenario_batch(&[narrow, wide]);
        assert_eq!(results.len(), 2);
        let (narrow, wide) = (&results[0], &results[1]);
        assert!(
            wide.ipc.iter().sum::<f64>() > narrow.ipc.iter().sum::<f64>(),
            "4 channels / 16 MSHRs must outrun 1 channel / 4 MSHRs on an intensive mix"
        );
    }

    #[test]
    fn phased_scenario_crosses_phase_boundaries() {
        let runner = Runner::uncached(Scale::Tiny);
        let phased = figaro_workloads::phased_profiles().remove(0);
        let sc = Scenario::new(
            "phased",
            ConfigKind::FigCacheFast,
            ScenarioWorkload::Phased(vec![phased]),
        )
        .with_target_insts(30_000);
        let s = runner.run_scenario(&sc);
        assert!(s.ipc[0] > 0.0);
        assert!(s.insertions > 0, "phase churn must exercise the cache engine");
    }

    #[test]
    fn scenario_cache_keys_distinguish_workloads() {
        // Two scenarios reusing a name with different workloads must not
        // share a cached result.
        let dir = std::env::temp_dir()
            .join(format!("figaro-cache-test-{}", std::process::id()))
            .join("scn");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = Runner::with_cache_dir(Scale::Tiny, dir.clone());
        let sc = |app: &str| {
            Scenario::new(
                "same-name",
                ConfigKind::Base,
                ScenarioWorkload::Apps(vec![profile_by_name(app).unwrap()]),
            )
            .with_target_insts(10_000)
        };
        let mcf = runner.run_scenario(&sc("mcf"));
        let sjeng = runner.run_scenario(&sc("sjeng"));
        assert_ne!(mcf, sjeng, "different workloads under one name must not collide");
        assert!(
            sjeng.mpki[0] < mcf.mpki[0],
            "sjeng must really have run (not mcf's cache entry): {} vs {}",
            sjeng.mpki[0],
            mcf.mpki[0]
        );
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn long_run_target_scales_with_op_count() {
        let apps = vec![profile_by_name("mcf").unwrap()];
        let sc = Scenario::long_run(
            "long",
            ConfigKind::Base,
            ScenarioWorkload::Apps(apps.clone()),
            1_000_000,
        );
        let expected = (1_000_000.0 * (apps[0].nonmem_per_mem + 1.0)) as u64;
        assert_eq!(sc.target_insts, Some(expected));
    }

    #[test]
    fn scale_env_fallback_prefers_default_when_unset() {
        // Do not set the env var here (tests share the process); only
        // exercise the parse-side default.
        assert_eq!(Scale::from_env_or(Scale::Tiny).label(), {
            match std::env::var("FIGARO_SCALE").unwrap_or_default().to_lowercase().as_str() {
                "small" => "small",
                "full" => "full",
                _ => "tiny",
            }
        });
    }
}
