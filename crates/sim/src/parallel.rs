//! The sharded parallel kernel ([`Kernel::Parallel`]): per-channel
//! conservative PDES, bit-identical to the serial kernels.
//!
//! # Decomposition
//!
//! Memory channels never talk to each other: a request is routed to
//! exactly one controller, and a controller's completions only flow back
//! through the (serial) cache hierarchy. That makes **one channel — its
//! [`MemoryController`] plus the per-channel backlog — the natural shard**:
//! a unit of state that can be advanced on a worker thread with no
//! synchronization beyond the epoch barrier.
//!
//! The clock loop is the event kernel's loop with the controller work
//! hoisted out:
//!
//! * **Serial phase** (main thread): tick cores, route hierarchy output,
//!   deliver completions — exactly the code the event kernel runs.
//! * **Parallel phase** (epoch): at every *executed* bus boundary `B`,
//!   every shard independently catches up from its frontier to `B`,
//!   replaying precisely the controller-side cycle subsequence the serial
//!   event kernel would have executed (accept-then-tick per event cycle).
//!
//! # Why the results are bit-identical
//!
//! Conservative PDES needs a **lookahead bound**: proof that no shard
//! produces a cross-shard event (a read completion that must wake a core)
//! strictly inside the window being skipped. Each epoch caches
//! [`ChannelShard::completion_bound`] — a lower bound, derived from the
//! DRAM timing registers' monotonicity, on the bus cycle at which the
//! shard can next *produce* a completion. The serial horizon folds
//! `min(bound) * cpu_cycles_per_bus` into the skip target, so every
//! executed cycle satisfies `now <= min(bound) * per_bus`; hence any
//! completion a shard produces while catching up to boundary `B` is
//! produced exactly *at* `B` (asserted), where it is delivered in channel
//! order in the same epoch — the cycle, order and wake stamps the serial
//! kernels use. Controller-internal events (write drains, refreshes,
//! relocation jobs) need no global fold at all: they are replayed
//! shard-locally at the next epoch.
//!
//! With one channel (nothing to shard) the kernel degenerates to the
//! plain event kernel; with `threads = 1` the epochs run inline on the
//! caller. Thread count is a wall-clock knob only — it never appears in
//! simulated state.

use std::collections::VecDeque;

use figaro_memctrl::{Completion, MemoryController, Request};
use figaro_telemetry::profile::ShardTimers;
use rayon::WorkerPool;

use crate::metrics::RunStats;
use crate::system::System;
use crate::telemetry::{PROF_CORES, PROF_MEMORY};

/// One parallel-kernel shard: a memory controller plus everything that
/// is private to its channel (backlog, epoch mailboxes, lookahead
/// cache). The ownership unit handed to a worker thread.
#[derive(Debug)]
pub(crate) struct ChannelShard {
    /// The channel's controller (owns the DRAM channel model and the
    /// in-DRAM cache engine).
    pub(crate) mc: MemoryController,
    /// Requests routed to this channel that the controller had no queue
    /// room for, in arrival order (drains FIFO as room frees).
    backlog: VecDeque<Request>,
    /// Reads currently in `backlog` — a backlogged read can complete via
    /// the read-around-write forward the same cycle it is accepted, so
    /// `completion_bound` must collapse whenever one could be accepted.
    backlog_reads: usize,
    /// Requests the serial router assigned to this shard for the current
    /// epoch; merged into `backlog` at the epoch boundary (the cycle the
    /// serial kernels would push them).
    inbox: Vec<Request>,
    /// Completions produced while catching up, tagged with the bus cycle
    /// that produced them; delivered serially after the epoch barrier.
    outbox: Vec<(u64, Completion)>,
    /// Scratch for draining the controller without reallocating.
    scratch: Vec<Completion>,
    /// First bus cycle this shard has not yet processed.
    frontier: u64,
    /// `completion_bound(frontier)` as of the last epoch — the value the
    /// serial horizon folds. Stays a valid lower bound between epochs
    /// because only epochs mutate shard state.
    pub(crate) cached_bound: u64,
}

impl ChannelShard {
    pub(crate) fn new(mc: MemoryController) -> Self {
        Self {
            mc,
            backlog: VecDeque::new(),
            backlog_reads: 0,
            inbox: Vec::new(),
            outbox: Vec::new(),
            scratch: Vec::new(),
            frontier: 0,
            cached_bound: 0,
        }
    }

    /// Parks a routed request at the tail of the backlog (the serial
    /// kernels' router calls this directly; the parallel kernel goes
    /// through the inbox instead).
    pub(crate) fn push_backlog(&mut self, req: Request) {
        self.backlog_reads += usize::from(!req.is_write);
        self.backlog.push_back(req);
    }

    /// Drains the backlog head-first into the controller while it
    /// accepts, stamping arrival at `bus`; returns how many requests
    /// were accepted (the serial router's `backlog_len` bookkeeping).
    pub(crate) fn accept_backlog(&mut self, bus: u64) -> usize {
        let mut accepted = 0;
        while let Some(front) = self.backlog.front() {
            if !self.mc.can_accept(front.is_write) {
                break;
            }
            let mut req = self.backlog.pop_front().expect("front exists");
            self.backlog_reads -= usize::from(!req.is_write);
            req.arrival = bus;
            self.mc.enqueue(req, bus);
            accepted += 1;
        }
        accepted
    }

    /// Whether the backlog's head request would be accepted right now
    /// (the event kernel's backlog horizon term).
    pub(crate) fn backlog_front_acceptable(&self) -> bool {
        self.backlog.front().is_some_and(|f| self.mc.can_accept(f.is_write))
    }

    /// Lower bound (bus cycles, `>= from`) on when this shard can next
    /// *produce* a read completion, given no further arrivals — the
    /// conservative-PDES lookahead. `u64::MAX` when it provably never
    /// will.
    ///
    /// Two production paths exist and both are covered:
    /// * a queued read's column issue —
    ///   [`MemoryController::read_completion_horizon`] bounds it from the
    ///   timing registers;
    /// * a backlogged read accepted into a queue with room, which may
    ///   complete instantly via the read-around-write forward — so any
    ///   backlogged read plus read-queue room collapses the bound to
    ///   `from`. (If the read queue is full it is non-empty, and freeing
    ///   a slot *is* a read issue, which the first path bounds.)
    fn completion_bound(&self, from: u64) -> u64 {
        if self.backlog_reads > 0 && self.mc.can_accept(false) {
            return from;
        }
        self.mc.read_completion_horizon(from)
    }

    /// The bus cycle the shard would process next after `from`, capped at
    /// `target`: the backlog-acceptance boundary if the head request fits
    /// now, else the controller's own event horizon. This mirrors the
    /// event kernel's `component_horizon` terms for one controller.
    fn next_processed(&mut self, from: u64, target: u64) -> u64 {
        if self.backlog_front_acceptable() {
            return from;
        }
        match self.mc.next_event_at(from) {
            Some(t) => t.min(target),
            None => target,
        }
    }

    /// One controller-side bus cycle, exactly as the serial kernels run
    /// it: drain the backlog while the controller accepts, tick if the
    /// controller has an event due, then collect any completions tagged
    /// with their production cycle.
    fn process_cycle(&mut self, bus: u64) {
        self.accept_backlog(bus);
        if self.mc.next_event_at(bus).is_some_and(|h| h <= bus) {
            self.mc.tick(bus);
        }
        if self.mc.has_completions() {
            self.mc.drain_completions_into(&mut self.scratch);
            for c in self.scratch.drain(..) {
                self.outbox.push((bus, c));
            }
        }
    }

    /// Catches the shard up to the epoch boundary `target`: replays the
    /// interior event cycles in `[frontier, target)`, then merges the
    /// epoch's inbox and processes `target` itself (the cycle the serial
    /// kernels would route-then-tick).
    fn advance_to(&mut self, target: u64) {
        debug_assert!(self.frontier <= target, "epoch boundaries move forward");
        let mut p = self.next_processed(self.frontier, target);
        while p < target {
            self.process_cycle(p);
            // Acceptance freed by this cycle's tick lands on the *next*
            // boundary (the serial router runs before the tick).
            p = self.next_processed(p + 1, target);
        }
        for req in self.inbox.drain(..) {
            self.backlog_reads += usize::from(!req.is_write);
            self.backlog.push_back(req);
        }
        self.process_cycle(target);
        self.frontier = target + 1;
        self.cached_bound = self.completion_bound(self.frontier);
    }

    /// Appends the shard's live state — the controller plus the parked
    /// backlog — to a snapshot word stream. The epoch mailboxes are not
    /// serialized: snapshots are taken between runs, where the catch-up
    /// epoch has already drained them (asserted).
    pub(crate) fn save_state(&self, out: &mut Vec<u64>) {
        assert!(
            self.inbox.is_empty() && self.outbox.is_empty(),
            "snapshots are taken between runs, where epoch mailboxes are quiescent"
        );
        self.mc.save_state(out);
        out.push(self.backlog.len() as u64);
        for req in &self.backlog {
            out.push(req.id);
            out.push(req.addr.0);
            out.push(u64::from(req.is_write));
            out.push(u64::from(req.core));
            out.push(req.arrival);
        }
    }

    /// Restores state saved by [`ChannelShard::save_state`]. `frontier` is
    /// the first bus cycle the resumed run has not yet processed (derived
    /// from the snapshot's CPU cycle); the lookahead cache is recomputed
    /// from the restored controller, exactly as the catch-up epoch leaves
    /// it. Returns the restored backlog length (the router's global
    /// bookkeeping).
    pub(crate) fn load_state(&mut self, src: &mut &[u64], frontier: u64) -> usize {
        self.mc.load_state(src);
        let n = crate::take(src) as usize;
        self.backlog.clear();
        self.backlog_reads = 0;
        for _ in 0..n {
            let id = crate::take(src);
            let addr = figaro_dram::PhysAddr(crate::take(src));
            let is_write = crate::take(src) != 0;
            let core = crate::take(src) as u8;
            let arrival = crate::take(src);
            self.push_backlog(Request { id, addr, is_write, core, arrival });
        }
        self.inbox.clear();
        self.outbox.clear();
        self.frontier = frontier;
        self.cached_bound = self.completion_bound(frontier);
        n
    }

    /// (queued reads, queued writes, backlogged requests) — the `diag
    /// snapshot` occupancy summary.
    pub(crate) fn occupancy(&self) -> (u64, u64, u64) {
        (
            self.mc.read_queue_len() as u64,
            self.mc.write_queue_len() as u64,
            self.backlog.len() as u64,
        )
    }
}

/// Below this catch-up window (bus cycles), the epoch runs inline on the
/// caller: a shard ticks at most once per bus cycle, so a small window
/// bounds the work below the pool's publish/park handoff cost. Purely a
/// wall-clock heuristic — the per-shard call sequence is identical.
const INLINE_WINDOW: u64 = 8;

/// Advances every shard to `target` — the epoch's parallel phase. Shards
/// are dealt round-robin across workers; each worker owns a disjoint
/// index set, and `WorkerPool::run` does not return until every worker
/// (caller included) is done, so no shard is ever touched by two threads.
///
/// `timers`, when profiling is on, collects per-shard busy wall time
/// (the imbalance diagnostic); it is side-channel only and never read by
/// simulation state.
fn advance_all(
    shards: &mut [ChannelShard],
    target: u64,
    pool: &WorkerPool,
    timers: Option<&ShardTimers>,
) {
    /// A `Sync` view of the shard slice for the raw-pointer fan-out; the
    /// disjoint round-robin partition is what makes the `&mut` derivation
    /// in the worker body sound.
    struct ShardPtr(*mut ChannelShard, usize);
    unsafe impl Sync for ShardPtr {}
    let advance = |i: usize, sh: &mut ChannelShard| match timers {
        Some(t) => {
            let ((), ns) = figaro_telemetry::profile::timed(|| sh.advance_to(target));
            t.add(i, ns);
        }
        None => sh.advance_to(target),
    };
    let min_frontier = shards.iter().map(|s| s.frontier).min().unwrap_or(target);
    if pool.threads() <= 1
        || shards.len() <= 1
        || target.saturating_sub(min_frontier) < INLINE_WINDOW
    {
        for (i, sh) in shards.iter_mut().enumerate() {
            advance(i, sh);
        }
        return;
    }
    let threads = pool.threads();
    let ptr = ShardPtr(shards.as_mut_ptr(), shards.len());
    // Capture the Sync wrapper itself, not its raw-pointer field.
    let ptr = &ptr;
    let advance = &advance;
    pool.run(&move |worker: usize| {
        let mut i = worker;
        while i < ptr.1 {
            // SAFETY: worker `w` touches exactly the indices `i % threads
            // == w`, all in-bounds, and the pool's run/join protocol means
            // these `&mut`s never coexist with any other access.
            let sh = unsafe { &mut *ptr.0.add(i) };
            advance(i, sh);
            i += threads;
        }
    });
}

impl System {
    /// The sharded parallel kernel ([`crate::Kernel::Parallel`]). See the
    /// module docs for the protocol; produces [`RunStats`] bit-identical
    /// to [`crate::Kernel::Event`] and [`crate::Kernel::Reference`].
    pub(crate) fn run_parallel(&mut self, max_cpu_cycles: u64) -> RunStats {
        if self.cfg.channels == 1 {
            // One shard has nothing to overlap with: run the event kernel
            // and skip the epoch machinery entirely.
            return self.run_event(max_cpu_cycles);
        }
        let pool = WorkerPool::new(self.cfg.worker_threads());
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let fill_latency = u64::from(self.cfg.hierarchy.fill_latency);
        // The serial phase below is the event kernel's loop verbatim,
        // with `step_bus` swapped for the epoch and the controller terms
        // of `component_horizon` swapped for the cached lookahead bounds.
        let mut live: Vec<usize> =
            (0..self.cores.len()).filter(|&i| !self.cores[i].finished()).collect();
        while !live.is_empty() && self.cpu_cycle < max_cpu_cycles {
            let now = self.cpu_cycle;
            if now >= self.telemetry_next_sample() {
                self.catch_up_for_sample(now, per_bus);
                self.maybe_sample(now);
            }
            if let Some(bus) = self.bus_boundary(now, per_bus) {
                self.step_bus_sharded(bus, per_bus, fill_latency, &pool);
            }
            if let Some(p) = &mut self.profiler {
                p.clock.lap(PROF_MEMORY);
            }
            let mut next = max_cpu_cycles;
            live.retain(|&i| {
                let core = &mut self.cores[i];
                core.tick(now, &mut self.hierarchy);
                if core.finished() {
                    return false;
                }
                if let Some(t) = core.next_event_at(now) {
                    next = next.min(t);
                }
                true
            });
            if let Some(p) = &mut self.profiler {
                p.clock.lap(PROF_CORES);
            }
            self.cpu_cycle += 1;
            if live.is_empty() {
                break;
            }
            if next <= now + 1 {
                continue;
            }
            let next = self.horizon_sharded(now, next).clamp(now + 1, max_cpu_cycles);
            // Execute the next sample boundary instead of jumping it (see
            // the identical clamp in the event kernel's span).
            let next = next.min(self.telemetry_next_sample());
            let skip = next - self.cpu_cycle;
            if skip > 0 {
                for &i in &live {
                    self.cores[i].skip_cycles(now, skip, &mut self.hierarchy);
                }
                self.cpu_cycle = next;
            }
        }
        // Catch-up epoch: the serial event kernel folds controller
        // horizons into its skip, so by its own exit it has ticked every
        // controller event cycle up to the last executed CPU cycle. The
        // shards may still be behind (controller-internal events force no
        // epochs here) — replay them so queues, engines and DRAM stats
        // land in the identical final state. No completion can be
        // produced: every executed cycle stayed at or below
        // `min(bound) * per_bus`, so the first producible completion lies
        // at or beyond this target unless an epoch already delivered it.
        if self.cpu_cycle > 0 {
            let final_bus = (self.cpu_cycle - 1) / per_bus;
            for sh in &mut self.shards {
                if sh.frontier <= final_bus {
                    sh.advance_to(final_bus);
                }
                assert!(
                    sh.outbox.is_empty(),
                    "undelivered completion after the final epoch — lookahead bound unsound"
                );
            }
        }
        self.collect()
    }

    /// The epoch at executed bus boundary `bus`: serially route this
    /// boundary's hierarchy output to shard inboxes, advance every shard
    /// to `bus` in parallel, then deliver the produced completions in
    /// channel order — the exact cycle, order and wake stamps of the
    /// serial kernels' `step_bus`.
    fn step_bus_sharded(&mut self, bus: u64, per_bus: u64, fill_latency: u64, pool: &WorkerPool) {
        figaro_telemetry::probe!(self.telemetry, t => t.epoch_mark(bus * per_bus));
        if let Some(p) = &mut self.profiler {
            p.epochs += 1;
        }
        if self.hierarchy.has_outgoing() {
            for req in self.hierarchy.take_outgoing() {
                let ch = self.mapping.decode(req.addr).channel as usize;
                self.shards[ch].inbox.push(req);
            }
        }
        let timers = self.profiler.as_deref().map(|p| &p.shard_timers);
        advance_all(&mut self.shards, bus, pool, timers);
        for ch in 0..self.shards.len() {
            if self.shards[ch].outbox.is_empty() {
                continue;
            }
            let mut out = std::mem::take(&mut self.shards[ch].outbox);
            for (produced_at, c) in out.drain(..) {
                // The lookahead contract: completions only materialize at
                // the epoch boundary itself, never inside the window the
                // serial side already skipped.
                assert_eq!(produced_at, bus, "completion produced inside the lookahead window");
                let ready_cpu = c.done_at * per_bus + fill_latency;
                for token in self.hierarchy.on_completion(c.id) {
                    self.cores[c.core as usize].wake(token, ready_cpu);
                }
            }
            self.shards[ch].outbox = out;
        }
    }

    /// Advances every lagging shard to the last bus boundary before
    /// CPU cycle `now`, so a telemetry sample taken at `now` observes
    /// exactly the state the *serial* kernels would show: the serial
    /// event kernel folds controller horizons into its skip and has
    /// therefore replayed every controller-internal event cycle up to
    /// `now`, while the parallel kernel defers those to the next epoch.
    /// This is the final catch-up epoch's logic applied mid-run; the
    /// same lookahead argument shows no completion can be produced
    /// (asserted), so replaying early is behavior-identical — it only
    /// moves *when* the deferred cycles run, never *what* they do.
    fn catch_up_for_sample(&mut self, now: u64, per_bus: u64) {
        if now == 0 {
            return;
        }
        let target = (now - 1) / per_bus;
        for sh in &mut self.shards {
            if sh.frontier <= target {
                sh.advance_to(target);
            }
            assert!(
                sh.outbox.is_empty(),
                "undelivered completion at a sample boundary — lookahead bound unsound"
            );
        }
    }

    /// `component_horizon` for the sharded kernel: the hierarchy-routing
    /// boundary term is unchanged, but the backlog and controller-event
    /// terms disappear (both are shard-internal now) in favor of one fold
    /// over the cached per-shard completion bounds.
    fn horizon_sharded(&self, now: u64, mut next: u64) -> u64 {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let boundary = (now / per_bus + 1) * per_bus;
        if next > boundary {
            if self.hierarchy.next_event_at(now, per_bus).is_some() {
                next = boundary;
            }
            // A shard's bound is at least its frontier, and every frontier
            // is past the last executed boundary, so this fold can never
            // pull `next` below `boundary` — no epoch is ever missed.
            for sh in &self.shards {
                next = next.min(sh.cached_bound.saturating_mul(per_bus));
            }
        }
        next
    }
}
