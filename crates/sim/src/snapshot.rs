//! FGSN v1 — serializable warm-state snapshots.
//!
//! A snapshot captures the *full* live state of a [`System`] between
//! `run` calls — core pipelines and trace-source positions, cache
//! hierarchy (MSHRs, tags, latency histograms), per-channel controller
//! queues, bank timing, scheduler and relocation-engine state — so a
//! warmed-up system can be written to disk once and resumed by every
//! sweep point sharing the same warmup prefix.
//!
//! ## Format
//!
//! FGSN reuses the FIGT varint machinery from `figaro_workloads`
//! ([`write_varint`] / [`read_varint`]); every integer below is a
//! LEB128-style varint unless noted:
//!
//! ```text
//! magic    b"FGSN"                       (4 raw bytes)
//! version  format version (currently 2)
//! hash     config hash of the producing SystemConfig
//! cycle    CPU cycle the snapshot was taken at
//! n_cores  then per core: ops_pulled, window_len
//! n_shards then per shard: read_queue, write_queue, backlog
//! n_words  payload length, then the payload words
//! ```
//!
//! The header is self-contained (readable without touching the payload —
//! `figaro diag snapshot` prints exactly it). The payload is the word
//! stream produced by the component crates' `save_state` convention:
//! floats cross as `to_bits`, hash maps are walked in sorted-key order,
//! so identical states produce identical bytes.
//!
//! ## Config hash
//!
//! [`config_hash`] fingerprints the producing [`SystemConfig`] so a
//! snapshot only resumes under the configuration that made it — resuming
//! under anything else would silently produce a run that matches nothing.
//! The kernel and thread count are normalized out of the hash: all exact
//! kernels produce bit-identical state, so a snapshot taken under one is
//! valid under any other (and is what lets a warm snapshot serve a whole
//! sweep regardless of the kernel each point runs).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use figaro_workloads::{read_varint, write_varint};

use crate::config::{Kernel, SystemConfig};
use crate::system::System;

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"FGSN";

/// Current format version, bumped on any layout change.
/// History: 2 added the controller's queue-occupancy peak counters
/// (`read_q_peak`/`write_q_peak`) to the `McStats` payload.
pub const FORMAT_VERSION: u64 = 2;

/// Fingerprint of the configuration that may resume a snapshot.
///
/// FNV-1a over the config's `Debug` rendering, with the kernel and
/// thread count normalized out (exact kernels are bit-identical, and the
/// parallel kernel's worker count never affects results — see the
/// kernel-equivalence suite in `system.rs`). A [`Kernel::Sampled`] run
/// may also *resume* from a warm snapshot — its approximation starts
/// after the exact warmup — but snapshots are only ever *written* by
/// exact runs (the runner warms up under the event kernel).
#[must_use]
pub fn config_hash(cfg: &SystemConfig) -> u64 {
    let mut normalized = cfg.clone();
    normalized.kernel = Kernel::Event;
    normalized.threads = 0;
    fnv1a(format!("{normalized:?}").as_bytes())
}

/// FNV-1a of an arbitrary key string — the runner uses it to derive
/// snapshot filenames from warm-prefix cache keys (which repeat the
/// whole scenario key and overflow comfortable filename lengths).
#[must_use]
pub fn key_hash(key: &str) -> u64 {
    fnv1a(key.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-core occupancy summary carried in the header (diagnostics only —
/// the authoritative state lives in the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSummary {
    /// Operations pulled from the trace source so far.
    pub ops_pulled: u64,
    /// Instruction-window occupancy at save time.
    pub window_len: u64,
}

/// Per-channel occupancy summary carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Controller read-queue occupancy.
    pub read_queue: u64,
    /// Controller write-queue occupancy.
    pub write_queue: u64,
    /// Requests parked in the shard's overflow backlog.
    pub backlog: u64,
}

/// Everything the FGSN header records; [`read_header`] parses it without
/// touching the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version (currently [`FORMAT_VERSION`]).
    pub version: u64,
    /// [`config_hash`] of the producing configuration.
    pub config_hash: u64,
    /// CPU cycle the snapshot was taken at.
    pub cpu_cycle: u64,
    /// Per-core occupancy summaries.
    pub cores: Vec<CoreSummary>,
    /// Per-channel occupancy summaries.
    pub shards: Vec<ShardSummary>,
    /// Payload length in words.
    pub payload_words: u64,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Reads one varint, treating EOF as corruption (FGSN fields are never
/// optional).
fn need<R: Read>(r: &mut R, what: &str) -> io::Result<u64> {
    match read_varint(r)? {
        Some(v) => Ok(v),
        None => Err(bad(&format!("snapshot truncated reading {what}"))),
    }
}

/// Serializes `sys` as an FGSN v1 snapshot.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn save_to_writer<W: Write>(sys: &System, w: &mut W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_varint(w, FORMAT_VERSION)?;
    write_varint(w, config_hash(sys.config()))?;
    write_varint(w, sys.cpu_cycle())?;
    write_varint(w, sys.cores.len() as u64)?;
    for core in &sys.cores {
        write_varint(w, core.ops_pulled())?;
        write_varint(w, core.window_len() as u64)?;
    }
    write_varint(w, sys.shards.len() as u64)?;
    for sh in &sys.shards {
        let (rq, wq, backlog) = sh.occupancy();
        write_varint(w, rq)?;
        write_varint(w, wq)?;
        write_varint(w, backlog)?;
    }
    let mut words = Vec::new();
    sys.save_state(&mut words);
    write_varint(w, words.len() as u64)?;
    for &word in &words {
        write_varint(w, word)?;
    }
    Ok(())
}

/// Writes `sys` to `path` atomically (temp file + rename), so a
/// concurrent reader — another sweep process sharing the snapshot dir —
/// never observes a half-written snapshot.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(sys: &System, path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("fgsn.tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        save_to_writer(sys, &mut w)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Parses an FGSN header, leaving `r` positioned at the first payload
/// word.
///
/// # Errors
///
/// `InvalidData` on a bad magic, unsupported version or truncation.
pub fn read_header<R: Read>(r: &mut R) -> io::Result<SnapshotHeader> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not an FGSN snapshot (bad magic)"));
    }
    let version = need(r, "version")?;
    if version != FORMAT_VERSION {
        return Err(bad(&format!(
            "unsupported FGSN version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let config_hash = need(r, "config hash")?;
    let cpu_cycle = need(r, "cpu cycle")?;
    let n_cores = need(r, "core count")?;
    let mut cores = Vec::with_capacity(n_cores as usize);
    for _ in 0..n_cores {
        cores.push(CoreSummary {
            ops_pulled: need(r, "core ops_pulled")?,
            window_len: need(r, "core window_len")?,
        });
    }
    let n_shards = need(r, "shard count")?;
    let mut shards = Vec::with_capacity(n_shards as usize);
    for _ in 0..n_shards {
        shards.push(ShardSummary {
            read_queue: need(r, "shard read queue")?,
            write_queue: need(r, "shard write queue")?,
            backlog: need(r, "shard backlog")?,
        });
    }
    let payload_words = need(r, "payload length")?;
    Ok(SnapshotHeader { version, config_hash, cpu_cycle, cores, shards, payload_words })
}

/// Reads only the header of the snapshot at `path` (`figaro diag
/// snapshot`).
///
/// # Errors
///
/// `InvalidData` on a malformed file; propagates filesystem errors.
pub fn read_header_from(path: &Path) -> io::Result<SnapshotHeader> {
    read_header(&mut BufReader::new(File::open(path)?))
}

/// Restores a snapshot into `sys`, which must be freshly constructed
/// from the *same run description* (configuration and trace sources) the
/// snapshot was taken under. On success the system's clock sits at the
/// snapshot cycle and `run` continues bit-identically to the
/// uninterrupted run under every exact kernel.
///
/// # Errors
///
/// `InvalidData` if the snapshot is malformed or was produced by a
/// different configuration (config-hash mismatch).
///
/// # Panics
///
/// Panics if a well-formed header carries a payload inconsistent with
/// the system's shape (component `load_state` asserts) — that means the
/// config hash collided, which FNV-1a over the full `Debug` text makes
/// vanishingly unlikely.
pub fn restore_from_reader<R: Read>(sys: &mut System, r: &mut R) -> io::Result<SnapshotHeader> {
    let header = read_header(r)?;
    let expected = config_hash(sys.config());
    if header.config_hash != expected {
        return Err(bad(&format!(
            "snapshot config hash {:#018x} does not match this configuration ({expected:#018x})",
            header.config_hash
        )));
    }
    let mut words = Vec::with_capacity(header.payload_words as usize);
    for _ in 0..header.payload_words {
        words.push(need(r, "payload word")?);
    }
    let mut src = words.as_slice();
    sys.load_state(&mut src);
    if !src.is_empty() {
        return Err(bad("snapshot payload has trailing words"));
    }
    Ok(header)
}

/// Restores the snapshot at `path` into `sys` (see
/// [`restore_from_reader`]).
///
/// # Errors
///
/// As [`restore_from_reader`]; propagates filesystem errors.
pub fn restore(sys: &mut System, path: &Path) -> io::Result<SnapshotHeader> {
    restore_from_reader(sys, &mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigKind;
    use figaro_workloads::{generate_trace, profile_by_name};

    fn small_sys(kind: ConfigKind) -> System {
        let p = profile_by_name("mcf").expect("profile");
        let trace = generate_trace(&p, 4_000, 7);
        let mut cfg = SystemConfig::paper(1, kind);
        cfg.kernel = Kernel::Event;
        System::new(cfg, vec![trace], &[4_000])
    }

    #[test]
    fn round_trip_resumes_bit_identically() {
        let mut warm = small_sys(ConfigKind::FigCacheFast);
        let _ = warm.run(5_000);

        let mut bytes = Vec::new();
        save_to_writer(&warm, &mut bytes).expect("save");

        let mut resumed = small_sys(ConfigKind::FigCacheFast);
        let header = restore_from_reader(&mut resumed, &mut bytes.as_slice()).expect("restore");
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(header.cpu_cycle, 5_000);
        assert_eq!(header.cores.len(), 1);

        // Save→restore→save is the identity on the byte stream...
        let mut bytes2 = Vec::new();
        save_to_writer(&resumed, &mut bytes2).expect("re-save");
        assert_eq!(bytes, bytes2);

        // ...and the resumed run finishes bit-identically to the
        // uninterrupted one.
        let golden = {
            let mut sys = small_sys(ConfigKind::FigCacheFast);
            sys.run(u64::MAX)
        };
        assert_eq!(warm.run(u64::MAX), golden);
        assert_eq!(resumed.run(u64::MAX), golden);
    }

    #[test]
    fn header_reads_without_payload() {
        let mut sys = small_sys(ConfigKind::Base);
        let _ = sys.run(2_000);
        let mut bytes = Vec::new();
        save_to_writer(&sys, &mut bytes).expect("save");
        let header = read_header(&mut bytes.as_slice()).expect("header");
        assert_eq!(header.cpu_cycle, 2_000);
        assert_eq!(header.config_hash, config_hash(sys.config()));
        assert!(header.payload_words > 0);
    }

    #[test]
    fn rejects_config_hash_mismatch() {
        let mut base = small_sys(ConfigKind::Base);
        let _ = base.run(2_000);
        let mut bytes = Vec::new();
        save_to_writer(&base, &mut bytes).expect("save");

        let mut other = small_sys(ConfigKind::LlDram);
        let err = restore_from_reader(&mut other, &mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("config hash"));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut sys = small_sys(ConfigKind::Base);
        let _ = sys.run(1_000);
        let mut bytes = Vec::new();
        save_to_writer(&sys, &mut bytes).expect("save");

        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        assert_eq!(
            read_header(&mut garbled.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let truncated = &bytes[..bytes.len() / 2];
        let mut fresh = small_sys(ConfigKind::Base);
        assert_eq!(
            restore_from_reader(&mut fresh, &mut &truncated[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn config_hash_ignores_kernel_and_threads() {
        let mut a = SystemConfig::paper(2, ConfigKind::FigCacheFast);
        a.kernel = Kernel::Reference;
        a.threads = 1;
        let mut b = a.clone();
        b.kernel = Kernel::Parallel;
        b.threads = 8;
        assert_eq!(config_hash(&a), config_hash(&b));

        let c = SystemConfig::paper(2, ConfigKind::Base);
        assert_ne!(config_hash(&a), config_hash(&c));
    }
}
