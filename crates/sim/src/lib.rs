//! # figaro-sim — full-system simulation and the paper's experiments
//!
//! Assembles the whole evaluated stack — trace-driven cores and cache
//! hierarchy (`figaro-cpu`), per-channel FR-FCFS memory controllers
//! (`figaro-memctrl`), the cycle-level DRAM model (`figaro-dram`), the
//! FIGCache / LISA-VILLA engines (`figaro-core`), synthetic workloads
//! (`figaro-workloads`) and the energy models (`figaro-energy`) — into
//! runnable systems, and defines every experiment of the paper's
//! evaluation section (Figures 7–15, Tables 1–2, the Section 8
//! aggregates).
//!
//! The six evaluated configurations ([`ConfigKind`]):
//!
//! | Name | Meaning |
//! |---|---|
//! | `Base` | conventional DDR4, no in-DRAM cache |
//! | `LISA-VILLA` | row-granularity cache, 16 interleaved fast subarrays |
//! | `FIGCache-Slow` | segment cache in 64 reserved slow rows |
//! | `FIGCache-Fast` | segment cache in 2 appended fast subarrays |
//! | `FIGCache-Ideal` | FIGCache-Fast with free relocation |
//! | `LL-DRAM` | every subarray fast, no cache (latency upper bound) |
//!
//! Clock domains follow Table 1: cores at 3.2 GHz, DDR4-1600 bus at
//! 800 MHz (one controller tick per four CPU cycles).
//!
//! ## Example
//!
//! ```
//! use figaro_sim::{ConfigKind, Runner, Scale};
//! use figaro_workloads::profile_by_name;
//!
//! let runner = Runner::new(Scale::Tiny);
//! let mcf = profile_by_name("mcf").unwrap();
//! let base = runner.run_single(&mcf, ConfigKind::Base);
//! let fig = runner.run_single(&mcf, ConfigKind::FigCacheFast);
//! assert!(fig.ipc[0] > 0.0 && base.ipc[0] > 0.0);
//! ```

/// Pops the next word of a snapshot word stream (the `save_state` /
/// `load_state` convention shared across the component crates).
/// Truncation aborts loudly: resuming from a corrupt snapshot must never
/// silently produce a different run.
pub(crate) fn take(src: &mut &[u64]) -> u64 {
    assert!(!src.is_empty(), "snapshot word stream truncated");
    let w = src[0];
    *src = &src[1..];
    w
}

pub mod config;
pub mod experiments;
pub mod metrics;
pub(crate) mod parallel;
pub mod report;
pub mod runner;
pub mod snapshot;
pub mod system;
pub mod telemetry;

pub use config::{ConfigKind, Kernel, SystemConfig};
pub use figaro_dram::{MapKind, MapScheme};
pub use figaro_memctrl::SchedPolicyKind;
pub use figaro_workloads::PageMapKind;
pub use metrics::{ChannelStats, RunStats, SampledStats};
pub use runner::{Runner, Scale, Scenario, ScenarioWorkload};
pub use snapshot::{config_hash, SnapshotHeader};
pub use system::System;
pub use telemetry::KernelProfile;
