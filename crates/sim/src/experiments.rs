//! Every experiment of the paper's evaluation section, expressed as a
//! function from a [`Runner`] to a printable [`FigureData`].
//!
//! The functions share the runner's on-disk result cache, so figures that
//! reuse the same runs (7/9/10/11 share the single-core matrix, 8/9/10/11
//! the eight-core matrix) do not recompute them.
//!
//! Sweeps (Figs. 12–15) default to a representative subset (three
//! applications per single-core category, one mix per eight-core
//! category); set `FIGARO_FULL_SWEEPS=1` for the paper's full set.

use figaro_core::{FigCacheConfig, ReplacementPolicy};
use figaro_dram::{MapKind, MapScheme};
use figaro_memctrl::SchedPolicyKind;
use figaro_workloads::{
    app_profiles, eight_core_mixes, multithreaded_profiles, phased_profiles, profile_by_name,
    AppProfile, ArrivalKind, Mix, MixCategory, PageMapKind,
};

use crate::config::{ConfigKind, SystemConfig};
use crate::metrics::{geomean, safe_ratio, weighted_speedup};
use crate::report::FigureData;
use crate::runner::{RunSummary, Runner, Scenario, ScenarioWorkload};

fn full_sweeps() -> bool {
    std::env::var("FIGARO_FULL_SWEEPS").is_ok_and(|v| v == "1")
}

/// Applications used in sweep figures (subset unless `FIGARO_FULL_SWEEPS=1`).
#[must_use]
pub fn sweep_apps() -> Vec<AppProfile> {
    let all = app_profiles();
    if full_sweeps() {
        return all;
    }
    let pick = ["gcc", "tpcc64", "h264ref", "mcf", "zeusmp", "libquantum"];
    all.into_iter().filter(|p| pick.contains(&p.name)).collect()
}

/// Mixes used in sweep figures (the 25% and 100% extremes unless
/// `FIGARO_FULL_SWEEPS=1`, which runs all twenty).
#[must_use]
pub fn sweep_mixes() -> Vec<Mix> {
    let all = eight_core_mixes();
    if full_sweeps() {
        return all;
    }
    [MixCategory::Intensive25, MixCategory::Intensive100]
        .iter()
        .map(|c| all.iter().find(|m| m.category == *c).expect("every category has mixes").clone())
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

/// Appends a warning note when any of `results` hit its cycle cap short
/// of the instruction target — a truncated point must not read as a
/// measurement.
fn note_truncations<'a>(fig: &mut FigureData, results: impl IntoIterator<Item = &'a RunSummary>) {
    let truncated = results.into_iter().filter(|s| s.truncated_cores > 0).count();
    if truncated > 0 {
        fig.push_note(format!(
            "WARNING: {truncated} run(s) hit the cycle cap before the instruction target; \
             their cells are depressed, not measured"
        ));
    }
}

/// Runs `apps × kinds` single-core points in parallel; result indexed
/// `[app][kind]` (delegates to the runner's rayon batch API).
fn single_matrix(
    runner: &Runner,
    apps: &[AppProfile],
    kinds: &[ConfigKind],
) -> Vec<Vec<RunSummary>> {
    runner.run_single_matrix(apps, kinds)
}

/// Runs `mixes × kinds` eight-core points in parallel; indexed
/// `[mix][kind]` (delegates to the runner's rayon batch API).
fn mix_matrix(runner: &Runner, mixes: &[Mix], kinds: &[ConfigKind]) -> Vec<Vec<RunSummary>> {
    runner.run_mix_matrix(mixes, kinds)
}

/// Normalized weighted speedup of `summary` vs `base` for `mix`, using
/// alone-IPCs from the runner.
///
/// # Panics
///
/// Panics on a non-positive alone IPC: a degenerate (truncated) alone
/// run would silently contribute `0` through [`weighted_speedup`]'s
/// NaN-proofing and turn a figure cell into fiction — at the
/// figure-builder layer that must stay a loud failure.
fn ws_speedup(runner: &Runner, mix: &Mix, summary: &RunSummary, base: &RunSummary) -> f64 {
    let alone: Vec<f64> = mix.apps.iter().map(|p| runner.alone_ipc(p)).collect();
    assert!(
        alone.iter().all(|&a| a > 0.0 && a.is_finite()),
        "alone IPC must be positive (truncated alone run for {}?)",
        mix.name
    );
    weighted_speedup(&summary.ipc, &alone) / weighted_speedup(&base.ipc, &alone)
}

/// **Figure 7**: single-core speedup over `Base` for the five mechanisms,
/// per application and per intensity category.
pub fn fig07(runner: &Runner) -> FigureData {
    let apps = app_profiles();
    let kinds: Vec<ConfigKind> =
        std::iter::once(ConfigKind::Base).chain(ConfigKind::figure78_set()).collect();
    let matrix = single_matrix(runner, &apps, &kinds);
    let labels: Vec<String> = kinds[1..].iter().map(|k| k.label().to_string()).collect();
    let mut fig = FigureData::new("Figure 7: single-core speedup over Base", labels);
    let mut per_cat: [Vec<Vec<f64>>; 2] = [vec![], vec![]];
    for (a, app) in apps.iter().enumerate() {
        let base_ipc = matrix[a][0].ipc[0];
        let speedups: Vec<f64> = (1..kinds.len()).map(|k| matrix[a][k].ipc[0] / base_ipc).collect();
        per_cat[usize::from(app.memory_intensive)].push(speedups.clone());
        fig.push_row(app.name, speedups);
    }
    for (idx, label) in [(0usize, "geomean non-intensive"), (1, "geomean intensive")] {
        let cols = kinds.len() - 1;
        let g: Vec<f64> = (0..cols)
            .map(|k| geomean(&per_cat[idx].iter().map(|v| v[k]).collect::<Vec<_>>()))
            .collect();
        fig.push_row(label, g);
    }
    note_truncations(&mut fig, matrix.iter().flatten());
    fig.push_note(
        "paper: FIGCache-Fast averages +1.5% (up to +2.9%) on non-intensive and +16.1% (up to +22.5%) on intensive applications",
    );
    fig.push_note(
        "paper: FIGCache-Slow retains most of FIGCache-Fast's gain (avg +5.9% single-core)",
    );
    fig
}

/// **Figure 8**: eight-core weighted speedup over `Base` per mix and per
/// intensity category, plus the Section 8.1 aggregates.
pub fn fig08(runner: &Runner) -> FigureData {
    let mixes = eight_core_mixes();
    let kinds: Vec<ConfigKind> =
        std::iter::once(ConfigKind::Base).chain(ConfigKind::figure78_set()).collect();
    // Warm the alone-IPC cache in parallel first.
    let _ = runner.alone_ipc_batch(&app_profiles());
    let matrix = mix_matrix(runner, &mixes, &kinds);
    let labels: Vec<String> = kinds[1..].iter().map(|k| k.label().to_string()).collect();
    let mut fig = FigureData::new("Figure 8: eight-core weighted speedup over Base", labels);
    let mut per_cat: std::collections::BTreeMap<MixCategory, Vec<Vec<f64>>> = Default::default();
    for (m, mix) in mixes.iter().enumerate() {
        let speedups: Vec<f64> = (1..kinds.len())
            .map(|k| ws_speedup(runner, mix, &matrix[m][k], &matrix[m][0]))
            .collect();
        per_cat.entry(mix.category).or_default().push(speedups.clone());
        fig.push_row(&mix.name, speedups);
    }
    let cols = kinds.len() - 1;
    let mut overall: Vec<Vec<f64>> = vec![Vec::new(); cols];
    for cat in MixCategory::all() {
        let rows = &per_cat[&cat];
        let avg: Vec<f64> =
            (0..cols).map(|k| mean(&rows.iter().map(|v| v[k]).collect::<Vec<_>>())).collect();
        for (k, v) in avg.iter().enumerate() {
            overall[k].extend(rows.iter().map(|r| r[k]));
            let _ = v;
        }
        fig.push_row(format!("avg {} intensive", cat.label()), avg);
    }
    fig.push_row("avg all 20 mixes", (0..cols).map(|k| mean(&overall[k])).collect());
    note_truncations(&mut fig, matrix.iter().flatten());
    fig.push_note("paper: FIGCache-Fast +3.9%/+12.9%/+21.8%/+27.1% for 25/50/75/100% categories, +16.3% overall");
    fig.push_note("paper: FIGCache-Fast beats LISA-VILLA by 4.7% and is within 1.9% of Ideal / 4.6% of LL-DRAM");
    fig
}

/// **Figure 9**: in-DRAM cache hit rate of LISA-VILLA vs FIGCache-Slow vs
/// FIGCache-Fast, averaged per workload category.
pub fn fig09(runner: &Runner) -> FigureData {
    let kinds = vec![ConfigKind::LisaVilla, ConfigKind::FigCacheSlow, ConfigKind::FigCacheFast];
    let labels: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    let mut fig = FigureData::new("Figure 9: in-DRAM cache hit rate (%)", labels);
    category_metric(runner, &kinds, &mut fig, |s| s.cache_hit_rate * 100.0);
    fig.push_note("paper: all three mechanisms show comparable cache hit rates; FIGCache-Slow slightly below FIGCache-Fast (its own subarray is uncacheable)");
    fig
}

/// **Figure 10**: DRAM row-buffer hit rate per category.
pub fn fig10(runner: &Runner) -> FigureData {
    let kinds = vec![
        ConfigKind::Base,
        ConfigKind::LisaVilla,
        ConfigKind::FigCacheSlow,
        ConfigKind::FigCacheFast,
    ];
    let labels: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    let mut fig = FigureData::new("Figure 10: DRAM row-buffer hit rate (%)", labels);
    category_metric(runner, &kinds, &mut fig, |s| s.row_hit_rate * 100.0);
    fig.push_note("paper: FIGCache-Slow/Fast sit ~18% above LISA-VILLA — segment co-location raises row locality, whole-row caching cannot");
    fig
}

/// Shared shape of Figs. 9/10: categories × configs, single-core and
/// eight-core.
fn category_metric(
    runner: &Runner,
    kinds: &[ConfigKind],
    fig: &mut FigureData,
    metric: impl Fn(&RunSummary) -> f64,
) {
    let apps = app_profiles();
    let matrix = single_matrix(runner, &apps, kinds);
    for (intensive, label) in [(false, "1-core non-intensive"), (true, "1-core intensive")] {
        let vals: Vec<f64> = (0..kinds.len())
            .map(|k| {
                mean(
                    &apps
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.memory_intensive == intensive)
                        .map(|(i, _)| metric(&matrix[i][k]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        fig.push_row(label, vals);
    }
    let mixes = eight_core_mixes();
    let mix_mat = mix_matrix(runner, &mixes, kinds);
    for cat in MixCategory::all() {
        let vals: Vec<f64> = (0..kinds.len())
            .map(|k| {
                mean(
                    &mixes
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.category == cat)
                        .map(|(i, _)| metric(&mix_mat[i][k]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        fig.push_row(format!("8-core {}", cat.label()), vals);
    }
    note_truncations(fig, matrix.iter().chain(mix_mat.iter()).flatten());
}

/// **Figure 11**: system energy breakdown (CPU / L1&L2 / LLC / off-chip /
/// DRAM) normalized to each category's `Base` total.
pub fn fig11(runner: &Runner) -> FigureData {
    let kinds = vec![ConfigKind::Base, ConfigKind::FigCacheSlow, ConfigKind::FigCacheFast];
    let columns: Vec<String> = ["CPU", "L1&L2", "LLC", "Off-Chip", "DRAM", "Total"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let mut fig = FigureData::new("Figure 11: system energy normalized to Base", columns);
    let apps = app_profiles();
    let matrix = single_matrix(runner, &apps, &kinds);
    let mixes = eight_core_mixes();
    let mix_mat = mix_matrix(runner, &mixes, &kinds);

    let mut add_group = |label: &str, idxs: &[usize], mat: &[Vec<RunSummary>]| {
        // Average each config's components normalized to the same
        // workload's Base total.
        for (k, kind) in kinds.iter().enumerate() {
            let mut comps = [0.0f64; 6];
            for &i in idxs {
                let base_total = mat[i][0].energy_total().max(1e-12);
                let (a, b, c, d, e) = mat[i][k].energy;
                for (slot, v) in [a, b, c, d, e, a + b + c + d + e].iter().enumerate() {
                    comps[slot] += v / base_total;
                }
            }
            for c in &mut comps {
                *c /= idxs.len() as f64;
            }
            fig.push_row(format!("{label} / {}", kind.label()), comps.to_vec());
        }
    };
    for (intensive, label) in [(false, "1-core non-int"), (true, "1-core intensive")] {
        let idxs: Vec<usize> = apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.memory_intensive == intensive)
            .map(|(i, _)| i)
            .collect();
        add_group(label, &idxs, &matrix);
    }
    for cat in MixCategory::all() {
        let idxs: Vec<usize> =
            mixes.iter().enumerate().filter(|(_, m)| m.category == cat).map(|(i, _)| i).collect();
        add_group(&format!("8-core {}", cat.label()), &idxs, &mix_mat);
    }
    note_truncations(&mut fig, matrix.iter().chain(mix_mat.iter()).flatten());
    fig.push_note("paper: FIGCache-Slow/Fast cut 1-core intensive system energy by 6.9%/11.1%; savings come from fewer ACT/PRE (row hits) and shorter runtime");
    fig.push_note("paper: 8-core DRAM energy drops 7.8% on average under FIGCache-Fast");
    fig
}

/// **Figure 12**: sensitivity to the number of fast subarrays
/// (1/2/4/8/16) with `LL-DRAM` as the bound.
pub fn fig12(runner: &Runner) -> FigureData {
    let points: Vec<(String, ConfigKind)> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&n| {
            let SystemConfig { kind, .. } = SystemConfig::fig12_point(1, n);
            (format!("{n} FS"), kind)
        })
        .chain([(String::from("LL-DRAM"), ConfigKind::LlDram)])
        .collect();
    sweep_figure(runner, "Figure 12: speedup vs number of fast subarrays", &points, &[
        "paper: gains grow with cache capacity but saturate — 2→4 FS adds <2.7%, 4→8 adds <0.8% (100% intensive)",
        "paper picks 2 fast subarrays as the area/performance balance",
    ])
}

/// **Figure 13**: sensitivity to the row-segment size (512 B … 8 kB) with
/// LISA-VILLA for reference.
pub fn fig13(runner: &Runner) -> FigureData {
    let points: Vec<(String, ConfigKind)> =
        [(8u32, "512B"), (16, "1KB"), (32, "2KB"), (64, "4KB"), (128, "8KB")]
            .iter()
            .map(|&(blocks, label)| {
                let SystemConfig { kind, .. } = SystemConfig::fig13_point(1, blocks);
                (label.to_string(), kind)
            })
            .chain([(String::from("LISA-VILLA"), ConfigKind::LisaVilla)])
            .collect();
    sweep_figure(runner, "Figure 13: speedup vs row-segment size", &points, &[
        "paper: performance peaks at 1 kB segments (1/8 row)",
        "paper: whole-row (8 kB) segments fall slightly below LISA-VILLA — 128 RELOCs per relocation outweigh the benefit",
    ])
}

/// **Figure 14**: replacement policies (Random / LRU / SegmentBenefit /
/// RowBenefit).
pub fn fig14(runner: &Runner) -> FigureData {
    let points: Vec<(String, ConfigKind)> = [
        ("Random", ReplacementPolicy::Random),
        ("LRU", ReplacementPolicy::Lru),
        ("SegmentBenefit", ReplacementPolicy::SegmentBenefit),
        ("RowBenefit", ReplacementPolicy::RowBenefit),
    ]
    .iter()
    .map(|&(label, p)| {
        let SystemConfig { kind, .. } = SystemConfig::fig14_point(1, p);
        (label.to_string(), kind)
    })
    .collect();
    sweep_figure(runner, "Figure 14: speedup vs replacement policy", &points, &[
        "paper: every policy beats Base by >12.5%; RowBenefit matches or beats all, +4.1% over SegmentBenefit at 100% intensity",
    ])
}

/// **Figure 15**: insertion thresholds 1/2/4/8.
pub fn fig15(runner: &Runner) -> FigureData {
    let points: Vec<(String, ConfigKind)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| {
            let SystemConfig { kind, .. } = SystemConfig::fig15_point(1, n);
            (format!("Threshold {n}"), kind)
        })
        .collect();
    sweep_figure(runner, "Figure 15: speedup vs insertion threshold", &points, &[
        "paper: threshold 1 (insert-any-miss) is best for intensive workloads; higher thresholds lose cache hits",
    ])
}

/// Shared sweep shape: categories as rows, sweep points as columns,
/// speedup over Base as the value.
fn sweep_figure(
    runner: &Runner,
    title: &str,
    points: &[(String, ConfigKind)],
    notes: &[&str],
) -> FigureData {
    let apps = sweep_apps();
    let mixes = sweep_mixes();
    let kinds: Vec<ConfigKind> =
        std::iter::once(ConfigKind::Base).chain(points.iter().map(|(_, k)| k.clone())).collect();
    let columns: Vec<String> = points.iter().map(|(l, _)| l.clone()).collect();
    let mut fig = FigureData::new(title, columns);
    let matrix = single_matrix(runner, &apps, &kinds);
    for (intensive, label) in [(false, "1-core non-intensive"), (true, "1-core intensive")] {
        let idxs: Vec<usize> = apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.memory_intensive == intensive)
            .map(|(i, _)| i)
            .collect();
        let vals: Vec<f64> = (1..kinds.len())
            .map(|k| {
                geomean(
                    &idxs
                        .iter()
                        .map(|&i| matrix[i][k].ipc[0] / matrix[i][0].ipc[0])
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        fig.push_row(label, vals);
    }
    let mix_mat = mix_matrix(runner, &mixes, &kinds);
    let categories: Vec<MixCategory> = {
        let mut cats: Vec<MixCategory> = mixes.iter().map(|m| m.category).collect();
        cats.sort();
        cats.dedup();
        cats
    };
    for cat in categories {
        let idxs: Vec<usize> =
            mixes.iter().enumerate().filter(|(_, m)| m.category == cat).map(|(i, _)| i).collect();
        let vals: Vec<f64> = (1..kinds.len())
            .map(|k| {
                mean(
                    &idxs
                        .iter()
                        .map(|&i| ws_speedup(runner, &mixes[i], &mix_mat[i][k], &mix_mat[i][0]))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        fig.push_row(format!("8-core {}", cat.label()), vals);
    }
    note_truncations(&mut fig, matrix.iter().chain(mix_mat.iter()).flatten());
    for n in notes {
        fig.push_note(*n);
    }
    if !full_sweeps() {
        fig.push_note("sweep subset in effect (set FIGARO_FULL_SWEEPS=1 for all 20 apps/mixes)");
    }
    fig
}

/// The sensitivity-sweep grid: `(channels, MSHRs/core)` system shapes ×
/// cache-segment sizes (blocks per segment). A subset unless
/// `FIGARO_FULL_SWEEPS=1`.
#[must_use]
pub fn sensitivity_grid() -> (Vec<(u32, usize)>, Vec<u32>) {
    if full_sweeps() {
        (
            [1u32, 2, 4].iter().flat_map(|&c| [4usize, 8, 16].map(|m| (c, m))).collect(),
            vec![8, 16, 32],
        )
    } else {
        (vec![(1, 4), (1, 8), (4, 8), (4, 16)], vec![8, 16])
    }
}

/// **Sensitivity sweep** (beyond the paper's figures): normalized
/// weighted speedup of FIGCache over `Base` across channels × MSHRs ×
/// cache-segment size, on one 100%-intensive eight-core mix driven by
/// **streaming** generators through the scenario batch API. Rows are
/// system shapes, columns segment sizes.
pub fn sensitivity_sweep(runner: &Runner) -> FigureData {
    let (shapes, segments) = sensitivity_grid();
    let mix = eight_core_mixes()
        .into_iter()
        .find(|m| m.category == MixCategory::Intensive100)
        .expect("every category has mixes");
    let alone: Vec<f64> = runner.alone_ipc_batch(&mix.apps);
    assert!(
        alone.iter().all(|&a| a > 0.0 && a.is_finite()),
        "alone IPC must be positive (truncated alone run?)"
    );
    let scenario = |kind: ConfigKind, label: &str, &(ch, mshrs): &(u32, usize)| {
        Scenario::new(
            format!("sens-{}-{label}", mix.name),
            kind,
            ScenarioWorkload::Mix(mix.clone()),
        )
        .with_channels(ch)
        .with_mshrs(mshrs)
    };
    // One Base run per shape (the normalization denominator) plus one
    // FIGCache run per shape × segment size, all in one parallel batch.
    let mut jobs: Vec<Scenario> =
        shapes.iter().map(|s| scenario(ConfigKind::Base, "base", s)).collect();
    for &blocks in &segments {
        let kind = ConfigKind::FigCacheCustom(FigCacheConfig {
            blocks_per_segment: blocks,
            ..FigCacheConfig::paper_fast()
        });
        jobs.extend(shapes.iter().map(|s| scenario(kind.clone(), &format!("seg{blocks}"), s)));
    }
    let results = runner.run_scenario_batch(&jobs);
    let (base_runs, fig_runs) = results.split_at(shapes.len());
    let columns: Vec<String> = segments.iter().map(|b| format!("{} B", b * 64)).collect();
    let mut fig = FigureData::new(
        "Sensitivity: weighted speedup over Base, channels x MSHRs x segment size",
        columns,
    );
    for (si, &(ch, mshrs)) in shapes.iter().enumerate() {
        let base_ws = weighted_speedup(&base_runs[si].ipc, &alone);
        let vals: Vec<f64> = (0..segments.len())
            .map(|bi| {
                let s = &fig_runs[bi * shapes.len() + si];
                safe_ratio(weighted_speedup(&s.ipc, &alone), base_ws)
            })
            .collect();
        fig.push_row(format!("{ch} ch / {mshrs} MSHR"), vals);
    }
    note_truncations(&mut fig, &results);
    fig.push_note("streaming scenario runs (no materialized traces); one Intensive100 mix");
    if !full_sweeps() {
        fig.push_note("sweep subset in effect (set FIGARO_FULL_SWEEPS=1 for the 3x3x3 grid)");
    }
    fig
}

/// **Phased workloads**: FIGCache-Fast vs Base on the phase-switching
/// streaming workloads (hot-set / streaming / pointer-chase schedules) —
/// the regime changes that stress insertion and replacement.
pub fn phased_workloads(runner: &Runner) -> FigureData {
    let profiles = phased_profiles();
    let mut fig = FigureData::new(
        "Phased workloads: FIGCache-Fast speedup over Base (single core, streamed)",
        vec!["speedup".into(), "cache hit rate".into()],
    );
    let jobs: Vec<Scenario> = profiles
        .iter()
        .flat_map(|p| {
            let workload = ScenarioWorkload::Phased(vec![p.clone()]);
            [
                Scenario::new(format!("{}-base", p.name), ConfigKind::Base, workload.clone()),
                Scenario::new(format!("{}-fig", p.name), ConfigKind::FigCacheFast, workload),
            ]
        })
        .collect();
    let results = runner.run_scenario_batch(&jobs);
    for (i, p) in profiles.iter().enumerate() {
        let (base, fig_fast) = (&results[i * 2], &results[i * 2 + 1]);
        fig.push_row(
            &p.name,
            vec![safe_ratio(fig_fast.ipc[0], base.ipc[0]), fig_fast.cache_hit_rate],
        );
    }
    note_truncations(&mut fig, &results);
    fig.push_note("phase switches churn the hot set; insertion/replacement must keep up");
    fig
}

/// The scheduler policies compared by [`scheduler_sweep`]: the FR-FCFS
/// default, strict FCFS, a capped FR-FCFS, and tuned write-drain
/// watermarks.
#[must_use]
pub fn sched_policies() -> Vec<SchedPolicyKind> {
    vec![
        SchedPolicyKind::FrFcfs,
        SchedPolicyKind::Fcfs,
        SchedPolicyKind::FrFcfsCap { cap: 4 },
        SchedPolicyKind::WriteDrain { high: 48, low: 8 },
    ]
}

/// **Scheduler sweep**: policy × mechanism × workload grid over the
/// streamed eight-core mixes. Rows are `policy / mechanism` pairs;
/// columns report throughput (Σ IPC) and DRAM row-hit rate per mix —
/// the two axes scheduler choices move. Export with
/// [`FigureData::to_csv`]. Mix subset unless `FIGARO_FULL_SWEEPS=1`
/// (one mix per intensity category).
pub fn scheduler_sweep(runner: &Runner) -> FigureData {
    scheduler_sweep_with(runner, None)
}

/// [`scheduler_sweep`] with an explicit per-core instruction target
/// (the CI fast tier runs a tiny grid this way; `None` uses the
/// runner scale's per-profile targets).
pub fn scheduler_sweep_with(runner: &Runner, target_insts: Option<u64>) -> FigureData {
    let policies = sched_policies();
    let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast];
    let all = eight_core_mixes();
    let cats: Vec<MixCategory> = if full_sweeps() {
        MixCategory::all().to_vec()
    } else {
        vec![MixCategory::Intensive100, MixCategory::Intensive25]
    };
    let mixes: Vec<Mix> = cats
        .iter()
        .map(|c| all.iter().find(|m| m.category == *c).expect("every category has mixes").clone())
        .collect();
    let mut jobs: Vec<Scenario> = Vec::new();
    for policy in &policies {
        for kind in &kinds {
            for mix in &mixes {
                let mut sc = Scenario::new(
                    format!("sched-{}-{}", policy.label(), mix.name),
                    kind.clone(),
                    ScenarioWorkload::Mix(mix.clone()),
                )
                .with_sched(*policy);
                if let Some(t) = target_insts {
                    sc = sc.with_target_insts(t);
                }
                jobs.push(sc);
            }
        }
    }
    let results = runner.run_scenario_batch(&jobs);
    let mut columns = Vec::new();
    for mix in &mixes {
        columns.push(format!("{} ipc", mix.name));
        columns.push(format!("{} row-hit", mix.name));
    }
    let mut fig = FigureData::new(
        "Scheduler sweep: policy x mechanism x mix (throughput, row-hit rate)",
        columns,
    );
    let mut idx = 0;
    for policy in &policies {
        for kind in &kinds {
            let mut vals = Vec::new();
            for _ in &mixes {
                let s = &results[idx];
                idx += 1;
                vals.push(s.ipc.iter().sum::<f64>());
                vals.push(s.row_hit_rate);
            }
            fig.push_row(format!("{} / {}", policy.label(), kind.label()), vals);
        }
    }
    note_truncations(&mut fig, &results);
    fig.push_note("frfcfs is the paper's controller; every policy runs the identical workload");
    if !full_sweeps() {
        fig.push_note("mix subset in effect (set FIGARO_FULL_SWEEPS=1 for all four categories)");
    }
    fig
}

/// The address mappings compared by [`mapping_sweep`]: the paper's
/// default slice, channel/bank-first block interleaving, the
/// bank-sequential row-interleaved scheme, and the XOR bank hash over
/// the paper slice.
#[must_use]
pub fn mapping_kinds() -> Vec<MapKind> {
    vec![
        MapKind::paper(),
        MapKind { scheme: MapScheme::ChFirst, xor_bank: false },
        MapKind { scheme: MapScheme::RowInt, xor_bank: false },
        MapKind { scheme: MapScheme::Paper, xor_bank: true },
    ]
}

/// The OS page-placement policies compared by [`mapping_sweep`]:
/// identity, seeded-random frame allocation, and 16-color bank
/// coloring.
#[must_use]
pub fn page_policies() -> Vec<PageMapKind> {
    vec![PageMapKind::Identity, PageMapKind::Random { seed: 1 }, PageMapKind::Color { colors: 16 }]
}

/// **Mapping sweep**: address-mapping × page-placement × mechanism grid
/// over streamed eight-core mixes. Rows are `mapping / page / mechanism`
/// triples; columns report throughput (Σ IPC), DRAM row-hit rate and
/// in-DRAM cache hit rate per mix — the axes data placement moves.
/// Export with [`FigureData::to_csv`]. Mix subset unless
/// `FIGARO_FULL_SWEEPS=1`.
pub fn mapping_sweep(runner: &Runner) -> FigureData {
    mapping_sweep_with(runner, None)
}

/// [`mapping_sweep`] with an explicit per-core instruction target (the
/// CI fast tier runs a tiny grid this way; `None` uses the runner
/// scale's per-profile targets).
pub fn mapping_sweep_with(runner: &Runner, target_insts: Option<u64>) -> FigureData {
    let mappings = mapping_kinds();
    let pages = page_policies();
    let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast];
    let all = eight_core_mixes();
    let cats: Vec<MixCategory> = if full_sweeps() {
        MixCategory::all().to_vec()
    } else {
        vec![MixCategory::Intensive100, MixCategory::Intensive25]
    };
    let mixes: Vec<Mix> = cats
        .iter()
        .map(|c| all.iter().find(|m| m.category == *c).expect("every category has mixes").clone())
        .collect();
    let mut jobs: Vec<Scenario> = Vec::new();
    for map in &mappings {
        for page in &pages {
            for kind in &kinds {
                for mix in &mixes {
                    let mut sc = Scenario::new(
                        format!("mapsw-{}-{}-{}", map.label(), page.label(), mix.name),
                        kind.clone(),
                        ScenarioWorkload::Mix(mix.clone()),
                    )
                    .with_mapping(*map)
                    .with_page_map(*page);
                    if let Some(t) = target_insts {
                        sc = sc.with_target_insts(t);
                    }
                    jobs.push(sc);
                }
            }
        }
    }
    let results = runner.run_scenario_batch(&jobs);
    let mut columns = Vec::new();
    for mix in &mixes {
        columns.push(format!("{} ipc", mix.name));
        columns.push(format!("{} row-hit", mix.name));
        columns.push(format!("{} cache-hit", mix.name));
    }
    let mut fig = FigureData::new(
        "Mapping sweep: address mapping x page placement x mechanism \
         (throughput, row-hit, cache-hit)",
        columns,
    );
    let mut idx = 0;
    for map in &mappings {
        for page in &pages {
            for kind in &kinds {
                let mut vals = Vec::new();
                for _ in &mixes {
                    let s = &results[idx];
                    idx += 1;
                    vals.push(s.ipc.iter().sum::<f64>());
                    vals.push(s.row_hit_rate);
                    vals.push(s.cache_hit_rate);
                }
                fig.push_row(
                    format!("{} / {} / {}", map.label(), page.label(), kind.label()),
                    vals,
                );
            }
        }
    }
    note_truncations(&mut fig, &results);
    fig.push_note(
        "paper/ident is the paper's placement; every cell runs the identical streamed workload",
    );
    if !full_sweeps() {
        fig.push_note("mix subset in effect (set FIGARO_FULL_SWEEPS=1 for all four categories)");
    }
    fig
}

/// The offered-load ladder swept by [`serving_sweep`]: Poisson arrival
/// processes from light load (mean gap 256 non-memory instructions per
/// memory op) down past the saturation knee (mean gap 8).
#[must_use]
pub fn serving_loads() -> Vec<ArrivalKind> {
    [256, 128, 64, 32, 16, 8].iter().map(|&g| ArrivalKind::Poisson { mean_gap: g }).collect()
}

/// The scheduling policies compared by [`serving_sweep`]: the FR-FCFS
/// default against strict FCFS (the pair whose tail behavior diverges
/// most under load — row-hit reordering helps the mean and can hurt the
/// tail).
#[must_use]
pub fn serving_scheds() -> Vec<SchedPolicyKind> {
    vec![SchedPolicyKind::FrFcfs, SchedPolicyKind::Fcfs]
}

/// **Serving sweep**: offered load × mechanism × scheduler over an
/// open-loop four-core `mcf` workload on one memory channel. Each row is
/// one `(mechanism / policy @ load)` point; columns report offered load
/// (memory ops injected per CPU kilo-cycle, all cores), achieved DRAM
/// read throughput (reads served per kilo-cycle), and the read-latency
/// distribution (mean / p50 / p99 / p999 in bus cycles). Export with
/// [`FigureData::to_csv`].
///
/// The open-loop arrivals make this a *service* study: past the knee the
/// cores keep injecting (MSHR back-pressure permitting) and queues grow,
/// so achieved throughput flattens while the tail percentiles blow up —
/// the regime where mechanism/policy orderings can invert relative to
/// their mean-latency orderings.
pub fn serving_sweep(runner: &Runner) -> FigureData {
    serving_sweep_with(runner, None)
}

/// [`serving_sweep`] with an explicit **memory-op** budget per core
/// (the CI fast tier runs a tiny grid this way; `None` derives one from
/// the runner scale). The per-point instruction target is
/// `ops · (mean_gap + 1)`, which holds the sampled-op count roughly
/// constant across load points instead of starving the light-load end.
pub fn serving_sweep_with(runner: &Runner, ops_per_core: Option<u64>) -> FigureData {
    let loads = serving_loads();
    let scheds = serving_scheds();
    let kinds = [ConfigKind::Base, ConfigKind::FigCacheFast];
    let cores = 4usize;
    let apps = vec![profile_by_name("mcf").expect("mcf profile exists"); cores];
    let ops = ops_per_core.unwrap_or(runner.scale().target_insts() / 100);
    let width = SystemConfig::paper(cores, ConfigKind::Base).core.width as f64;
    let mut jobs: Vec<Scenario> = Vec::new();
    for kind in &kinds {
        for sched in &scheds {
            for load in &loads {
                let insts = (ops as f64 * (load.mean_gap() + 1.0)) as u64;
                jobs.push(
                    Scenario::new(
                        format!("serve-{}-{}", sched.label(), load.label()),
                        kind.clone(),
                        ScenarioWorkload::Apps(apps.clone()),
                    )
                    .with_channels(1) // every request contends for one controller
                    .with_sched(*sched)
                    .with_arrival(*load)
                    .with_target_insts(insts),
                );
            }
        }
    }
    let results = runner.run_scenario_batch(&jobs);
    let mut fig = FigureData::new(
        "Serving sweep: offered load x mechanism x scheduler \
         (throughput, read-latency mean and tail)",
        vec![
            "offered ops/kcyc".into(),
            "achieved reads/kcyc".into(),
            "avg lat".into(),
            "p50 lat".into(),
            "p99 lat".into(),
            "p999 lat".into(),
        ],
    );
    let mut idx = 0;
    for kind in &kinds {
        for sched in &scheds {
            for load in &loads {
                let s = &results[idx];
                idx += 1;
                let offered = cores as f64 * width * 1000.0 / (load.mean_gap() + 1.0);
                let achieved = s.reads_served as f64 * 1000.0 / s.cpu_cycles.max(1) as f64;
                fig.push_row(
                    format!("{} / {} @ {}", kind.label(), sched.label(), load.label()),
                    vec![
                        offered,
                        achieved,
                        s.avg_read_latency,
                        s.read_lat_p50 as f64,
                        s.read_lat_p99 as f64,
                        s.read_lat_p999 as f64,
                    ],
                );
            }
        }
    }
    note_truncations(&mut fig, &results);
    fig.push_note(
        "offered counts injected memory ops (the cache hierarchy absorbs a share); \
         achieved counts DRAM reads served — the knee is where it stops tracking offered",
    );
    fig.push_note("p50/p99/p999 are histogram bucket floors (<= 12.5% quantization error)");
    fig
}

/// Long-run streaming scenarios: `ops_per_core` memory operations per
/// core on 100%- and 25%-intensive mixes, streamed end to end (memory
/// use is independent of the op count). These back the
/// `FIGARO_LONG_RUN` tier; at default scales use
/// [`sensitivity_sweep`]-sized runs instead.
#[must_use]
pub fn long_run_scenarios(ops_per_core: u64) -> Vec<Scenario> {
    let mixes = eight_core_mixes();
    [MixCategory::Intensive100, MixCategory::Intensive25]
        .iter()
        .map(|cat| {
            let mix = mixes
                .iter()
                .find(|m| m.category == *cat)
                .expect("every category has mixes")
                .clone();
            Scenario::long_run(
                format!("long-{}", mix.name),
                ConfigKind::FigCacheFast,
                ScenarioWorkload::Mix(mix),
                ops_per_core,
            )
        })
        .collect()
}

/// **Table 2**: measured MPKI and intensity classification of every
/// application on the `Base` system.
pub fn tab2(runner: &Runner) -> FigureData {
    let apps = app_profiles();
    let kinds = vec![ConfigKind::Base];
    let matrix = single_matrix(runner, &apps, &kinds);
    let mut fig = FigureData::new(
        "Table 2: benchmark classification (MPKI, intensive=1)",
        vec!["MPKI".into(), "measured-intensive".into(), "paper-intensive".into()],
    );
    for (i, app) in apps.iter().enumerate() {
        let mpki = matrix[i][0].mpki[0];
        fig.push_row(
            app.name,
            vec![mpki, f64::from(u8::from(mpki > 10.0)), f64::from(u8::from(app.memory_intensive))],
        );
    }
    note_truncations(&mut fig, matrix.iter().flatten());
    fig.push_note("paper splits Table 2 at 10 LLC misses per kilo-instruction");
    fig
}

/// **Section 8.1, multithreaded**: canneal/fluidanimate/radix analogues,
/// execution-time improvement of FIGCache-Fast over Base.
pub fn multithreaded(runner: &Runner) -> FigureData {
    let profiles = multithreaded_profiles();
    let mut fig = FigureData::new(
        "Multithreaded workloads: FIGCache-Fast speedup over Base (execution time)",
        vec!["speedup".into()],
    );
    let jobs: Vec<(AppProfile, ConfigKind)> = profiles
        .iter()
        .flat_map(|p| [(*p, ConfigKind::Base), (*p, ConfigKind::FigCacheFast)])
        .collect();
    let results = runner.run_multithreaded_batch(&jobs);
    let mut speedups = Vec::new();
    for (i, p) in profiles.iter().enumerate() {
        let base = &results[i * 2];
        let fig_fast = &results[i * 2 + 1];
        let s = base.cpu_cycles as f64 / fig_fast.cpu_cycles.max(1) as f64;
        speedups.push(s);
        fig.push_row(p.name, vec![s]);
    }
    fig.push_row("average", vec![mean(&speedups)]);
    note_truncations(&mut fig, &results);
    fig.push_note("paper: +16.8% average over Base for the three multithreaded applications");
    fig
}

/// **Table 1**: the simulated system configuration as text.
#[must_use]
pub fn tab1_text() -> String {
    let cfg = SystemConfig::paper(8, ConfigKind::FigCacheFast);
    let dram = cfg.dram_config();
    format!(
        "== Table 1: simulated system ==\n\
         Processor     : {} cores, 3.2 GHz, {}-wide, {}-entry window, 8 MSHRs/core\n\
         Caches        : L1 {} kB {}-way | L2 {} kB {}-way | LLC {} MB {}-way, 64 B blocks\n\
         Controller    : {}-entry RD/WR queues, FR-FCFS, open page, write drain {}/{}\n\
         DRAM          : DDR4-1600, {} channel(s), {} rank, {}x{} banks, {} subarrays/bank,\n\
                         {} rows/subarray, 8 kB rows, tRCD/tRP/tRAS = {}/{}/{} cycles\n\
         Fast region   : tRCD/tRP/tRAS = {}/{}/{} cycles (-45.5%/-38.2%/-62.9%)\n\
         FIGARO        : RELOC 64 B @ {} cycle(s), back-to-back gap {} cycles\n\
         FIGCache      : segment 1 kB (16 blocks), 64 cache rows/bank (2 fast subarrays x 32)\n\
         LISA-VILLA    : 512 cache rows/bank (16 fast subarrays x 32, interleaved)\n",
        cfg.cores,
        cfg.core.width,
        cfg.core.window,
        cfg.hierarchy.l1.size_bytes / 1024,
        cfg.hierarchy.l1.ways,
        cfg.hierarchy.l2.size_bytes / 1024,
        cfg.hierarchy.l2.ways,
        cfg.hierarchy.llc.size_bytes / (1024 * 1024),
        cfg.hierarchy.llc.ways,
        cfg.mc.read_queue_cap,
        cfg.mc.wq_high,
        cfg.mc.wq_low,
        cfg.channels,
        dram.geometry.ranks,
        dram.geometry.bankgroups,
        dram.geometry.banks_per_group,
        dram.layout.regular_subarrays,
        dram.layout.rows_per_subarray,
        dram.timing.rcd,
        dram.timing.rp,
        dram.timing.ras,
        dram.timing.fast_rcd,
        dram.timing.fast_rp,
        dram.timing.fast_ras,
        dram.timing.reloc,
        dram.timing.reloc_to_reloc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_subsets_have_both_classes() {
        let apps = sweep_apps();
        assert!(apps.iter().any(|a| a.memory_intensive));
        assert!(apps.iter().any(|a| !a.memory_intensive));
        assert_eq!(sweep_mixes().len(), 2);
    }

    #[test]
    fn safe_ratio_never_emits_nan_or_inf() {
        assert_eq!(safe_ratio(2.0, 4.0), 0.5);
        assert_eq!(safe_ratio(1.0, 0.0), 0.0);
        assert_eq!(safe_ratio(0.0, 0.0), 0.0);
        assert_eq!(safe_ratio(f64::NAN, 1.0), 0.0);
        assert_eq!(safe_ratio(1.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn sensitivity_grid_subset_covers_both_axes() {
        let (shapes, segments) = sensitivity_grid();
        assert!(shapes.iter().any(|&(c, _)| c == 1) && shapes.iter().any(|&(c, _)| c > 1));
        assert!(shapes.iter().any(|&(_, m)| m < 8) && shapes.iter().any(|&(_, m)| m > 4));
        assert!(segments.len() >= 2);
    }

    #[test]
    fn long_run_scenarios_are_streamed_mixes_with_scaled_targets() {
        let scs = long_run_scenarios(100_000_000);
        assert_eq!(scs.len(), 2);
        for sc in &scs {
            assert_eq!(sc.workload.cores(), 8);
            let t = sc.target_insts.expect("long runs set a target");
            assert!(t >= 100_000_000, "{}: target {t} below the op count", sc.name);
        }
    }

    #[test]
    fn tab1_mentions_key_parameters() {
        let t = tab1_text();
        assert!(t.contains("DDR4-1600"));
        assert!(t.contains("RELOC"));
        assert!(t.contains("FR-FCFS"));
    }
}
