//! Plain-text tables for the benchmark harness: every figure prints a
//! `FigureData` with its measured series next to the paper's reported
//! values.

use std::fmt::Write as _;

/// One reproduced table/figure: a title, column labels, named rows of
/// numbers, and free-form notes (paper-vs-measured commentary).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// e.g. `"Figure 8: eight-core weighted speedup over Base"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, values)` — one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: Vec::new(), notes: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match columns");
        self.rows.push((label.into(), values));
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The value at (`row_label`, `column_label`), if present.
    #[must_use]
    pub fn value(&self, row_label: &str, column_label: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column_label)?;
        let (_, values) = self.rows.iter().find(|(r, _)| r == row_label)?;
        values.get(col).copied()
    }

    /// Renders the table as CSV (header row, then one line per row; notes
    /// become trailing `# comment` lines) — the machine-readable form of
    /// [`FigureData::render`] for sweep post-processing.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = write!(out, "{}", escape("row"));
        for c in &self.columns {
            let _ = write!(out, ",{}", escape(c));
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{}", escape(label));
            for v in values {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            // A multi-line note gets a `#` per line, so consumers that
            // skip comment lines never see a bare continuation line.
            for line in n.lines() {
                let _ = writeln!(out, "# {line}");
            }
        }
        out
    }

    /// Writes [`FigureData::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).chain([8]).max().unwrap_or(8);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(9)).collect();
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (v, w) in values.iter().zip(&col_w) {
                let _ = write!(out, "  {v:>w$.4}");
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

impl std::fmt::Display for FigureData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("Figure X", vec!["A".into(), "B".into()]);
        f.push_row("row1", vec![1.0, 2.0]);
        f.push_row("row2", vec![0.5, 1.25]);
        f.push_note("shape holds");
        f
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("row1"));
        assert!(text.contains("1.2500"));
        assert!(text.contains("note: shape holds"));
    }

    #[test]
    fn csv_has_header_rows_and_comment_notes() {
        let mut f = sample();
        f.push_note("with, comma");
        f.push_note("multi\nline");
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "row,A,B");
        assert_eq!(lines[1], "row1,1,2");
        assert_eq!(lines[2], "row2,0.5,1.25");
        // Every remaining line is a comment — a multi-line note must not
        // leak a bare continuation line into the data section.
        assert!(lines[3..].iter().all(|l| l.starts_with("# ")));
        assert_eq!(lines[3..].len(), 4);
    }

    #[test]
    fn csv_escapes_labels() {
        let mut f = FigureData::new("t", vec!["a,b".into()]);
        f.push_row("he said \"hi\"", vec![1.0]);
        let csv = f.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("row2", "B"), Some(1.25));
        assert_eq!(f.value("row2", "C"), None);
        assert_eq!(f.value("rowX", "A"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut f = sample();
        f.push_row("bad", vec![1.0]);
    }
}
