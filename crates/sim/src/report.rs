//! Plain-text tables for the benchmark harness: every figure prints a
//! `FigureData` with its measured series next to the paper's reported
//! values.

use std::fmt::Write as _;

/// One reproduced table/figure: a title, column labels, named rows of
/// numbers, and free-form notes (paper-vs-measured commentary).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// e.g. `"Figure 8: eight-core weighted speedup over Base"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, values)` — one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self { title: title.into(), columns, rows: Vec::new(), notes: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match columns");
        self.rows.push((label.into(), values));
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The value at (`row_label`, `column_label`), if present.
    #[must_use]
    pub fn value(&self, row_label: &str, column_label: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column_label)?;
        let (_, values) = self.rows.iter().find(|(r, _)| r == row_label)?;
        values.get(col).copied()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).chain([8]).max().unwrap_or(8);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(9)).collect();
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (v, w) in values.iter().zip(&col_w) {
                let _ = write!(out, "  {v:>w$.4}");
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

impl std::fmt::Display for FigureData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("Figure X", vec!["A".into(), "B".into()]);
        f.push_row("row1", vec![1.0, 2.0]);
        f.push_row("row2", vec![0.5, 1.25]);
        f.push_note("shape holds");
        f
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("row1"));
        assert!(text.contains("1.2500"));
        assert!(text.contains("note: shape holds"));
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("row2", "B"), Some(1.25));
        assert_eq!(f.value("row2", "C"), None);
        assert_eq!(f.value("rowX", "A"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut f = sample();
        f.push_row("bad", vec![1.0]);
    }
}
