//! System configurations: the six evaluated mechanisms plus the sweep
//! variants of Section 9.

use figaro_core::{
    CacheEngine, FigCacheConfig, FigCacheEngine, LisaVillaConfig, LisaVillaEngine, NullEngine,
};
use figaro_cpu::{CoreParams, HierarchyConfig};
use figaro_dram::{DramConfig, MapKind, SubarrayLayout};
use figaro_memctrl::{McConfig, SchedPolicyKind};
use figaro_workloads::PageMapKind;

/// Which simulation kernel drives [`crate::System::run`].
///
/// Both kernels produce **bit-identical** [`crate::RunStats`]; the event
/// kernel is the production default and the reference kernel exists as
/// the equivalence oracle (and for debugging the event kernel itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The original per-cycle loop: tick every component every CPU cycle.
    Reference,
    /// Next-event time skipping: advance the clock straight to the
    /// earliest component horizon, batching the skipped interval into the
    /// per-cycle stall counters.
    #[default]
    Event,
    /// The event kernel sharded per memory channel: controllers advance
    /// concurrently on a worker pool inside conservative lookahead
    /// windows, syncing with the serial core/hierarchy phase at
    /// bus-boundary epochs (see `crate::parallel`). Worker count comes
    /// from [`SystemConfig::threads`] / `FIGARO_THREADS`.
    Parallel,
    /// SMARTS-style sampled simulation: alternate detailed windows of
    /// `window` CPU cycles (the event kernel, bit-exact) with functional
    /// fast-forward intervals of `skip` CPU cycles whose instructions are
    /// consumed from the trace at the rate the last detailed window
    /// sustained, issuing **no** memory traffic. The only *approximate*
    /// kernel: its `RunStats` carry a `sampled` block and its results get
    /// their own cache keys — they must never stand in for a full run.
    Sampled {
        /// Detailed-window length (CPU cycles).
        window: u64,
        /// Fast-forwarded interval between windows (CPU cycles).
        skip: u64,
    },
}

/// Default detailed-window length for `FIGARO_KERNEL=sampled` (CPU
/// cycles).
pub const SAMPLED_DEFAULT_WINDOW: u64 = 100_000;
/// Default fast-forward interval for `FIGARO_KERNEL=sampled` (CPU
/// cycles): a 1:4 duty cycle, so ~20% of the run is simulated in detail.
pub const SAMPLED_DEFAULT_SKIP: u64 = 400_000;

impl Kernel {
    /// Reads `FIGARO_KERNEL` (`event` | `reference`/`ref` |
    /// `parallel`/`par` | `sampled[:window,skip]`), defaulting to
    /// [`Kernel::Event`] when unset. The variable is read once per
    /// process ([`SystemConfig::paper`] sits on system-construction
    /// paths).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: this selector exists to pick the
    /// equivalence oracle, so a typo must fail loudly rather than
    /// silently run the kernel under suspicion.
    #[must_use]
    pub fn from_env() -> Self {
        static KERNEL: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();
        *KERNEL.get_or_init(|| {
            let raw = std::env::var("FIGARO_KERNEL").unwrap_or_default();
            Self::parse(&raw).unwrap_or_else(|| {
                panic!(
                    "unrecognized FIGARO_KERNEL `{raw}` (use `event`, `reference`, \
                     `parallel` or `sampled[:window,skip]`)"
                )
            })
        })
    }

    /// Parses a kernel name (the `FIGARO_KERNEL` vocabulary); `None` for
    /// anything unrecognized.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let lower = raw.to_lowercase();
        if let Some(params) = lower.strip_prefix("sampled:") {
            let (w, s) = params.split_once(',')?;
            let window = w.parse::<u64>().ok().filter(|&w| w > 0)?;
            let skip = s.parse::<u64>().ok()?;
            return Some(Kernel::Sampled { window, skip });
        }
        match lower.as_str() {
            "" | "event" => Some(Kernel::Event),
            "reference" | "ref" => Some(Kernel::Reference),
            "parallel" | "par" => Some(Kernel::Parallel),
            "sampled" => {
                Some(Kernel::Sampled { window: SAMPLED_DEFAULT_WINDOW, skip: SAMPLED_DEFAULT_SKIP })
            }
            _ => None,
        }
    }

    /// Label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Event => "event",
            Kernel::Parallel => "parallel",
            Kernel::Sampled { .. } => "sampled",
        }
    }
}

/// Reads `FIGARO_THREADS` once per process: the worker-thread count for
/// [`Kernel::Parallel`] runs that do not set [`SystemConfig::threads`]
/// explicitly. Defaults to the machine's available parallelism.
///
/// # Panics
///
/// Panics on a value that is not a positive integer — a typo must fail
/// loudly rather than silently fall back to serial execution.
#[must_use]
pub fn threads_from_env() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("FIGARO_THREADS") {
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("unrecognized FIGARO_THREADS `{raw}` (use a positive integer)"),
        },
    })
}

/// Which in-DRAM mechanism a system uses (paper Section 8 names).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigKind {
    /// Conventional DDR4.
    Base,
    /// LISA-VILLA with the paper's 16 interleaved fast subarrays.
    LisaVilla,
    /// FIGCache in 64 reserved slow rows.
    FigCacheSlow,
    /// FIGCache in two appended fast subarrays.
    FigCacheFast,
    /// FIGCache-Fast with zero-cost relocation.
    FigCacheIdeal,
    /// All subarrays fast, no caching.
    LlDram,
    /// FIGCache-Fast with a custom cache configuration (sweeps).
    FigCacheCustom(FigCacheConfig),
}

impl ConfigKind {
    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ConfigKind::Base => "Base",
            ConfigKind::LisaVilla => "LISA-VILLA",
            ConfigKind::FigCacheSlow => "FIGCache-Slow",
            ConfigKind::FigCacheFast => "FIGCache-Fast",
            ConfigKind::FigCacheIdeal => "FIGCache-Ideal",
            ConfigKind::LlDram => "LL-DRAM",
            ConfigKind::FigCacheCustom(_) => "FIGCache-Custom",
        }
    }

    /// Parses a short mechanism name (the `diag` CLI's vocabulary):
    /// `base` | `lisa` | `slow` | `fast` | `ideal` | `ll`, with the full
    /// figure labels accepted as aliases. Case-insensitive; `None` for
    /// anything else (custom sweep configs have no stable name).
    #[must_use]
    pub fn from_name(name: &str) -> Option<ConfigKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "base" => Some(ConfigKind::Base),
            "lisa" | "lisa-villa" | "lisavilla" => Some(ConfigKind::LisaVilla),
            "slow" | "figcache-slow" => Some(ConfigKind::FigCacheSlow),
            "fast" | "figcache-fast" => Some(ConfigKind::FigCacheFast),
            "ideal" | "figcache-ideal" => Some(ConfigKind::FigCacheIdeal),
            "ll" | "ll-dram" | "lldram" => Some(ConfigKind::LlDram),
            _ => None,
        }
    }

    /// The five mechanisms plotted against `Base` in Figures 7 and 8.
    #[must_use]
    pub fn figure78_set() -> Vec<ConfigKind> {
        vec![
            ConfigKind::LisaVilla,
            ConfigKind::FigCacheSlow,
            ConfigKind::FigCacheFast,
            ConfigKind::FigCacheIdeal,
            ConfigKind::LlDram,
        ]
    }
}

/// A complete system description (paper Table 1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (1 or 8 in the paper).
    pub cores: usize,
    /// Memory channels (1 for single-core, 4 for eight-core).
    pub channels: u32,
    /// Mechanism under evaluation.
    pub kind: ConfigKind,
    /// Core width/window.
    pub core: CoreParams,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Memory-controller parameters.
    pub mc: McConfig,
    /// CPU cycles per DRAM bus cycle (3.2 GHz / 800 MHz = 4).
    pub cpu_cycles_per_bus: u64,
    /// Simulation kernel driving the clock (see [`Kernel`]).
    pub kernel: Kernel,
    /// Worker threads for [`Kernel::Parallel`] (`0` = resolve from
    /// `FIGARO_THREADS` / available parallelism). Clamped to the channel
    /// count at run time; results are bit-identical at every setting, so
    /// this is purely a wall-clock knob (and excluded from result-cache
    /// keys).
    pub threads: usize,
    /// OS page-frame placement applied to every trace source (the DRAM
    /// address interleaving itself lives in `mc.map`).
    pub page_map: PageMapKind,
}

impl SystemConfig {
    /// The paper's system for `cores` cores running `kind`
    /// (1 core → 1 channel, otherwise 4 channels).
    #[must_use]
    pub fn paper(cores: usize, kind: ConfigKind) -> Self {
        Self {
            cores,
            channels: if cores == 1 { 1 } else { 4 },
            kind,
            core: CoreParams::paper_default(),
            hierarchy: HierarchyConfig::paper_default(cores),
            mc: McConfig {
                sched: SchedPolicyKind::from_env(),
                map: MapKind::from_env(),
                ..McConfig::default()
            },
            cpu_cycles_per_bus: 4,
            kernel: Kernel::from_env(),
            threads: 0,
            page_map: PageMapKind::from_env(),
        }
    }

    /// Overrides the [`Kernel::Parallel`] worker-thread count (`0` =
    /// resolve from `FIGARO_THREADS` / available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker-thread count a [`Kernel::Parallel`] run uses: the
    /// explicit [`SystemConfig::threads`] if nonzero, else the
    /// `FIGARO_THREADS` / available-parallelism default — always clamped
    /// to the channel count (shards are per-channel, so extra workers
    /// would only spin at barriers).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        let requested = if self.threads > 0 { self.threads } else { threads_from_env() };
        requested.clamp(1, self.channels as usize)
    }

    /// Overrides the physical→DRAM address interleaving (mapping
    /// sweeps; the default is the paper's bit slice or the `FIGARO_MAP`
    /// override).
    #[must_use]
    pub fn with_mapping(mut self, map: MapKind) -> Self {
        self.mc.map = map;
        self
    }

    /// Overrides the OS page-frame placement policy (the default is
    /// identity or the `FIGARO_PAGEMAP` override).
    #[must_use]
    pub fn with_page_map(mut self, page_map: PageMapKind) -> Self {
        self.page_map = page_map;
        self
    }

    /// Overrides the memory-controller scheduling policy (scheduler
    /// sweeps; the default is FR-FCFS or the `FIGARO_SCHED` override).
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicyKind) -> Self {
        self.mc.sched = sched;
        self
    }

    /// Overrides the channel count (sensitivity sweeps). Channel counts
    /// must be powers of two so the address interleaving stays a bit
    /// slice.
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels.is_power_of_two(), "channel count must be a power of two");
        self.channels = channels;
        self
    }

    /// Overrides the per-core MSHR count (sensitivity sweeps).
    #[must_use]
    pub fn with_mshrs(mut self, mshrs_per_core: usize) -> Self {
        assert!(mshrs_per_core > 0, "cores need at least one MSHR");
        self.hierarchy.mshrs_per_core = mshrs_per_core;
        self
    }

    /// The DRAM device layout implied by the mechanism.
    #[must_use]
    pub fn dram_config(&self) -> DramConfig {
        let base = DramConfig::ddr4_paper_default();
        let geometry = base.geometry.with_channels(self.channels);
        let layout = match &self.kind {
            ConfigKind::Base | ConfigKind::FigCacheSlow => SubarrayLayout::homogeneous(64, 512),
            ConfigKind::LisaVilla => {
                SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32)
            }
            ConfigKind::FigCacheFast | ConfigKind::FigCacheIdeal => {
                SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32)
            }
            ConfigKind::LlDram => SubarrayLayout::all_fast(64, 512),
            ConfigKind::FigCacheCustom(cfg) => match cfg.region {
                figaro_core::CacheRegion::ReservedSlowRows => SubarrayLayout::homogeneous(64, 512),
                figaro_core::CacheRegion::FastSubarrays => {
                    let count = cfg.cache_rows_per_bank.div_ceil(32).max(1);
                    SubarrayLayout::homogeneous(64, 512).with_appended_fast(count, 32)
                }
            },
        };
        DramConfig { geometry, layout, ..base }
    }

    /// Builds the cache engine for one channel.
    #[must_use]
    pub fn build_engine(&self, dram: &DramConfig) -> Box<dyn CacheEngine> {
        let banks = dram.geometry.banks_per_channel();
        match &self.kind {
            ConfigKind::Base | ConfigKind::LlDram => Box::new(NullEngine::new()),
            ConfigKind::LisaVilla => {
                Box::new(LisaVillaEngine::new(dram, &LisaVillaConfig::paper_default(), banks))
            }
            ConfigKind::FigCacheSlow => {
                Box::new(FigCacheEngine::new(dram, &FigCacheConfig::paper_slow(), banks))
            }
            ConfigKind::FigCacheFast => {
                Box::new(FigCacheEngine::new(dram, &FigCacheConfig::paper_fast(), banks))
            }
            ConfigKind::FigCacheIdeal => {
                Box::new(FigCacheEngine::new(dram, &FigCacheConfig::paper_ideal(), banks))
            }
            ConfigKind::FigCacheCustom(cfg) => Box::new(FigCacheEngine::new(dram, cfg, banks)),
        }
    }

    /// A FIGCache-Fast sweep point with `fast_subarrays` fast subarrays of
    /// 32 rows each (Fig. 12).
    #[must_use]
    pub fn fig12_point(cores: usize, fast_subarrays: u32) -> Self {
        let cfg = FigCacheConfig {
            cache_rows_per_bank: fast_subarrays * 32,
            ..FigCacheConfig::paper_fast()
        };
        Self::paper(cores, ConfigKind::FigCacheCustom(cfg))
    }

    /// A FIGCache-Fast sweep point with `blocks` blocks per segment
    /// (Fig. 13; 8 → 512 B … 128 → 8 kB).
    #[must_use]
    pub fn fig13_point(cores: usize, blocks: u32) -> Self {
        let cfg = FigCacheConfig { blocks_per_segment: blocks, ..FigCacheConfig::paper_fast() };
        Self::paper(cores, ConfigKind::FigCacheCustom(cfg))
    }

    /// A FIGCache-Fast sweep point with a different replacement policy
    /// (Fig. 14).
    #[must_use]
    pub fn fig14_point(cores: usize, policy: figaro_core::ReplacementPolicy) -> Self {
        let cfg = FigCacheConfig { replacement: policy, ..FigCacheConfig::paper_fast() };
        Self::paper(cores, ConfigKind::FigCacheCustom(cfg))
    }

    /// A FIGCache-Fast sweep point with insertion threshold `n` (Fig. 15).
    #[must_use]
    pub fn fig15_point(cores: usize, n: u32) -> Self {
        let cfg = FigCacheConfig {
            insertion: figaro_core::InsertionPolicy { miss_threshold: n },
            ..FigCacheConfig::paper_fast()
        };
        Self::paper(cores, ConfigKind::FigCacheCustom(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_defaults_to_event() {
        assert_eq!(Kernel::default(), Kernel::Event);
        assert_eq!(Kernel::Event.label(), "event");
        assert_eq!(Kernel::Reference.label(), "reference");
        assert_eq!(Kernel::Parallel.label(), "parallel");
        assert_eq!(Kernel::Sampled { window: 1, skip: 1 }.label(), "sampled");
    }

    #[test]
    fn kernel_parse_covers_sampled_forms() {
        assert_eq!(Kernel::parse(""), Some(Kernel::Event));
        assert_eq!(Kernel::parse("REF"), Some(Kernel::Reference));
        assert_eq!(
            Kernel::parse("sampled"),
            Some(Kernel::Sampled { window: SAMPLED_DEFAULT_WINDOW, skip: SAMPLED_DEFAULT_SKIP })
        );
        assert_eq!(
            Kernel::parse("sampled:50000,200000"),
            Some(Kernel::Sampled { window: 50_000, skip: 200_000 })
        );
        assert_eq!(Kernel::parse("sampled:0,5"), None, "zero-cycle windows are meaningless");
        assert_eq!(Kernel::parse("sampled:oops"), None);
        assert_eq!(Kernel::parse("spooled"), None);
    }

    #[test]
    fn worker_threads_clamps_to_channels() {
        let cfg = SystemConfig::paper(8, ConfigKind::Base); // 4 channels
        assert_eq!(cfg.clone().with_threads(8).worker_threads(), 4);
        assert_eq!(cfg.clone().with_threads(2).worker_threads(), 2);
        assert_eq!(cfg.clone().with_threads(1).worker_threads(), 1);
        // One channel can never use more than one worker.
        let one = SystemConfig::paper(1, ConfigKind::Base);
        assert_eq!(one.with_threads(64).worker_threads(), 1);
        // `0` resolves from the environment default, still clamped.
        let auto = cfg.with_threads(0).worker_threads();
        assert!((1..=4).contains(&auto));
    }

    #[test]
    fn paper_config_channel_rule() {
        assert_eq!(SystemConfig::paper(1, ConfigKind::Base).channels, 1);
        assert_eq!(SystemConfig::paper(8, ConfigKind::Base).channels, 4);
    }

    #[test]
    fn dram_layouts_match_mechanisms() {
        let lisa = SystemConfig::paper(8, ConfigKind::LisaVilla).dram_config();
        assert_eq!(lisa.layout.fast_count(), 16);
        let fast = SystemConfig::paper(8, ConfigKind::FigCacheFast).dram_config();
        assert_eq!(fast.layout.fast_count(), 2);
        let slow = SystemConfig::paper(8, ConfigKind::FigCacheSlow).dram_config();
        assert_eq!(slow.layout.fast_count(), 0);
        let ll = SystemConfig::paper(8, ConfigKind::LlDram).dram_config();
        assert!(ll.layout.all_fast);
    }

    #[test]
    fn engines_build_for_every_kind() {
        for kind in [
            ConfigKind::Base,
            ConfigKind::LisaVilla,
            ConfigKind::FigCacheSlow,
            ConfigKind::FigCacheFast,
            ConfigKind::FigCacheIdeal,
            ConfigKind::LlDram,
        ] {
            let cfg = SystemConfig::paper(1, kind);
            let dram = cfg.dram_config();
            dram.validate().unwrap();
            let _ = cfg.build_engine(&dram);
        }
    }

    #[test]
    fn fig12_point_scales_cache_rows_and_layout() {
        let cfg = SystemConfig::fig12_point(8, 8);
        let dram = cfg.dram_config();
        assert_eq!(dram.layout.fast_count(), 8);
        let ConfigKind::FigCacheCustom(fc) = &cfg.kind else { panic!() };
        assert_eq!(fc.cache_rows_per_bank, 256);
        let _ = cfg.build_engine(&dram);
    }

    #[test]
    fn fig13_whole_row_segments_build() {
        let cfg = SystemConfig::fig13_point(1, 128);
        let dram = cfg.dram_config();
        let _ = cfg.build_engine(&dram);
    }
}
