//! Diagnostic runner: `diag <app> <config> [scale]` prints the full
//! statistics of one single-core run — the tool for understanding *why*
//! a configuration behaves the way it does — and
//! `diag snapshot <file.fgsn>` inspects a warm-state snapshot without
//! restoring it.
//!
//! Bad arguments print usage and exit nonzero (no panics): the binary is
//! meant to sit in shell loops. The memory-controller scheduling policy
//! follows `FIGARO_SCHED` like every other run.

use figaro_sim::runner::Scale;
use figaro_sim::{snapshot, ConfigKind, System, SystemConfig};
use figaro_telemetry::TelemetryConfig;
use figaro_workloads::{profile_by_name, ArrivalKind, ArrivalSchedule, TraceSource};

fn usage() -> ! {
    eprintln!(
        "usage: diag [<app> [<config> [<scale>]]]\n\
         \x20      diag snapshot <file.fgsn>\n\
         \x20      diag timeline <series> [<app> [<config> [<scale>]]]\n\
         \x20      diag trace <file.json>\n\
         \n\
         app     a workload profile name (default: mcf)\n\
         config  base | lisa | slow | fast | ideal | ll (default: fast)\n\
         scale   tiny | small | full (default: small)\n\
         \n\
         `diag snapshot` prints an FGSN warm-state snapshot's header:\n\
         format version, config hash, CPU cycle, per-core progress and\n\
         per-channel queue occupancy.\n\
         `diag timeline` runs the app with the interval sampler on and\n\
         renders the chosen series (e.g. row_hits, ch0.read_q, mshr) as\n\
         an ASCII sparkline; FIGARO_STATS_INTERVAL overrides the stride.\n\
         `diag trace` validates a Chrome trace-event JSON file (ours or\n\
         foreign) and summarizes events per category and span balance.\n\
         \n\
         env (result-affecting):\n\
         FIGARO_SCHED=frfcfs|fcfs|frfcfs-cap<N>|wdrain<H>-<L> picks the\n\
         memory-controller scheduling policy,\n\
         FIGARO_KERNEL=event|reference|parallel|sampled[:W,S] the\n\
         simulation kernel (sampled alternates W detailed cycles with S\n\
         fast-forwarded cycles — approximate, its results key separately),\n\
         FIGARO_MAP=paper|chfirst|rowint[-xor] the DRAM address mapping,\n\
         FIGARO_PAGEMAP=ident|rand<seed>|color<N> the OS page-frame\n\
         placement,\n\
         FIGARO_LOAD=fixed:G|poisson:G|bursty:ON,OPS,IDLE replaces the\n\
         app's own issue gaps with an open-loop arrival process,\n\
         FIGARO_WARMUP=<N> warm-starts scenario runs: the first N CPU\n\
         cycles are simulated once, snapshotted, and every run sharing\n\
         the warm prefix resumes from the snapshot (bit-identical to an\n\
         uninterrupted run; warmed results key separately),\n\
         FIGARO_SCALE=tiny|small|full the per-core instruction target in\n\
         the sweep binaries,\n\
         FIGARO_FREE_RELOC=1 zero-cost relocation ablation (debug only;\n\
         cache keys grow a -freereloc suffix)\n\
         \n\
         env (never affects results):\n\
         FIGARO_THREADS=<N> the parallel kernel's worker-thread count\n\
         (default: available parallelism, clamped to the channel count),\n\
         FIGARO_SNAPSHOT_DIR=<dir> where FGSN warm-state snapshots live\n\
         (default: <cache_dir>/snapshots; resumption is bit-identical, so\n\
         the location never changes results),\n\
         FIGARO_STATS_INTERVAL=<cycles> samples the interval time-series\n\
         (per-channel row hits/misses/conflicts, queue depths, FIGCache\n\
         activity, per-core IPC/MSHR) every N CPU cycles,\n\
         FIGARO_TRACE=<path>[:filter] writes a Chrome trace-event JSON\n\
         (relocation jobs, write drains, refreshes, sampling windows;\n\
         filter is a comma list of reloc,drain,refresh,window,warm,epoch\n\
         or `all`; load the file in Perfetto),\n\
         FIGARO_PROFILE=1 prints the kernel self-profile (wall-clock\n\
         time per component, epochs/sec, shard imbalance) after the run,\n\
         FIGARO_FULL_SWEEPS=1 runs Figs. 12-15 over all 20 profiles,\n\
         FIGARO_SLOW_TESTS=1 enables the ignored full-scale tests,\n\
         FIGARO_LONG_OPS=<N> ops per core in the long streaming test,\n\
         FIGARO_LONG_RUN=<N> ops per core in the streaming bench,\n\
         FIGARO_MC_ITERS=<N> iterations of the controller microbench."
    );
    std::process::exit(2)
}

/// `diag snapshot <file>`: print the FGSN header without restoring.
fn snapshot_info(path: &str) -> ! {
    let h = match snapshot::read_header_from(std::path::Path::new(path)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("diag snapshot: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    println!("file              : {path}");
    println!("format            : FGSN v{}", h.version);
    println!("config hash       : {:016x}", h.config_hash);
    println!("cpu cycle         : {}", h.cpu_cycle);
    println!("payload words     : {}", h.payload_words);
    println!("cores             : {}", h.cores.len());
    for (i, c) in h.cores.iter().enumerate() {
        println!("  core {i:<2}         : ops_pulled {} window {}", c.ops_pulled, c.window_len);
    }
    println!("channels          : {}", h.shards.len());
    for (i, s) in h.shards.iter().enumerate() {
        println!(
            "  channel {i:<2}      : rq {} wq {} backlog {}",
            s.read_queue, s.write_queue, s.backlog
        );
    }
    std::process::exit(0)
}

/// `diag trace <file>`: validate and summarize a Chrome trace file.
fn trace_info(path: &str) -> ! {
    let s = match figaro_telemetry::trace::summarize_file(std::path::Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("diag trace: {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("file              : {path}");
    println!("events            : {}", s.events);
    println!("  complete spans  : {}", s.complete);
    println!("  instants        : {}", s.instant);
    if s.begins + s.ends + s.other_ph > 0 {
        println!("  B/E/other ph    : {} / {} / {}", s.begins, s.ends, s.other_ph);
    }
    println!("max ts            : {} cpu cycles", s.max_ts);
    for (cat, n) in &s.by_cat {
        println!("  cat {cat:<13} : {n}");
    }
    if s.balanced() {
        println!("span balance      : ok");
        std::process::exit(0)
    }
    println!("span balance      : UNBALANCED ({} begins, {} ends)", s.begins, s.ends);
    std::process::exit(1)
}

/// Max-pools a series down to at most `width` sparkline buckets so long
/// runs stay one terminal line (peaks survive pooling; troughs do not).
fn pooled(vals: impl ExactSizeIterator<Item = u64>, width: usize) -> Vec<u64> {
    let n = vals.len();
    let per = n.div_ceil(width).max(1);
    let mut out = Vec::with_capacity(n.div_ceil(per));
    let mut bucket = 0u64;
    for (i, v) in vals.enumerate() {
        bucket = bucket.max(v);
        if (i + 1) % per == 0 || i + 1 == n {
            out.push(bucket);
            bucket = 0;
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "snapshot") {
        match args.get(2) {
            Some(path) if args.len() == 3 => snapshot_info(path),
            _ => usage(),
        }
    }
    if args.get(1).is_some_and(|a| a == "trace") {
        match args.get(2) {
            Some(path) if args.len() == 3 => trace_info(path),
            _ => usage(),
        }
    }
    let mut pos: Vec<String> = args[1..].to_vec();
    let mut timeline_col = None;
    if pos.first().is_some_and(|a| a == "timeline") {
        pos.remove(0);
        if pos.is_empty() {
            usage();
        }
        timeline_col = Some(pos.remove(0));
    }
    if pos.len() > 3 || pos.iter().any(|a| a == "-h" || a == "--help") {
        usage();
    }
    let app = pos.first().map_or("mcf", String::as_str);
    let Some(kind) = ConfigKind::from_name(pos.get(1).map_or("fast", String::as_str)) else {
        eprintln!("unknown config `{}`", pos[1]);
        usage();
    };
    let scale = match pos.get(2).map(String::as_str) {
        None | Some("small") => Scale::Small,
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("unknown scale `{other}`");
            usage();
        }
    };
    let Some(profile) = profile_by_name(app) else {
        eprintln!("unknown app `{app}`");
        usage();
    };
    let runner = figaro_sim::Runner::uncached(scale);
    let trace = runner.trace_for(&profile, 0);
    let insts = (scale.target_insts() as f64 * (profile.nonmem_per_mem + 1.0) / 3.0) as u64;
    let insts = insts.clamp(scale.target_insts(), scale.target_insts() * 12);
    let cfg = SystemConfig::paper(1, kind.clone());
    let kernel = cfg.kernel;
    let threads = cfg.worker_threads();
    let sched = cfg.mc.sched;
    let map = cfg.mc.map;
    let page_map = cfg.page_map;
    let mut sys = match ArrivalKind::from_env() {
        // Open-loop pacing: wrap the trace source like scenario runs do.
        Some(load) => {
            let src: Box<dyn TraceSource> =
                Box::new(ArrivalSchedule::new(Box::new(trace.into_source()), load, 0));
            System::from_sources(cfg, vec![src], &[insts])
        }
        None => System::new(cfg, vec![trace], &[insts]),
    };
    if timeline_col.is_some() {
        // The timeline needs the sampler even when the env did not ask
        // for it; keep any env-requested trace sink alongside.
        let base = TelemetryConfig::from_env();
        let interval = base.interval.unwrap_or(10_000);
        sys.set_telemetry(&TelemetryConfig { interval: Some(interval), trace: base.trace });
    }
    if figaro_telemetry::profile::profile_enabled() {
        sys.enable_profiling();
    }
    let s = sys.run(insts * 400);
    if let Some(col) = timeline_col {
        let Some(series) = sys.telemetry_series() else {
            eprintln!("diag timeline: no samples collected (run shorter than the interval?)");
            std::process::exit(1);
        };
        let Some(idx) = series.col_index(&col) else {
            eprintln!("diag timeline: unknown series `{col}`; available:");
            for c in &series.cols {
                eprintln!("  {}", c.name);
            }
            std::process::exit(1);
        };
        let c = &series.cols[idx];
        println!(
            "series {} ({:?}) — {} samples ({} evicted), cycles {}..{}",
            c.name,
            c.kind,
            series.len(),
            series.dropped,
            series.cycles.front().copied().unwrap_or(0),
            series.cycles.back().copied().unwrap_or(0),
        );
        println!(
            "{}",
            figaro_telemetry::series::sparkline(pooled(c.vals.iter().copied(), 72).into_iter())
        );
        let trough = if c.trough == u64::MAX { 0 } else { c.trough };
        println!("peak {} trough {trough} total {}", c.peak, c.total);
        std::process::exit(0)
    }

    println!(
        "app={app} config={} insts={insts} kernel={} threads={threads} sched={} map={} pagemap={}",
        kind.label(),
        kernel.label(),
        sched.label(),
        map.label(),
        page_map.label()
    );
    println!("cycles            : {}", s.cpu_cycles);
    println!("IPC               : {:.4}", s.ipc(0));
    println!("MPKI              : {:.2}", s.mpki(0));
    println!("LLC hit rate      : {:.3}", s.hierarchy.llc.hit_rate());
    println!("DRAM reads/writes : {} / {}", s.mc.reads_served, s.mc.writes_served);
    println!("avg read latency  : {:.1} bus cycles", s.mc.avg_read_latency());
    let h = &s.mc.read_latency_hist;
    println!(
        "read latency tail : p50 {} p95 {} p99 {} p999 {} max {} bus cycles",
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99),
        h.percentile(0.999),
        h.max()
    );
    println!(
        "row hit/miss/conf : {} / {} / {}  (hit rate {:.3})",
        s.mc.row_hits,
        s.mc.row_misses,
        s.mc.row_conflicts,
        s.row_hit_rate()
    );
    for (i, ch) in s.per_channel.iter().enumerate() {
        println!(
            "  ch{i}: hit rate {:.3}  rq peak {}  wq peak {}  r/w {} / {}",
            ch.row_hit_rate(),
            ch.read_q_peak,
            ch.write_q_peak,
            ch.reads_served,
            ch.writes_served
        );
    }
    println!(
        "acts slow/fast    : {} / {}   merges {} / {}",
        s.dram.activates, s.dram.activates_fast, s.dram.merges, s.dram.merges_fast
    );
    println!(
        "relocs / clones   : {} / {} (hops {})",
        s.dram.relocs, s.dram.lisa_clones, s.dram.lisa_hops
    );
    println!(
        "cache: lookups {} hits {} (bypassed {}) miss {} hitrate {:.3}",
        s.cache.lookups,
        s.cache.hits,
        s.cache.hits_bypassed,
        s.cache.misses,
        s.cache_hit_rate()
    );
    println!(
        "cache: ins {} skip {} cancel {} evc {} evd {}",
        s.cache.insertions,
        s.cache.insertions_skipped,
        s.cache.insertions_cancelled,
        s.cache.evictions_clean,
        s.cache.evictions_dirty
    );
    println!("bank_open_cycles  : {}", s.dram.bank_open_cycles);
    println!(
        "energy nJ         : cpu {:.0} l1l2 {:.0} llc {:.0} off {:.0} dram {:.0}",
        s.energy.cpu, s.energy.l1l2, s.energy.llc, s.energy.offchip, s.energy.dram
    );
    if let Some(p) = sys.profile() {
        println!("--- kernel self-profile (FIGARO_PROFILE=1, wall clock; result-neutral) ---");
        for line in p.report() {
            println!("{line}");
        }
    }
}
