//! Diagnostic runner: `diag <app> <config> [scale]` prints the full
//! statistics of one single-core run — the tool for understanding *why*
//! a configuration behaves the way it does — and
//! `diag snapshot <file.fgsn>` inspects a warm-state snapshot without
//! restoring it.
//!
//! Bad arguments print usage and exit nonzero (no panics): the binary is
//! meant to sit in shell loops. The memory-controller scheduling policy
//! follows `FIGARO_SCHED` like every other run.

use figaro_sim::runner::Scale;
use figaro_sim::{snapshot, ConfigKind, System, SystemConfig};
use figaro_workloads::{profile_by_name, ArrivalKind, ArrivalSchedule, TraceSource};

fn usage() -> ! {
    eprintln!(
        "usage: diag [<app> [<config> [<scale>]]]\n\
         \x20      diag snapshot <file.fgsn>\n\
         \n\
         app     a workload profile name (default: mcf)\n\
         config  base | lisa | slow | fast | ideal | ll (default: fast)\n\
         scale   tiny | small | full (default: small)\n\
         \n\
         `diag snapshot` prints an FGSN warm-state snapshot's header:\n\
         format version, config hash, CPU cycle, per-core progress and\n\
         per-channel queue occupancy.\n\
         \n\
         env (result-affecting):\n\
         FIGARO_SCHED=frfcfs|fcfs|frfcfs-cap<N>|wdrain<H>-<L> picks the\n\
         memory-controller scheduling policy,\n\
         FIGARO_KERNEL=event|reference|parallel|sampled[:W,S] the\n\
         simulation kernel (sampled alternates W detailed cycles with S\n\
         fast-forwarded cycles — approximate, its results key separately),\n\
         FIGARO_MAP=paper|chfirst|rowint[-xor] the DRAM address mapping,\n\
         FIGARO_PAGEMAP=ident|rand<seed>|color<N> the OS page-frame\n\
         placement,\n\
         FIGARO_LOAD=fixed:G|poisson:G|bursty:ON,OPS,IDLE replaces the\n\
         app's own issue gaps with an open-loop arrival process,\n\
         FIGARO_WARMUP=<N> warm-starts scenario runs: the first N CPU\n\
         cycles are simulated once, snapshotted, and every run sharing\n\
         the warm prefix resumes from the snapshot (bit-identical to an\n\
         uninterrupted run; warmed results key separately),\n\
         FIGARO_SCALE=tiny|small|full the per-core instruction target in\n\
         the sweep binaries,\n\
         FIGARO_FREE_RELOC=1 zero-cost relocation ablation (debug only;\n\
         cache keys grow a -freereloc suffix)\n\
         \n\
         env (never affects results):\n\
         FIGARO_THREADS=<N> the parallel kernel's worker-thread count\n\
         (default: available parallelism, clamped to the channel count),\n\
         FIGARO_SNAPSHOT_DIR=<dir> where FGSN warm-state snapshots live\n\
         (default: <cache_dir>/snapshots; resumption is bit-identical, so\n\
         the location never changes results),\n\
         FIGARO_FULL_SWEEPS=1 runs Figs. 12-15 over all 20 profiles,\n\
         FIGARO_SLOW_TESTS=1 enables the ignored full-scale tests,\n\
         FIGARO_LONG_OPS=<N> ops per core in the long streaming test,\n\
         FIGARO_LONG_RUN=<N> ops per core in the streaming bench,\n\
         FIGARO_MC_ITERS=<N> iterations of the controller microbench."
    );
    std::process::exit(2)
}

/// `diag snapshot <file>`: print the FGSN header without restoring.
fn snapshot_info(path: &str) -> ! {
    let h = match snapshot::read_header_from(std::path::Path::new(path)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("diag snapshot: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    println!("file              : {path}");
    println!("format            : FGSN v{}", h.version);
    println!("config hash       : {:016x}", h.config_hash);
    println!("cpu cycle         : {}", h.cpu_cycle);
    println!("payload words     : {}", h.payload_words);
    println!("cores             : {}", h.cores.len());
    for (i, c) in h.cores.iter().enumerate() {
        println!("  core {i:<2}         : ops_pulled {} window {}", c.ops_pulled, c.window_len);
    }
    println!("channels          : {}", h.shards.len());
    for (i, s) in h.shards.iter().enumerate() {
        println!(
            "  channel {i:<2}      : rq {} wq {} backlog {}",
            s.read_queue, s.write_queue, s.backlog
        );
    }
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "snapshot") {
        match args.get(2) {
            Some(path) if args.len() == 3 => snapshot_info(path),
            _ => usage(),
        }
    }
    if args.len() > 4 || args.iter().skip(1).any(|a| a == "-h" || a == "--help") {
        usage();
    }
    let app = args.get(1).map_or("mcf", String::as_str);
    let Some(kind) = ConfigKind::from_name(args.get(2).map_or("fast", String::as_str)) else {
        eprintln!("unknown config `{}`", args[2]);
        usage();
    };
    let scale = match args.get(3).map(String::as_str) {
        None | Some("small") => Scale::Small,
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("unknown scale `{other}`");
            usage();
        }
    };
    let Some(profile) = profile_by_name(app) else {
        eprintln!("unknown app `{app}`");
        usage();
    };
    let runner = figaro_sim::Runner::uncached(scale);
    let trace = runner.trace_for(&profile, 0);
    let insts = (scale.target_insts() as f64 * (profile.nonmem_per_mem + 1.0) / 3.0) as u64;
    let insts = insts.clamp(scale.target_insts(), scale.target_insts() * 12);
    let cfg = SystemConfig::paper(1, kind.clone());
    let kernel = cfg.kernel;
    let threads = cfg.worker_threads();
    let sched = cfg.mc.sched;
    let map = cfg.mc.map;
    let page_map = cfg.page_map;
    let mut sys = match ArrivalKind::from_env() {
        // Open-loop pacing: wrap the trace source like scenario runs do.
        Some(load) => {
            let src: Box<dyn TraceSource> =
                Box::new(ArrivalSchedule::new(Box::new(trace.into_source()), load, 0));
            System::from_sources(cfg, vec![src], &[insts])
        }
        None => System::new(cfg, vec![trace], &[insts]),
    };
    let s = sys.run(insts * 400);

    println!(
        "app={app} config={} insts={insts} kernel={} threads={threads} sched={} map={} pagemap={}",
        kind.label(),
        kernel.label(),
        sched.label(),
        map.label(),
        page_map.label()
    );
    println!("cycles            : {}", s.cpu_cycles);
    println!("IPC               : {:.4}", s.ipc(0));
    println!("MPKI              : {:.2}", s.mpki(0));
    println!("LLC hit rate      : {:.3}", s.hierarchy.llc.hit_rate());
    println!("DRAM reads/writes : {} / {}", s.mc.reads_served, s.mc.writes_served);
    println!("avg read latency  : {:.1} bus cycles", s.mc.avg_read_latency());
    let h = &s.mc.read_latency_hist;
    println!(
        "read latency tail : p50 {} p95 {} p99 {} p999 {} max {} bus cycles",
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99),
        h.percentile(0.999),
        h.max()
    );
    println!(
        "row hit/miss/conf : {} / {} / {}  (hit rate {:.3})",
        s.mc.row_hits,
        s.mc.row_misses,
        s.mc.row_conflicts,
        s.row_hit_rate()
    );
    println!(
        "acts slow/fast    : {} / {}   merges {} / {}",
        s.dram.activates, s.dram.activates_fast, s.dram.merges, s.dram.merges_fast
    );
    println!(
        "relocs / clones   : {} / {} (hops {})",
        s.dram.relocs, s.dram.lisa_clones, s.dram.lisa_hops
    );
    println!(
        "cache: lookups {} hits {} (bypassed {}) miss {} hitrate {:.3}",
        s.cache.lookups,
        s.cache.hits,
        s.cache.hits_bypassed,
        s.cache.misses,
        s.cache_hit_rate()
    );
    println!(
        "cache: ins {} skip {} cancel {} evc {} evd {}",
        s.cache.insertions,
        s.cache.insertions_skipped,
        s.cache.insertions_cancelled,
        s.cache.evictions_clean,
        s.cache.evictions_dirty
    );
    println!("bank_open_cycles  : {}", s.dram.bank_open_cycles);
    println!(
        "energy nJ         : cpu {:.0} l1l2 {:.0} llc {:.0} off {:.0} dram {:.0}",
        s.energy.cpu, s.energy.l1l2, s.energy.llc, s.energy.offchip, s.energy.dram
    );
}
