//! Diagnostic runner: `diag <app> <config> [scale]` prints the full
//! statistics of one single-core run — the tool for understanding *why*
//! a configuration behaves the way it does.

use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, System, SystemConfig};
use figaro_workloads::profile_by_name;

fn parse_kind(name: &str) -> ConfigKind {
    match name {
        "base" => ConfigKind::Base,
        "lisa" => ConfigKind::LisaVilla,
        "slow" => ConfigKind::FigCacheSlow,
        "fast" => ConfigKind::FigCacheFast,
        "ideal" => ConfigKind::FigCacheIdeal,
        "ll" => ConfigKind::LlDram,
        other => panic!("unknown config `{other}` (base|lisa|slow|fast|ideal|ll)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map_or("mcf", String::as_str);
    let kind = parse_kind(args.get(2).map_or("fast", String::as_str));
    let scale = match args.get(3).map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        _ => Scale::Small,
    };
    let profile = profile_by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let runner = figaro_sim::Runner::uncached(scale);
    let trace = runner.trace_for(&profile, 0);
    let insts = (scale.target_insts() as f64 * (profile.nonmem_per_mem + 1.0) / 3.0) as u64;
    let insts = insts.clamp(scale.target_insts(), scale.target_insts() * 12);
    let cfg = SystemConfig::paper(1, kind.clone());
    let mut sys = System::new(cfg, vec![trace], &[insts]);
    let s = sys.run(insts * 400);

    println!("app={app} config={} insts={insts}", kind.label());
    println!("cycles            : {}", s.cpu_cycles);
    println!("IPC               : {:.4}", s.ipc(0));
    println!("MPKI              : {:.2}", s.mpki(0));
    println!("LLC hit rate      : {:.3}", s.hierarchy.llc.hit_rate());
    println!("DRAM reads/writes : {} / {}", s.mc.reads_served, s.mc.writes_served);
    println!("avg read latency  : {:.1} bus cycles", s.mc.avg_read_latency());
    println!(
        "row hit/miss/conf : {} / {} / {}  (hit rate {:.3})",
        s.mc.row_hits,
        s.mc.row_misses,
        s.mc.row_conflicts,
        s.row_hit_rate()
    );
    println!(
        "acts slow/fast    : {} / {}   merges {} / {}",
        s.dram.activates, s.dram.activates_fast, s.dram.merges, s.dram.merges_fast
    );
    println!(
        "relocs / clones   : {} / {} (hops {})",
        s.dram.relocs, s.dram.lisa_clones, s.dram.lisa_hops
    );
    println!(
        "cache: lookups {} hits {} (bypassed {}) miss {} hitrate {:.3}",
        s.cache.lookups,
        s.cache.hits,
        s.cache.hits_bypassed,
        s.cache.misses,
        s.cache_hit_rate()
    );
    println!(
        "cache: ins {} skip {} cancel {} evc {} evd {}",
        s.cache.insertions,
        s.cache.insertions_skipped,
        s.cache.insertions_cancelled,
        s.cache.evictions_clean,
        s.cache.evictions_dirty
    );
    println!("bank_open_cycles  : {}", s.dram.bank_open_cycles);
    println!(
        "energy nJ         : cpu {:.0} l1l2 {:.0} llc {:.0} off {:.0} dram {:.0}",
        s.energy.cpu, s.energy.l1l2, s.energy.llc, s.energy.offchip, s.energy.dram
    );
}
