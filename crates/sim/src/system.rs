//! The assembled full system and its clock loop(s).
//!
//! Two kernels drive the same component models (see [`Kernel`]):
//!
//! * [`Kernel::Reference`] ticks every core, the hierarchy router and
//!   every memory controller on every CPU/bus cycle — simple, and the
//!   equivalence oracle;
//! * [`Kernel::Event`] executes exactly the same per-cycle step, but only
//!   at cycles where some component can act. Between events it advances
//!   the clock straight to the minimum component horizon
//!   (`next_event_at` on cores, hierarchy and controllers) and batches
//!   the skipped interval into the per-cycle blocked counters
//!   (`window_full_cycles`, `stall_cycles`, MSHR-stall retry misses), so
//!   the resulting [`RunStats`] are **bit-identical** to the reference.
//!
//! The invariant that makes this sound: between two executed steps no
//! component state changes except the batched counters, and every
//! component horizon is a lower bound on its next state change.

use figaro_cpu::{CacheHierarchy, TraceCore};
use figaro_dram::AddressMapping;
use figaro_energy::{DramEnergyModel, SystemActivity, SystemEnergyModel};
use figaro_memctrl::{Completion, MemoryController};
use figaro_workloads::{PageMapKind, PageMappedSource, PageMapper, Trace, TraceSource};

use crate::config::{Kernel, SystemConfig};
use crate::metrics::{ChannelStats, RunStats};
use crate::parallel::ChannelShard;
use crate::telemetry::{KernelProfile, SimTelemetry, PROF_CORES, PROF_MEMORY};

/// One runnable system: cores + hierarchy + per-channel shards (each a
/// controller plus its backlog — the ownership unit the parallel kernel
/// hands to worker threads; the serial kernels walk the same shards in
/// channel order).
#[derive(Debug)]
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) cores: Vec<TraceCore>,
    pub(crate) hierarchy: CacheHierarchy,
    pub(crate) shards: Vec<ChannelShard>,
    pub(crate) mapping: AddressMapping,
    /// Total entries across the shard backlogs (early-out for the serial
    /// router; the parallel kernel tracks per-shard state instead).
    backlog_len: usize,
    /// Reused completion scratch buffer (no per-bus-cycle allocation).
    completion_buf: Vec<Completion>,
    /// `log2(cpu_cycles_per_bus)` when it is a power of two: boundary
    /// checks then use mask/shift instead of a runtime div (hot path).
    bus_shift: Option<u32>,
    pub(crate) cpu_cycle: u64,
    /// Optional observability state (interval sampler + trace lanes).
    /// `None` on the default path: the kernels pay one `Option`
    /// discriminant test per executed cycle, nothing more, and the
    /// collected data never feeds back into simulation state.
    pub(crate) telemetry: Option<Box<SimTelemetry>>,
    /// Optional wall-clock kernel self-profile (`FIGARO_PROFILE=1` via
    /// diag). Result-neutral by the same argument as `telemetry`.
    pub(crate) profiler: Option<Box<KernelProfile>>,
}

impl System {
    /// Builds a system running one trace per core; core `i` targets
    /// `targets[i]` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces or targets does not match
    /// `cfg.cores` or the configuration is internally inconsistent.
    #[must_use]
    pub fn new(cfg: SystemConfig, traces: Vec<Trace>, targets: &[u64]) -> Self {
        let sources: Vec<Box<dyn TraceSource>> =
            traces.into_iter().map(|t| Box::new(t.into_source()) as Box<dyn TraceSource>).collect();
        Self::from_sources(cfg, sources, targets)
    }

    /// Builds a system whose cores pull operations from streaming
    /// [`TraceSource`]s — generators, phased workloads, or trace-file
    /// replays — so run length never costs memory for a materialized
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if the number of sources or targets does not match
    /// `cfg.cores` or the configuration is internally inconsistent.
    #[must_use]
    pub fn from_sources(
        cfg: SystemConfig,
        sources: Vec<Box<dyn TraceSource>>,
        targets: &[u64],
    ) -> Self {
        assert_eq!(sources.len(), cfg.cores, "one trace source per core");
        assert_eq!(targets.len(), cfg.cores, "one instruction target per core");
        let dram = cfg.dram_config();
        dram.validate().expect("dram config must validate");
        // The router decodes with the same mapping kind the controllers
        // use — mismatched mappings would send requests to the wrong
        // channel (the controller asserts this on enqueue).
        let mapping = dram.address_mapping(cfg.mc.map);
        let shards: Vec<ChannelShard> = (0..cfg.channels)
            .map(|ch| {
                ChannelShard::new(MemoryController::new(&dram, cfg.mc, ch, cfg.build_engine(&dram)))
            })
            .collect();
        let hierarchy = CacheHierarchy::new(cfg.hierarchy, cfg.cores);
        // OS page-frame placement wraps every source; identity skips the
        // wrapper entirely so the default path stays byte-for-byte the
        // pre-subsystem one.
        let sources: Vec<Box<dyn TraceSource>> = if cfg.page_map == PageMapKind::Identity {
            sources
        } else {
            // The mapping's own address space (it was built over the
            // layout's regular rows), so the frame space can never
            // diverge from the row slice.
            let mapper = PageMapper::new(
                cfg.page_map,
                u64::from(dram.geometry.row_bytes),
                mapping.addr_space(),
            );
            sources
                .into_iter()
                .map(|s| Box::new(PageMappedSource::new(s, mapper)) as Box<dyn TraceSource>)
                .collect()
        };
        let cores: Vec<TraceCore> = sources
            .into_iter()
            .zip(targets)
            .enumerate()
            .map(|(i, (s, &target))| TraceCore::from_source(i, cfg.core, s, target))
            .collect();
        let bus_shift = cfg
            .cpu_cycles_per_bus
            .is_power_of_two()
            .then(|| cfg.cpu_cycles_per_bus.trailing_zeros());
        let mut sys = Self {
            cfg,
            cores,
            hierarchy,
            shards,
            mapping,
            backlog_len: 0,
            completion_buf: Vec::new(),
            bus_shift,
            cpu_cycle: 0,
            telemetry: None,
            profiler: None,
        };
        // Telemetry comes from the process env by default; tests override
        // it programmatically via `set_telemetry` (never by mutating env).
        let tcfg = figaro_telemetry::env_config();
        if tcfg.enabled() {
            sys.set_telemetry(tcfg);
        }
        sys
    }

    /// Immutable access to the controllers (stats inspection), in
    /// channel order.
    pub fn controllers(&self) -> impl Iterator<Item = &MemoryController> {
        self.shards.iter().map(|s| &s.mc)
    }

    fn route_requests(&mut self, bus: u64) {
        // New requests from the hierarchy join the per-channel backlog...
        if self.hierarchy.has_outgoing() {
            for req in self.hierarchy.take_outgoing() {
                let ch = self.mapping.decode(req.addr).channel as usize;
                self.shards[ch].push_backlog(req);
                self.backlog_len += 1;
            }
        }
        if self.backlog_len == 0 {
            return;
        }
        // ...which drains in order while the controller accepts.
        for sh in &mut self.shards {
            self.backlog_len -= sh.accept_backlog(bus);
        }
    }

    /// `Some(bus index)` when `now` is a bus-cycle boundary (mask/shift
    /// when the divisor is a power of two — this is the hot path of both
    /// kernels).
    #[inline]
    pub(crate) fn bus_boundary(&self, now: u64, per_bus: u64) -> Option<u64> {
        match self.bus_shift {
            Some(s) => (now & ((1u64 << s) - 1) == 0).then(|| now >> s),
            None => now.is_multiple_of(per_bus).then(|| now / per_bus),
        }
    }

    /// One reference-kernel cycle: on bus boundaries route requests, tick
    /// the controllers and deliver completions; then tick every core.
    /// (The event kernel runs the same halves from `run_event`, fused
    /// with its horizon bookkeeping.)
    fn step(&mut self, now: u64, per_bus: u64, fill_latency: u64) {
        if let Some(bus) = self.bus_boundary(now, per_bus) {
            self.step_bus(bus, per_bus, fill_latency, false);
        }
        for core in &mut self.cores {
            core.tick(now, &mut self.hierarchy);
        }
    }

    /// The bus-boundary half of a step: route requests, tick controllers,
    /// deliver completions.
    ///
    /// With `event_mode`, a controller whose memoized horizon lies beyond
    /// this bus cycle is **not** ticked — its tick is a no-op by the
    /// horizon contract, so skipping the call cannot change behavior; the
    /// refreshed horizon doubles as the cache the event kernel reads.
    fn step_bus(&mut self, bus: u64, per_bus: u64, fill_latency: u64, event_mode: bool) {
        self.route_requests(bus);
        if event_mode {
            for sh in &mut self.shards {
                // The controller memoizes its horizon, so this is a
                // cheap check when it has not acted since.
                if sh.mc.next_event_at(bus).is_some_and(|h| h <= bus) {
                    sh.mc.tick(bus);
                }
            }
        } else {
            for sh in &mut self.shards {
                sh.mc.tick(bus);
            }
        }
        for ch in 0..self.shards.len() {
            if !self.shards[ch].mc.has_completions() {
                continue;
            }
            self.shards[ch].mc.drain_completions_into(&mut self.completion_buf);
            for i in 0..self.completion_buf.len() {
                let c = self.completion_buf[i];
                let ready_cpu = c.done_at * per_bus + fill_latency;
                for token in self.hierarchy.on_completion(c.id) {
                    self.cores[c.core as usize].wake(token, ready_cpu);
                }
            }
            self.completion_buf.clear();
        }
    }

    /// Folds the hierarchy-routing, backlog and controller horizons into
    /// `next` (the minimum core horizon, computed by the caller in the
    /// same pass that checks for finished cores). Every cycle in
    /// `(now, result)` is a no-op apart from the blocked accounting that
    /// [`TraceCore::skip_cycles`] batches.
    fn component_horizon(&mut self, now: u64, mut next: u64) -> u64 {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        // Pending hierarchy output routes at the next bus boundary...
        let boundary = (now / per_bus + 1) * per_bus;
        if next > boundary {
            if self.hierarchy.next_event_at(now, per_bus).is_some() {
                next = boundary;
            }
            // ...as does backlog the controllers now have room for.
            if self.backlog_len > 0 {
                for sh in &self.shards {
                    if sh.backlog_front_acceptable() {
                        next = next.min(boundary);
                    }
                }
            }
        }
        // Controller events land on bus boundaries, so they only matter
        // when nothing earlier is already scheduled (and staying lazy here
        // lets several invalidations coalesce into one recomputation).
        //
        // `bus * per_bus` deliberately omits the `fill_latency` term that
        // `step_bus` adds when waking a core (`done_at * per_bus +
        // fill_latency`), and that cannot under-sleep past a pending wake:
        // a completion never outlives the `step_bus` call of the bus cycle
        // that created it — `tick`/`enqueue` produce it and the drain loop
        // in the same call consumes it, calling `wake` immediately (a
        // controller with an undrained completion would pin
        // `next_event_at(from) == Some(from)` anyway, making this horizon
        // conservative, never late). The wake stamps the *future*
        // fill-inclusive ready time into the core's load window, and from
        // then on the core's own `next_event_at` — folded into `next`
        // before this block — covers that cycle. So every fill-latency
        // deadline is owned by a core horizon, and the controller horizon
        // only needs to reach the bus boundary where the completion (and
        // its wake) happen.
        if next > boundary {
            let from_bus = now / per_bus + 1;
            for sh in &mut self.shards {
                if let Some(bus) = sh.mc.next_event_at(from_bus) {
                    next = next.min(bus.saturating_mul(per_bus));
                }
            }
        }
        next
    }

    /// Runs until every core finishes or `max_cpu_cycles` elapse; returns
    /// the collected statistics. The kernel comes from
    /// [`SystemConfig::kernel`]; both produce bit-identical results.
    pub fn run(&mut self, max_cpu_cycles: u64) -> RunStats {
        let stats = match self.cfg.kernel {
            Kernel::Reference => self.run_reference(max_cpu_cycles),
            Kernel::Event => self.run_event(max_cpu_cycles),
            Kernel::Parallel => self.run_parallel(max_cpu_cycles),
            Kernel::Sampled { window, skip } => self.run_sampled(max_cpu_cycles, window, skip),
        };
        // Lands the final reconciliation sample and writes the merged
        // Chrome trace; a no-op (single `is_none` test) when telemetry
        // is off.
        self.telemetry_finish();
        stats
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The CPU cycle the system has advanced to (`run` resumes here).
    #[must_use]
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Appends the system's full live state — clock, cores, hierarchy,
    /// per-channel shards — to a snapshot word stream (the payload of the
    /// FGSN format, see [`crate::snapshot`]). Construction parameters are
    /// *not* included: a restore rebuilds the system from the same run
    /// description, guaranteed by the snapshot's config hash.
    pub(crate) fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.cpu_cycle);
        out.push(self.cores.len() as u64);
        for core in &self.cores {
            core.save_state(out);
        }
        self.hierarchy.save_state(out);
        out.push(self.shards.len() as u64);
        for sh in &self.shards {
            sh.save_state(out);
        }
    }

    /// Restores state saved by [`System::save_state`] into a freshly
    /// constructed system (same configuration and trace sources). After
    /// this, `run` continues bit-identically to the uninterrupted run
    /// under every kernel.
    pub(crate) fn load_state(&mut self, src: &mut &[u64]) {
        self.cpu_cycle = crate::take(src);
        let n = crate::take(src) as usize;
        assert_eq!(n, self.cores.len(), "snapshot core-count mismatch");
        for core in &mut self.cores {
            core.load_state(src);
        }
        self.hierarchy.load_state(src);
        let n = crate::take(src) as usize;
        assert_eq!(n, self.shards.len(), "snapshot channel-count mismatch");
        // The shard frontier the catch-up epoch would have left: every bus
        // cycle at or before the last executed CPU cycle is processed.
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let frontier = if self.cpu_cycle == 0 { 0 } else { (self.cpu_cycle - 1) / per_bus + 1 };
        self.backlog_len = 0;
        for sh in &mut self.shards {
            self.backlog_len += sh.load_state(src, frontier);
        }
        self.completion_buf.clear();
    }

    /// The original per-cycle clock loop ([`Kernel::Reference`]).
    fn run_reference(&mut self, max_cpu_cycles: u64) -> RunStats {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let fill_latency = u64::from(self.cfg.hierarchy.fill_latency);
        while self.cores.iter().any(|c| !c.finished()) && self.cpu_cycle < max_cpu_cycles {
            self.maybe_sample(self.cpu_cycle);
            self.step(self.cpu_cycle, per_bus, fill_latency);
            self.cpu_cycle += 1;
        }
        self.collect()
    }

    /// Next-event time skipping ([`Kernel::Event`]): execute the same
    /// per-cycle step as the reference kernel, but only at event cycles;
    /// skipped intervals are folded into the blocked counters.
    pub(crate) fn run_event(&mut self, max_cpu_cycles: u64) -> RunStats {
        self.run_event_span(max_cpu_cycles);
        self.collect()
    }

    /// The event kernel's clock loop without the final stats collection —
    /// `run_event` is `run_event_span` + `collect`, and the sampled
    /// kernel's detailed windows reuse the span directly so each window
    /// is the exact event-kernel cycle sequence.
    fn run_event_span(&mut self, max_cpu_cycles: u64) {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let fill_latency = u64::from(self.cfg.hierarchy.fill_latency);
        // Only live cores are ticked/skipped: a finished core's tick is a
        // no-op in the reference loop, so dropping the visit (and the
        // cache traffic of touching its state) cannot change behavior.
        // Wakes for its still-in-flight loads go through `wake`, not tick.
        let mut live: Vec<usize> =
            (0..self.cores.len()).filter(|&i| !self.cores[i].finished()).collect();
        while !live.is_empty() && self.cpu_cycle < max_cpu_cycles {
            let now = self.cpu_cycle;
            self.maybe_sample(now);
            if let Some(bus) = self.bus_boundary(now, per_bus) {
                self.step_bus(bus, per_bus, fill_latency, true);
            }
            if let Some(p) = &mut self.profiler {
                p.clock.lap(PROF_MEMORY);
            }
            // One fused pass over the live cores: tick each (exactly as
            // the reference step does, after the bus half), then read its
            // post-tick state to seed the horizon and the exit check.
            let mut next = max_cpu_cycles;
            live.retain(|&i| {
                let core = &mut self.cores[i];
                core.tick(now, &mut self.hierarchy);
                if core.finished() {
                    return false;
                }
                if let Some(t) = core.next_event_at(now) {
                    next = next.min(t);
                }
                true
            });
            if let Some(p) = &mut self.profiler {
                p.clock.lap(PROF_CORES);
            }
            self.cpu_cycle += 1;
            if live.is_empty() {
                break; // the reference loop's exact exit cycle
            }
            // An active core ticks next cycle; nothing can be earlier.
            if next <= now + 1 {
                continue;
            }
            let next = self.component_horizon(now, next).clamp(now + 1, max_cpu_cycles);
            // Execute the next sample boundary instead of jumping it: an
            // extra executed cycle below the horizon is a no-op by the
            // skip contract, so the clamp keeps results bit-identical
            // while making every kernel sample at exactly k·interval.
            let next = next.min(self.telemetry_next_sample());
            let skip = next - self.cpu_cycle;
            if skip > 0 {
                for &i in &live {
                    self.cores[i].skip_cycles(now, skip, &mut self.hierarchy);
                }
                self.cpu_cycle = next;
            }
        }
    }

    /// SMARTS-style sampled simulation ([`Kernel::Sampled`]): alternate
    /// detailed event-kernel windows with functional fast-forward
    /// intervals. Each skipped interval jumps the clock by `skip` cycles
    /// and consumes, per core, the instructions the interval would have
    /// executed at the IPC the core sustained in the detailed window just
    /// measured — without issuing any cache or memory traffic (see
    /// [`TraceCore::fast_forward`]). The first half of every post-jump
    /// window is detailed *warming* (pipeline refill, row buffers, cache
    /// churn recover from the functional skip) and is excluded from the
    /// measured IPC, as in SMARTS. Approximate by construction; the
    /// measured-window IPC and duty-cycle bookkeeping land in
    /// [`RunStats::sampled`] so reports can quote error bars against full
    /// runs.
    fn run_sampled(&mut self, max_cpu_cycles: u64, window: u64, skip: u64) -> RunStats {
        let window = window.max(1);
        let mut sampled = crate::metrics::SampledStats {
            detailed_insts: vec![0; self.cores.len()],
            ..Default::default()
        };
        let mut window_retired = vec![0u64; self.cores.len()];
        let mut jumped = false;
        while self.cores.iter().any(|c| !c.finished()) && self.cpu_cycle < max_cpu_cycles {
            // Detailed window: the exact event-kernel cycle sequence,
            // with an unmeasured warming prefix after a jump.
            let start_cycle = self.cpu_cycle;
            if jumped {
                self.run_event_span(max_cpu_cycles.min(start_cycle.saturating_add(window / 2)));
            }
            let measured_from = self.cpu_cycle;
            figaro_telemetry::probe!(
                self.telemetry,
                t => t.window_mark("window_begin", measured_from, sampled.windows)
            );
            for (i, core) in self.cores.iter().enumerate() {
                window_retired[i] = core.retired();
            }
            self.run_event_span(max_cpu_cycles.min(start_cycle.saturating_add(window)));
            let ran = self.cpu_cycle - measured_from;
            figaro_telemetry::probe!(
                self.telemetry,
                t => t.window_mark("window_end", measured_from + ran, ran)
            );
            sampled.windows += 1;
            sampled.detailed_cycles += ran;
            for (i, core) in self.cores.iter().enumerate() {
                window_retired[i] = core.retired() - window_retired[i];
                sampled.detailed_insts[i] += window_retired[i];
            }
            if skip == 0 || self.cores.iter().all(TraceCore::finished) {
                continue; // skip=0 degenerates to pure detailed simulation
            }
            // Fast-forward: jump the clock, functionally consuming the
            // instructions each core would have executed at its measured
            // window IPC. In-flight loads complete "during" the jump
            // (their absolute wake stamps fall inside it).
            let jump = skip.min(max_cpu_cycles - self.cpu_cycle);
            if jump == 0 {
                continue;
            }
            let now = self.cpu_cycle + jump - 1;
            for (i, core) in self.cores.iter_mut().enumerate() {
                let est = (u128::from(window_retired[i]) * u128::from(jump)
                    / u128::from(ran.max(1))) as u64;
                core.fast_forward(est, now);
            }
            // The memory side really simulates through the jump (cores
            // are frozen, so this is just queued work draining plus
            // refresh — proportional to pending requests, not cycles).
            // Without it, in-flight reads would "age" across the whole
            // skip and poison the next window's head-of-window latency.
            self.fast_forward_channels(self.cpu_cycle - 1, now);
            figaro_telemetry::probe!(
                self.telemetry,
                t => t.window_mark("fast_forward", self.cpu_cycle, jump)
            );
            self.cpu_cycle += jump;
            sampled.skipped_cycles += jump;
            jumped = true;
        }
        let mut stats = self.collect();
        stats.sampled = Some(sampled);
        stats
    }

    /// Advances only the memory side across a fast-forwarded interval:
    /// processes every bus boundary in `(from, to]` where the hierarchy
    /// has output to route, backlog waits for queue room, or a
    /// controller has an event (command issue, write drain, refresh).
    /// Cores are frozen, so no new traffic arrives and the channels
    /// simply drain to quiescence; wakes for functionally-retired loads
    /// are ignored by the cores' `seq >= head_seq` guard.
    fn fast_forward_channels(&mut self, from: u64, to: u64) {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let fill_latency = u64::from(self.cfg.hierarchy.fill_latency);
        let mut bus = from / per_bus + 1;
        let end_bus = to / per_bus;
        while bus <= end_bus {
            let mut next =
                if self.backlog_len > 0 || self.hierarchy.has_outgoing() { bus } else { u64::MAX };
            if next > bus {
                for sh in &mut self.shards {
                    if let Some(b) = sh.mc.next_event_at(bus) {
                        next = next.min(b);
                    }
                }
            }
            if next > end_bus {
                break;
            }
            self.step_bus(next, per_bus, fill_latency, true);
            bus = next + 1;
        }
    }

    pub(crate) fn collect(&self) -> RunStats {
        let mut mc = figaro_memctrl::McStats::default();
        let mut dram = figaro_dram::DramStats::default();
        let mut cache = figaro_core::CacheStats::default();
        let mut per_channel = Vec::with_capacity(self.shards.len());
        for m in self.shards.iter().map(|s| &s.mc) {
            let s = m.stats();
            per_channel.push(ChannelStats {
                row_hits: s.row_hits,
                row_misses: s.row_misses,
                row_conflicts: s.row_conflicts,
                reads_served: s.reads_served,
                writes_served: s.writes_served,
                read_q_peak: s.read_q_peak,
                write_q_peak: s.write_q_peak,
            });
            mc.merge_from(m.stats());
            dram.merge_from(m.dram_stats());
            let e = m.engine_stats();
            cache.lookups += e.lookups;
            cache.hits += e.hits;
            cache.hits_bypassed += e.hits_bypassed;
            cache.misses += e.misses;
            cache.uncacheable += e.uncacheable;
            cache.insertions += e.insertions;
            cache.insertions_skipped += e.insertions_skipped;
            cache.insertions_cancelled += e.insertions_cancelled;
            cache.evictions_clean += e.evictions_clean;
            cache.evictions_dirty += e.evictions_dirty;
            cache.blocks_relocated += e.blocks_relocated;
        }
        let hierarchy = self.hierarchy.stats();
        let finish_cycles: Vec<u64> =
            self.cores.iter().map(|c| c.finished_at().unwrap_or(self.cpu_cycle)).collect();
        let instructions: Vec<u64> = self.cores.iter().map(TraceCore::retired).collect();
        let bus_cycles = self.cpu_cycle / self.cfg.cpu_cycles_per_bus;
        let dram_energy =
            DramEnergyModel::ddr4_1600().breakdown(&dram, bus_cycles, u64::from(self.cfg.channels));
        let activity = SystemActivity {
            cores: self.cfg.cores as u32,
            cpu_cycles: self.cpu_cycle,
            instructions: instructions.iter().sum(),
            l1_accesses: hierarchy.l1.iter().map(|c| c.accesses).sum(),
            l2_accesses: hierarchy.l2.iter().map(|c| c.accesses).sum(),
            llc_accesses: hierarchy.llc.accesses,
            offchip_bytes: (mc.reads_served + mc.writes_served) * 64,
            llc_mb: self.cfg.hierarchy.llc.size_bytes as f64 / (1024.0 * 1024.0),
            dram: dram_energy,
        };
        let energy = SystemEnergyModel::paper_default().breakdown(&activity);
        RunStats {
            cpu_cycles: self.cpu_cycle,
            finish_cycles,
            instructions,
            cores: self.cores.iter().map(TraceCore::stats).collect(),
            mc,
            dram,
            cache,
            per_channel,
            hierarchy,
            energy,
            sampled: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigKind;
    use figaro_workloads::{generate_trace, profile_by_name};

    fn run_one(kind: ConfigKind) -> RunStats {
        let profile = profile_by_name("mcf").unwrap();
        let trace = generate_trace(&profile, 30_000, 42);
        let cfg = SystemConfig::paper(1, kind);
        let mut sys = System::new(cfg, vec![trace], &[60_000]);
        sys.run(60_000_000)
    }

    fn run_with_kernel(kind: ConfigKind, kernel: Kernel, cores: usize, insts: u64) -> RunStats {
        let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
        let traces: Vec<Trace> = (0..cores)
            .map(|i| {
                let p = profile_by_name(apps[i % apps.len()]).unwrap();
                generate_trace(&p, 8_000, 7 + i as u64)
            })
            .collect();
        let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, kind) };
        let mut sys = System::new(cfg, traces, &vec![insts; cores]);
        sys.run(insts * 400)
    }

    #[test]
    fn event_kernel_matches_reference_across_figure78_configs() {
        let mut kinds = vec![ConfigKind::Base];
        kinds.extend(ConfigKind::figure78_set());
        for kind in kinds {
            let reference = run_with_kernel(kind.clone(), Kernel::Reference, 1, 30_000);
            let event = run_with_kernel(kind.clone(), Kernel::Event, 1, 30_000);
            assert_eq!(reference, event, "kernel divergence under {}", kind.label());
        }
    }

    #[test]
    fn event_kernel_matches_reference_multicore_multichannel() {
        for cores in [2usize, 4] {
            let reference =
                run_with_kernel(ConfigKind::FigCacheFast, Kernel::Reference, cores, 12_000);
            let event = run_with_kernel(ConfigKind::FigCacheFast, Kernel::Event, cores, 12_000);
            assert_eq!(reference, event, "kernel divergence with {cores} cores");
        }
    }

    fn run_parallel_threads(
        kind: ConfigKind,
        threads: usize,
        cores: usize,
        insts: u64,
    ) -> RunStats {
        let apps = ["mcf", "lbm", "zeusmp", "libquantum"];
        let traces: Vec<Trace> = (0..cores)
            .map(|i| {
                let p = profile_by_name(apps[i % apps.len()]).unwrap();
                generate_trace(&p, 8_000, 7 + i as u64)
            })
            .collect();
        let cfg = SystemConfig { kernel: Kernel::Parallel, ..SystemConfig::paper(cores, kind) }
            .with_threads(threads);
        let mut sys = System::new(cfg, traces, &vec![insts; cores]);
        sys.run(insts * 400)
    }

    #[test]
    fn parallel_kernel_matches_event_multicore_multichannel() {
        // Same traces/seeds as `run_with_kernel`, so the event run is the
        // oracle: four channels, one worker thread per shard.
        for cores in [2usize, 4] {
            let event = run_with_kernel(ConfigKind::FigCacheFast, Kernel::Event, cores, 12_000);
            let parallel = run_parallel_threads(ConfigKind::FigCacheFast, 4, cores, 12_000);
            assert_eq!(event, parallel, "parallel kernel divergence with {cores} cores");
        }
    }

    #[test]
    fn parallel_kernel_is_thread_count_invariant() {
        // Worker threads are a wall-clock knob only: 1 (inline epochs),
        // 2 (shards shared), 4 (one each) and 8 (clamped to 4) must all
        // produce the identical RunStats.
        let event = run_with_kernel(ConfigKind::FigCacheFast, Kernel::Event, 4, 10_000);
        for threads in [1usize, 2, 4, 8] {
            let parallel = run_parallel_threads(ConfigKind::FigCacheFast, threads, 4, 10_000);
            assert_eq!(event, parallel, "divergence with {threads} worker threads");
        }
    }

    #[test]
    fn parallel_kernel_single_channel_degenerates_to_event() {
        // One channel: `run_parallel` must fall straight through to the
        // event kernel (nothing to shard), bit-identically.
        let event = run_with_kernel(ConfigKind::Base, Kernel::Event, 1, 30_000);
        let parallel = run_with_kernel(ConfigKind::Base, Kernel::Parallel, 1, 30_000);
        assert_eq!(event, parallel);
    }

    #[test]
    fn parallel_kernel_matches_event_under_backlog_saturation() {
        // The hardest shape for the lookahead bound: queues shrunk to 4
        // entries so the per-channel backlog stays pinned, FIGCache
        // relocation traffic keeping banks pinned/merging, and a
        // non-power-of-two CPU:bus ratio with a large fill latency.
        let run = |kernel: Kernel, threads: usize| {
            let apps = ["mcf", "com", "tigr", "mum"];
            let traces: Vec<Trace> = apps
                .iter()
                .enumerate()
                .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 8_000, 61 + i as u64))
                .collect();
            let mut cfg =
                SystemConfig { kernel, ..SystemConfig::paper(4, ConfigKind::FigCacheFast) }
                    .with_threads(threads);
            cfg.channels = 2; // heavier per-channel contention
            cfg.mc.read_queue_cap = 4;
            cfg.mc.write_queue_cap = 4;
            cfg.mc.wq_high = 3;
            cfg.mc.wq_low = 1;
            cfg.hierarchy.mshrs_per_core = 16;
            cfg.hierarchy.fill_latency = 23;
            cfg.cpu_cycles_per_bus = 5;
            let mut sys = System::new(cfg, traces, &[10_000; 4]);
            sys.run(40_000_000)
        };
        let event = run(Kernel::Event, 1);
        for threads in [1usize, 2, 4] {
            let parallel = run(Kernel::Parallel, threads);
            assert_eq!(event, parallel, "divergence under saturation, {threads} threads");
        }
        for core in 0..4 {
            assert_eq!(event.instructions[core], 10_000, "core {core} starved");
        }
        assert!(event.mc.enq_reads > 100, "workload must stress the queue");
    }

    #[test]
    fn parallel_kernel_matches_event_at_cycle_cap() {
        // A cap-truncated run must stop at the identical cycle with
        // identical controller state (the catch-up epoch covers events in
        // the final skipped stretch).
        let run = |kernel: Kernel| {
            let apps = ["mcf", "lbm"];
            let traces: Vec<Trace> = apps
                .iter()
                .map(|n| generate_trace(&profile_by_name(n).unwrap(), 30_000, 9))
                .collect();
            let cfg = SystemConfig { kernel, ..SystemConfig::paper(2, ConfigKind::FigCacheFast) }
                .with_threads(4);
            let mut sys = System::new(cfg, traces, &[1_000_000; 2]);
            sys.run(50_000)
        };
        let event = run(Kernel::Event);
        let parallel = run(Kernel::Parallel);
        assert_eq!(event.cpu_cycles, 50_000);
        assert_eq!(event, parallel);
    }

    #[test]
    fn event_kernel_matches_reference_at_cycle_cap() {
        // A run truncated by `max_cpu_cycles` must stop at the identical
        // cycle (unfinished cores report the cap in `finish_cycles`).
        let reference = {
            let profile = profile_by_name("mcf").unwrap();
            let trace = generate_trace(&profile, 30_000, 9);
            let cfg = SystemConfig {
                kernel: Kernel::Reference,
                ..SystemConfig::paper(1, ConfigKind::Base)
            };
            let mut sys = System::new(cfg, vec![trace], &[1_000_000]);
            sys.run(50_000)
        };
        let event = {
            let profile = profile_by_name("mcf").unwrap();
            let trace = generate_trace(&profile, 30_000, 9);
            let cfg =
                SystemConfig { kernel: Kernel::Event, ..SystemConfig::paper(1, ConfigKind::Base) };
            let mut sys = System::new(cfg, vec![trace], &[1_000_000]);
            sys.run(50_000)
        };
        assert_eq!(reference.cpu_cycles, 50_000);
        assert_eq!(reference, event);
    }

    #[test]
    fn event_kernel_matches_reference_with_saturated_channel_backlog() {
        // Regression for the backlog path: shrink one channel's queues so
        // `route_requests` parks requests in the per-channel backlog, and
        // raise the per-core MSHRs so four pointer-chasing cores keep the
        // queue pinned at capacity. The event kernel's horizon must
        // include the cycle the queue frees — any time-jump past the
        // drain point diverges from the reference (and would starve the
        // backlogged requests).
        let run = |kernel: Kernel| {
            let apps = ["mcf", "com", "tigr", "mum"];
            let traces: Vec<Trace> = apps
                .iter()
                .enumerate()
                .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 8_000, 31 + i as u64))
                .collect();
            let mut cfg = SystemConfig { kernel, ..SystemConfig::paper(4, ConfigKind::Base) };
            cfg.channels = 1; // every request contends for one controller
            cfg.mc.read_queue_cap = 4;
            cfg.mc.write_queue_cap = 4;
            cfg.mc.wq_high = 3;
            cfg.mc.wq_low = 1;
            cfg.hierarchy.mshrs_per_core = 16;
            let mut sys = System::new(cfg, traces, &[10_000; 4]);
            sys.run(40_000_000)
        };
        let reference = run(Kernel::Reference);
        let event = run(Kernel::Event);
        assert_eq!(reference, event, "kernel divergence under backlog saturation");
        for core in 0..4 {
            assert_eq!(reference.instructions[core], 10_000, "core {core} starved");
        }
        // The shape must actually have exercised the backlog: with 64
        // outstanding misses possible and 4 queue slots, far more requests
        // were enqueued than fit at once.
        assert!(reference.mc.enq_reads > 100, "workload must stress the queue");
    }

    #[test]
    fn event_kernel_matches_reference_with_nondefault_fill_and_bus_ratio() {
        // Regression for the `component_horizon` fill-latency audit: the
        // controller horizon is `bus * per_bus` with no `fill_latency`
        // term (see the proof comment there), and the proof leans on the
        // wake's fill-inclusive ready stamp being covered by a *core*
        // horizon. Stress it where the two clocks interact most — the
        // backlog-saturation shape with a non-default fill latency and a
        // non-power-of-two CPU:bus ratio (exercising the division paths)
        // — where any under-sleep past a wake diverges from the
        // reference.
        let run = |kernel: Kernel| {
            let apps = ["mcf", "com", "tigr", "mum"];
            let traces: Vec<Trace> = apps
                .iter()
                .enumerate()
                .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 8_000, 47 + i as u64))
                .collect();
            let mut cfg = SystemConfig { kernel, ..SystemConfig::paper(4, ConfigKind::Base) };
            cfg.channels = 1;
            cfg.mc.read_queue_cap = 4;
            cfg.mc.write_queue_cap = 4;
            cfg.mc.wq_high = 3;
            cfg.mc.wq_low = 1;
            cfg.hierarchy.mshrs_per_core = 16;
            cfg.hierarchy.fill_latency = 23; // default is much smaller
            cfg.cpu_cycles_per_bus = 5; // non-power-of-two ratio
            let mut sys = System::new(cfg, traces, &[10_000; 4]);
            sys.run(40_000_000)
        };
        let reference = run(Kernel::Reference);
        let event = run(Kernel::Event);
        assert_eq!(reference, event, "kernel divergence with fill_latency=23, per_bus=5");
        for core in 0..4 {
            assert_eq!(reference.instructions[core], 10_000, "core {core} starved");
        }
        assert!(reference.mc.enq_reads > 100, "workload must stress the queue");
    }

    #[test]
    fn streaming_sources_match_materialized_traces_end_to_end() {
        // A full system driven by generator sources must be bit-identical
        // to the same system driven by (non-wrapping) materialized traces
        // of those generators.
        use figaro_workloads::{TraceGenerator, TraceSource};
        let apps = ["mcf", "lbm"];
        let cfg = || SystemConfig::paper(2, ConfigKind::FigCacheFast);
        let materialized = {
            let traces: Vec<Trace> = apps
                .iter()
                .map(|n| generate_trace(&profile_by_name(n).unwrap(), 60_000, 5))
                .collect();
            let mut sys = System::new(cfg(), traces, &[12_000; 2]);
            sys.run(10_000_000)
        };
        let streamed = {
            let sources: Vec<Box<dyn TraceSource>> = apps
                .iter()
                .map(|n| {
                    Box::new(TraceGenerator::new(&profile_by_name(n).unwrap(), 5))
                        as Box<dyn TraceSource>
                })
                .collect();
            let mut sys = System::from_sources(cfg(), sources, &[12_000; 2]);
            sys.run(10_000_000)
        };
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        // Record a streaming run's op stream to the compact on-disk
        // format, then drive a fresh system from the file: RunStats must
        // round-trip bit-for-bit.
        use figaro_workloads::{FileReplay, RecordingSource, TraceGenerator};
        let p = profile_by_name("zeusmp").unwrap();
        let path = std::env::temp_dir().join(format!("figaro-replay-{}.figt", std::process::id()));
        let cfg = || SystemConfig::paper(1, ConfigKind::FigCacheFast);
        let recorded = {
            let rec = RecordingSource::create(TraceGenerator::new(&p, 21), &path)
                .expect("create recording");
            let mut sys = System::from_sources(cfg(), vec![Box::new(rec)], &[20_000]);
            sys.run(10_000_000)
            // Dropping the system flushes the recording via the buffered
            // writer's Drop.
        };
        let replayed = {
            let src = FileReplay::open(&path).expect("open recording");
            let mut sys = System::from_sources(cfg(), vec![Box::new(src)], &[20_000]);
            sys.run(10_000_000)
        };
        assert_eq!(recorded, replayed, "record → replay must be bit-identical");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn base_system_completes_and_reports() {
        let s = run_one(ConfigKind::Base);
        assert_eq!(s.instructions[0], 60_000);
        assert!(s.ipc(0) > 0.01 && s.ipc(0) < 3.0, "ipc {}", s.ipc(0));
        assert!(s.dram.reads > 0);
        assert!(s.mc.row_hits + s.mc.row_misses + s.mc.row_conflicts > 0);
        assert!(s.energy.total() > 0.0);
    }

    #[test]
    fn figcache_fast_relocates_and_hits() {
        let s = run_one(ConfigKind::FigCacheFast);
        assert!(s.dram.relocs > 0, "FIGCache must issue RELOCs");
        assert!(s.cache.hits > 0, "FIGCache should get cache hits");
    }

    #[test]
    fn lisa_villa_clones_rows() {
        let s = run_one(ConfigKind::LisaVilla);
        assert!(s.dram.lisa_clones > 0);
    }

    #[test]
    fn ideal_figcache_issues_no_relocs() {
        let s = run_one(ConfigKind::FigCacheIdeal);
        assert_eq!(s.dram.relocs, 0);
        assert!(s.cache.hits > 0);
    }

    #[test]
    fn mcf_is_memory_intensive_on_this_hierarchy() {
        let s = run_one(ConfigKind::Base);
        assert!(s.mpki(0) > 10.0, "mcf MPKI = {}", s.mpki(0));
    }

    #[test]
    fn eight_core_system_runs() {
        let apps: Vec<_> = ["mcf", "lbm", "zeusmp", "libquantum", "gcc", "sjeng", "grep", "bzip2"]
            .iter()
            .map(|n| profile_by_name(n).unwrap())
            .collect();
        let traces: Vec<Trace> = apps
            .iter()
            .enumerate()
            .map(|(i, p)| generate_trace(p, 8_000, 100 + i as u64))
            .collect();
        let cfg = SystemConfig::paper(8, ConfigKind::FigCacheFast);
        let mut sys = System::new(cfg, traces, &[15_000; 8]);
        let s = sys.run(50_000_000);
        for core in 0..8 {
            assert_eq!(s.instructions[core], 15_000, "core {core} must finish");
        }
        assert!(s.dram.relocs > 0);
    }
}
