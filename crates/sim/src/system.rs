//! The assembled full system and its clock loop.

use std::collections::VecDeque;

use figaro_cpu::{CacheHierarchy, TraceCore};
use figaro_dram::AddressMapping;
use figaro_energy::{DramEnergyModel, SystemActivity, SystemEnergyModel};
use figaro_memctrl::{MemoryController, Request};
use figaro_workloads::Trace;

use crate::config::SystemConfig;
use crate::metrics::RunStats;

/// One runnable system: cores + hierarchy + per-channel controllers.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    cores: Vec<TraceCore>,
    hierarchy: CacheHierarchy,
    mcs: Vec<MemoryController>,
    mapping: AddressMapping,
    /// Requests that found a full controller queue, per channel.
    backlog: Vec<VecDeque<Request>>,
    cpu_cycle: u64,
}

impl System {
    /// Builds a system running one trace per core; core `i` targets
    /// `targets[i]` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces or targets does not match
    /// `cfg.cores` or the configuration is internally inconsistent.
    #[must_use]
    pub fn new(cfg: SystemConfig, traces: Vec<Trace>, targets: &[u64]) -> Self {
        assert_eq!(traces.len(), cfg.cores, "one trace per core");
        assert_eq!(targets.len(), cfg.cores, "one instruction target per core");
        let dram = cfg.dram_config();
        dram.validate().expect("dram config must validate");
        let mapping = AddressMapping::new(dram.geometry);
        let mcs: Vec<MemoryController> = (0..cfg.channels)
            .map(|ch| MemoryController::new(&dram, cfg.mc, ch, cfg.build_engine(&dram)))
            .collect();
        let hierarchy = CacheHierarchy::new(cfg.hierarchy, cfg.cores);
        let cores: Vec<TraceCore> = traces
            .into_iter()
            .zip(targets)
            .enumerate()
            .map(|(i, (t, &target))| TraceCore::new(i, cfg.core, t, target))
            .collect();
        let channels = cfg.channels as usize;
        Self {
            cfg,
            cores,
            hierarchy,
            mcs,
            mapping,
            backlog: vec![VecDeque::new(); channels],
            cpu_cycle: 0,
        }
    }

    /// Immutable access to the controllers (stats inspection).
    #[must_use]
    pub fn controllers(&self) -> &[MemoryController] {
        &self.mcs
    }

    fn route_requests(&mut self, bus: u64) {
        // New requests from the hierarchy join the per-channel backlog...
        if self.hierarchy.has_outgoing() {
            for req in self.hierarchy.take_outgoing() {
                let ch = self.mapping.decode(req.addr).channel as usize;
                self.backlog[ch].push_back(req);
            }
        }
        // ...which drains in order while the controller accepts.
        for (ch, q) in self.backlog.iter_mut().enumerate() {
            while let Some(front) = q.front() {
                if self.mcs[ch].can_accept(front.is_write) {
                    let mut req = q.pop_front().expect("front exists");
                    req.arrival = bus;
                    self.mcs[ch].enqueue(req, bus);
                } else {
                    break;
                }
            }
        }
    }

    /// Runs until every core finishes or `max_cpu_cycles` elapse; returns
    /// the collected statistics.
    pub fn run(&mut self, max_cpu_cycles: u64) -> RunStats {
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let fill_latency = u64::from(self.cfg.hierarchy.fill_latency);
        while self.cores.iter().any(|c| !c.finished()) && self.cpu_cycle < max_cpu_cycles {
            let now = self.cpu_cycle;
            if now.is_multiple_of(per_bus) {
                let bus = now / per_bus;
                self.route_requests(bus);
                for mc in &mut self.mcs {
                    mc.tick(bus);
                }
                for ch in 0..self.mcs.len() {
                    let completions = self.mcs[ch].drain_completions();
                    for c in completions {
                        let ready_cpu = c.done_at * per_bus + fill_latency;
                        for token in self.hierarchy.on_completion(c.id) {
                            self.cores[c.core as usize].wake(token, ready_cpu);
                        }
                    }
                }
            }
            for core in &mut self.cores {
                core.tick(now, &mut self.hierarchy);
            }
            self.cpu_cycle += 1;
        }
        self.collect()
    }

    fn collect(&self) -> RunStats {
        let mut mc = figaro_memctrl::McStats::default();
        let mut dram = figaro_dram::DramStats::default();
        let mut cache = figaro_core::CacheStats::default();
        for m in &self.mcs {
            mc.merge_from(m.stats());
            dram.merge_from(m.dram_stats());
            let e = m.engine_stats();
            cache.lookups += e.lookups;
            cache.hits += e.hits;
            cache.hits_bypassed += e.hits_bypassed;
            cache.misses += e.misses;
            cache.uncacheable += e.uncacheable;
            cache.insertions += e.insertions;
            cache.insertions_skipped += e.insertions_skipped;
            cache.insertions_cancelled += e.insertions_cancelled;
            cache.evictions_clean += e.evictions_clean;
            cache.evictions_dirty += e.evictions_dirty;
            cache.blocks_relocated += e.blocks_relocated;
        }
        let hierarchy = self.hierarchy.stats();
        let finish_cycles: Vec<u64> =
            self.cores.iter().map(|c| c.finished_at().unwrap_or(self.cpu_cycle)).collect();
        let instructions: Vec<u64> = self.cores.iter().map(TraceCore::retired).collect();
        let bus_cycles = self.cpu_cycle / self.cfg.cpu_cycles_per_bus;
        let dram_energy =
            DramEnergyModel::ddr4_1600().breakdown(&dram, bus_cycles, u64::from(self.cfg.channels));
        let activity = SystemActivity {
            cores: self.cfg.cores as u32,
            cpu_cycles: self.cpu_cycle,
            instructions: instructions.iter().sum(),
            l1_accesses: hierarchy.l1.iter().map(|c| c.accesses).sum(),
            l2_accesses: hierarchy.l2.iter().map(|c| c.accesses).sum(),
            llc_accesses: hierarchy.llc.accesses,
            offchip_bytes: (mc.reads_served + mc.writes_served) * 64,
            llc_mb: self.cfg.hierarchy.llc.size_bytes as f64 / (1024.0 * 1024.0),
            dram: dram_energy,
        };
        let energy = SystemEnergyModel::paper_default().breakdown(&activity);
        RunStats {
            cpu_cycles: self.cpu_cycle,
            finish_cycles,
            instructions,
            cores: self.cores.iter().map(TraceCore::stats).collect(),
            mc,
            dram,
            cache,
            hierarchy,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigKind;
    use figaro_workloads::{generate_trace, profile_by_name};

    fn run_one(kind: ConfigKind) -> RunStats {
        let profile = profile_by_name("mcf").unwrap();
        let trace = generate_trace(&profile, 30_000, 42);
        let cfg = SystemConfig::paper(1, kind);
        let mut sys = System::new(cfg, vec![trace], &[60_000]);
        sys.run(60_000_000)
    }

    #[test]
    fn base_system_completes_and_reports() {
        let s = run_one(ConfigKind::Base);
        assert_eq!(s.instructions[0], 60_000);
        assert!(s.ipc(0) > 0.01 && s.ipc(0) < 3.0, "ipc {}", s.ipc(0));
        assert!(s.dram.reads > 0);
        assert!(s.mc.row_hits + s.mc.row_misses + s.mc.row_conflicts > 0);
        assert!(s.energy.total() > 0.0);
    }

    #[test]
    fn figcache_fast_relocates_and_hits() {
        let s = run_one(ConfigKind::FigCacheFast);
        assert!(s.dram.relocs > 0, "FIGCache must issue RELOCs");
        assert!(s.cache.hits > 0, "FIGCache should get cache hits");
    }

    #[test]
    fn lisa_villa_clones_rows() {
        let s = run_one(ConfigKind::LisaVilla);
        assert!(s.dram.lisa_clones > 0);
    }

    #[test]
    fn ideal_figcache_issues_no_relocs() {
        let s = run_one(ConfigKind::FigCacheIdeal);
        assert_eq!(s.dram.relocs, 0);
        assert!(s.cache.hits > 0);
    }

    #[test]
    fn mcf_is_memory_intensive_on_this_hierarchy() {
        let s = run_one(ConfigKind::Base);
        assert!(s.mpki(0) > 10.0, "mcf MPKI = {}", s.mpki(0));
    }

    #[test]
    fn eight_core_system_runs() {
        let apps: Vec<_> = ["mcf", "lbm", "zeusmp", "libquantum", "gcc", "sjeng", "grep", "bzip2"]
            .iter()
            .map(|n| profile_by_name(n).unwrap())
            .collect();
        let traces: Vec<Trace> = apps
            .iter()
            .enumerate()
            .map(|(i, p)| generate_trace(p, 8_000, 100 + i as u64))
            .collect();
        let cfg = SystemConfig::paper(8, ConfigKind::FigCacheFast);
        let mut sys = System::new(cfg, traces, &[15_000; 8]);
        let s = sys.run(50_000_000);
        for core in 0..8 {
            assert_eq!(s.instructions[core], 15_000, "core {core} must finish");
        }
        assert!(s.dram.relocs > 0);
    }
}
