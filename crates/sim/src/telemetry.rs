//! Telemetry glue: harvests component counters into the interval
//! series, stamps main-loop trace marks, merges per-shard trace
//! buffers, and owns the (wall-clock) kernel self-profile.
//!
//! This module is the **only** place in `crates/sim` allowed to call
//! `figaro-telemetry` emit primitives outside the `probe!` guard
//! (figlint FIG007 carries a justified allow entry for this file):
//! every entry point here is itself reachable only through the
//! `System::telemetry` / `System::profiler` `Option`s, so the disabled
//! path never gets this far.
//!
//! ## Why sampling cannot perturb results
//!
//! The sampler only *reads* public counters. The one interaction with
//! the kernels is the horizon clamp ([`System::telemetry_next_sample`]
//! folded into the skip target), which merely forces the event kernels
//! to *execute* the sample-boundary cycle — and executing an extra
//! cycle is a no-op by the event-kernel soundness invariant (every
//! cycle below the component horizon changes nothing but the batched
//! blocked counters, which are folded identically either way). The
//! `telemetry` integration suite proptests exactly this claim.

use figaro_telemetry::series::{ColKind, SeriesSet};
use figaro_telemetry::trace::{Cat, MergeSource, TraceBuffer};
use figaro_telemetry::{profile, TelemetryConfig, TraceSink};

use crate::system::System;

/// Per-core series columns (retired-instruction delta, MSHR gauge).
const CORE_COLS: [(&str, ColKind); 2] = [("retired", ColKind::Delta), ("mshr", ColKind::Gauge)];

/// Per-channel series columns, matching [`harvest`]'s emit order.
const CH_COLS: [(&str, ColKind); 10] = [
    ("row_hits", ColKind::Delta),
    ("row_misses", ColKind::Delta),
    ("row_conflicts", ColKind::Delta),
    ("read_q", ColKind::Gauge),
    ("write_q", ColKind::Gauge),
    ("cache_hits", ColKind::Delta),
    ("cache_insertions", ColKind::Delta),
    ("cache_evictions", ColKind::Delta),
    ("relocs", ColKind::Delta),
    ("refreshes", ColKind::Delta),
];

/// The per-run telemetry state hanging off [`System`]. `None` on the
/// (default) disabled path — the kernels only ever pay an `Option`
/// discriminant test.
#[derive(Debug)]
pub(crate) struct SimTelemetry {
    /// Sampling stride in CPU cycles (`FIGARO_STATS_INTERVAL`).
    interval: Option<u64>,
    /// Next CPU cycle to sample at (`u64::MAX` when sampling is off);
    /// the kernels fold this into their skip horizons so the boundary
    /// cycle is executed, not jumped over.
    pub(crate) next_sample_at: u64,
    /// Raw counter snapshot from the previous sample (delta basis).
    last: Vec<u64>,
    /// Scratch for the current harvest (no per-sample allocation).
    scratch: Vec<u64>,
    /// The collected series.
    series: SeriesSet,
    /// Trace sink, when `FIGARO_TRACE` is set.
    sink: Option<TraceSink>,
    /// Main-loop trace lane (window/warm/epoch marks); `Some` iff
    /// `sink` is.
    buf: Option<TraceBuffer>,
}

impl SimTelemetry {
    /// Builds the run's telemetry state, or `None` when `cfg` enables
    /// nothing.
    pub(crate) fn create(
        cfg: &TelemetryConfig,
        cores: usize,
        channels: usize,
    ) -> Option<Box<Self>> {
        if !cfg.enabled() {
            return None;
        }
        let mut series = SeriesSet::new(figaro_telemetry::series::DEFAULT_CAP);
        for c in 0..cores {
            for (name, kind) in CORE_COLS {
                series.add_col(format!("core{c}.{name}"), kind);
            }
        }
        for ch in 0..channels {
            for (name, kind) in CH_COLS {
                series.add_col(format!("ch{ch}.{name}"), kind);
            }
        }
        let ncols = series.cols.len();
        let buf = cfg.trace.as_ref().map(|s| TraceBuffer::new(s.filter));
        Some(Box::new(Self {
            interval: cfg.interval,
            next_sample_at: cfg.interval.unwrap_or(u64::MAX),
            last: vec![0; ncols],
            scratch: Vec::with_capacity(ncols),
            series,
            sink: cfg.trace.clone(),
            buf,
        }))
    }

    /// The collected series.
    pub(crate) fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// Snapshots one sample row at `now` and advances the boundary to
    /// the next interval multiple strictly after `now` (a sampled-
    /// kernel jump may have crossed several boundaries — they collapse
    /// into this one row, whose deltas still cover the full gap, so
    /// totals keep reconciling exactly).
    pub(crate) fn sample(&mut self, now: u64, sys: &System) {
        let Some(interval) = self.interval else { return };
        self.scratch.clear();
        harvest(sys, &mut self.scratch);
        debug_assert_eq!(self.scratch.len(), self.last.len());
        let mut row = Vec::with_capacity(self.scratch.len());
        for (i, (&raw, col)) in self.scratch.iter().zip(&self.series.cols).enumerate() {
            row.push(match col.kind {
                ColKind::Delta => raw - self.last[i],
                ColKind::Gauge => raw,
            });
            self.last[i] = raw;
        }
        self.series.push_row(now, &row);
        self.next_sample_at = (now / interval + 1) * interval;
    }

    /// Sampled-kernel window/fast-forward instants.
    pub(crate) fn window_mark(&mut self, name: &'static str, cycle: u64, arg: u64) {
        if let Some(buf) = &mut self.buf {
            buf.instant(Cat::Window, name, cycle, arg);
        }
    }

    /// Warm-start resume instant.
    pub(crate) fn warm_mark(&mut self, cycle: u64) {
        if let Some(buf) = &mut self.buf {
            buf.instant(Cat::Warm, "warm_resume", cycle, 0);
        }
    }

    /// Parallel-kernel epoch-barrier instant (muted by the default
    /// trace filter; opt in with `:epoch` / `:all`).
    pub(crate) fn epoch_mark(&mut self, cycle: u64) {
        if let Some(buf) = &mut self.buf {
            buf.instant(Cat::Epoch, "epoch", cycle, 0);
        }
    }
}

/// Reads every sampled counter from the system, in the exact column
/// order [`SimTelemetry::create`] registered. Pure reads — this is the
/// whole of the sampler's contact with simulation state.
fn harvest(sys: &System, out: &mut Vec<u64>) {
    for (i, core) in sys.cores.iter().enumerate() {
        out.push(core.retired());
        out.push(sys.hierarchy.outstanding(i) as u64);
    }
    for sh in &sys.shards {
        let m = sh.mc.stats();
        out.push(m.row_hits);
        out.push(m.row_misses);
        out.push(m.row_conflicts);
        out.push(sh.mc.read_queue_len() as u64);
        out.push(sh.mc.write_queue_len() as u64);
        let e = sh.mc.engine_stats();
        out.push(e.hits);
        out.push(e.insertions);
        out.push(e.evictions_clean + e.evictions_dirty);
        let d = sh.mc.dram_stats();
        out.push(d.relocs);
        out.push(d.refreshes);
    }
}

/// Wall-clock kernel self-profile (`FIGARO_PROFILE=1`, surfaced by
/// `diag`). Result-neutral: see [`figaro_telemetry::profile`].
#[derive(Debug)]
pub struct KernelProfile {
    /// Component lap clock: bucket 0 = memory side (bus routing,
    /// epochs, controllers), bucket 1 = core side (core/hierarchy
    /// ticks and horizon bookkeeping).
    pub(crate) clock: profile::LapClock,
    /// Executed bus-boundary epochs (parallel kernel).
    pub(crate) epochs: u64,
    /// Per-shard busy time (parallel kernel).
    pub(crate) shard_timers: profile::ShardTimers,
}

/// Lap-clock bucket index for the memory half of a step.
pub(crate) const PROF_MEMORY: usize = 0;
/// Lap-clock bucket index for the core half of a step.
pub(crate) const PROF_CORES: usize = 1;

impl KernelProfile {
    pub(crate) fn new(shards: usize) -> Box<Self> {
        Box::new(Self {
            clock: profile::LapClock::new(&["memory", "cores"]),
            epochs: 0,
            shard_timers: profile::ShardTimers::new(shards),
        })
    }

    /// Renders the profile as human-readable lines for `diag`.
    #[must_use]
    pub fn report(&self) -> Vec<String> {
        let total_ns = self.clock.elapsed_ns().max(1);
        let secs = total_ns as f64 / 1e9;
        let mut lines = vec![format!("kernel wall time        {secs:.3} s")];
        for b in self.clock.buckets() {
            let pct = b.nanos as f64 * 100.0 / total_ns as f64;
            lines.push(format!("  {:<22}{:>6.1} %  ({} laps)", b.label, pct, b.laps));
        }
        if self.epochs > 0 {
            lines.push(format!("epochs                  {}", self.epochs));
            lines.push(format!("epochs/sec              {:.0}", self.epochs as f64 / secs));
            let busy = self.shard_timers.totals();
            if busy.iter().any(|&n| n > 0) {
                let list: Vec<String> =
                    busy.iter().map(|&n| format!("{:.1}ms", n as f64 / 1e6)).collect();
                lines.push(format!("shard busy              [{}]", list.join(", ")));
                lines.push(format!(
                    "shard idle imbalance    {:.1} %",
                    self.shard_timers.imbalance() * 100.0
                ));
            }
        }
        lines
    }
}

impl System {
    /// Installs (or, with a disabled config, removes) the run's
    /// telemetry: the interval sampler, the main trace lane, and the
    /// per-controller trace buffers. `System::new` calls this with the
    /// process-env config; tests call it directly with a programmatic
    /// [`TelemetryConfig`] so parallel test binaries never race on
    /// process env. Call before `run`.
    pub fn set_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.telemetry = SimTelemetry::create(cfg, self.cores.len(), self.shards.len());
        let filter = cfg.trace.as_ref().map(|s| s.filter);
        for sh in &mut self.shards {
            match filter {
                Some(f) => sh.mc.enable_trace(f),
                None => {
                    let _ = sh.mc.take_trace(0);
                }
            }
        }
    }

    /// The interval series collected so far (`None` when sampling is
    /// disabled or no row has landed yet).
    #[must_use]
    pub fn telemetry_series(&self) -> Option<&SeriesSet> {
        self.telemetry.as_ref().map(|t| t.series()).filter(|s| !s.cols.is_empty())
    }

    /// Next CPU cycle the sampler must observe (`u64::MAX` when
    /// sampling is off) — the kernels fold this into their skip
    /// horizons so the boundary cycle is executed rather than jumped.
    #[inline]
    pub(crate) fn telemetry_next_sample(&self) -> u64 {
        self.telemetry.as_ref().map_or(u64::MAX, |t| t.next_sample_at)
    }

    /// Loop-top sampling hook: snapshots a row when `now` has reached
    /// the sample boundary. The parallel kernel must catch its shards
    /// up first (see `catch_up_shards`) so the observed state matches
    /// the serial kernels' cycle-`now` state exactly.
    #[inline]
    pub(crate) fn maybe_sample(&mut self, now: u64) {
        if now >= self.telemetry_next_sample() {
            self.telemetry_sample(now);
        }
    }

    fn telemetry_sample(&mut self, now: u64) {
        let Some(mut t) = self.telemetry.take() else { return };
        t.sample(now, self);
        self.telemetry = Some(t);
    }

    /// End-of-run hook (called by `run` under every kernel): lands the
    /// final reconciliation sample (so delta-column totals equal the
    /// end-of-run aggregates exactly) and writes the merged Chrome
    /// trace, per-shard buffers in channel order after the main lane.
    ///
    /// # Panics
    ///
    /// Panics when the `FIGARO_TRACE` file cannot be written (loud-env
    /// convention: a traced run that silently lost its trace is worse
    /// than a dead one).
    pub(crate) fn telemetry_finish(&mut self) {
        if self.telemetry.is_none() {
            return;
        }
        let now = self.cpu_cycle;
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.interval.is_some() && t.series.cycles.back() != Some(&now))
        {
            self.telemetry_sample(now);
        }
        let Some(t) = self.telemetry.as_mut() else { return };
        let Some(sink) = t.sink.clone() else { return };
        let per_bus = self.cfg.cpu_cycles_per_bus;
        let final_bus = now / per_bus;
        let mut sources = Vec::with_capacity(1 + self.shards.len());
        if let Some(buf) = t.buf.take() {
            sources.push(MergeSource { tid: 0, ts_scale: 1, buf });
        }
        for (ch, sh) in self.shards.iter_mut().enumerate() {
            if let Some(buf) = sh.mc.take_trace(final_bus) {
                sources.push(MergeSource { tid: ch as u32 + 1, ts_scale: per_bus, buf });
            }
        }
        figaro_telemetry::trace::write_chrome_trace(&sink.path, &sources).unwrap_or_else(|e| {
            panic!("cannot write FIGARO_TRACE file {}: {e}", sink.path.display())
        });
        // One write per run: drop the state so a (hypothetical) second
        // `run` on the same system cannot emit a half-empty trace.
        self.telemetry = None;
    }

    /// Stamps a `warm_resume` instant at the current clock (the runner
    /// calls this when a run resumes from a warm-state snapshot or an
    /// in-memory warm hand-over).
    pub(crate) fn note_warm_resume(&mut self) {
        let cycle = self.cpu_cycle;
        figaro_telemetry::probe!(self.telemetry, t => t.warm_mark(cycle));
    }

    /// Enables kernel self-profiling for the next `run` (diag does
    /// this when `FIGARO_PROFILE=1`). Wall-clock only; results are
    /// unaffected (the profiler reads no simulation state and no
    /// simulation state reads it).
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(KernelProfile::new(self.shards.len()));
    }

    /// The kernel self-profile collected by the last `run`, if
    /// profiling was enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&KernelProfile> {
        self.profiler.as_deref()
    }
}
