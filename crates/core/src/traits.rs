//! The interface between in-DRAM cache engines and the memory controller.

use figaro_dram::{Cycle, RowId};

use crate::job::RelocationJob;

/// Where the memory controller should serve a demand request from, as
/// decided by the cache engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeTarget {
    /// Row to open/access (the source row, or a cache row on a hit).
    pub row: RowId,
    /// Block column within that row.
    pub col: u32,
    /// Whether the request is served by the in-DRAM cache.
    pub cache_hit: bool,
}

/// Aggregate statistics every cache engine reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups.
    pub lookups: u64,
    /// Lookups served by the in-DRAM cache.
    pub hits: u64,
    /// Cache hits served from the *source* row because it was already
    /// open (the open-row bypass; included in `hits`).
    pub hits_bypassed: u64,
    /// Lookups served by the source row.
    pub misses: u64,
    /// Lookups to addresses the engine cannot cache (e.g. rows homed in
    /// the reserved subarray of `FIGCache-Slow`).
    pub uncacheable: u64,
    /// Segments (or rows, for LISA-VILLA) whose insertion completed.
    pub insertions: u64,
    /// Insertions skipped because the per-bank job queue was full.
    pub insertions_skipped: u64,
    /// Insertions cancelled by a write racing the relocation.
    pub insertions_cancelled: u64,
    /// Clean evictions.
    pub evictions_clean: u64,
    /// Dirty evictions (each schedules a writeback job).
    pub evictions_dirty: u64,
    /// Cache blocks moved by relocation jobs (RELOC count at engine level).
    pub blocks_relocated: u64,
}

impl CacheStats {
    /// In-DRAM cache hit rate over cacheable lookups (paper Fig. 9).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Appends all counters to a snapshot word stream.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.lookups);
        out.push(self.hits);
        out.push(self.hits_bypassed);
        out.push(self.misses);
        out.push(self.uncacheable);
        out.push(self.insertions);
        out.push(self.insertions_skipped);
        out.push(self.insertions_cancelled);
        out.push(self.evictions_clean);
        out.push(self.evictions_dirty);
        out.push(self.blocks_relocated);
    }

    /// Restores counters saved by [`CacheStats::save_state`].
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        self.lookups = crate::take(src);
        self.hits = crate::take(src);
        self.hits_bypassed = crate::take(src);
        self.misses = crate::take(src);
        self.uncacheable = crate::take(src);
        self.insertions = crate::take(src);
        self.insertions_skipped = crate::take(src);
        self.insertions_cancelled = crate::take(src);
        self.evictions_clean = crate::take(src);
        self.evictions_dirty = crate::take(src);
        self.blocks_relocated = crate::take(src);
    }
}

/// An in-DRAM cache engine plugged into the memory controller.
///
/// The controller calls [`CacheEngine::on_request`] once per demand request
/// at enqueue time (the engine may redirect it into the cache region and
/// update tag/benefit state), and [`CacheEngine::take_job`] when a bank has
/// no active relocation job (the engine hands out pending jobs in FIFO
/// order; jobs are self-contained command generators). Job completion is
/// reported back through [`CacheEngine::on_job_complete`].
/// (`Send` so a whole `MemoryController` — which boxes its engine — can
/// move to a worker thread of the sharded parallel kernel.)
pub trait CacheEngine: std::fmt::Debug + Send {
    /// Looks up a demand request to (`bank`, `row`, `col`) and decides
    /// where to serve it; updates tag-store state (benefit counters,
    /// insertion decisions) as a side effect.
    ///
    /// `open_row` is the bank's currently open row: engines use it for the
    /// *open-row bypass* — a read whose source row is already open is
    /// served from that row (a guaranteed row hit) rather than redirected
    /// into the cache region, which would force a precharge/activate pair.
    /// The bypass is only legal while the cached copy is clean.
    fn on_request(
        &mut self,
        bank: u32,
        row: RowId,
        col: u32,
        is_write: bool,
        open_row: Option<RowId>,
        now: Cycle,
    ) -> ServeTarget;

    /// Pops the next pending relocation job for `bank`, if any.
    fn take_job(&mut self, bank: u32, now: Cycle) -> Option<RelocationJob>;

    /// The row whose LRB sources the front pending job's data (its
    /// "cheap-start" row: if that row is already open, the job can begin
    /// without an extra activation). `None` when there is no pending job
    /// or the job starts from a precharged bank.
    fn next_job_source(&self, _bank: u32) -> Option<RowId> {
        None
    }

    /// Whether `bank` has a pending (not yet started) job.
    fn has_pending_job(&self, bank: u32) -> bool;

    /// Whether **any** of the first `banks` banks has a pending job — one
    /// virtual call instead of `banks` for schedulers that poll this per
    /// cycle (the event kernel's horizon computation). Engines with a
    /// cheaper aggregate check should override it.
    fn has_any_pending_job(&self, banks: u32) -> bool {
        (0..banks).any(|b| self.has_pending_job(b))
    }

    /// Reports that job `job_id` on `bank` has finished all its commands.
    fn on_job_complete(&mut self, bank: u32, job_id: u64, now: Cycle);

    /// Engine statistics.
    fn stats(&self) -> CacheStats;

    /// Appends the engine's full mutable state to a snapshot word stream
    /// (tag stores, pending/in-flight jobs, miss counters, RNG, stats).
    /// The restoring side builds an engine from the same configuration —
    /// guaranteed by the snapshot's config hash — and calls
    /// [`CacheEngine::load_state`], so only dynamic state crosses.
    fn save_state(&self, out: &mut Vec<u64>);

    /// Restores state saved by [`CacheEngine::save_state`] into an engine
    /// built from the same configuration.
    fn load_state(&mut self, src: &mut &[u64]);
}

/// The no-op engine used by the `Base` and `LL-DRAM` configurations:
/// never redirects, never relocates.
#[derive(Debug, Clone, Default)]
pub struct NullEngine {
    stats: CacheStats,
}

impl NullEngine {
    /// Creates a no-op engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl CacheEngine for NullEngine {
    fn on_request(
        &mut self,
        _bank: u32,
        row: RowId,
        col: u32,
        _is_write: bool,
        _open_row: Option<RowId>,
        _now: Cycle,
    ) -> ServeTarget {
        self.stats.lookups += 1;
        self.stats.uncacheable += 1;
        ServeTarget { row, col, cache_hit: false }
    }

    fn take_job(&mut self, _bank: u32, _now: Cycle) -> Option<RelocationJob> {
        None
    }

    fn has_pending_job(&self, _bank: u32) -> bool {
        false
    }

    fn has_any_pending_job(&self, _banks: u32) -> bool {
        false
    }

    fn on_job_complete(&mut self, _bank: u32, _job_id: u64, _now: Cycle) {
        unreachable!("NullEngine never hands out jobs");
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        self.stats.save_state(out);
    }

    fn load_state(&mut self, src: &mut &[u64]) {
        self.stats.load_state(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_engine_never_redirects() {
        let mut e = NullEngine::new();
        let t = e.on_request(3, 42, 7, true, None, 100);
        assert_eq!(t, ServeTarget { row: 42, col: 7, cache_hit: false });
        assert!(e.take_job(3, 100).is_none());
        assert!(!e.has_pending_job(3));
        assert_eq!(e.stats().lookups, 1);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
