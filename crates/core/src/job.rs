//! Relocation jobs: self-contained DRAM-command generators that move data
//! into or out of the in-DRAM cache.
//!
//! A job is owned by the memory controller's per-bank scheduler once
//! started. Each cycle the controller *peeks* the next command for the
//! bank's current state, issues it when DRAM timing allows, and reports it
//! back with [`RelocationJob::on_issued`]. The job is finished when
//! [`RelocationJob::peek`] returns `None`.
//!
//! FIGARO copies are the paper's Section 4.1 sequence: ensure the source
//! row is open (activating it if a previous conflict closed it), issue one
//! `RELOC` per cache block of the segment — the first `RELOC` pins the
//! source subarray's local row buffer, after which the bank may serve
//! demand to other subarrays concurrently — then the merge `ACTIVATE` on
//! the destination row completes the job (the destination subarray
//! precharges locally). The LISA-VILLA baseline's job is a single
//! composite `LISA_CLONE` that occupies the whole precharged bank.

use figaro_dram::{DramCommand, RowId};

/// Why a job exists — used by engines to update tag state on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPurpose {
    /// Fill a cache slot (source row → cache row).
    Insert,
    /// Write a dirty victim back (cache row → source row).
    Writeback,
}

/// The data-movement shape of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// FIGARO fine-grained copy of `blocks` consecutive columns.
    FigCopy {
        /// Row whose LRB sources the columns.
        from_row: RowId,
        /// First source column.
        from_col: u32,
        /// Row that receives the columns via the merge activation.
        to_row: RowId,
        /// First destination column.
        to_col: u32,
        /// Destination subarray id (dense, per `SubarrayLayout::subarray_id`).
        to_subarray: u32,
        /// Number of cache blocks to move.
        blocks: u32,
    },
    /// LISA-VILLA whole-row clone (distance-dependent composite command).
    LisaClone {
        /// Source row.
        src_row: RowId,
        /// Destination row.
        dst_row: RowId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting to issue the compound RELOC train.
    Copy,
    /// Train issued; the merge activation remains.
    MergeWait,
    /// LISA clone not yet issued.
    CloneWait,
    /// All commands issued.
    Done,
}

/// One relocation job on one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelocationJob {
    /// Engine-assigned id, echoed back on completion.
    pub id: u64,
    /// Flat bank index within the channel.
    pub bank: u32,
    /// Why the job exists.
    pub purpose: JobPurpose,
    /// What the job moves.
    pub kind: JobKind,
    phase: Phase,
}

impl RelocationJob {
    /// Creates a FIGARO segment-copy job.
    ///
    /// The argument list mirrors the paper's RELOC operands one-to-one
    /// (source/destination row, column, subarray, block count); a builder
    /// struct here would only rename the same nine values.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn fig_copy(
        id: u64,
        bank: u32,
        purpose: JobPurpose,
        from_row: RowId,
        from_col: u32,
        to_row: RowId,
        to_col: u32,
        to_subarray: u32,
        blocks: u32,
    ) -> Self {
        assert!(blocks > 0, "a copy job must move at least one block");
        Self {
            id,
            bank,
            purpose,
            kind: JobKind::FigCopy { from_row, from_col, to_row, to_col, to_subarray, blocks },
            phase: Phase::Copy,
        }
    }

    /// Creates a LISA-VILLA whole-row clone job.
    #[must_use]
    pub fn lisa_clone(
        id: u64,
        bank: u32,
        purpose: JobPurpose,
        src_row: RowId,
        dst_row: RowId,
    ) -> Self {
        Self {
            id,
            bank,
            purpose,
            kind: JobKind::LisaClone { src_row, dst_row },
            phase: Phase::CloneWait,
        }
    }

    /// The next DRAM command to issue given the bank's current state, or
    /// `None` when the job has finished.
    ///
    /// The returned command may not yet satisfy DRAM timing; the caller
    /// re-peeks each cycle until it can issue, then reports the issue with
    /// [`RelocationJob::on_issued`].
    #[must_use]
    pub fn peek(&self, open_row: Option<RowId>, must_precharge: bool) -> Option<DramCommand> {
        match (self.phase, self.kind) {
            (Phase::Done, _) => None,
            (
                Phase::Copy,
                JobKind::FigCopy { from_row, from_col, to_col, to_subarray, blocks, .. },
            ) => {
                if must_precharge {
                    return Some(DramCommand::Precharge);
                }
                match open_row {
                    None => Some(DramCommand::Activate { row: from_row }),
                    Some(r) if r != from_row => Some(DramCommand::Precharge),
                    Some(_) => Some(DramCommand::RelocBurst {
                        src_col: from_col,
                        dst_subarray: to_subarray,
                        dst_col: to_col,
                        count: blocks,
                    }),
                }
            }
            (Phase::MergeWait, JobKind::FigCopy { to_row, .. }) => {
                // The source subarray is pinned; the merge proceeds
                // regardless of what the bank's demand row is doing.
                Some(DramCommand::ActivateMerge { row: to_row })
            }
            (Phase::CloneWait, JobKind::LisaClone { src_row, dst_row }) => {
                if must_precharge || open_row.is_some() {
                    Some(DramCommand::Precharge)
                } else {
                    Some(DramCommand::LisaClone { src_row, dst_row })
                }
            }
            (phase, kind) => unreachable!("inconsistent job state {phase:?} / {kind:?}"),
        }
    }

    /// Advances the job's state after the controller issued `cmd`.
    pub fn on_issued(&mut self, cmd: &DramCommand) {
        match (self.phase, cmd) {
            (Phase::Copy, DramCommand::RelocBurst { .. }) => {
                self.phase = Phase::MergeWait;
            }
            (Phase::MergeWait, DramCommand::ActivateMerge { .. }) => {
                self.phase = Phase::Done;
            }
            (Phase::CloneWait, DramCommand::LisaClone { .. }) => {
                self.phase = Phase::Done;
            }
            // Ensure-phase precharges/activates do not advance the phase.
            (Phase::Copy | Phase::CloneWait, _) => {}
            (phase, cmd) => unreachable!("job in phase {phase:?} cannot issue {cmd:?}"),
        }
    }

    /// Whether the job has issued everything.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Number of cache blocks this job moves (0 for whole-row clones).
    #[must_use]
    pub fn blocks(&self) -> u32 {
        match self.kind {
            JobKind::FigCopy { blocks, .. } => blocks,
            JobKind::LisaClone { .. } => 0,
        }
    }

    /// Appends the job (including its private phase) to a snapshot word
    /// stream.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.id);
        out.push(u64::from(self.bank));
        out.push(match self.purpose {
            JobPurpose::Insert => 0,
            JobPurpose::Writeback => 1,
        });
        match self.kind {
            JobKind::FigCopy { from_row, from_col, to_row, to_col, to_subarray, blocks } => {
                out.push(0);
                out.push(u64::from(from_row));
                out.push(u64::from(from_col));
                out.push(u64::from(to_row));
                out.push(u64::from(to_col));
                out.push(u64::from(to_subarray));
                out.push(u64::from(blocks));
            }
            JobKind::LisaClone { src_row, dst_row } => {
                out.push(1);
                out.push(u64::from(src_row));
                out.push(u64::from(dst_row));
            }
        }
        out.push(match self.phase {
            Phase::Copy => 0,
            Phase::MergeWait => 1,
            Phase::CloneWait => 2,
            Phase::Done => 3,
        });
    }

    /// Rebuilds a job saved by [`RelocationJob::save_state`].
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or an unknown kind/phase tag.
    #[must_use]
    pub fn load_state(src: &mut &[u64]) -> Self {
        let id = crate::take(src);
        let bank = crate::take(src) as u32;
        let purpose = match crate::take(src) {
            0 => JobPurpose::Insert,
            _ => JobPurpose::Writeback,
        };
        let kind = match crate::take(src) {
            0 => JobKind::FigCopy {
                from_row: crate::take(src) as RowId,
                from_col: crate::take(src) as u32,
                to_row: crate::take(src) as RowId,
                to_col: crate::take(src) as u32,
                to_subarray: crate::take(src) as u32,
                blocks: crate::take(src) as u32,
            },
            _ => JobKind::LisaClone {
                src_row: crate::take(src) as RowId,
                dst_row: crate::take(src) as RowId,
            },
        };
        let tag = crate::take(src);
        assert!(tag <= 3, "unknown job phase tag {tag}");
        let phase = match tag {
            0 => Phase::Copy,
            1 => Phase::MergeWait,
            2 => Phase::CloneWait,
            _ => Phase::Done,
        };
        Self { id, bank, purpose, kind, phase }
    }
}

/// Simulates a bank that immediately satisfies each command and records
/// the issued sequence (shared by the unit and property tests).
#[cfg(test)]
fn drive(
    job: &mut RelocationJob,
    mut open_row: Option<RowId>,
    mut must_pre: bool,
) -> Vec<DramCommand> {
    let mut issued = Vec::new();
    while let Some(cmd) = job.peek(open_row, must_pre) {
        match cmd {
            DramCommand::Activate { row } => open_row = Some(row),
            DramCommand::Precharge => {
                open_row = None;
                must_pre = false;
            }
            DramCommand::ActivateMerge { .. } => must_pre = true,
            _ => {}
        }
        job.on_issued(&cmd);
        issued.push(cmd);
        assert!(issued.len() < 64, "job must terminate");
    }
    issued
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_with_source_already_open_skips_the_activate() {
        let mut job = RelocationJob::fig_copy(1, 0, JobPurpose::Insert, 100, 16, 900, 0, 64, 4);
        let cmds = drive(&mut job, Some(100), false);
        // 4 RELOCs + merge; no initial ACT (paper Sec. 8.1: the row is
        // already open from serving the miss) and no bank-wide precharge
        // (the destination subarray precharges locally after the merge).
        assert_eq!(cmds.len(), 2);
        assert!(matches!(
            cmds[0],
            DramCommand::RelocBurst { src_col: 16, dst_col: 0, count: 4, .. }
        ));
        assert!(matches!(cmds[1], DramCommand::ActivateMerge { row: 900 }));
        assert!(job.is_done());
    }

    #[test]
    fn insert_with_closed_bank_activates_first() {
        let mut job = RelocationJob::fig_copy(1, 0, JobPurpose::Insert, 100, 0, 900, 8, 64, 2);
        let cmds = drive(&mut job, None, false);
        assert!(matches!(cmds[0], DramCommand::Activate { row: 100 }));
        assert_eq!(cmds.len(), 3); // ACT + train + merge
    }

    #[test]
    fn insert_with_wrong_row_open_precharges_then_activates() {
        let mut job = RelocationJob::fig_copy(1, 0, JobPurpose::Insert, 100, 0, 900, 0, 64, 1);
        let cmds = drive(&mut job, Some(55), false);
        assert!(matches!(cmds[0], DramCommand::Precharge));
        assert!(matches!(cmds[1], DramCommand::Activate { row: 100 }));
        assert_eq!(cmds.len(), 4); // PRE + ACT + train + merge
        assert!(matches!(cmds[2], DramCommand::RelocBurst { .. }));
        assert!(matches!(cmds[3], DramCommand::ActivateMerge { .. }));
    }

    #[test]
    fn unaligned_copy_offsets_destination_columns() {
        let mut job =
            RelocationJob::fig_copy(1, 0, JobPurpose::Writeback, 900, 48, 100, 112, 12, 16);
        let cmds = drive(&mut job, Some(900), false);
        let trains: Vec<_> = cmds
            .iter()
            .filter_map(|c| match c {
                DramCommand::RelocBurst { src_col, dst_col, dst_subarray, count } => {
                    Some((*src_col, *dst_col, *dst_subarray, *count))
                }
                _ => None,
            })
            .collect();
        assert_eq!(trains, vec![(48, 112, 12, 16)]);
    }

    #[test]
    fn lisa_clone_precharges_open_bank_first() {
        let mut job = RelocationJob::lisa_clone(7, 3, JobPurpose::Insert, 10, 33000);
        let cmds = drive(&mut job, Some(10), false);
        assert!(matches!(cmds[0], DramCommand::Precharge));
        assert!(matches!(cmds[1], DramCommand::LisaClone { src_row: 10, dst_row: 33000 }));
        assert!(job.is_done());
    }

    #[test]
    fn done_job_peeks_none() {
        let mut job = RelocationJob::lisa_clone(7, 3, JobPurpose::Insert, 10, 33000);
        drive(&mut job, None, false);
        assert_eq!(job.peek(None, false), None);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_block_copy_panics() {
        let _ = RelocationJob::fig_copy(1, 0, JobPurpose::Insert, 1, 0, 2, 0, 1, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the bank's starting state, a FIGARO copy job issues
        /// exactly one RELOC train carrying all its blocks, finishes with
        /// the merge activation, and never issues data commands.
        #[test]
        fn fig_copy_command_sequence_invariants(
            rows in (0u32..1024, 1024u32..2048),
            cols in (0u32..112, 0u32..112),
            to_subarray in 0u32..64,
            blocks in 1u32..17,
            start in (0u8..3, any::<bool>()),
        ) {
            let (from_row, to_row) = rows;
            let (from_col, to_col) = cols;
            let (open_kind, must_pre) = start;
            let open_row = match open_kind {
                0 => None,
                1 => Some(from_row),
                _ => Some(from_row + 1), // a different open row
            };
            let mut job = RelocationJob::fig_copy(
                7, 3, JobPurpose::Insert, from_row, from_col, to_row, to_col, to_subarray, blocks,
            );
            prop_assert_eq!(job.blocks(), blocks);
            let cmds = drive(&mut job, open_row, must_pre);
            prop_assert!(job.is_done());
            prop_assert_eq!(job.peek(None, false), None, "done jobs stay done");

            // Exactly one RELOC train, carrying exactly `blocks` blocks
            // with the constructed coordinates.
            let trains: Vec<_> = cmds
                .iter()
                .filter_map(|c| match c {
                    DramCommand::RelocBurst { src_col, dst_subarray, dst_col, count } => {
                        Some((*src_col, *dst_subarray, *dst_col, *count))
                    }
                    _ => None,
                })
                .collect();
            prop_assert_eq!(trains, vec![(from_col, to_subarray, to_col, blocks)]);

            // The merge on the destination row is the final command.
            prop_assert_eq!(cmds.last(), Some(&DramCommand::ActivateMerge { row: to_row }));

            // Never a data or clone command; any activate targets the
            // source row (merge activates are matched above).
            for c in &cmds {
                prop_assert!(
                    !matches!(c, DramCommand::Read { .. } | DramCommand::Write { .. } | DramCommand::LisaClone { .. }),
                    "copy job issued {c:?}"
                );
                if let DramCommand::Activate { row } = c {
                    prop_assert_eq!(*row, from_row, "only the source row is activated");
                }
            }

            // Preamble length matches the bank's starting state: 0..=2
            // commands (PRE and/or ACT) before the train, merge after.
            let train_pos = cmds
                .iter()
                .position(|c| matches!(c, DramCommand::RelocBurst { .. }))
                .expect("train exists");
            prop_assert!(train_pos <= 2, "at most PRE+ACT before the train, got {cmds:?}");
            let needs_act = open_row != Some(from_row) || must_pre;
            prop_assert_eq!(
                cmds.len(),
                2 + usize::from(needs_act) + usize::from(must_pre || matches!(open_row, Some(r) if r != from_row)),
                "sequence {cmds:?} for open={open_row:?} must_pre={must_pre}"
            );
        }

        /// A LISA clone issues exactly one composite clone command, from a
        /// precharged bank, with at most one preceding precharge.
        #[test]
        fn lisa_clone_command_sequence_invariants(
            src_row in 0u32..32_768,
            dst_row in 32_768u32..33_280,
            start in (0u8..3, any::<bool>()),
        ) {
            let (open_kind, must_pre) = start;
            let open_row = match open_kind {
                0 => None,
                1 => Some(src_row),
                _ => Some(src_row ^ 1),
            };
            let mut job = RelocationJob::lisa_clone(9, 1, JobPurpose::Insert, src_row, dst_row);
            prop_assert_eq!(job.blocks(), 0, "whole-row clones report zero blocks");
            let cmds = drive(&mut job, open_row, must_pre);
            prop_assert!(job.is_done());
            let expect_pre = usize::from(open_row.is_some() || must_pre);
            prop_assert_eq!(cmds.len(), expect_pre + 1, "sequence {cmds:?}");
            for c in &cmds[..expect_pre] {
                prop_assert_eq!(c, &DramCommand::Precharge);
            }
            prop_assert_eq!(
                cmds.last(),
                Some(&DramCommand::LisaClone { src_row, dst_row })
            );
        }
    }
}
