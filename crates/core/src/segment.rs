//! Row segments: the fine caching granularity FIGARO enables.
//!
//! A *row segment* is a contiguous run of cache blocks within one DRAM row
//! (the paper's default: 1/8th of an 8 kB row = 16 blocks = 1 kB). FIGCache
//! caches at segment granularity, so one in-DRAM cache row can hold
//! segments from several different source rows.

use figaro_dram::RowId;

/// Identity of one row segment within one bank: the source row plus the
/// segment index within that row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId {
    /// Source DRAM row.
    pub row: RowId,
    /// Segment index within the row (`0..segments_per_row`).
    pub index: u32,
}

/// Static segment geometry shared by the tag store and the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGeometry {
    /// Cache blocks per segment (the paper's default: 16 → 1 kB).
    pub blocks_per_segment: u32,
    /// Cache blocks per DRAM row (8 kB row / 64 B block = 128).
    pub blocks_per_row: u32,
}

impl SegmentGeometry {
    /// Builds the geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `blocks_per_segment` divides `blocks_per_row` and both
    /// are non-zero.
    #[must_use]
    pub fn new(blocks_per_segment: u32, blocks_per_row: u32) -> Self {
        assert!(blocks_per_segment > 0 && blocks_per_row > 0);
        assert!(
            blocks_per_row.is_multiple_of(blocks_per_segment),
            "segment size ({blocks_per_segment} blocks) must divide the row ({blocks_per_row} blocks)"
        );
        Self { blocks_per_segment, blocks_per_row }
    }

    /// Segments per DRAM row.
    #[must_use]
    pub fn segments_per_row(&self) -> u32 {
        self.blocks_per_row / self.blocks_per_segment
    }

    /// The segment containing column `col` of `row`.
    #[must_use]
    pub fn segment_of(&self, row: RowId, col: u32) -> SegmentId {
        SegmentId { row, index: col / self.blocks_per_segment }
    }

    /// First column of `segment` within its source row.
    #[must_use]
    pub fn first_col(&self, segment: SegmentId) -> u32 {
        segment.index * self.blocks_per_segment
    }

    /// Offset of `col` within its segment.
    #[must_use]
    pub fn col_offset(&self, col: u32) -> u32 {
        col % self.blocks_per_segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_eight_segments_per_row() {
        let g = SegmentGeometry::new(16, 128);
        assert_eq!(g.segments_per_row(), 8);
    }

    #[test]
    fn segment_of_maps_columns_to_segments() {
        let g = SegmentGeometry::new(16, 128);
        assert_eq!(g.segment_of(7, 0), SegmentId { row: 7, index: 0 });
        assert_eq!(g.segment_of(7, 15), SegmentId { row: 7, index: 0 });
        assert_eq!(g.segment_of(7, 16), SegmentId { row: 7, index: 1 });
        assert_eq!(g.segment_of(7, 127), SegmentId { row: 7, index: 7 });
    }

    #[test]
    fn first_col_and_offset_reconstruct_col() {
        let g = SegmentGeometry::new(16, 128);
        for col in [0u32, 1, 15, 16, 100, 127] {
            let s = g.segment_of(3, col);
            assert_eq!(g.first_col(s) + g.col_offset(col), col);
        }
    }

    #[test]
    fn whole_row_segments_work() {
        let g = SegmentGeometry::new(128, 128);
        assert_eq!(g.segments_per_row(), 1);
        assert_eq!(g.segment_of(1, 127).index, 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_segment_size_panics() {
        let _ = SegmentGeometry::new(24, 128);
    }
}
