//! The FIGCache tag store (FTS): one fully-associative portion per bank
//! (paper Section 5.1 / Fig. 6).
//!
//! Each entry ("slot") corresponds to one segment-sized slot in the bank's
//! in-DRAM cache rows and holds the source-segment tag, a valid/relocating
//! state, a dirty bit, a 5-bit saturating *benefit* counter, and an LRU
//! timestamp (for the alternative policies of Fig. 14). Row-granularity
//! replacement keeps the paper's eviction register (the cache row being
//! drained) and an eviction bitvector (which of its slots still await
//! eviction).

use std::collections::HashMap;

use rand::Rng;

use crate::config::ReplacementPolicy;
use crate::segment::SegmentId;

/// Maximum benefit value (5-bit saturating counter).
pub const BENEFIT_MAX: u8 = 31;

/// Lifecycle state of one FTS slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No segment assigned.
    Free,
    /// A relocation job is filling this slot; lookups still go to the
    /// source row. `cancelled` is set when a racing write made the future
    /// cache copy stale, in which case completion frees the slot.
    Relocating {
        /// Completion will discard the slot instead of validating it.
        cancelled: bool,
    },
    /// The segment is served from the cache row.
    Valid,
}

/// One FTS entry.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// The cached segment's identity (source row + segment index).
    pub seg: Option<SegmentId>,
    /// Lifecycle state.
    pub state: SlotState,
    /// Dirty bit: the cache copy differs from the source row.
    pub dirty: bool,
    /// 5-bit saturating benefit counter (incremented per cache hit).
    pub benefit: u8,
    /// Last-hit timestamp for the LRU policy.
    pub last_use: u64,
}

impl Slot {
    fn empty() -> Self {
        Self { seg: None, state: SlotState::Free, dirty: false, benefit: 0, last_use: 0 }
    }
}

/// A victim produced by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted segment.
    pub seg: SegmentId,
    /// Whether it must be written back to its source row.
    pub dirty: bool,
    /// The slot it occupied (now reused by the new segment).
    pub slot: u32,
}

/// Result of [`FtsBank::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Slot now holding the new segment (in `Relocating` state).
    pub slot: u32,
    /// Evicted previous occupant, if the cache was full.
    pub victim: Option<Victim>,
}

/// The per-bank FIGCache tag store.
#[derive(Debug, Clone)]
pub struct FtsBank {
    segs_per_row: u32,
    rows: u32,
    map: HashMap<SegmentId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Paper's eviction register: the cache row currently being drained.
    evict_row: Option<u32>,
    /// Paper's eviction bitvector: slots of `evict_row` still marked.
    evict_mask: u64,
}

impl FtsBank {
    /// Creates a tag store for `rows` cache rows of `segs_per_row` slots.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `segs_per_row > 64`
    /// (the eviction bitvector is 64 bits wide).
    #[must_use]
    pub fn new(rows: u32, segs_per_row: u32) -> Self {
        assert!(rows > 0 && segs_per_row > 0, "FTS dimensions must be non-zero");
        assert!(segs_per_row <= 64, "eviction bitvector supports at most 64 slots per row");
        let n = rows * segs_per_row;
        Self {
            segs_per_row,
            rows,
            map: HashMap::with_capacity(n as usize),
            slots: vec![Slot::empty(); n as usize],
            free: (0..n).rev().collect(),
            evict_row: None,
            evict_mask: 0,
        }
    }

    /// Total slots (= cache capacity in segments).
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.rows * self.segs_per_row
    }

    /// Cache row of a slot index.
    #[must_use]
    pub fn row_of(&self, slot: u32) -> u32 {
        slot / self.segs_per_row
    }

    /// Slot position within its cache row.
    #[must_use]
    pub fn pos_in_row(&self, slot: u32) -> u32 {
        slot % self.segs_per_row
    }

    /// Looks up a segment; returns its slot index if present (any state).
    #[must_use]
    pub fn find(&self, seg: SegmentId) -> Option<u32> {
        self.map.get(&seg).copied()
    }

    /// Immutable slot access.
    #[must_use]
    pub fn slot(&self, idx: u32) -> &Slot {
        &self.slots[idx as usize]
    }

    /// Records a cache hit on `slot`: saturating benefit increment and LRU
    /// timestamp update; sets the dirty bit for writes.
    pub fn touch_hit(&mut self, slot: u32, is_write: bool, now: u64) {
        let s = &mut self.slots[slot as usize];
        debug_assert_eq!(s.state, SlotState::Valid);
        if s.benefit < BENEFIT_MAX {
            s.benefit += 1;
        }
        s.last_use = now;
        if is_write {
            s.dirty = true;
        }
    }

    /// Marks a relocating slot's insertion as cancelled (a write raced it).
    pub fn cancel_relocation(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        if let SlotState::Relocating { .. } = s.state {
            s.state = SlotState::Relocating { cancelled: true };
        }
    }

    /// Completes the relocation filling `slot`. Returns `true` if the slot
    /// became valid, `false` if the insertion had been cancelled (the slot
    /// is freed).
    pub fn complete_relocation(&mut self, slot: u32) -> bool {
        let s = self.slots[slot as usize];
        match s.state {
            SlotState::Relocating { cancelled: false } => {
                self.slots[slot as usize].state = SlotState::Valid;
                true
            }
            SlotState::Relocating { cancelled: true } => {
                self.release(slot);
                false
            }
            state => panic!("complete_relocation on slot in state {state:?}"),
        }
    }

    /// Removes whatever occupies `slot` and returns it to the free list.
    pub fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        if let Some(seg) = s.seg.take() {
            self.map.remove(&seg);
        }
        *s = Slot::empty();
        self.free.push(slot);
        // Drop a stale eviction mark if it pointed at this slot.
        if self.evict_row == Some(self.row_of(slot)) {
            self.evict_mask &= !(1u64 << self.pos_in_row(slot));
        }
    }

    /// Allocates a slot for `seg`, evicting per `policy` when full. The new
    /// slot starts in `Relocating` state. Returns `None` when nothing can
    /// be evicted (every candidate is mid-relocation).
    pub fn allocate<R: Rng>(
        &mut self,
        seg: SegmentId,
        policy: ReplacementPolicy,
        rng: &mut R,
        now: u64,
    ) -> Option<Allocation> {
        debug_assert!(self.find(seg).is_none(), "segment {seg:?} already present");
        let (slot, victim) = if let Some(slot) = self.free.pop() {
            (slot, None)
        } else {
            let slot = self.select_victim(policy, rng)?;
            let v = self.slots[slot as usize];
            let vseg = v.seg.expect("victim slot must hold a segment");
            self.map.remove(&vseg);
            (slot, Some(Victim { seg: vseg, dirty: v.dirty, slot }))
        };
        self.slots[slot as usize] = Slot {
            seg: Some(seg),
            state: SlotState::Relocating { cancelled: false },
            dirty: false,
            benefit: 0,
            last_use: now,
        };
        self.map.insert(seg, slot);
        Some(Allocation { slot, victim })
    }

    /// Current eviction register/bitvector (for tests and introspection).
    #[must_use]
    pub fn eviction_state(&self) -> (Option<u32>, u64) {
        (self.evict_row, self.evict_mask)
    }

    /// Appends the tag store's state to a snapshot word stream: every
    /// slot, the free list *in order* (allocation order matters for
    /// bit-identity), and the eviction register/bitvector. The segment→slot
    /// map is rebuilt from the slots on load.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.slots.len() as u64);
        for s in &self.slots {
            match s.seg {
                None => out.push(0),
                Some(seg) => {
                    out.push(1);
                    out.push(u64::from(seg.row));
                    out.push(u64::from(seg.index));
                }
            }
            out.push(match s.state {
                SlotState::Free => 0,
                SlotState::Relocating { cancelled: false } => 1,
                SlotState::Relocating { cancelled: true } => 2,
                SlotState::Valid => 3,
            });
            out.push(u64::from(s.dirty));
            out.push(u64::from(s.benefit));
            out.push(s.last_use);
        }
        out.push(self.free.len() as u64);
        for &i in &self.free {
            out.push(u64::from(i));
        }
        match self.evict_row {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                out.push(u64::from(r));
            }
        }
        out.push(self.evict_mask);
    }

    /// Restores state saved by [`FtsBank::save_state`] into a tag store
    /// of the same geometry, rebuilding the segment→slot map.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or a capacity mismatch.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        let n = crate::take(src) as usize;
        assert_eq!(n, self.slots.len(), "snapshot tag-store capacity mismatch");
        self.map.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            s.seg = (crate::take(src) != 0).then(|| SegmentId {
                row: crate::take(src) as u32,
                index: crate::take(src) as u32,
            });
            s.state = match crate::take(src) {
                0 => SlotState::Free,
                1 => SlotState::Relocating { cancelled: false },
                2 => SlotState::Relocating { cancelled: true },
                _ => SlotState::Valid,
            };
            s.dirty = crate::take(src) != 0;
            s.benefit = crate::take(src) as u8;
            s.last_use = crate::take(src);
            if let Some(seg) = s.seg {
                self.map.insert(seg, i as u32);
            }
        }
        let n_free = crate::take(src) as usize;
        self.free.clear();
        for _ in 0..n_free {
            self.free.push(crate::take(src) as u32);
        }
        self.evict_row = (crate::take(src) != 0).then(|| crate::take(src) as u32);
        self.evict_mask = crate::take(src);
    }

    fn select_victim<R: Rng>(&mut self, policy: ReplacementPolicy, rng: &mut R) -> Option<u32> {
        match policy {
            ReplacementPolicy::RowBenefit => self.select_row_benefit(),
            ReplacementPolicy::SegmentBenefit => self.select_by_key(|s| u64::from(s.benefit)),
            ReplacementPolicy::Lru => self.select_by_key(|s| s.last_use),
            ReplacementPolicy::Random => {
                let candidates: Vec<u32> = (0..self.capacity())
                    .filter(|&i| self.slots[i as usize].state == SlotState::Valid)
                    .collect();
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[rng.gen_range(0..candidates.len())])
                }
            }
        }
    }

    /// Minimum-key valid slot (ties broken by lowest index).
    fn select_by_key(&self, key: impl Fn(&Slot) -> u64) -> Option<u32> {
        (0..self.capacity())
            .filter(|&i| self.slots[i as usize].state == SlotState::Valid)
            .min_by_key(|&i| (key(&self.slots[i as usize]), i))
    }

    /// The paper's row-granularity policy: drain the marked row one slot
    /// per insertion (lowest benefit first); when the mask empties, mark
    /// the row with the lowest cumulative benefit.
    fn select_row_benefit(&mut self) -> Option<u32> {
        loop {
            if let Some(row) = self.evict_row {
                if self.evict_mask != 0 {
                    // Lowest-benefit marked slot.
                    let base = row * self.segs_per_row;
                    let chosen = (0..self.segs_per_row)
                        .filter(|p| self.evict_mask & (1 << p) != 0)
                        .map(|p| base + p)
                        .filter(|&i| self.slots[i as usize].state == SlotState::Valid)
                        .min_by_key(|&i| (self.slots[i as usize].benefit, i));
                    match chosen {
                        Some(slot) => {
                            self.evict_mask &= !(1u64 << self.pos_in_row(slot));
                            return Some(slot);
                        }
                        None => {
                            // Mask pointed only at non-valid slots; re-mark.
                            self.evict_mask = 0;
                        }
                    }
                }
            }
            // Mark a new row: lowest cumulative benefit over valid slots,
            // skipping rows with any slot mid-relocation.
            let mut best: Option<(u64, u32)> = None;
            for row in 0..self.rows {
                let base = row * self.segs_per_row;
                let mut sum = 0u64;
                let mut valid = 0u32;
                let mut relocating = false;
                for p in 0..self.segs_per_row {
                    let s = &self.slots[(base + p) as usize];
                    match s.state {
                        SlotState::Valid => {
                            sum += u64::from(s.benefit);
                            valid += 1;
                        }
                        SlotState::Relocating { .. } => relocating = true,
                        SlotState::Free => {}
                    }
                }
                if relocating || valid == 0 {
                    continue;
                }
                if best.is_none_or(|(bs, _)| sum < bs) {
                    best = Some((sum, row));
                }
            }
            let (_, row) = best?;
            let base = row * self.segs_per_row;
            let mut mask = 0u64;
            for p in 0..self.segs_per_row {
                if self.slots[(base + p) as usize].state == SlotState::Valid {
                    mask |= 1 << p;
                }
            }
            self.evict_row = Some(row);
            self.evict_mask = mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn seg(row: u32, index: u32) -> SegmentId {
        SegmentId { row, index }
    }

    /// Allocates and immediately validates a segment.
    fn fill(
        fts: &mut FtsBank,
        s: SegmentId,
        policy: ReplacementPolicy,
        rng: &mut StdRng,
    ) -> Allocation {
        let a = fts.allocate(s, policy, rng, 0).expect("allocation must succeed");
        fts.complete_relocation(a.slot);
        a
    }

    #[test]
    fn capacity_matches_paper_fts() {
        // 64 cache rows x 8 segments = 512 entries per bank (paper Sec. 8.3).
        let fts = FtsBank::new(64, 8);
        assert_eq!(fts.capacity(), 512);
    }

    #[test]
    fn allocate_uses_free_slots_first() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        for i in 0..4 {
            let a = fill(&mut fts, seg(i, 0), ReplacementPolicy::RowBenefit, &mut r);
            assert!(a.victim.is_none(), "slot {i} should be free");
        }
        let a = fts.allocate(seg(9, 0), ReplacementPolicy::RowBenefit, &mut r, 0).unwrap();
        assert!(a.victim.is_some());
    }

    #[test]
    fn benefit_saturates_at_31() {
        let mut fts = FtsBank::new(1, 1);
        let mut r = rng();
        fill(&mut fts, seg(1, 0), ReplacementPolicy::RowBenefit, &mut r);
        for t in 0..100 {
            fts.touch_hit(0, false, t);
        }
        assert_eq!(fts.slot(0).benefit, BENEFIT_MAX);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut fts = FtsBank::new(1, 1);
        let mut r = rng();
        fill(&mut fts, seg(1, 0), ReplacementPolicy::RowBenefit, &mut r);
        assert!(!fts.slot(0).dirty);
        fts.touch_hit(0, true, 1);
        assert!(fts.slot(0).dirty);
    }

    #[test]
    fn row_benefit_evicts_lowest_benefit_row_one_slot_at_a_time() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        // Row 0: segments A (benefit 3) and B (benefit 3). Row 1: C, D (benefit 0).
        let a = fill(&mut fts, seg(10, 0), ReplacementPolicy::RowBenefit, &mut r);
        let b = fill(&mut fts, seg(11, 0), ReplacementPolicy::RowBenefit, &mut r);
        let _c = fill(&mut fts, seg(12, 0), ReplacementPolicy::RowBenefit, &mut r);
        let _d = fill(&mut fts, seg(13, 0), ReplacementPolicy::RowBenefit, &mut r);
        for _ in 0..3 {
            fts.touch_hit(a.slot, false, 1);
            fts.touch_hit(b.slot, false, 1);
        }
        // Row 1 has the lower cumulative benefit; its slots drain first.
        let v1 = fts.allocate(seg(20, 0), ReplacementPolicy::RowBenefit, &mut r, 2).unwrap();
        let (erow, mask) = fts.eviction_state();
        assert_eq!(erow, Some(1));
        assert_eq!(mask.count_ones(), 1, "one of two marked slots already drained");
        assert_eq!(fts.row_of(v1.victim.unwrap().slot), 1);
        fts.complete_relocation(v1.slot);
        let v2 = fts.allocate(seg(21, 0), ReplacementPolicy::RowBenefit, &mut r, 3).unwrap();
        assert_eq!(fts.row_of(v2.victim.unwrap().slot), 1);
        assert_eq!(v2.victim.unwrap().seg, seg(13, 0));
    }

    #[test]
    fn row_benefit_drains_lowest_benefit_slot_within_marked_row() {
        let mut fts = FtsBank::new(1, 4);
        let mut r = rng();
        let allocs: Vec<Allocation> = (0..4)
            .map(|i| fill(&mut fts, seg(i, 0), ReplacementPolicy::RowBenefit, &mut r))
            .collect();
        // Benefits 2, 0, 3, 1.
        for (slot, hits) in [(allocs[0].slot, 2), (allocs[2].slot, 3), (allocs[3].slot, 1)] {
            for _ in 0..hits {
                fts.touch_hit(slot, false, 1);
            }
        }
        let order: Vec<SegmentId> = (0..4)
            .map(|i| {
                let a = fts
                    .allocate(seg(100 + i, 0), ReplacementPolicy::RowBenefit, &mut r, 5)
                    .unwrap();
                fts.complete_relocation(a.slot);
                a.victim.unwrap().seg
            })
            .collect();
        // Eviction order follows ascending benefit: B(0), D(1), A(2), C(3).
        assert_eq!(order, vec![seg(1, 0), seg(3, 0), seg(0, 0), seg(2, 0)]);
    }

    #[test]
    fn segment_benefit_evicts_global_minimum() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        let allocs: Vec<Allocation> = (0..4)
            .map(|i| fill(&mut fts, seg(i, 0), ReplacementPolicy::SegmentBenefit, &mut r))
            .collect();
        fts.touch_hit(allocs[0].slot, false, 1);
        fts.touch_hit(allocs[1].slot, false, 1);
        fts.touch_hit(allocs[3].slot, false, 1);
        let a = fts.allocate(seg(50, 0), ReplacementPolicy::SegmentBenefit, &mut r, 2).unwrap();
        assert_eq!(a.victim.unwrap().seg, seg(2, 0));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        let allocs: Vec<Allocation> =
            (0..4).map(|i| fill(&mut fts, seg(i, 0), ReplacementPolicy::Lru, &mut r)).collect();
        for (t, idx) in [(10, 1), (20, 0), (30, 3), (40, 2)] {
            fts.touch_hit(allocs[idx].slot, false, t);
        }
        let a = fts.allocate(seg(50, 0), ReplacementPolicy::Lru, &mut r, 41).unwrap();
        assert_eq!(a.victim.unwrap().seg, seg(1, 0));
    }

    #[test]
    fn random_evicts_some_valid_slot() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        for i in 0..4 {
            fill(&mut fts, seg(i, 0), ReplacementPolicy::Random, &mut r);
        }
        let a = fts.allocate(seg(50, 0), ReplacementPolicy::Random, &mut r, 1).unwrap();
        let v = a.victim.unwrap();
        assert!(v.seg.row < 4);
    }

    #[test]
    fn relocating_slots_are_never_victims() {
        let mut fts = FtsBank::new(1, 2);
        let mut r = rng();
        // Two slots, both left in Relocating state.
        fts.allocate(seg(1, 0), ReplacementPolicy::SegmentBenefit, &mut r, 0).unwrap();
        fts.allocate(seg(2, 0), ReplacementPolicy::SegmentBenefit, &mut r, 0).unwrap();
        assert!(fts.allocate(seg(3, 0), ReplacementPolicy::SegmentBenefit, &mut r, 0).is_none());
        assert!(fts.allocate(seg(4, 0), ReplacementPolicy::RowBenefit, &mut r, 0).is_none());
    }

    #[test]
    fn cancelled_relocation_frees_the_slot() {
        let mut fts = FtsBank::new(1, 1);
        let mut r = rng();
        let a = fts.allocate(seg(1, 0), ReplacementPolicy::RowBenefit, &mut r, 0).unwrap();
        fts.cancel_relocation(a.slot);
        assert!(!fts.complete_relocation(a.slot));
        assert!(fts.find(seg(1, 0)).is_none());
        // Slot is reusable.
        let b = fts.allocate(seg(2, 0), ReplacementPolicy::RowBenefit, &mut r, 1).unwrap();
        assert!(b.victim.is_none());
    }

    #[test]
    fn release_clears_eviction_mark() {
        let mut fts = FtsBank::new(1, 2);
        let mut r = rng();
        let a = fill(&mut fts, seg(1, 0), ReplacementPolicy::RowBenefit, &mut r);
        let _b = fill(&mut fts, seg(2, 0), ReplacementPolicy::RowBenefit, &mut r);
        // Trigger marking by allocating into a full store.
        let c = fts.allocate(seg(3, 0), ReplacementPolicy::RowBenefit, &mut r, 0).unwrap();
        fts.complete_relocation(c.slot);
        let (_, mask_before) = fts.eviction_state();
        assert_ne!(mask_before, 0);
        // Releasing the still-marked slot clears its bit.
        let marked_slot = (0..2)
            .find(|&i| mask_before & (1 << fts.pos_in_row(i)) != 0 && fts.slot(i).seg.is_some());
        if let Some(s) = marked_slot {
            fts.release(s);
            let (_, mask_after) = fts.eviction_state();
            assert!(mask_after.count_ones() < mask_before.count_ones());
        }
        let _ = a;
    }

    /// Builds the Fig. 14 head-to-head state: four valid segments whose
    /// benefit counters and LRU timestamps make every policy prefer a
    /// *different* victim.
    ///
    /// | slot | row | seg | benefit | last_use |
    /// |---|---|---|---|---|
    /// | A | 0 | (10,0) | 1 | 40 |
    /// | B | 0 | (11,0) | 31 | 10 |
    /// | C | 1 | (12,0) | 2 | 30 |
    /// | D | 1 | (13,0) | 3 | 20 |
    ///
    /// Row benefit sums: row 0 = 32, row 1 = 5.
    fn fig14_state() -> (FtsBank, [Allocation; 4]) {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        let a = fill(&mut fts, seg(10, 0), ReplacementPolicy::RowBenefit, &mut r);
        let b = fill(&mut fts, seg(11, 0), ReplacementPolicy::RowBenefit, &mut r);
        let c = fill(&mut fts, seg(12, 0), ReplacementPolicy::RowBenefit, &mut r);
        let d = fill(&mut fts, seg(13, 0), ReplacementPolicy::RowBenefit, &mut r);
        for (alloc, hits, t) in [(&a, 1, 40), (&b, 31, 10), (&c, 2, 30), (&d, 3, 20)] {
            for _ in 0..hits {
                fts.touch_hit(alloc.slot, false, t);
            }
        }
        (fts, [a, b, c, d])
    }

    #[test]
    fn fig14_policies_disagree_on_identical_state() {
        let (state, _) = fig14_state();
        let mut victims = Vec::new();
        for policy in [
            ReplacementPolicy::RowBenefit,
            ReplacementPolicy::SegmentBenefit,
            ReplacementPolicy::Lru,
        ] {
            let mut fts = state.clone();
            let mut r = rng();
            let v = fts.allocate(seg(99, 0), policy, &mut r, 50).unwrap().victim.unwrap();
            victims.push(v.seg);
        }
        // RowBenefit drains the low-sum row (row 1) lowest-benefit-first -> C.
        assert_eq!(victims[0], seg(12, 0), "RowBenefit victim");
        // SegmentBenefit takes the global minimum benefit -> A.
        assert_eq!(victims[1], seg(10, 0), "SegmentBenefit victim");
        // LRU takes the oldest timestamp -> B.
        assert_eq!(victims[2], seg(11, 0), "LRU victim");
        assert_eq!(
            victims.iter().collect::<std::collections::HashSet<_>>().len(),
            3,
            "the three deterministic policies must disagree here"
        );
    }

    #[test]
    fn fig14_random_is_seed_deterministic_and_spreads() {
        let (state, _) = fig14_state();
        let mut seen = std::collections::HashSet::new();
        for s in 0..32u64 {
            let victim = |seed| {
                let mut fts = state.clone();
                let mut r = StdRng::seed_from_u64(seed);
                fts.allocate(seg(99, 0), ReplacementPolicy::Random, &mut r, 50)
                    .unwrap()
                    .victim
                    .unwrap()
                    .seg
            };
            let v = victim(s);
            assert_eq!(v, victim(s), "same seed must evict the same slot");
            assert!((10..14).contains(&v.row), "victim must be one of the four valid slots");
            seen.insert(v);
        }
        assert!(seen.len() > 1, "32 seeds must not all pick the same victim");
    }

    #[test]
    fn lru_ties_break_toward_lowest_slot_index() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        for i in 0..4 {
            fill(&mut fts, seg(i, 0), ReplacementPolicy::Lru, &mut r);
        }
        // All four share last_use = 0 from allocation; the tie breaks at
        // the lowest index (documented in select_by_key).
        let v = fts.allocate(seg(50, 0), ReplacementPolicy::Lru, &mut r, 1).unwrap();
        assert_eq!(v.victim.unwrap().slot, 0);
    }

    #[test]
    fn row_benefit_remarks_after_marked_row_is_released() {
        let mut fts = FtsBank::new(2, 2);
        let mut r = rng();
        let allocs: Vec<Allocation> = (0..4)
            .map(|i| fill(&mut fts, seg(i, 0), ReplacementPolicy::RowBenefit, &mut r))
            .collect();
        // First eviction marks a row (both rows sum to 0; row 0 wins).
        let v = fts.allocate(seg(50, 0), ReplacementPolicy::RowBenefit, &mut r, 1).unwrap();
        fts.complete_relocation(v.slot);
        let (marked, _) = fts.eviction_state();
        let marked = marked.unwrap();
        // Release the row's remaining occupants out from under the drain.
        for a in &allocs {
            if fts.row_of(a.slot) == marked && fts.slot(a.slot).seg.is_some() {
                fts.release(a.slot);
            }
        }
        // The next allocation must re-mark cleanly instead of spinning on
        // the emptied mask. (The freed slots are reused first, then the
        // other row is drained.)
        for j in 0..3 {
            let a = fts
                .allocate(seg(60 + j, 0), ReplacementPolicy::RowBenefit, &mut r, 2)
                .expect("allocation must succeed after release");
            fts.complete_relocation(a.slot);
        }
        assert!(fts.find(seg(62, 0)).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::ReplacementPolicy;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Whatever sequence of allocations/hits/completions happens, the
        /// map and the slot array stay consistent and the free list never
        /// double-books a slot.
        #[test]
        fn fts_invariants_hold(ops in proptest::collection::vec((0u8..4, 0u32..32, any::<bool>()), 1..200)) {
            let mut fts = FtsBank::new(4, 4);
            let mut rng = StdRng::seed_from_u64(7);
            let mut relocating: Vec<u32> = Vec::new();
            for (op, x, w) in ops {
                match op {
                    0 => {
                        let s = SegmentId { row: x, index: 0 };
                        if fts.find(s).is_none() {
                            if let Some(a) = fts.allocate(s, ReplacementPolicy::RowBenefit, &mut rng, 0) {
                                relocating.push(a.slot);
                            }
                        }
                    }
                    1 => {
                        if let Some(slot) = relocating.pop() {
                            fts.complete_relocation(slot);
                        }
                    }
                    2 => {
                        let s = SegmentId { row: x, index: 0 };
                        if let Some(slot) = fts.find(s) {
                            if fts.slot(slot).state == SlotState::Valid {
                                fts.touch_hit(slot, w, u64::from(x));
                            }
                        }
                    }
                    _ => {
                        if let Some(slot) = relocating.last().copied() {
                            fts.cancel_relocation(slot);
                        }
                    }
                }
                // Invariant: every mapped segment points at a slot holding it.
                for i in 0..fts.capacity() {
                    if let Some(seg) = fts.slot(i).seg {
                        prop_assert_eq!(fts.find(seg), Some(i));
                        prop_assert_ne!(fts.slot(i).state, SlotState::Free);
                    } else {
                        prop_assert_eq!(fts.slot(i).state, SlotState::Free);
                    }
                    prop_assert!(fts.slot(i).benefit <= BENEFIT_MAX);
                }
            }
        }
    }
}
