//! FIGCache configuration: where the cache rows live, segment size, and
//! the insertion/replacement policies evaluated in the paper's Section 9.

/// Where a bank's in-DRAM cache rows are located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRegion {
    /// `FIGCache-Fast`: rows live in appended fast subarrays (the paper:
    /// two fast subarrays of 32 rows each). The DRAM layout must declare
    /// matching fast subarrays.
    FastSubarrays,
    /// `FIGCache-Slow`: rows are reserved at the top of the last regular
    /// subarray; segments homed in that subarray are not cacheable
    /// (FIGARO cannot relocate within one subarray).
    ReservedSlowRows,
}

/// In-DRAM cache replacement policies (paper Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// The paper's policy: evict at **row** granularity. The cache row with
    /// the lowest cumulative benefit is marked in an eviction register +
    /// bitvector, and its segments are evicted one per insertion (lowest
    /// benefit first) until the row is drained.
    RowBenefit,
    /// Traditional benefit-based policy at segment granularity: evict the
    /// single valid segment with the lowest benefit anywhere in the cache.
    SegmentBenefit,
    /// Evict the least-recently-used segment.
    Lru,
    /// Evict a uniformly random valid segment.
    Random,
}

/// Row-segment insertion policies (paper Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertionPolicy {
    /// Number of misses a segment must accumulate before it is inserted.
    /// `1` is the paper's insert-any-miss default.
    pub miss_threshold: u32,
}

impl InsertionPolicy {
    /// The paper's insert-any-miss policy.
    #[must_use]
    pub fn insert_any_miss() -> Self {
        Self { miss_threshold: 1 }
    }
}

/// Full FIGCache configuration for one memory channel.
#[derive(Debug, Clone, PartialEq)]
pub struct FigCacheConfig {
    /// Cache rows per bank (the paper: 64 = 2 fast subarrays × 32 rows, or
    /// 64 reserved slow rows).
    pub cache_rows_per_bank: u32,
    /// Cache blocks per segment (the paper default: 16 = 1 kB).
    pub blocks_per_segment: u32,
    /// Where the cache rows live.
    pub region: CacheRegion,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Insertion policy.
    pub insertion: InsertionPolicy,
    /// `FIGCache-Ideal`: relocations are free (no DRAM commands, no bank
    /// occupancy); used to isolate the relocation-latency overhead.
    pub ideal_relocation: bool,
    /// Maximum queued relocation jobs per bank before insertions are
    /// skipped (bounds bank starvation under miss floods).
    pub max_pending_jobs_per_bank: usize,
    /// Seed for the `Random` replacement policy.
    pub seed: u64,
}

impl FigCacheConfig {
    /// The paper's `FIGCache-Fast` default: 64 cache rows per bank in two
    /// fast subarrays, 1 kB segments, RowBenefit replacement,
    /// insert-any-miss.
    #[must_use]
    pub fn paper_fast() -> Self {
        Self {
            cache_rows_per_bank: 64,
            blocks_per_segment: 16,
            region: CacheRegion::FastSubarrays,
            replacement: ReplacementPolicy::RowBenefit,
            insertion: InsertionPolicy::insert_any_miss(),
            ideal_relocation: false,
            max_pending_jobs_per_bank: 12,
            seed: 0xF16A_0001,
        }
    }

    /// The paper's `FIGCache-Slow` default: 64 reserved rows in the last
    /// regular subarray.
    #[must_use]
    pub fn paper_slow() -> Self {
        Self { region: CacheRegion::ReservedSlowRows, ..Self::paper_fast() }
    }

    /// `FIGCache-Ideal`: `paper_fast` with free relocation.
    #[must_use]
    pub fn paper_ideal() -> Self {
        Self { ideal_relocation: true, ..Self::paper_fast() }
    }

    /// Bytes per segment given 64 B blocks.
    #[must_use]
    pub fn segment_bytes(&self) -> u32 {
        self.blocks_per_segment * 64
    }

    /// Checks configuration consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_rows_per_bank == 0 {
            return Err("cache_rows_per_bank must be non-zero".into());
        }
        if self.blocks_per_segment == 0 {
            return Err("blocks_per_segment must be non-zero".into());
        }
        if self.insertion.miss_threshold == 0 {
            return Err("miss_threshold must be at least 1".into());
        }
        if self.max_pending_jobs_per_bank == 0 {
            return Err("max_pending_jobs_per_bank must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FigCacheConfig::paper_fast().validate().unwrap();
        FigCacheConfig::paper_slow().validate().unwrap();
        FigCacheConfig::paper_ideal().validate().unwrap();
    }

    #[test]
    fn paper_defaults_match_table1() {
        let c = FigCacheConfig::paper_fast();
        assert_eq!(c.cache_rows_per_bank, 64);
        assert_eq!(c.segment_bytes(), 1024);
        assert_eq!(c.replacement, ReplacementPolicy::RowBenefit);
        assert_eq!(c.insertion.miss_threshold, 1);
    }

    #[test]
    fn ideal_is_fast_plus_free_relocation() {
        let c = FigCacheConfig::paper_ideal();
        assert!(c.ideal_relocation);
        assert_eq!(c.region, CacheRegion::FastSubarrays);
    }

    #[test]
    fn validate_rejects_zero_threshold() {
        let mut c = FigCacheConfig::paper_fast();
        c.insertion.miss_threshold = 0;
        assert!(c.validate().is_err());
    }
}
