//! The FIGCache engine: fine-grained in-DRAM caching built on FIGARO.
//!
//! The engine owns one [`FtsBank`] per DRAM bank, decides on every demand
//! request whether to redirect it into the in-DRAM cache, and produces the
//! relocation jobs (segment insertions and dirty-victim writebacks) that
//! the memory controller executes on the banks.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use figaro_dram::{Cycle, DramConfig, RowId, SubarrayLayout};

use crate::config::{CacheRegion, FigCacheConfig};
use crate::fts::{FtsBank, SlotState};
use crate::job::{JobPurpose, RelocationJob};
use crate::segment::{SegmentGeometry, SegmentId};
use crate::traits::{CacheEngine, CacheStats, ServeTarget};

/// Bookkeeping for a job the controller is executing.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    purpose: JobPurpose,
    /// FTS slot being filled (insertions only).
    slot: Option<u32>,
    blocks: u32,
}

/// Per-bank engine state.
#[derive(Debug)]
struct BankState {
    fts: FtsBank,
    pending: VecDeque<RelocationJob>,
    in_flight: HashMap<u64, InFlight>,
    /// Miss counters for thresholds above 1 (Fig. 15); cleared wholesale
    /// when it grows past a bound, a coarse form of aging.
    miss_counts: HashMap<SegmentId, u32>,
}

/// The FIGCache engine for one memory channel (all its banks).
///
/// See the crate docs and [`CacheEngine`] for how the memory controller
/// drives it.
#[derive(Debug)]
pub struct FigCacheEngine {
    cfg: FigCacheConfig,
    seg_geo: SegmentGeometry,
    layout: SubarrayLayout,
    banks: Vec<BankState>,
    rng: StdRng,
    stats: CacheStats,
    next_job_id: u64,
    /// First DRAM row id used as a cache row.
    cache_row_base: RowId,
    /// Subarray whose segments cannot be cached (`ReservedSlowRows` only).
    reserved_subarray: Option<u32>,
}

impl FigCacheEngine {
    /// Builds the engine for `banks` banks of the device in `dram`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent with the DRAM layout:
    /// `FastSubarrays` needs at least `cache_rows_per_bank` fast rows in
    /// the layout; `ReservedSlowRows` needs the reserved rows to fit in
    /// one subarray.
    #[must_use]
    pub fn new(dram: &DramConfig, cfg: &FigCacheConfig, banks: u32) -> Self {
        cfg.validate().expect("FigCacheConfig must validate");
        let layout = dram.layout;
        let blocks_per_row = dram.geometry.blocks_per_row();
        let seg_geo = SegmentGeometry::new(cfg.blocks_per_segment, blocks_per_row);
        let (cache_row_base, reserved_subarray) = match cfg.region {
            CacheRegion::FastSubarrays => {
                let fast_rows = layout.fast_count() * layout.fast_rows_each();
                assert!(
                    fast_rows >= cfg.cache_rows_per_bank,
                    "layout provides {fast_rows} fast rows but the cache needs {}",
                    cfg.cache_rows_per_bank
                );
                (layout.regular_rows(), None)
            }
            CacheRegion::ReservedSlowRows => {
                assert!(
                    cfg.cache_rows_per_bank <= layout.rows_per_subarray,
                    "reserved rows ({}) must fit in one subarray ({} rows)",
                    cfg.cache_rows_per_bank,
                    layout.rows_per_subarray
                );
                (
                    layout.regular_rows() - cfg.cache_rows_per_bank,
                    Some(layout.regular_subarrays - 1),
                )
            }
        };
        let segs_per_row = seg_geo.segments_per_row();
        let bank_states = (0..banks)
            .map(|_| BankState {
                fts: FtsBank::new(cfg.cache_rows_per_bank, segs_per_row),
                pending: VecDeque::new(),
                in_flight: HashMap::new(),
                miss_counts: HashMap::new(),
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            seg_geo,
            layout,
            banks: bank_states,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: CacheStats::default(),
            next_job_id: 0,
            cache_row_base,
            reserved_subarray,
        }
    }

    /// The DRAM row id of cache row `r`.
    #[must_use]
    pub fn cache_row_id(&self, r: u32) -> RowId {
        self.cache_row_base + r
    }

    /// Whether a source row's segments may be cached.
    #[must_use]
    pub fn cacheable(&self, row: RowId) -> bool {
        if row >= self.cache_row_base && self.cfg.region == CacheRegion::ReservedSlowRows {
            return false; // the reserved cache rows themselves
        }
        if row >= self.layout.regular_rows() {
            return false; // fast cache rows are not a cacheable source
        }
        match self.reserved_subarray {
            Some(sa) => self.layout.subarray_id(row) != sa,
            None => true,
        }
    }

    /// Segment geometry in use (for tests and reporting).
    #[must_use]
    pub fn segment_geometry(&self) -> SegmentGeometry {
        self.seg_geo
    }

    fn serve_from_slot(&self, bank: u32, slot: u32, col: u32) -> ServeTarget {
        let fts = &self.banks[bank as usize].fts;
        let row = self.cache_row_id(fts.row_of(slot));
        let base = fts.pos_in_row(slot) * self.cfg.blocks_per_segment;
        ServeTarget { row, col: base + self.seg_geo.col_offset(col), cache_hit: true }
    }

    fn try_insert(&mut self, bank: u32, seg: SegmentId, now: Cycle) {
        let segs_per_row = self.seg_geo.segments_per_row();
        let blocks = self.cfg.blocks_per_segment;
        let state = &mut self.banks[bank as usize];
        if !self.cfg.ideal_relocation && state.pending.len() >= self.cfg.max_pending_jobs_per_bank {
            self.stats.insertions_skipped += 1;
            return;
        }
        let Some(alloc) = state.fts.allocate(seg, self.cfg.replacement, &mut self.rng, now) else {
            self.stats.insertions_skipped += 1;
            return;
        };
        if let Some(victim) = alloc.victim {
            if victim.dirty {
                self.stats.evictions_dirty += 1;
                if !self.cfg.ideal_relocation {
                    // Copy the victim's cache-row slot back to its source
                    // segment before the new segment overwrites it.
                    let cache_row = self.cache_row_base + victim.slot / segs_per_row;
                    let cache_col = (victim.slot % segs_per_row) * blocks;
                    let src_first = victim.seg.index * blocks;
                    let dst_subarray = self.layout.subarray_id(victim.seg.row);
                    let id = self.next_job_id;
                    self.next_job_id += 1;
                    let job = RelocationJob::fig_copy(
                        id,
                        bank,
                        JobPurpose::Writeback,
                        cache_row,
                        cache_col,
                        victim.seg.row,
                        src_first,
                        dst_subarray,
                        blocks,
                    );
                    state.in_flight.insert(
                        id,
                        InFlight { purpose: JobPurpose::Writeback, slot: None, blocks },
                    );
                    state.pending.push_back(job);
                } else {
                    self.stats.blocks_relocated += u64::from(blocks);
                }
            } else {
                self.stats.evictions_clean += 1;
            }
        }
        if self.cfg.ideal_relocation {
            state.fts.complete_relocation(alloc.slot);
            self.stats.insertions += 1;
            self.stats.blocks_relocated += u64::from(blocks);
            return;
        }
        let cache_row = self.cache_row_base + alloc.slot / segs_per_row;
        let cache_col = (alloc.slot % segs_per_row) * blocks;
        let src_first = seg.index * blocks;
        let dst_subarray = self.layout.subarray_id(cache_row);
        let id = self.next_job_id;
        self.next_job_id += 1;
        let job = RelocationJob::fig_copy(
            id,
            bank,
            JobPurpose::Insert,
            seg.row,
            src_first,
            cache_row,
            cache_col,
            dst_subarray,
            blocks,
        );
        state
            .in_flight
            .insert(id, InFlight { purpose: JobPurpose::Insert, slot: Some(alloc.slot), blocks });
        state.pending.push_back(job);
    }
}

impl CacheEngine for FigCacheEngine {
    fn on_request(
        &mut self,
        bank: u32,
        row: RowId,
        col: u32,
        is_write: bool,
        open_row: Option<RowId>,
        now: Cycle,
    ) -> ServeTarget {
        self.stats.lookups += 1;
        let source = ServeTarget { row, col, cache_hit: false };
        if !self.cacheable(row) {
            self.stats.uncacheable += 1;
            return source;
        }
        let seg = self.seg_geo.segment_of(row, col);
        let slot_hit = self.banks[bank as usize].fts.find(seg);
        if let Some(slot) = slot_hit {
            let state = self.banks[bank as usize].fts.slot(slot).state;
            match state {
                SlotState::Valid => {
                    let dirty = self.banks[bank as usize].fts.slot(slot).dirty;
                    self.banks[bank as usize].fts.touch_hit(slot, is_write, now);
                    // Open-row bypass: a read whose clean source row is
                    // already open row-hits there; redirecting would force
                    // a precharge + activate for no latency gain.
                    if !is_write && !dirty && open_row == Some(row) {
                        self.stats.hits += 1;
                        self.stats.hits_bypassed += 1;
                        return ServeTarget { row, col, cache_hit: true };
                    }
                    self.stats.hits += 1;
                    return self.serve_from_slot(bank, slot, col);
                }
                SlotState::Relocating { .. } => {
                    // Not yet servable from the cache; a racing write makes
                    // the future copy stale, so cancel the insertion.
                    if is_write {
                        self.banks[bank as usize].fts.cancel_relocation(slot);
                    }
                    self.stats.misses += 1;
                    return source;
                }
                SlotState::Free => unreachable!("mapped slot cannot be free"),
            }
        }
        self.stats.misses += 1;
        let threshold = self.cfg.insertion.miss_threshold;
        let insert = if threshold <= 1 {
            true
        } else {
            let counts = &mut self.banks[bank as usize].miss_counts;
            if counts.len() > 65_536 {
                counts.clear();
            }
            let c = counts.entry(seg).or_insert(0);
            *c += 1;
            if *c >= threshold {
                counts.remove(&seg);
                true
            } else {
                false
            }
        };
        if insert {
            self.try_insert(bank, seg, now);
        }
        source
    }

    fn take_job(&mut self, bank: u32, _now: Cycle) -> Option<RelocationJob> {
        self.banks[bank as usize].pending.pop_front()
    }

    fn next_job_source(&self, bank: u32) -> Option<RowId> {
        self.banks[bank as usize].pending.front().and_then(|j| match j.kind {
            crate::job::JobKind::FigCopy { from_row, .. } => Some(from_row),
            crate::job::JobKind::LisaClone { .. } => None,
        })
    }

    fn has_pending_job(&self, bank: u32) -> bool {
        !self.banks[bank as usize].pending.is_empty()
    }

    fn has_any_pending_job(&self, banks: u32) -> bool {
        self.banks.iter().take(banks as usize).any(|b| !b.pending.is_empty())
    }

    fn on_job_complete(&mut self, bank: u32, job_id: u64, _now: Cycle) {
        let info = self.banks[bank as usize]
            .in_flight
            .remove(&job_id)
            .expect("completion for unknown job");
        self.stats.blocks_relocated += u64::from(info.blocks);
        match info.purpose {
            JobPurpose::Insert => {
                let slot = info.slot.expect("insert jobs carry their slot");
                if self.banks[bank as usize].fts.complete_relocation(slot) {
                    self.stats.insertions += 1;
                } else {
                    self.stats.insertions_cancelled += 1;
                }
            }
            JobPurpose::Writeback => {}
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.banks.len() as u64);
        for bank in &self.banks {
            bank.fts.save_state(out);
            out.push(bank.pending.len() as u64);
            for job in &bank.pending {
                job.save_state(out);
            }
            let mut ids: Vec<u64> = bank.in_flight.keys().copied().collect();
            ids.sort_unstable();
            out.push(ids.len() as u64);
            for id in ids {
                let info = bank.in_flight[&id];
                out.push(id);
                out.push(match info.purpose {
                    JobPurpose::Insert => 0,
                    JobPurpose::Writeback => 1,
                });
                match info.slot {
                    None => out.push(0),
                    Some(s) => {
                        out.push(1);
                        out.push(u64::from(s));
                    }
                }
                out.push(u64::from(info.blocks));
            }
            let mut segs: Vec<SegmentId> = bank.miss_counts.keys().copied().collect();
            segs.sort_unstable_by_key(|s| (s.row, s.index));
            out.push(segs.len() as u64);
            for seg in segs {
                out.push(u64::from(seg.row));
                out.push(u64::from(seg.index));
                out.push(u64::from(bank.miss_counts[&seg]));
            }
        }
        out.extend_from_slice(&self.rng.state());
        self.stats.save_state(out);
        out.push(self.next_job_id);
    }

    fn load_state(&mut self, src: &mut &[u64]) {
        let n = crate::take(src) as usize;
        assert_eq!(n, self.banks.len(), "snapshot engine bank-count mismatch");
        for bank in &mut self.banks {
            bank.fts.load_state(src);
            let n_pending = crate::take(src) as usize;
            bank.pending.clear();
            for _ in 0..n_pending {
                bank.pending.push_back(RelocationJob::load_state(src));
            }
            let n_flight = crate::take(src) as usize;
            bank.in_flight.clear();
            for _ in 0..n_flight {
                let id = crate::take(src);
                let purpose =
                    if crate::take(src) == 0 { JobPurpose::Insert } else { JobPurpose::Writeback };
                let slot = (crate::take(src) != 0).then(|| crate::take(src) as u32);
                let blocks = crate::take(src) as u32;
                bank.in_flight.insert(id, InFlight { purpose, slot, blocks });
            }
            let n_miss = crate::take(src) as usize;
            bank.miss_counts.clear();
            for _ in 0..n_miss {
                let seg =
                    SegmentId { row: crate::take(src) as u32, index: crate::take(src) as u32 };
                bank.miss_counts.insert(seg, crate::take(src) as u32);
            }
        }
        let rng_state = [crate::take(src), crate::take(src), crate::take(src), crate::take(src)];
        self.rng = StdRng::from_state(rng_state);
        self.stats.load_state(src);
        self.next_job_id = crate::take(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_dram::{DramCommand, SubarrayLayout};

    fn fast_dram() -> DramConfig {
        DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
            ..DramConfig::ddr4_paper_default()
        }
    }

    fn fast_engine() -> FigCacheEngine {
        FigCacheEngine::new(&fast_dram(), &FigCacheConfig::paper_fast(), 16)
    }

    /// Runs a job to completion against an ideal bank and returns the
    /// issued commands.
    fn run_job(engine: &mut FigCacheEngine, bank: u32, open: Option<RowId>) -> Vec<DramCommand> {
        let mut job = engine.take_job(bank, 0).expect("expected a pending job");
        let mut open_row = open;
        let mut must_pre = false;
        let mut cmds = Vec::new();
        while let Some(cmd) = job.peek(open_row, must_pre) {
            match cmd {
                DramCommand::Activate { row } => open_row = Some(row),
                DramCommand::Precharge => {
                    open_row = None;
                    must_pre = false;
                }
                DramCommand::ActivateMerge { .. } => must_pre = true,
                _ => {}
            }
            job.on_issued(&cmd);
            cmds.push(cmd);
        }
        engine.on_job_complete(bank, job.id, 100);
        cmds
    }

    #[test]
    fn miss_then_relocation_then_hit() {
        let mut e = fast_engine();
        let t0 = e.on_request(0, 100, 5, false, None, 0);
        assert!(!t0.cache_hit);
        assert_eq!(t0.row, 100);
        assert!(e.has_pending_job(0));
        let cmds = run_job(&mut e, 0, Some(100));
        // One 16-block train + merge; source was open so no ACT, and the
        // merge ends the job (no bank-wide precharge).
        assert_eq!(cmds.len(), 2);
        let t1 = e.on_request(0, 100, 5, false, None, 10);
        assert!(t1.cache_hit);
        // Cache row is the first fast row.
        assert_eq!(t1.row, 64 * 512);
        assert_eq!(t1.col, 5); // slot 0, segment offset preserved
        assert_eq!(e.stats().hits, 1);
        assert_eq!(e.stats().insertions, 1);
        assert_eq!(e.stats().blocks_relocated, 16);
    }

    #[test]
    fn hit_redirects_with_column_offset() {
        let mut e = fast_engine();
        // Miss on segment 2 of row 7 (cols 32..48).
        e.on_request(0, 7, 33, false, None, 0);
        run_job(&mut e, 0, Some(7));
        let t = e.on_request(0, 7, 40, false, None, 5);
        assert!(t.cache_hit);
        assert_eq!(t.col, 8); // offset 40-32 within slot 0
    }

    #[test]
    fn accesses_during_relocation_go_to_source() {
        let mut e = fast_engine();
        e.on_request(0, 100, 0, false, None, 0);
        let t = e.on_request(0, 100, 1, false, None, 1);
        assert!(!t.cache_hit);
        assert_eq!(t.row, 100);
        assert_eq!(e.stats().misses, 2);
    }

    #[test]
    fn write_during_relocation_cancels_insertion() {
        let mut e = fast_engine();
        e.on_request(0, 100, 0, false, None, 0);
        e.on_request(0, 100, 1, true, None, 1); // racing write
        run_job(&mut e, 0, Some(100));
        assert_eq!(e.stats().insertions, 0);
        assert_eq!(e.stats().insertions_cancelled, 1);
        // Next access is a miss again and re-inserts.
        let t = e.on_request(0, 100, 0, false, None, 10);
        assert!(!t.cache_hit);
        assert!(e.has_pending_job(0));
    }

    #[test]
    fn dirty_eviction_schedules_writeback_before_insert() {
        let dram = fast_dram();
        let mut cfg = FigCacheConfig::paper_fast();
        cfg.cache_rows_per_bank = 1; // 8 slots
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        // Fill all 8 slots from different rows, writing to make them dirty.
        for r in 0..8u32 {
            e.on_request(0, r, 0, false, None, 0);
            run_job(&mut e, 0, Some(r));
            e.on_request(0, r, 1, true, None, 1); // dirty the cached copy
        }
        assert_eq!(e.stats().hits, 8);
        // Ninth segment evicts a dirty victim.
        e.on_request(0, 100, 0, false, None, 2);
        assert!(e.has_pending_job(0));
        let wb = e.take_job(0, 2).unwrap();
        assert_eq!(wb.purpose, JobPurpose::Writeback);
        let ins = e.take_job(0, 2).unwrap();
        assert_eq!(ins.purpose, JobPurpose::Insert);
        assert_eq!(e.stats().evictions_dirty, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let dram = fast_dram();
        let mut cfg = FigCacheConfig::paper_fast();
        cfg.cache_rows_per_bank = 1;
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        for r in 0..8u32 {
            e.on_request(0, r, 0, false, None, 0);
            run_job(&mut e, 0, Some(r));
        }
        e.on_request(0, 100, 0, false, None, 2);
        let job = e.take_job(0, 2).unwrap();
        assert_eq!(job.purpose, JobPurpose::Insert);
        assert!(e.take_job(0, 2).is_none());
        assert_eq!(e.stats().evictions_clean, 1);
    }

    #[test]
    fn ideal_relocation_validates_immediately_without_jobs() {
        let mut e = FigCacheEngine::new(&fast_dram(), &FigCacheConfig::paper_ideal(), 16);
        e.on_request(0, 100, 0, false, None, 0);
        assert!(!e.has_pending_job(0));
        let t = e.on_request(0, 100, 1, false, None, 1);
        assert!(t.cache_hit);
        assert_eq!(e.stats().insertions, 1);
    }

    #[test]
    fn slow_mode_does_not_cache_reserved_subarray() {
        let dram = DramConfig::ddr4_paper_default();
        let mut e = FigCacheEngine::new(&dram, &FigCacheConfig::paper_slow(), 16);
        // Rows of subarray 63 (ids 63*512..) are uncacheable sources.
        let t = e.on_request(0, 63 * 512 + 5, 0, false, None, 0);
        assert!(!t.cache_hit);
        assert!(!e.has_pending_job(0));
        assert_eq!(e.stats().uncacheable, 1);
        // Ordinary rows are cacheable; cache rows live at the top of
        // subarray 63.
        e.on_request(0, 100, 0, false, None, 0);
        assert!(e.has_pending_job(0));
        run_job(&mut e, 0, Some(100));
        let t = e.on_request(0, 100, 0, false, None, 1);
        assert!(t.cache_hit);
        assert_eq!(t.row, 64 * 512 - 64); // first reserved row
    }

    #[test]
    fn insertion_threshold_defers_insertion() {
        let dram = fast_dram();
        let mut cfg = FigCacheConfig::paper_fast();
        cfg.insertion.miss_threshold = 3;
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        e.on_request(0, 100, 0, false, None, 0);
        assert!(!e.has_pending_job(0));
        e.on_request(0, 100, 0, false, None, 1);
        assert!(!e.has_pending_job(0));
        e.on_request(0, 100, 0, false, None, 2);
        assert!(e.has_pending_job(0), "third miss crosses the threshold");
    }

    #[test]
    fn fig15_threshold_one_is_insert_any_miss() {
        let dram = fast_dram();
        let cfg = FigCacheConfig::paper_fast();
        assert_eq!(cfg.insertion.miss_threshold, 1, "paper default");
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        e.on_request(0, 100, 0, false, None, 0);
        assert!(e.has_pending_job(0), "threshold 1 inserts on the first miss");
    }

    #[test]
    fn fig15_threshold_boundary_holds_across_sweep() {
        // Fig. 15 sweeps thresholds 1/2/4/8: exactly the Nth miss of a
        // segment triggers its insertion, never the (N-1)th.
        for threshold in [2u32, 4, 8] {
            let dram = fast_dram();
            let mut cfg = FigCacheConfig::paper_fast();
            cfg.insertion.miss_threshold = threshold;
            let mut e = FigCacheEngine::new(&dram, &cfg, 16);
            for miss in 0..threshold - 1 {
                e.on_request(0, 100, 0, false, None, u64::from(miss));
                assert!(
                    !e.has_pending_job(0),
                    "threshold {threshold}: miss {} must not insert yet",
                    miss + 1
                );
            }
            e.on_request(0, 100, 0, false, None, u64::from(threshold));
            assert!(e.has_pending_job(0), "threshold {threshold}: Nth miss inserts");
        }
    }

    #[test]
    fn fig15_miss_counters_are_per_segment() {
        let dram = fast_dram();
        let mut cfg = FigCacheConfig::paper_fast();
        cfg.insertion.miss_threshold = 2;
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        // First misses of two different segments: neither reaches 2.
        e.on_request(0, 100, 0, false, None, 0);
        e.on_request(0, 200, 0, false, None, 1);
        assert!(!e.has_pending_job(0), "counts must not be shared across segments");
        // Second miss of the first segment crosses its own threshold.
        e.on_request(0, 100, 0, false, None, 2);
        assert!(e.has_pending_job(0));
    }

    #[test]
    fn pending_job_bound_skips_insertions() {
        let dram = fast_dram();
        let mut cfg = FigCacheConfig::paper_fast();
        cfg.max_pending_jobs_per_bank = 2;
        let mut e = FigCacheEngine::new(&dram, &cfg, 16);
        for r in 0..5u32 {
            e.on_request(0, r, 0, false, None, 0);
        }
        assert_eq!(e.stats().insertions_skipped, 3);
    }

    #[test]
    fn banks_are_independent() {
        let mut e = fast_engine();
        e.on_request(0, 100, 0, false, None, 0);
        run_job(&mut e, 0, Some(100));
        let t = e.on_request(1, 100, 0, false, None, 1);
        assert!(!t.cache_hit, "bank 1 has its own FTS portion");
    }

    #[test]
    fn insert_job_targets_fast_subarray() {
        let mut e = fast_engine();
        e.on_request(0, 100, 0, false, None, 0);
        let job = e.take_job(0, 0).unwrap();
        match job.kind {
            crate::job::JobKind::FigCopy { to_subarray, to_row, blocks, .. } => {
                assert_eq!(to_subarray, 64); // first fast subarray's dense id
                assert_eq!(to_row, 64 * 512);
                assert_eq!(blocks, 16);
            }
            other => panic!("unexpected job kind {other:?}"),
        }
        e.on_job_complete(0, job.id, 1);
    }
}
