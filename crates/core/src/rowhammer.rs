//! Activation-frequency monitoring for the Section 6 security analysis.
//!
//! RowHammer pressure is proportional to how often individual rows are
//! activated within a refresh window. FIGCache reduces that frequency for
//! hot data by gathering frequently-accessed segments into a small number
//! of cache rows, so the victim rows' neighbours stop being hammered.
//! [`RowHammerMonitor`] measures exactly this: per-(bank, row) activation
//! counts within sliding windows, and the worst count ever observed.

use std::collections::HashMap;

use figaro_dram::{Cycle, RowId};

/// Sliding-window activation counter.
#[derive(Debug, Clone)]
pub struct RowHammerMonitor {
    window: Cycle,
    window_start: Cycle,
    counts: HashMap<(u32, RowId), u32>,
    max_in_any_window: u32,
    max_row: Option<(u32, RowId)>,
    total_acts: u64,
}

impl RowHammerMonitor {
    /// Creates a monitor with a `window`-cycle observation window
    /// (a DDR4 refresh window is 64 ms ≈ 51.2 M bus cycles; experiments
    /// usually pass something smaller to match their simulated duration).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window must be non-zero");
        Self {
            window,
            window_start: 0,
            counts: HashMap::new(),
            max_in_any_window: 0,
            max_row: None,
            total_acts: 0,
        }
    }

    /// Records an `ACTIVATE` of (`bank`, `row`) at cycle `now`.
    pub fn record_act(&mut self, bank: u32, row: RowId, now: Cycle) {
        if now.saturating_sub(self.window_start) >= self.window {
            self.counts.clear();
            self.window_start = now - (now - self.window_start) % self.window;
        }
        let c = self.counts.entry((bank, row)).or_insert(0);
        *c += 1;
        self.total_acts += 1;
        if *c > self.max_in_any_window {
            self.max_in_any_window = *c;
            self.max_row = Some((bank, row));
        }
    }

    /// The highest per-row activation count seen in any window — the
    /// quantity a RowHammer threshold is compared against.
    #[must_use]
    pub fn max_acts_per_window(&self) -> u32 {
        self.max_in_any_window
    }

    /// The (bank, row) that reached [`Self::max_acts_per_window`].
    #[must_use]
    pub fn hottest_row(&self) -> Option<(u32, RowId)> {
        self.max_row
    }

    /// Total activations recorded.
    #[must_use]
    pub fn total_acts(&self) -> u64 {
        self.total_acts
    }

    /// Rows activated in the current window.
    #[must_use]
    pub fn distinct_rows_in_window(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_acts_per_row() {
        let mut m = RowHammerMonitor::new(1000);
        for i in 0..10 {
            m.record_act(0, 5, i);
        }
        m.record_act(0, 6, 11);
        assert_eq!(m.max_acts_per_window(), 10);
        assert_eq!(m.hottest_row(), Some((0, 5)));
        assert_eq!(m.total_acts(), 11);
        assert_eq!(m.distinct_rows_in_window(), 2);
    }

    #[test]
    fn window_roll_over_resets_counts_but_keeps_max() {
        let mut m = RowHammerMonitor::new(100);
        for i in 0..5 {
            m.record_act(0, 5, i);
        }
        // Next window.
        m.record_act(0, 5, 150);
        assert_eq!(m.distinct_rows_in_window(), 1);
        assert_eq!(m.max_acts_per_window(), 5, "historical max survives the roll-over");
    }

    #[test]
    fn banks_are_distinct() {
        let mut m = RowHammerMonitor::new(1000);
        m.record_act(0, 5, 0);
        m.record_act(1, 5, 1);
        assert_eq!(m.max_acts_per_window(), 1);
        assert_eq!(m.distinct_rows_in_window(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = RowHammerMonitor::new(0);
    }
}
