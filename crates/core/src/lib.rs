//! # figaro-core — the FIGARO substrate and the FIGCache in-DRAM cache
//!
//! This crate implements the paper's primary contribution
//! (Wang et al., *FIGARO: Improving System Performance via Fine-Grained
//! In-DRAM Data Relocation and Caching*, MICRO 2020):
//!
//! * **FIGARO relocation planning** ([`job::RelocationJob`]): the command
//!   sequences that move a *row segment* (one or more contiguous cache
//!   blocks) between subarrays through the shared global row buffer —
//!   `ACTIVATE(src)` (when needed) → `RELOC` × blocks →
//!   `ACTIVATE`-merge(dst) → `PRECHARGE` — at a latency independent of the
//!   subarray distance.
//! * **FIGCache** ([`engine::FigCacheEngine`]): the fine-grained in-DRAM
//!   cache. A FIGCache tag store ([`fts::FtsBank`]) in the memory
//!   controller tracks which segments are cached where, with valid/dirty
//!   bits and 5-bit saturating *benefit* counters; insertion uses the
//!   paper's insert-any-miss policy (generalised to a configurable miss
//!   threshold, Fig. 15); replacement supports the paper's
//!   **RowBenefit** policy (row-granularity eviction via an eviction
//!   register + bitvector) plus the SegmentBenefit / LRU / Random
//!   alternatives of Fig. 14.
//! * **LISA-VILLA baseline** ([`lisa::LisaVillaEngine`]): the
//!   state-of-the-art comparison point — row-granularity caching into
//!   interleaved fast subarrays with distance-*dependent* relocation.
//! * **RowHammer monitor** ([`rowhammer::RowHammerMonitor`]): the
//!   activation-frequency tracker used to demonstrate the Section 6
//!   security use case.
//!
//! The crate plugs into the memory controller (`figaro-memctrl`) through
//! the [`CacheEngine`] trait: the controller consults the engine on every
//! demand request (possibly redirecting it into the cache region) and asks
//! it for relocation jobs to run on otherwise-idle banks.
//!
//! ## Example
//!
//! ```
//! use figaro_core::{CacheEngine, FigCacheConfig, FigCacheEngine};
//! use figaro_dram::DramConfig;
//!
//! let dram = DramConfig::ddr4_paper_default();
//! let cfg = FigCacheConfig::paper_slow(); // 64 reserved rows, 1 kB segments
//! let mut engine = FigCacheEngine::new(&dram, &cfg, 16);
//! // A miss: served from the source row, and an insertion is scheduled.
//! let t = engine.on_request(0, 100, 5, false, None, 0);
//! assert_eq!(t.row, 100);
//! assert!(!t.cache_hit);
//! assert!(engine.has_pending_job(0));
//! ```

/// Pops the next word of a snapshot word stream (the `save_state` /
/// `load_state` convention shared with `figaro-sim`'s FGSN codec).
/// Truncation aborts loudly: resuming from a corrupt snapshot must never
/// silently produce a different run.
pub(crate) fn take(src: &mut &[u64]) -> u64 {
    assert!(!src.is_empty(), "snapshot word stream truncated");
    let w = src[0];
    *src = &src[1..];
    w
}

pub mod config;
pub mod engine;
pub mod fts;
pub mod job;
pub mod lisa;
pub mod rowhammer;
pub mod segment;
pub mod traits;

pub use config::{CacheRegion, FigCacheConfig, InsertionPolicy, ReplacementPolicy};
pub use engine::FigCacheEngine;
pub use fts::{FtsBank, SlotState};
pub use job::{JobKind, RelocationJob};
pub use lisa::{LisaVillaConfig, LisaVillaEngine};
pub use rowhammer::RowHammerMonitor;
pub use segment::{SegmentGeometry, SegmentId};
pub use traits::{CacheEngine, CacheStats, NullEngine, ServeTarget};
