//! The LISA-VILLA baseline engine (Chang et al., HPCA 2016): a
//! row-granularity in-DRAM cache over interleaved fast subarrays, filled by
//! distance-dependent inter-subarray row clones.
//!
//! Contrast with FIGCache: LISA-VILLA always relocates an **entire** DRAM
//! row, so a cached row's row-buffer locality is unchanged (only the fast
//! subarray's reduced latency helps), and its relocation cost grows with
//! the subarray hop distance — which is why it needs 16 interleaved fast
//! subarrays per bank where FIGCache needs two (or none).

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use figaro_dram::{Cycle, DramConfig, RowId};

use crate::config::ReplacementPolicy;
use crate::fts::{FtsBank, SlotState};
use crate::job::{JobPurpose, RelocationJob};
use crate::segment::SegmentId;
use crate::traits::{CacheEngine, CacheStats, ServeTarget};

/// LISA-VILLA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LisaVillaConfig {
    /// Cache rows per bank (the paper: 512 = 16 fast subarrays × 32 rows).
    pub cache_rows_per_bank: u32,
    /// Bound on queued clone jobs per bank.
    pub max_pending_jobs_per_bank: usize,
    /// Misses a row must accumulate before it is cloned into the cache
    /// (VILLA's hot-row identification; cloning an 8 kB row on every miss
    /// would swamp the banks).
    pub miss_threshold: u32,
    /// RNG seed (used only by the benefit tie-breaking policy plumbing).
    pub seed: u64,
}

impl LisaVillaConfig {
    /// The paper's LISA-VILLA setup: 512 cache rows per bank, hot rows
    /// identified after two misses.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cache_rows_per_bank: 512,
            max_pending_jobs_per_bank: 8,
            miss_threshold: 2,
            seed: 0x115A_0001,
        }
    }
}

#[derive(Debug)]
struct BankState {
    /// Row-granularity tag store: an [`FtsBank`] with one slot per cache
    /// row (so RowBenefit degenerates to per-row benefit, which is
    /// VILLA's hot-row benefit tracking).
    tags: FtsBank,
    pending: VecDeque<RelocationJob>,
    in_flight: HashMap<u64, Option<u32>>,
    /// Miss counters for the hot-row threshold (cleared wholesale as a
    /// coarse aging step when oversized).
    miss_counts: HashMap<RowId, u32>,
}

/// The LISA-VILLA in-DRAM cache engine for one channel.
#[derive(Debug)]
pub struct LisaVillaEngine {
    cfg: LisaVillaConfig,
    banks: Vec<BankState>,
    rng: StdRng,
    stats: CacheStats,
    next_job_id: u64,
    cache_row_base: RowId,
    blocks_per_row: u32,
}

impl LisaVillaEngine {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if the DRAM layout does not provide enough fast rows.
    #[must_use]
    pub fn new(dram: &DramConfig, cfg: &LisaVillaConfig, banks: u32) -> Self {
        let layout = dram.layout;
        let fast_rows = layout.fast_count() * layout.fast_rows_each();
        assert!(
            fast_rows >= cfg.cache_rows_per_bank,
            "layout provides {fast_rows} fast rows but LISA-VILLA needs {}",
            cfg.cache_rows_per_bank
        );
        let bank_states = (0..banks)
            .map(|_| BankState {
                tags: FtsBank::new(cfg.cache_rows_per_bank, 1),
                pending: VecDeque::new(),
                in_flight: HashMap::new(),
                miss_counts: HashMap::new(),
            })
            .collect();
        Self {
            cfg: *cfg,
            banks: bank_states,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: CacheStats::default(),
            next_job_id: 0,
            cache_row_base: layout.regular_rows(),
            blocks_per_row: dram.geometry.blocks_per_row(),
        }
    }

    /// The DRAM row id of cache slot `slot`.
    #[must_use]
    pub fn cache_row_id(&self, slot: u32) -> RowId {
        self.cache_row_base + slot
    }

    fn tag_of(row: RowId) -> SegmentId {
        SegmentId { row, index: 0 }
    }
}

impl CacheEngine for LisaVillaEngine {
    fn on_request(
        &mut self,
        bank: u32,
        row: RowId,
        col: u32,
        is_write: bool,
        open_row: Option<RowId>,
        now: Cycle,
    ) -> ServeTarget {
        self.stats.lookups += 1;
        let source = ServeTarget { row, col, cache_hit: false };
        if row >= self.cache_row_base {
            self.stats.uncacheable += 1;
            return source;
        }
        let tag = Self::tag_of(row);
        let state = &mut self.banks[bank as usize];
        if let Some(slot) = state.tags.find(tag) {
            match state.tags.slot(slot).state {
                SlotState::Valid => {
                    let dirty = state.tags.slot(slot).dirty;
                    state.tags.touch_hit(slot, is_write, now);
                    self.stats.hits += 1;
                    // Open-row bypass (see `CacheEngine::on_request`).
                    if !is_write && !dirty && open_row == Some(row) {
                        self.stats.hits_bypassed += 1;
                        return ServeTarget { row, col, cache_hit: true };
                    }
                    return ServeTarget { row: self.cache_row_base + slot, col, cache_hit: true };
                }
                SlotState::Relocating { .. } => {
                    if is_write {
                        state.tags.cancel_relocation(slot);
                    }
                    self.stats.misses += 1;
                    return source;
                }
                SlotState::Free => unreachable!("mapped slot cannot be free"),
            }
        }
        self.stats.misses += 1;
        // Hot-row identification: clone only after `miss_threshold` misses.
        if self.cfg.miss_threshold > 1 {
            if state.miss_counts.len() > 65_536 {
                state.miss_counts.clear();
            }
            let c = state.miss_counts.entry(row).or_insert(0);
            *c += 1;
            if *c < self.cfg.miss_threshold {
                return source;
            }
            state.miss_counts.remove(&row);
        }
        if state.pending.len() >= self.cfg.max_pending_jobs_per_bank {
            self.stats.insertions_skipped += 1;
            return source;
        }
        let Some(alloc) =
            state.tags.allocate(tag, ReplacementPolicy::SegmentBenefit, &mut self.rng, now)
        else {
            self.stats.insertions_skipped += 1;
            return source;
        };
        if let Some(victim) = alloc.victim {
            if victim.dirty {
                self.stats.evictions_dirty += 1;
                let id = self.next_job_id;
                self.next_job_id += 1;
                let job = RelocationJob::lisa_clone(
                    id,
                    bank,
                    JobPurpose::Writeback,
                    self.cache_row_base + victim.slot,
                    victim.seg.row,
                );
                state.in_flight.insert(id, None);
                state.pending.push_back(job);
            } else {
                self.stats.evictions_clean += 1;
            }
        }
        let id = self.next_job_id;
        self.next_job_id += 1;
        let job = RelocationJob::lisa_clone(
            id,
            bank,
            JobPurpose::Insert,
            row,
            self.cache_row_base + alloc.slot,
        );
        state.in_flight.insert(id, Some(alloc.slot));
        state.pending.push_back(job);
        source
    }

    fn take_job(&mut self, bank: u32, _now: Cycle) -> Option<RelocationJob> {
        self.banks[bank as usize].pending.pop_front()
    }

    fn next_job_source(&self, _bank: u32) -> Option<RowId> {
        // LISA clones require a precharged bank; they are never cheap.
        None
    }

    fn has_pending_job(&self, bank: u32) -> bool {
        !self.banks[bank as usize].pending.is_empty()
    }

    fn has_any_pending_job(&self, banks: u32) -> bool {
        self.banks.iter().take(banks as usize).any(|b| !b.pending.is_empty())
    }

    fn on_job_complete(&mut self, bank: u32, job_id: u64, _now: Cycle) {
        let slot = self.banks[bank as usize]
            .in_flight
            .remove(&job_id)
            .expect("completion for unknown job");
        self.stats.blocks_relocated += u64::from(self.blocks_per_row);
        if let Some(slot) = slot {
            if self.banks[bank as usize].tags.complete_relocation(slot) {
                self.stats.insertions += 1;
            } else {
                self.stats.insertions_cancelled += 1;
            }
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.banks.len() as u64);
        for bank in &self.banks {
            bank.tags.save_state(out);
            out.push(bank.pending.len() as u64);
            for job in &bank.pending {
                job.save_state(out);
            }
            let mut ids: Vec<u64> = bank.in_flight.keys().copied().collect();
            ids.sort_unstable();
            out.push(ids.len() as u64);
            for id in ids {
                out.push(id);
                match bank.in_flight[&id] {
                    None => out.push(0),
                    Some(s) => {
                        out.push(1);
                        out.push(u64::from(s));
                    }
                }
            }
            let mut rows: Vec<RowId> = bank.miss_counts.keys().copied().collect();
            rows.sort_unstable();
            out.push(rows.len() as u64);
            for row in rows {
                out.push(u64::from(row));
                out.push(u64::from(bank.miss_counts[&row]));
            }
        }
        out.extend_from_slice(&self.rng.state());
        self.stats.save_state(out);
        out.push(self.next_job_id);
    }

    fn load_state(&mut self, src: &mut &[u64]) {
        let n = crate::take(src) as usize;
        assert_eq!(n, self.banks.len(), "snapshot engine bank-count mismatch");
        for bank in &mut self.banks {
            bank.tags.load_state(src);
            let n_pending = crate::take(src) as usize;
            bank.pending.clear();
            for _ in 0..n_pending {
                bank.pending.push_back(RelocationJob::load_state(src));
            }
            let n_flight = crate::take(src) as usize;
            bank.in_flight.clear();
            for _ in 0..n_flight {
                let id = crate::take(src);
                let slot = (crate::take(src) != 0).then(|| crate::take(src) as u32);
                bank.in_flight.insert(id, slot);
            }
            let n_miss = crate::take(src) as usize;
            bank.miss_counts.clear();
            for _ in 0..n_miss {
                let row = crate::take(src) as u32;
                bank.miss_counts.insert(row, crate::take(src) as u32);
            }
        }
        let rng_state = [crate::take(src), crate::take(src), crate::take(src), crate::take(src)];
        self.rng = StdRng::from_state(rng_state);
        self.stats.load_state(src);
        self.next_job_id = crate::take(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_dram::DramCommand;

    fn lisa_dram() -> DramConfig {
        DramConfig {
            layout: figaro_dram::SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32),
            ..DramConfig::ddr4_paper_default()
        }
    }

    fn engine() -> LisaVillaEngine {
        LisaVillaEngine::new(&lisa_dram(), &LisaVillaConfig::paper_default(), 16)
    }

    fn run_job(e: &mut LisaVillaEngine, bank: u32, open: Option<RowId>) -> Vec<DramCommand> {
        let mut job = e.take_job(bank, 0).expect("pending job");
        let mut open_row = open;
        let mut cmds = Vec::new();
        while let Some(cmd) = job.peek(open_row, false) {
            if matches!(cmd, DramCommand::Precharge) {
                open_row = None;
            }
            job.on_issued(&cmd);
            cmds.push(cmd);
        }
        e.on_job_complete(bank, job.id, 10);
        cmds
    }

    #[test]
    fn miss_clones_whole_row_then_hits_redirect() {
        let mut e = engine();
        let t = e.on_request(0, 1000, 5, false, None, 0);
        assert!(!t.cache_hit);
        assert!(!e.has_pending_job(0), "first miss only counts toward the hot-row threshold");
        let t = e.on_request(0, 1000, 6, false, None, 0);
        assert!(!t.cache_hit);
        let cmds = run_job(&mut e, 0, None);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0], DramCommand::LisaClone { src_row: 1000, .. }));
        // Any column of the row now hits.
        let t1 = e.on_request(0, 1000, 99, false, None, 1);
        assert!(t1.cache_hit);
        assert_eq!(t1.row, 64 * 512); // first cache row
        assert_eq!(t1.col, 99); // column unchanged: whole row cached
        assert_eq!(e.stats().blocks_relocated, 128);
    }

    #[test]
    fn different_rows_fill_different_slots() {
        let mut e = engine();
        e.on_request(0, 10, 0, false, None, 0);
        e.on_request(0, 10, 1, false, None, 0);
        run_job(&mut e, 0, None);
        e.on_request(0, 20, 0, false, None, 1);
        e.on_request(0, 20, 1, false, None, 1);
        run_job(&mut e, 0, None);
        let a = e.on_request(0, 10, 0, false, None, 2);
        let b = e.on_request(0, 20, 0, false, None, 3);
        assert!(a.cache_hit && b.cache_hit);
        assert_ne!(a.row, b.row);
    }

    #[test]
    fn dirty_row_eviction_schedules_writeback_clone() {
        let dram = lisa_dram();
        let cfg = LisaVillaConfig { cache_rows_per_bank: 2, ..LisaVillaConfig::paper_default() };
        let mut e = LisaVillaEngine::new(&dram, &cfg, 16);
        for r in [10u32, 20] {
            e.on_request(0, r, 0, false, None, 0);
            e.on_request(0, r, 1, false, None, 0);
            run_job(&mut e, 0, None);
            e.on_request(0, r, 0, true, None, 1); // dirty the cached row
        }
        e.on_request(0, 30, 0, false, None, 2);
        e.on_request(0, 30, 1, false, None, 2);
        let wb = e.take_job(0, 2).unwrap();
        assert_eq!(wb.purpose, JobPurpose::Writeback);
        assert!(matches!(
            wb.kind,
            crate::job::JobKind::LisaClone { dst_row: 10, .. }
                | crate::job::JobKind::LisaClone { dst_row: 20, .. }
        ));
        let ins = e.take_job(0, 2).unwrap();
        assert_eq!(ins.purpose, JobPurpose::Insert);
        assert_eq!(e.stats().evictions_dirty, 1);
    }

    #[test]
    fn cache_rows_are_not_cacheable_sources() {
        let mut e = engine();
        let fast_row = 64 * 512 + 3;
        let t = e.on_request(0, fast_row, 0, false, None, 0);
        assert!(!t.cache_hit);
        assert!(!e.has_pending_job(0));
        assert_eq!(e.stats().uncacheable, 1);
    }

    #[test]
    fn write_during_clone_cancels() {
        let mut e = engine();
        e.on_request(0, 10, 0, false, None, 0);
        e.on_request(0, 10, 1, false, None, 0); // crosses the threshold
        e.on_request(0, 10, 2, true, None, 1);
        run_job(&mut e, 0, None);
        assert_eq!(e.stats().insertions_cancelled, 1);
        let t = e.on_request(0, 10, 0, false, None, 2);
        assert!(!t.cache_hit);
    }
}
