//! `parallel_kernel` — wall-clock scaling of the sharded parallel kernel.
//!
//! Sweeps [`Kernel::Parallel`] worker threads over {1, 2, 4, 8} on four
//! eight-core run shapes — {4, 8} memory channels × {backlog-saturation,
//! streamed-mix} — with the serial event kernel as the baseline, asserts
//! every parallel run's [`RunStats`] are **bit-identical** to the event
//! kernel's, prints simulated cycles per wall-clock second, and records
//! everything (including the host's available parallelism — scaling
//! numbers from a one-core container are honest but flat) in
//! `BENCH_parallel.json` at the workspace root.
//!
//! ```bash
//! cargo bench --bench parallel_kernel
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, Kernel, RunStats, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

const SAMPLES: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One measured run shape: always the paper's eight-core system on
/// FIGCache-Fast (relocation traffic makes the controllers the
/// bottleneck), with the channel count and queue pressure varied.
#[derive(Clone, Copy)]
struct Shape {
    name: &'static str,
    channels: u32,
    /// Shrink the per-channel queues so the backlog stays pinned — the
    /// heaviest per-shard load and the hardest case for the lookahead.
    saturate: bool,
}

const SHAPES: [Shape; 4] = [
    Shape { name: "mix-4ch", channels: 4, saturate: false },
    Shape { name: "mix-8ch", channels: 8, saturate: false },
    Shape { name: "sat-4ch", channels: 4, saturate: true },
    Shape { name: "sat-8ch", channels: 8, saturate: true },
];

/// One uncached run of `shape` under `kernel` with `threads` workers.
fn run_once(shape: &Shape, kernel: Kernel, threads: usize, insts: u64) -> (RunStats, f64) {
    let apps = ["mcf", "lbm", "zeusmp", "libquantum", "gcc", "sjeng", "grep", "bzip2"];
    let traces: Vec<Trace> = apps
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let p = profile_by_name(n).expect("bench profile exists");
            generate_trace(&p, 8_000, 1_000 + i as u64)
        })
        .collect();
    let mut cfg = SystemConfig { kernel, ..SystemConfig::paper(8, ConfigKind::FigCacheFast) }
        .with_channels(shape.channels)
        .with_threads(threads);
    if shape.saturate {
        cfg.mc.read_queue_cap = 4;
        cfg.mc.write_queue_cap = 4;
        cfg.mc.wq_high = 3;
        cfg.mc.wq_low = 1;
        cfg.hierarchy.mshrs_per_core = 16;
    }
    let mut sys = System::new(cfg, traces, &[insts; 8]);
    let t = Instant::now();
    let stats = sys.run(insts * 400);
    (stats, t.elapsed().as_secs_f64())
}

struct Measurement {
    shape: Shape,
    /// `0` encodes the serial event-kernel baseline.
    threads: usize,
    wall_s: f64,
    sim_cycles: u64,
}

impl Measurement {
    fn kernel_label(&self) -> String {
        if self.threads == 0 {
            "event".into()
        } else {
            format!("parallel-{}t", self.threads)
        }
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }
}

fn json_report(scale: Scale, host_threads: usize, results: &[Measurement]) -> String {
    let mut entries = String::new();
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            entries,
            "{}    {{\"shape\": \"{}\", \"channels\": {}, \"kernel\": \"{}\", \
             \"wall_s\": {:.6}, \"sim_cycles\": {}, \"cycles_per_sec\": {:.1}}}",
            if i == 0 { "" } else { ",\n" },
            m.shape.name,
            m.shape.channels,
            m.kernel_label(),
            m.wall_s,
            m.sim_cycles,
            m.cycles_per_sec(),
        );
    }
    // Speedup of each parallel thread count over the same shape's
    // 1-thread parallel run (isolates scaling from epoch overhead).
    let mut speedups = String::new();
    let mut first = true;
    for shape in SHAPES {
        let base = results
            .iter()
            .find(|m| m.shape.name == shape.name && m.threads == 1)
            .expect("1-thread row exists");
        for m in results.iter().filter(|m| m.shape.name == shape.name && m.threads > 1) {
            let _ = write!(
                speedups,
                "{}\"{}@{}t\": {:.2}",
                if first { "" } else { ", " },
                shape.name,
                m.threads,
                base.wall_s / m.wall_s,
            );
            first = false;
        }
    }
    format!(
        "{{\n  \"bench\": \"parallel_kernel\",\n  \"scale\": \"{}\",\n  \
         \"host_threads\": {host_threads},\n  \"results\": [\n{entries}\n  ],\n  \
         \"parallel_speedup\": {{{speedups}}}\n}}\n",
        scale.label(),
    )
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let scale = Scale::from_env_or(Scale::Tiny);
    // Eight active cores: size the per-core target down so the full
    // sweep (five kernel variants x shapes x samples) stays tractable.
    let insts = (scale.target_insts() / 8).max(10_000);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "--- parallel_kernel (scale: {}, {insts} insts/core, host threads: {host_threads}, \
         median of {SAMPLES} interleaved rounds) ---",
        scale.label()
    );
    if host_threads < 2 {
        println!("note: single-hardware-thread host — speedups cannot exceed 1.0 here");
    }
    let mut results = Vec::new();
    for shape in SHAPES {
        // Interleaved rounds: every variant of a round shares the
        // machine's momentary clock state; per-variant median is robust
        // to drift.
        let mut walls: Vec<Vec<f64>> = vec![Vec::new(); 1 + THREADS.len()];
        let mut event_stats = None;
        for _ in 0..SAMPLES {
            let (es, et) = run_once(&shape, Kernel::Event, 1, insts);
            walls[0].push(et);
            for (i, &threads) in THREADS.iter().enumerate() {
                let (ps, pt) = run_once(&shape, Kernel::Parallel, threads, insts);
                assert_eq!(
                    es, ps,
                    "parallel kernel diverged on {} with {threads} threads",
                    shape.name
                );
                walls[1 + i].push(pt);
            }
            event_stats = Some(es);
        }
        let stats = event_stats.expect("SAMPLES > 0");
        for (i, threads) in std::iter::once(0).chain(THREADS).enumerate() {
            let mut w = walls[i].clone();
            w.sort_by(f64::total_cmp);
            let m = Measurement {
                shape,
                threads,
                wall_s: w[w.len() / 2],
                sim_cycles: stats.cpu_cycles,
            };
            println!(
                "{:<10} {:<12} {:>8.3} s   {:>12.0} sim cycles/s",
                shape.name,
                m.kernel_label(),
                m.wall_s,
                m.cycles_per_sec(),
            );
            results.push(m);
        }
    }
    let report = json_report(scale, host_threads, &results);
    let path = figaro_bench::artifact_path("BENCH_parallel.json");
    std::fs::write(&path, &report).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());
}
