//! Figure 9: in-DRAM cache hit rates.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 9: in-DRAM cache hit rate");
    let fig = timed("fig09", || figaro_sim::experiments::fig09(&runner));
    println!("{fig}");
}
