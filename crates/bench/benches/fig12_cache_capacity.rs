//! Figure 12: sensitivity to the number of fast subarrays.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 12: in-DRAM cache capacity");
    let fig = timed("fig12", || figaro_sim::experiments::fig12(&runner));
    println!("{fig}");
}
