//! Section 4.2: the RELOC latency analysis — Monte-Carlo circuit
//! simulation, guardbanding, the 63.5 ns one-column relocation total, the
//! 0.03 µJ relocation energy estimate, and the distance-(in)dependence
//! comparison against hop-based substrates.

use figaro_dram::TimingParams;
use figaro_energy::DramEnergyModel;
use figaro_spice::{distance_sweep, run_monte_carlo, RelocCircuit};

fn main() {
    println!("--- Section 4.2: RELOC latency and energy ---");
    let circuit = RelocCircuit::paper_default();
    let iterations: u32 =
        std::env::var("FIGARO_MC_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let mc = run_monte_carlo(&circuit, iterations, 0.05, 0xF16A);
    println!("Monte-Carlo iterations          : {}", mc.iterations);
    println!("all iterations latched correctly: {}", mc.all_correct);
    println!("mean RELOC settle latency       : {:.3} ns", mc.mean_ns);
    println!("worst-case RELOC settle latency : {:.3} ns   (paper: 0.57 ns)", mc.worst_ns);
    println!("+43% guardband                  : {:.3} ns   (paper: 1 ns)", mc.guardbanded_ns);

    let t = TimingParams::ddr4_1600();
    let one_col = t.cycles_to_ns(u64::from(t.ras + t.reloc + t.rcd + t.rp));
    println!(
        "one-column relocation (ACT src tRAS + RELOC + ACT dst tRCD + PRE tRP): {one_col:.2} ns   (paper: 63.5 ns)"
    );

    let e = DramEnergyModel::ddr4_1600();
    println!(
        "one-block relocation energy     : {:.1} nJ  (paper estimate: 30 nJ / 0.03 uJ)",
        e.one_block_relocation_nj()
    );

    println!("\ndistance sweep (subarray slots): FIGARO vs hop-based relocation");
    println!("{:>6}  {:>12}  {:>14}", "slots", "FIGARO (ns)", "hop-based (ns)");
    for (d, fig, hop) in distance_sweep(&circuit, 5.0) {
        println!("{d:>6}  {fig:>12.3}  {hop:>14.1}");
    }
    println!("note: paper Sec 4.1 — FIGARO's latency is set by the worst case and is distance-independent; hop-based substrates grow linearly");
}
