//! Figure 8: eight-core weighted speedups of the five mechanisms.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 8: eight-core performance");
    let fig = timed("fig08", || figaro_sim::experiments::fig08(&runner));
    println!("{fig}");
}
