//! Figure 10: DRAM row-buffer hit rates.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 10: DRAM row-buffer hit rate");
    let fig = timed("fig10", || figaro_sim::experiments::fig10(&runner));
    println!("{fig}");
}
