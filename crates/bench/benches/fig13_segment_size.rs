//! Figure 13: sensitivity to the row-segment size.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 13: row-segment size");
    let fig = timed("fig13", || figaro_sim::experiments::fig13(&runner));
    println!("{fig}");
}
