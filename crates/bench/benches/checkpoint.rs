//! `checkpoint` — warm-start amortization and sampled-simulation accuracy.
//!
//! Two measurements, both recorded in `BENCH_checkpoint.json` at the
//! workspace root:
//!
//! 1. **Warm-start speedup.** A three-point address-mapping grid (the
//!    paper slice, channel-first, row-interleaved) is swept three ways:
//!    cold (no warmup), warm with an empty snapshot store (the pass that
//!    pays the warm prefix once and publishes the FGSN snapshot), and
//!    warm with hot snapshots (every later re-sweep). Warmed results are
//!    asserted bit-identical to the cold runs; the resumed sweep's total
//!    wall clock must beat the cold sweep by at least
//!    `(grid − 1) × warmup_fraction`.
//!
//! 2. **Sampled-simulation error.** Each Fig. 7 application runs
//!    single-core under the exact event kernel and under
//!    `Kernel::Sampled`; the per-app IPC error and wall-clock speedup
//!    become the accuracy bars quoted next to any sampled sweep.
//!
//! ```bash
//! cargo bench --bench checkpoint
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::experiments::{mapping_kinds, sweep_apps};
use figaro_sim::runner::{RunSummary, Scale};
use figaro_sim::{ConfigKind, Kernel, Runner, Scenario, ScenarioWorkload, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name};

/// Fraction of the cold run's cycles the warm prefix covers.
const WARM_FRACTION: f64 = 0.5;
const GRID: usize = 3;

/// The swept scenario at one mapping point: two cores (`mcf` + `lbm`)
/// on FIGCache-Fast, the shape the mapping sweep cares about.
fn scenario(map_idx: usize, insts: u64) -> Scenario {
    Scenario::new(
        "ckpt-grid",
        ConfigKind::FigCacheFast,
        ScenarioWorkload::Apps(vec![
            profile_by_name("mcf").expect("bench profile exists"),
            profile_by_name("lbm").expect("bench profile exists"),
        ]),
    )
    .with_mapping(mapping_kinds()[map_idx])
    .with_target_insts(insts)
}

/// One timed uncached scenario run through `runner`.
fn timed_run(runner: &Runner, sc: &Scenario) -> (RunSummary, f64) {
    let t = Instant::now();
    let s = runner.run_scenario(sc);
    (s, t.elapsed().as_secs_f64())
}

struct GridPoint {
    map: String,
    cold_s: f64,
    warm_miss_s: f64,
    warm_hit_s: f64,
    cycles: u64,
}

struct SampledPoint {
    app: String,
    config: &'static str,
    full_ipc: f64,
    sampled_ipc: f64,
    err_pct: f64,
    detail_fraction: f64,
    speedup: f64,
}

fn warm_start_sweep(insts: u64, snap_dir: &std::path::Path) -> (Vec<GridPoint>, u64) {
    let cold_runner = Runner::uncached(Scale::Tiny);
    let colds: Vec<(RunSummary, f64)> =
        (0..GRID).map(|i| timed_run(&cold_runner, &scenario(i, insts))).collect();
    let min_cycles = colds.iter().map(|(s, _)| s.cpu_cycles).min().expect("grid non-empty");
    let warm_cycles = (min_cycles as f64 * WARM_FRACTION) as u64;

    let warm_runner = Runner::uncached(Scale::Tiny).with_snapshot_dir(snap_dir.to_path_buf());
    // Pass 2: empty snapshot store — pays each point's warm prefix once.
    let misses: Vec<(RunSummary, f64)> = (0..GRID)
        .map(|i| timed_run(&warm_runner, &scenario(i, insts).with_warmup(warm_cycles)))
        .collect();
    // Pass 3: hot snapshots — what every re-sweep costs.
    let hits: Vec<(RunSummary, f64)> = (0..GRID)
        .map(|i| timed_run(&warm_runner, &scenario(i, insts).with_warmup(warm_cycles)))
        .collect();
    for i in 0..GRID {
        assert_eq!(misses[i].0, colds[i].0, "warm (miss) diverged at grid point {i}");
        assert_eq!(hits[i].0, colds[i].0, "warm (hit) diverged at grid point {i}");
    }

    let points = (0..GRID)
        .map(|i| GridPoint {
            map: mapping_kinds()[i].label(),
            cold_s: colds[i].1,
            warm_miss_s: misses[i].1,
            warm_hit_s: hits[i].1,
            cycles: colds[i].0.cpu_cycles,
        })
        .collect();
    (points, warm_cycles)
}

fn sampled_accuracy(insts: u64) -> Vec<SampledPoint> {
    // Window/skip scaled to the bench's run length: ~1/3 detail, enough
    // windows per run for the rate estimate to settle. Base vs. FIGCache
    // separates the two error sources: rate estimation (Base) and the
    // relocation-cache fill transient that fast-forward freezes
    // (FIGCache — the same warmup transient warm-start exists to skip).
    let (window, skip) = (insts / 4, insts * 2 / 5);
    let configs = [("base", ConfigKind::Base), ("figcache-fast", ConfigKind::FigCacheFast)];
    sweep_apps()
        .iter()
        .flat_map(|p| {
            let trace = generate_trace(p, 8_000, 7_777);
            configs.clone().map(|(label, kind)| {
                let run = |kernel: Kernel| {
                    let cfg = SystemConfig { kernel, ..SystemConfig::paper(1, kind.clone()) };
                    let mut sys = System::new(cfg, vec![trace.clone()], &[insts]);
                    let t = Instant::now();
                    (sys.run(insts * 400), t.elapsed().as_secs_f64())
                };
                let (full, full_s) = run(Kernel::Event);
                let (approx, approx_s) = run(Kernel::Sampled { window, skip });
                let st = approx.sampled.as_ref().expect("sampled kernel reports sampled stats");
                let (full_ipc, sampled_ipc) = (full.ipc(0), st.sampled_ipc(0));
                SampledPoint {
                    app: p.name.to_string(),
                    config: label,
                    full_ipc,
                    sampled_ipc,
                    err_pct: (sampled_ipc - full_ipc).abs() / full_ipc * 100.0,
                    detail_fraction: st.detail_fraction(),
                    speedup: full_s / approx_s,
                }
            })
        })
        .collect()
}

fn json_report(
    scale: Scale,
    grid: &[GridPoint],
    warm_cycles: u64,
    warmup_fraction: f64,
    required_speedup: f64,
    speedup: f64,
    sampled: &[SampledPoint],
) -> String {
    let mut grid_rows = String::new();
    for (i, g) in grid.iter().enumerate() {
        let _ = write!(
            grid_rows,
            "{}    {{\"map\": \"{}\", \"cold_s\": {:.6}, \"warm_miss_s\": {:.6}, \
             \"warm_hit_s\": {:.6}, \"sim_cycles\": {}}}",
            if i == 0 { "" } else { ",\n" },
            g.map,
            g.cold_s,
            g.warm_miss_s,
            g.warm_hit_s,
            g.cycles,
        );
    }
    let mut sampled_rows = String::new();
    for (i, s) in sampled.iter().enumerate() {
        let _ = write!(
            sampled_rows,
            "{}    {{\"app\": \"{}\", \"config\": \"{}\", \"full_ipc\": {:.6}, \
             \"sampled_ipc\": {:.6}, \"err_pct\": {:.2}, \"detail_fraction\": {:.3}, \
             \"speedup\": {:.2}}}",
            if i == 0 { "" } else { ",\n" },
            s.app,
            s.config,
            s.full_ipc,
            s.sampled_ipc,
            s.err_pct,
            s.detail_fraction,
            s.speedup,
        );
    }
    let mean_err = sampled.iter().map(|s| s.err_pct).sum::<f64>() / sampled.len() as f64;
    let max_err = sampled.iter().map(|s| s.err_pct).fold(0.0, f64::max);
    format!(
        "{{\n  \"bench\": \"checkpoint\",\n  \"scale\": \"{}\",\n  \
         \"warm_start\": {{\n    \"grid_points\": {},\n    \"warm_cycles\": {warm_cycles},\n    \
         \"warmup_fraction\": {warmup_fraction:.3},\n    \
         \"required_speedup\": {required_speedup:.3},\n    \"speedup\": {speedup:.3},\n    \
         \"grid\": [\n{grid_rows}\n  ]}},\n  \
         \"sampled\": {{\n    \"mean_err_pct\": {mean_err:.2},\n    \
         \"max_err_pct\": {max_err:.2},\n    \"apps\": [\n{sampled_rows}\n  ]}}\n}}\n",
        scale.label(),
        grid.len(),
    )
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let scale = Scale::from_env_or(Scale::Tiny);
    let insts = scale.target_insts();
    println!("--- checkpoint (scale: {}, {insts} insts/core) ---", scale.label());

    let snap_dir = std::env::temp_dir().join(format!("figaro-ckpt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let (grid, warm_cycles) = warm_start_sweep(insts, &snap_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);

    let total_cold: f64 = grid.iter().map(|g| g.cold_s).sum();
    let total_miss: f64 = grid.iter().map(|g| g.warm_miss_s).sum();
    let total_hit: f64 = grid.iter().map(|g| g.warm_hit_s).sum();
    let mean_cycles = grid.iter().map(|g| g.cycles).sum::<u64>() / grid.len() as u64;
    let warmup_fraction = warm_cycles as f64 / mean_cycles as f64;
    let speedup = total_cold / total_hit;
    // The amortization floor: resuming must save at least the warm
    // prefix of every grid point past the first.
    let required_speedup = (grid.len() - 1) as f64 * warmup_fraction;
    for g in &grid {
        println!(
            "{:<12} cold {:>7.3}s  warm-miss {:>7.3}s  warm-hit {:>7.3}s  ({} sim cycles)",
            g.map, g.cold_s, g.warm_miss_s, g.warm_hit_s, g.cycles
        );
    }
    println!(
        "warm prefix {warm_cycles} cycles ({:.0}% of a run); sweep totals: cold {total_cold:.3}s \
         / first warm pass {total_miss:.3}s / resumed pass {total_hit:.3}s",
        warmup_fraction * 100.0
    );
    println!("resumed-sweep speedup {speedup:.2}x (floor {required_speedup:.2}x)");
    assert!(
        speedup >= required_speedup,
        "warm-start must amortize the warm prefix: {speedup:.2}x < {required_speedup:.2}x"
    );

    let sampled = sampled_accuracy(insts);
    for s in &sampled {
        println!(
            "{:<12} {:<14} full {:.4} sampled {:.4}  err {:>5.1}%  detail {:.2}  {:>5.2}x faster",
            s.app, s.config, s.full_ipc, s.sampled_ipc, s.err_pct, s.detail_fraction, s.speedup
        );
    }

    let report = json_report(
        scale,
        &grid,
        warm_cycles,
        warmup_fraction,
        required_speedup,
        speedup,
        &sampled,
    );
    let path = figaro_bench::artifact_path("BENCH_checkpoint.json");
    std::fs::write(&path, &report).expect("write BENCH_checkpoint.json");
    println!("wrote {}", path.display());
}
