//! `serving_sweep` — the request-level serving bench: open-loop offered
//! load × mechanism × scheduler, driven to the saturation knee.
//!
//! Runs [`figaro_sim::experiments::serving_sweep`] at the bench scale
//! (Poisson arrivals from mean gap 256 down to 8 on a four-core `mcf` /
//! one-channel shape), prints the grid, and exports:
//!
//! * `BENCH_serving.csv` — the raw grid (offered load, achieved DRAM
//!   read throughput, mean/p50/p99/p999 read latency per point);
//! * `BENCH_serving.json` — the same points as structured records plus a
//!   per-load-point tail analysis: for each scheduler and load, whether
//!   the Base-vs-FIGCache *p99* ordering matches their *mean-latency*
//!   ordering (the tail-at-scale claim is that it need not).
//!
//! ```bash
//! cargo bench --bench serving_sweep
//! ```

use std::fmt::Write as _;

use figaro_sim::experiments::{serving_loads, serving_scheds, serving_sweep};

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let runner = figaro_bench::bench_runner("serving_sweep");

    let fig = figaro_bench::timed("serving_sweep", || serving_sweep(&runner));
    println!("{fig}");
    let csv_path = figaro_bench::artifact_path("BENCH_serving.csv");
    fig.write_csv(&csv_path).expect("write BENCH_serving.csv");
    println!("wrote {}", csv_path.display());

    // Rows come out in (mechanism, scheduler, load) nesting order — the
    // same loops `serving_sweep_with` uses to build them.
    let loads = serving_loads();
    let scheds = serving_scheds();
    let n_loads = loads.len();
    let n_scheds = scheds.len();
    let row = |kind_idx: usize, sched_idx: usize, load_idx: usize| {
        &fig.rows[(kind_idx * n_scheds + sched_idx) * n_loads + load_idx]
    };
    assert_eq!(fig.rows.len(), 2 * n_scheds * n_loads, "sweep grid shape changed");

    let mut points = String::new();
    for (label, vals) in &fig.rows {
        let _ = write!(
            points,
            "{}    {{\"point\": \"{label}\", \"offered_ops_per_kcyc\": {:.3}, \
             \"achieved_reads_per_kcyc\": {:.3}, \"avg_lat\": {:.3}, \
             \"p50_lat\": {}, \"p99_lat\": {}, \"p999_lat\": {}}}",
            if points.is_empty() { "\n" } else { ",\n" },
            vals[0],
            vals[1],
            vals[2],
            vals[3],
            vals[4],
            vals[5],
        );
    }

    // Tail analysis: per (scheduler, load), does p99 order Base vs
    // FIGCache-Fast the same way the mean does?
    println!("--- Base vs FIGCache-Fast: mean ordering vs p99 ordering ---");
    let mut analysis = String::new();
    for (si, sched) in scheds.iter().enumerate() {
        for (li, load) in loads.iter().enumerate() {
            let (_, base) = row(0, si, li);
            let (_, figc) = row(1, si, li);
            let (mean_b, mean_f) = (base[2], figc[2]);
            let (p99_b, p99_f) = (base[4], figc[4]);
            let mean_fig_wins = mean_f < mean_b;
            let p99_fig_wins = p99_f < p99_b;
            let inverted = mean_fig_wins != p99_fig_wins;
            println!(
                "{:<8} {:<11} mean {mean_b:>9.1} vs {mean_f:>9.1}   p99 {p99_b:>8.0} vs \
                 {p99_f:>8.0}   {}",
                sched.label(),
                load.label(),
                if inverted { "ORDERING INVERTED" } else { "same ordering" }
            );
            let _ = write!(
                analysis,
                "{}    {{\"sched\": \"{}\", \"load\": \"{}\", \"base_avg\": {mean_b:.3}, \
                 \"fig_avg\": {mean_f:.3}, \"base_p99\": {p99_b}, \"fig_p99\": {p99_f}, \
                 \"p99_inverts_mean_ordering\": {inverted}}}",
                if analysis.is_empty() { "\n" } else { ",\n" },
                sched.label(),
                load.label(),
            );
        }
    }

    let report = format!(
        "{{\n  \"bench\": \"serving_sweep\",\n  \"scale\": \"{}\",\n  \
         \"points\": [{points}\n  ],\n  \
         \"tail_ordering\": [{analysis}\n  ]\n}}\n",
        runner.scale().label(),
    );
    let path = figaro_bench::artifact_path("BENCH_serving.json");
    std::fs::write(&path, &report).expect("write BENCH_serving.json");
    println!("wrote {}", path.display());
}
