//! Figure 11: system energy breakdown normalized to Base.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 11: system energy");
    let fig = timed("fig11", || figaro_sim::experiments::fig11(&runner));
    println!("{fig}");
}
