//! Table 2: benchmark suite and measured intensity classification.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Table 2: benchmark classification");
    let fig = timed("tab2", || figaro_sim::experiments::tab2(&runner));
    println!("{fig}");
}
