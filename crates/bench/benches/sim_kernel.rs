//! `sim_kernel` — wall-clock comparison of the two simulation kernels.
//!
//! Measures three real run shapes from the evaluation suite at
//! `Scale::Tiny` under both [`Kernel::Reference`] (per-cycle clock loop)
//! and [`Kernel::Event`] (next-event time skipping):
//!
//! * `Base` on the single-core system running `zeusmp` (Fig. 7 shape);
//! * `Base` on the eight-core, four-channel system running `mcf` alone
//!   (the weighted-speedup denominator of Fig. 8 — see
//!   [`figaro_sim::Runner::alone_ipc`]);
//! * `FIGCache-Fast` on the single-core system running `zeusmp`.
//!
//! Each shape runs [`SAMPLES`] interleaved reference/event pairs (the
//! per-pair ratio cancels machine clock drift), asserts the two kernels'
//! [`RunStats`] are bit-identical, prints simulated CPU cycles per
//! wall-clock second, and records everything in `BENCH_kernel.json` at
//! the workspace root so the kernel's performance trajectory is tracked
//! across PRs.
//!
//! ```bash
//! cargo bench --bench sim_kernel
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::runner::{idle_companion_trace, Scale, IDLE_COMPANION_TARGET};
use figaro_sim::{ConfigKind, Kernel, RunStats, Runner, System, SystemConfig};
use figaro_workloads::profile_by_name;

const SAMPLES: usize = 5;

/// One measured run shape. Workloads are memory-intensive (paper
/// Table 2): simulated time is dominated by cores blocked on DRAM — the
/// regime FIGARO targets and the event kernel accelerates.
#[derive(Clone, Copy)]
struct Shape {
    config: &'static str,
    workload: &'static str,
    kind_is_figcache: bool,
    /// Eight-core alone-IPC shape (one app + seven idle cores) instead of
    /// the single-core system.
    alone8: bool,
}

impl Shape {
    fn label(&self) -> String {
        format!("{}/{}", self.config, self.workload)
    }

    fn kind(&self) -> ConfigKind {
        if self.kind_is_figcache {
            ConfigKind::FigCacheFast
        } else {
            ConfigKind::Base
        }
    }
}

const SHAPES: [Shape; 3] = [
    Shape { config: "Base", workload: "zeusmp-1core", kind_is_figcache: false, alone8: false },
    Shape { config: "Base", workload: "mcf-alone8", kind_is_figcache: false, alone8: true },
    Shape {
        config: "FIGCache-Fast",
        workload: "zeusmp-1core",
        kind_is_figcache: true,
        alone8: false,
    },
];

/// One uncached run of `shape` under `kernel`.
fn run_once(shape: &Shape, kernel: Kernel, scale: Scale) -> (RunStats, f64) {
    let runner = Runner::uncached(scale);
    let insts = scale.target_insts();
    let app = shape.workload.split('-').next().expect("workload app prefix");
    let profile = profile_by_name(app).expect("workload profile exists");
    let (cores, mut traces, mut targets) =
        (if shape.alone8 { 8 } else { 1 }, Vec::new(), Vec::new());
    traces.push(runner.trace_for(&profile, 0));
    targets.push(insts);
    for _ in 1..cores {
        // The same idle companions `Runner::alone_ipc` builds.
        traces.push(idle_companion_trace());
        targets.push(IDLE_COMPANION_TARGET);
    }
    let cfg = SystemConfig { kernel, ..SystemConfig::paper(cores, shape.kind()) };
    let mut sys = System::new(cfg, traces, &targets);
    let t = Instant::now();
    let stats = sys.run(insts * 400);
    (stats, t.elapsed().as_secs_f64())
}

/// [`SAMPLES`] interleaved reference/event pairs; returns both final
/// stats (for the equivalence assert) and the median-ratio pair's wall
/// times. Interleaving makes each pair share the machine's momentary
/// clock/thermal state, so the median per-pair ratio is robust to the
/// frequency drift that best-of-N per kernel is not.
fn measure_pair(shape: &Shape, scale: Scale) -> (RunStats, RunStats, f64, f64) {
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(SAMPLES);
    let mut stats = None;
    for _ in 0..SAMPLES {
        let (rs, rt) = run_once(shape, Kernel::Reference, scale);
        let (es, et) = run_once(shape, Kernel::Event, scale);
        pairs.push((rt, et));
        stats = Some((rs, es));
    }
    pairs.sort_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)));
    let (rt, et) = pairs[pairs.len() / 2];
    let (rs, es) = stats.expect("SAMPLES > 0");
    (rs, es, rt, et)
}

struct Measurement {
    shape: Shape,
    kernel: Kernel,
    wall_s: f64,
    sim_cycles: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_s
    }
}

fn json_report(scale: Scale, results: &[Measurement]) -> String {
    let mut entries = String::new();
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            entries,
            "{}    {{\"config\": \"{}\", \"workload\": \"{}\", \"kernel\": \"{}\", \
             \"wall_s\": {:.6}, \"sim_cycles\": {}, \"cycles_per_sec\": {:.1}}}",
            if i == 0 { "" } else { ",\n" },
            m.shape.config,
            m.shape.workload,
            m.kernel.label(),
            m.wall_s,
            m.sim_cycles,
            m.cycles_per_sec(),
        );
    }
    let mut speedups = String::new();
    for (i, pair) in results.chunks(2).enumerate() {
        let [reference, event] = pair else { continue };
        let _ = write!(
            speedups,
            "{}\"{}\": {:.2}",
            if i == 0 { "" } else { ", " },
            reference.shape.label(),
            reference.wall_s / event.wall_s,
        );
    }
    format!(
        "{{\n  \"bench\": \"sim_kernel\",\n  \"scale\": \"{}\",\n  \
         \"results\": [\n{entries}\n  ],\n  \"event_speedup\": {{{speedups}}}\n}}\n",
        scale.label(),
    )
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    // The kernel comparison is a fixed trajectory point at Tiny;
    // FIGARO_SCALE still sizes the run for ad-hoc exploration.
    let scale = Scale::from_env_or(Scale::Tiny);
    println!(
        "--- sim_kernel (scale: {}, median of {SAMPLES} interleaved pairs) ---",
        scale.label()
    );
    let mut results = Vec::new();
    for shape in SHAPES {
        let (ref_stats, event_stats, ref_s, event_s) = measure_pair(&shape, scale);
        assert_eq!(
            ref_stats,
            event_stats,
            "kernels diverged on {} — the speedup below would be meaningless",
            shape.label()
        );
        for (kernel, wall_s) in [(Kernel::Reference, ref_s), (Kernel::Event, event_s)] {
            let m = Measurement { shape, kernel, wall_s, sim_cycles: ref_stats.cpu_cycles };
            println!(
                "{:<22} {:<10} {:>8.3} s   {:>12.0} sim cycles/s",
                shape.label(),
                kernel.label(),
                m.wall_s,
                m.cycles_per_sec(),
            );
            results.push(m);
        }
        println!("{:<22} event-kernel speedup: {:.2}x", shape.label(), ref_s / event_s);
    }
    let report = json_report(scale, &results);
    let path = figaro_bench::artifact_path("BENCH_kernel.json");
    std::fs::write(&path, &report).expect("write BENCH_kernel.json");
    println!("wrote {}", path.display());
}
