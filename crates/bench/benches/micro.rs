//! Criterion micro-benchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use figaro_core::NullEngine;
use figaro_core::{CacheEngine, FigCacheConfig, FigCacheEngine};
use figaro_dram::PhysAddr;
use figaro_dram::{BankAddr, DramChannel, DramCommand, DramConfig, SubarrayLayout};
use figaro_memctrl::{McConfig, MemoryController, Request};
use figaro_spice::RelocCircuit;
use figaro_workloads::{profile_by_name, TraceGenerator};

fn bench_dram_issue(c: &mut Criterion) {
    let cfg = DramConfig::ddr4_paper_default();
    c.bench_function("dram_act_rd_pre_cycle", |b| {
        b.iter_batched(
            || DramChannel::new(&cfg),
            |mut ch| {
                let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
                let mut now = 0;
                for row in 0..64u32 {
                    let act = DramCommand::Activate { row };
                    now = ch.earliest_issue(bank, &act, now).max(now);
                    ch.issue(bank, &act, now);
                    let rd = DramCommand::Read { col: 0, auto_pre: false };
                    now = ch.earliest_issue(bank, &rd, now).max(now);
                    ch.issue(bank, &rd, now);
                    now = ch.earliest_issue(bank, &DramCommand::Precharge, now).max(now);
                    ch.issue(bank, &DramCommand::Precharge, now);
                }
                black_box(ch.stats().reads)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_controller_tick(c: &mut Criterion) {
    let dram = DramConfig::ddr4_paper_default();
    let mc_cfg = McConfig { enable_refresh: false, ..McConfig::default() };
    c.bench_function("frfcfs_serve_32_reads", |b| {
        b.iter_batched(
            || {
                let mut mc = MemoryController::new(&dram, mc_cfg, 0, Box::new(NullEngine::new()));
                for i in 0..32u64 {
                    mc.enqueue(
                        Request {
                            id: i,
                            addr: PhysAddr(i * 8192 * 7),
                            is_write: false,
                            core: 0,
                            arrival: 0,
                        },
                        0,
                    );
                }
                mc
            },
            |mut mc| {
                let mut now = 0;
                let mut scratch = Vec::new();
                while !mc.is_idle() && now < 100_000 {
                    mc.tick(now);
                    scratch.clear();
                    mc.drain_completions_into(&mut scratch);
                    now += 1;
                }
                black_box(now)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_figcache_lookup(c: &mut Criterion) {
    let dram = DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    };
    let mut engine = FigCacheEngine::new(&dram, &FigCacheConfig::paper_fast(), 16);
    // Pre-fill some segments (left relocating; lookups still exercise the map).
    for row in 0..256u32 {
        engine.on_request(0, row, 0, false, None, 0);
    }
    c.bench_function("fts_lookup_miss_insert", |b| {
        let mut row = 1000u32;
        b.iter(|| {
            row = row.wrapping_add(17) % 30_000;
            black_box(engine.on_request(0, row, 3, false, None, 0))
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let profile = profile_by_name("mcf").unwrap();
    c.bench_function("trace_gen_1k_ops", |b| {
        let mut gen = TraceGenerator::new(&profile, 1);
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..1000 {
                sum = sum.wrapping_add(gen.next().unwrap().addr);
            }
            black_box(sum)
        });
    });
}

fn bench_spice_transient(c: &mut Criterion) {
    let circuit = RelocCircuit::paper_default();
    c.bench_function("spice_reloc_transient", |b| {
        b.iter(|| black_box(circuit.simulate(black_box(66))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dram_issue, bench_controller_tick, bench_figcache_lookup, bench_trace_generation, bench_spice_transient
);
criterion_main!(benches);
