//! Figure 7: single-core speedups of the five mechanisms over Base.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 7: single-core performance");
    let fig = timed("fig07", || figaro_sim::experiments::fig07(&runner));
    println!("{fig}");
}
