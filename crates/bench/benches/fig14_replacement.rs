//! Figure 14: in-DRAM cache replacement policies.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 14: replacement policy");
    let fig = timed("fig14", || figaro_sim::experiments::fig14(&runner));
    println!("{fig}");
}
