//! Table 1: prints the simulated system configuration.

fn main() {
    println!("{}", figaro_sim::experiments::tab1_text());
}
