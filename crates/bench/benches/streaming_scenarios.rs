//! Streaming scenario sweeps (beyond the paper's figures): the
//! channels × MSHRs × segment-size sensitivity grid and the
//! phase-switching workloads, driven end to end from streaming trace
//! sources through the scenario batch API. Results are printed as tables
//! and written as CSV next to the bench cache for post-processing.
//!
//! Knobs: `FIGARO_SCALE`, `FIGARO_FULL_SWEEPS=1` (3×3×3 grid), and
//! `FIGARO_LONG_RUN=<ops>` to append long-run streaming mixes with that
//! many memory operations per core (bounded memory at any length).

use figaro_bench::{artifact_path, bench_runner, timed};
use figaro_sim::experiments::{long_run_scenarios, phased_workloads, sensitivity_sweep};

fn main() {
    let runner = bench_runner("Streaming scenarios: sensitivity grid + phased workloads");
    let sens = timed("sensitivity", || sensitivity_sweep(&runner));
    println!("{sens}");
    sens.write_csv(artifact_path("BENCH_sensitivity.csv")).expect("write BENCH_sensitivity.csv");
    let phased = timed("phased", || phased_workloads(&runner));
    println!("{phased}");
    phased.write_csv(artifact_path("BENCH_phased.csv")).expect("write BENCH_phased.csv");
    if let Ok(ops) = std::env::var("FIGARO_LONG_RUN") {
        let ops: u64 = ops.parse().expect("FIGARO_LONG_RUN must be an op count");
        let scenarios = long_run_scenarios(ops);
        for sc in &scenarios {
            let s = timed(&sc.name, || runner.run_scenario(sc));
            println!(
                "{}: cycles {}  ipc {:?}  cache hit rate {:.3}",
                sc.name,
                s.cpu_cycles,
                s.ipc.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
                s.cache_hit_rate,
            );
        }
    }
}
