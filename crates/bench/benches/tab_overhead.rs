//! Section 8.3: hardware overhead — FIGARO's DRAM-side logic, fast
//! subarrays, reserved rows, and the FTS in the memory controller.

use figaro_energy::AreaModel;

fn main() {
    println!("--- Section 8.3: hardware overhead ---");
    let model = AreaModel::paper_default();
    let r = model.paper_report();
    println!("per-subarray additions (22 nm RTL):");
    println!(
        "  column-address MUX : {:>6.1} um^2  {:>5.1} uW",
        model.col_mux_um2, model.col_mux_uw
    );
    println!(
        "  row-address MUX    : {:>6.1} um^2  {:>5.1} uW",
        model.row_mux_um2, model.row_mux_uw
    );
    println!(
        "  row-address latch  : {:>6.1} um^2  {:>5.1} uW",
        model.row_latch_um2, model.row_latch_uw
    );
    println!();
    println!(
        "FIGARO peripheral logic vs chip : {:>6.3} %   (paper: <0.3 %)",
        r.figaro_chip_overhead * 100.0
    );
    println!("FIGARO peripheral power         : {:>6.2} mW", r.figaro_power_mw);
    println!(
        "FIGCache-Fast (2 fast subarrays): {:>6.2} %   (paper: 0.7 %)",
        r.figcache_fast_overhead * 100.0
    );
    println!(
        "LISA-VILLA (16 fast subarrays)  : {:>6.2} %   (paper: 5.6 %)",
        r.lisa_villa_overhead * 100.0
    );
    println!(
        "FIGCache-Slow (64 reserved rows): {:>6.2} %   (paper: 0.2 %)",
        r.figcache_slow_overhead * 100.0
    );
    println!();
    println!("FIGCache tag store (FTS), 16 banks x 512 entries:");
    println!("  tag width   : {} bits (paper: 19 bits incl. spare)", r.fts.tag_bits);
    println!("  entry width : {} bits (paper: 26 bits)", r.fts.entry_bits);
    println!("  storage     : {:.1} KiB (paper: 26.0 kB)", r.fts.total_kib);
    println!(
        "  area        : {:.3} mm^2 (paper: 0.496 mm^2, 1.44% of a 16 MB LLC)",
        r.fts.area_mm2
    );
    println!("  access time : {:.2} ns (paper: 0.11 ns)", r.fts.access_ns);
    println!("  power       : {:.3} mW (paper: 0.187 mW)", r.fts.power_mw);
}
