//! Section 8.1 (multithreaded): canneal / fluidanimate / radix analogues.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Multithreaded workloads");
    let fig = timed("mt", || figaro_sim::experiments::multithreaded(&runner));
    println!("{fig}");
}
