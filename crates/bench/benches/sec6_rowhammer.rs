//! Section 6: RowHammer mitigation. A double-sided-hammer access pattern
//! (alternating rows of one bank) is driven straight into the memory
//! controller; FIGCache gathers the two hot segments into one in-DRAM
//! cache row, collapsing the activate storm that hammers the victim rows
//! in the baseline.

use figaro_core::{FigCacheConfig, FigCacheEngine, NullEngine};
use figaro_dram::{DramConfig, PhysAddr, SubarrayLayout};
use figaro_memctrl::{McConfig, MemoryController, Request};

/// Drives `rounds` alternating accesses to two rows of bank 0 and returns
/// (max per-row activations in a window, total activations).
fn hammer(mut mc: MemoryController, rounds: u64) -> (u32, u64) {
    // Row stride within one bank: 128 columns x 64 B x 16 banks.
    let row_stride = 128 * 64 * 16u64;
    let mut now = 0u64;
    let mut issued = 0u64;
    let mut id = 0u64;
    let mut scratch = Vec::new();
    while issued < rounds * 2 {
        if mc.can_accept(false) {
            let aggressor = issued % 2; // rows 0 and 1 of bank 0
                                        // Walk the 16 columns of segment 0 so every access is a fresh
                                        // block (a cache-line-flush-based attacker).
            let col = (issued / 2) % 16;
            let addr = aggressor * row_stride + col * 64;
            mc.enqueue(
                Request { id, addr: PhysAddr(addr), is_write: false, core: 0, arrival: now },
                now,
            );
            id += 1;
            issued += 1;
        }
        mc.tick(now);
        scratch.clear();
        mc.drain_completions_into(&mut scratch);
        now += 1;
    }
    while !mc.is_idle() && now < 10_000_000 {
        mc.tick(now);
        scratch.clear();
        mc.drain_completions_into(&mut scratch);
        now += 1;
    }
    let mon = mc.activation_monitor().expect("monitor enabled");
    (mon.max_acts_per_window(), mon.total_acts())
}

fn main() {
    println!("--- Section 6: RowHammer pressure with and without FIGCache ---");
    let rounds = 20_000u64;
    let window = 1_000_000u64; // observation window in bus cycles
    let mc_cfg =
        McConfig { enable_refresh: false, activation_window: Some(window), ..McConfig::default() };

    let base_dram = DramConfig::ddr4_paper_default();
    let base = MemoryController::new(&base_dram, mc_cfg, 0, Box::new(NullEngine::new()));
    let (base_max, base_total) = hammer(base, rounds);

    let fig_dram = DramConfig {
        layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
        ..DramConfig::ddr4_paper_default()
    };
    let engine = FigCacheEngine::new(&fig_dram, &FigCacheConfig::paper_fast(), 16);
    let fig = MemoryController::new(&fig_dram, mc_cfg, 0, Box::new(engine));
    let (fig_max, fig_total) = hammer(fig, rounds);

    println!("alternating-row reads issued    : {}", rounds * 2);
    println!("Base     : max row ACTs/window = {base_max:>7}   total ACTs = {base_total}");
    println!("FIGCache : max row ACTs/window = {fig_max:>7}   total ACTs = {fig_total}");
    let reduction = f64::from(base_max) / f64::from(fig_max.max(1));
    println!("activation-pressure reduction   : {reduction:.1}x");
    println!(
        "note: paper Sec 6 — FIGCache caches the hammered segments in one cache row, removing the \
         repeated open/close cycling that induces RowHammer bit flips in neighbouring rows"
    );
    assert!(fig_max < base_max, "FIGCache must reduce activation pressure");
}
