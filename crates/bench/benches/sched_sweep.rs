//! `sched_sweep` — the scheduling subsystem's bench: indexed queues vs
//! the flat-scan baseline, per-policy behavior, and the policy ×
//! mechanism × workload sweep.
//!
//! Three sections:
//!
//! 1. **Indexed vs flat** — the backlog-saturation shape (8 memory-
//!    intensive cores with 16 MSHRs each contending for one channel, so
//!    the 64-entry queues run full — the regime where the event kernel
//!    used to burn its time in queue scans) runs under the event kernel
//!    with the per-bank indexed queues and with `McConfig::flat_scan`
//!    (the pre-refactor scans, kept as an honest baseline). [`SAMPLES`]
//!    interleaved pairs, median per-pair ratio, `RunStats` asserted
//!    bit-identical.
//! 2. **Policies** — one timed run per [`SchedPolicyKind`] on the same
//!    shape (policies legitimately change results; throughput and
//!    row-hit rate are reported alongside wall time).
//! 3. **Sweep** — `experiments::scheduler_sweep` at the bench scale,
//!    printed and exported to `BENCH_sched_sweep.csv`.
//!
//! Everything lands in `BENCH_sched.json` at the workspace root so the
//! subsystem's performance trajectory is tracked across PRs.
//!
//! ```bash
//! cargo bench --bench sched_sweep
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::experiments::{sched_policies, scheduler_sweep};
use figaro_sim::{ConfigKind, Kernel, RunStats, SchedPolicyKind, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

const SAMPLES: usize = 5;

/// One run of the backlog-saturation shape (event kernel): eight
/// memory-intensive cores with deep MSHRs all contending for a single
/// channel, so the 64-entry queues actually run full — the regime whose
/// per-entry scans the per-bank indexes replace.
fn run_backlog(kind: &ConfigKind, sched: SchedPolicyKind, flat_scan: bool) -> (RunStats, f64) {
    let apps = ["mcf", "com", "tigr", "mum", "lbm", "mcf", "tigr", "com"];
    let traces: Vec<Trace> = apps
        .iter()
        .enumerate()
        .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 60_000, 31 + i as u64))
        .collect();
    let mut cfg = SystemConfig { kernel: Kernel::Event, ..SystemConfig::paper(8, kind.clone()) };
    cfg.channels = 1; // every request contends for one controller
    cfg.mc.sched = sched;
    cfg.mc.flat_scan = flat_scan;
    cfg.hierarchy.mshrs_per_core = 16; // 128 outstanding misses vs 64 queue slots
    let insts = 40_000u64;
    let mut sys = System::new(cfg, traces, &[insts; 8]);
    let t = Instant::now();
    let stats = sys.run(insts * 400);
    (stats, t.elapsed().as_secs_f64())
}

/// [`SAMPLES`] interleaved flat/indexed pairs; returns the median-ratio
/// pair's wall times plus both stats for the equivalence assert.
fn measure_flat_vs_indexed(kind: &ConfigKind) -> (RunStats, RunStats, f64, f64) {
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(SAMPLES);
    let mut stats = None;
    for _ in 0..SAMPLES {
        let (fs, ft) = run_backlog(kind, SchedPolicyKind::FrFcfs, true);
        let (is, it) = run_backlog(kind, SchedPolicyKind::FrFcfs, false);
        pairs.push((ft, it));
        stats = Some((fs, is));
    }
    pairs.sort_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)));
    let (ft, it) = pairs[pairs.len() / 2];
    let (fs, is) = stats.expect("SAMPLES > 0");
    (fs, is, ft, it)
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let runner = figaro_bench::bench_runner("sched_sweep");

    // 1. Indexed queues vs flat-scan baseline.
    println!("--- indexed queues vs flat-scan baseline (backlog saturation, event kernel) ---");
    let mut flat_vs_indexed = String::new();
    for kind in [ConfigKind::Base, ConfigKind::FigCacheFast] {
        let (fs, is, ft, it) = measure_flat_vs_indexed(&kind);
        assert_eq!(fs, is, "flat and indexed scans diverged on {}", kind.label());
        let speedup = ft / it;
        println!(
            "{:<14} flat {ft:>7.3} s   indexed {it:>7.3} s   speedup {speedup:.2}x",
            kind.label()
        );
        let _ = write!(
            flat_vs_indexed,
            "{}\"{}\": {{\"flat_s\": {ft:.6}, \"indexed_s\": {it:.6}, \"speedup\": {speedup:.3}}}",
            if flat_vs_indexed.is_empty() { "" } else { ", " },
            kind.label(),
        );
    }

    // 2. Per-policy behavior on the same shape.
    println!("--- scheduling policies (backlog saturation, FIGCache-Fast) ---");
    let mut policy_entries = String::new();
    for sched in sched_policies() {
        let (stats, wall) = run_backlog(&ConfigKind::FigCacheFast, sched, false);
        let ipc: f64 = (0..8).map(|c| stats.ipc(c)).sum();
        let row_hit = stats.row_hit_rate();
        println!(
            "{:<14} {wall:>7.3} s   sum-IPC {ipc:.3}   row-hit {row_hit:.3}   cycles {}",
            sched.label(),
            stats.cpu_cycles
        );
        let _ = write!(
            policy_entries,
            "{}    {{\"policy\": \"{}\", \"wall_s\": {wall:.6}, \"sum_ipc\": {ipc:.4}, \
             \"row_hit_rate\": {row_hit:.4}, \"cpu_cycles\": {}}}",
            if policy_entries.is_empty() { "\n" } else { ",\n" },
            sched.label(),
            stats.cpu_cycles,
        );
    }

    // 3. The policy x mechanism x workload sweep (cached runner runs).
    let fig = figaro_bench::timed("scheduler_sweep", || scheduler_sweep(&runner));
    println!("{fig}");
    let csv_path = figaro_bench::artifact_path("BENCH_sched_sweep.csv");
    fig.write_csv(&csv_path).expect("write BENCH_sched_sweep.csv");
    println!("wrote {}", csv_path.display());

    let report = format!(
        "{{\n  \"bench\": \"sched_sweep\",\n  \"scale\": \"{}\",\n  \
         \"flat_vs_indexed\": {{{flat_vs_indexed}}},\n  \
         \"policies\": [{policy_entries}\n  ]\n}}\n",
        runner.scale().label(),
    );
    let path = figaro_bench::artifact_path("BENCH_sched.json");
    std::fs::write(&path, &report).expect("write BENCH_sched.json");
    println!("wrote {}", path.display());
}
