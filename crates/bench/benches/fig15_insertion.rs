//! Figure 15: row-segment insertion thresholds.

use figaro_bench::{bench_runner, timed};

fn main() {
    let runner = bench_runner("Figure 15: insertion threshold");
    let fig = timed("fig15", || figaro_sim::experiments::fig15(&runner));
    println!("{fig}");
}
