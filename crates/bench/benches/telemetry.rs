//! `telemetry` — overhead budget of the observability subsystem.
//!
//! Measures four variants of the same four-core FIGCache-Fast run in
//! interleaved rounds: telemetry off (twice — the two disabled medians
//! bound measurement noise and prove the probe sites cost nothing
//! observable), the interval series alone, and series + event trace.
//! Asserts the zero-cost-when-off contract (disabled spread under 5 %)
//! and bit-identical `RunStats` across every variant, then records the
//! medians in `BENCH_telemetry.json` and leaves the traced run's
//! Chrome trace at `BENCH_telemetry_trace.json` as a loadable sample
//! artifact (drag it into <https://ui.perfetto.dev>).
//!
//! ```bash
//! cargo bench --bench telemetry
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::runner::Scale;
use figaro_sim::{ConfigKind, RunStats, System, SystemConfig};
use figaro_telemetry::{parse_trace_spec, TelemetryConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

const SAMPLES: usize = 5;
const INTERVAL: u64 = 10_000;
/// Maximum tolerated spread between the two disabled variants.
const OFF_SPREAD_BUDGET_PCT: f64 = 5.0;

/// One uncached four-core serving-shaped run with explicit telemetry.
fn run_once(tcfg: &TelemetryConfig, insts: u64) -> (RunStats, f64) {
    let apps = ["mcf", "lbm", "libquantum", "gcc"];
    let traces: Vec<Trace> = apps
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let p = profile_by_name(n).expect("bench profile exists");
            generate_trace(&p, 8_000, 4_100 + i as u64)
        })
        .collect();
    let cfg = SystemConfig::paper(4, ConfigKind::FigCacheFast).with_channels(4);
    let mut sys = System::new(cfg, traces, &[insts; 4]);
    sys.set_telemetry(tcfg);
    let t = Instant::now();
    let stats = sys.run(insts * 400);
    (stats, t.elapsed().as_secs_f64())
}

fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let scale = Scale::from_env_or(Scale::Tiny);
    let insts = (scale.target_insts() / 4).max(20_000);
    println!(
        "--- telemetry (scale: {}, {insts} insts/core, median of {SAMPLES} interleaved rounds) ---",
        scale.label()
    );
    let trace_artifact = figaro_bench::artifact_path("BENCH_telemetry_trace.json");
    let configs: [(&str, TelemetryConfig); 4] = [
        ("off-a", TelemetryConfig::off()),
        ("off-b", TelemetryConfig::off()),
        ("series", TelemetryConfig { interval: Some(INTERVAL), trace: None }),
        (
            "series+trace",
            TelemetryConfig {
                interval: Some(INTERVAL),
                trace: Some(parse_trace_spec(&format!("{}:all", trace_artifact.display()))),
            },
        ),
    ];
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut baseline: Option<RunStats> = None;
    for _ in 0..SAMPLES {
        for (i, (name, tcfg)) in configs.iter().enumerate() {
            let (stats, wall) = run_once(tcfg, insts);
            walls[i].push(wall);
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => {
                    assert_eq!(b, &stats, "telemetry variant `{name}` perturbed RunStats");
                }
            }
        }
    }
    let stats = baseline.expect("SAMPLES > 0");
    let medians: Vec<f64> = walls.iter_mut().map(|w| median(w)).collect();
    let off = medians[0].min(medians[1]);
    let mut entries = String::new();
    for (i, (name, _)) in configs.iter().enumerate() {
        let overhead = (medians[i] / off - 1.0) * 100.0;
        println!("{name:<14} {:>8.3} s   {overhead:>+6.1} % vs off", medians[i]);
        let _ = write!(
            entries,
            "{}    {{\"variant\": \"{name}\", \"wall_s\": {:.6}, \"overhead_pct\": {overhead:.2}}}",
            if i == 0 { "" } else { ",\n" },
            medians[i],
        );
    }
    let off_spread = (medians[0].max(medians[1]) / off - 1.0) * 100.0;
    println!("disabled-path spread    {off_spread:>6.2} %  (budget {OFF_SPREAD_BUDGET_PCT} %)");
    assert!(
        off_spread < OFF_SPREAD_BUDGET_PCT,
        "the two telemetry-off variants differ by {off_spread:.2} % — the disabled probe path \
         must be free (or this host is too noisy to bench on)"
    );
    let report = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"scale\": \"{}\",\n  \"sim_cycles\": {},\n  \
         \"interval\": {INTERVAL},\n  \"off_spread_pct\": {off_spread:.2},\n  \
         \"results\": [\n{entries}\n  ]\n}}\n",
        scale.label(),
        stats.cpu_cycles,
    );
    let path = figaro_bench::artifact_path("BENCH_telemetry.json");
    std::fs::write(&path, &report).expect("write BENCH_telemetry.json");
    println!("wrote {}", path.display());
    println!("wrote {} (sample Chrome trace — load in Perfetto)", trace_artifact.display());
}
