//! `mapping_sweep` — the address-mapping & page-mapping subsystem's
//! bench: per-mapping behavior on a bank-contended shape, and the
//! mapping × page-placement × mechanism sweep.
//!
//! Two sections:
//!
//! 1. **Placements** — one timed run per (address mapping × page
//!    policy) pair on the backlog-saturation shape (8 memory-intensive
//!    cores contending for one channel), under `Base` and
//!    `FIGCache-Fast`. Placements legitimately change results, so
//!    throughput, row-hit rate and cache-hit rate are reported
//!    alongside wall time.
//! 2. **Sweep** — `experiments::mapping_sweep` at the bench scale,
//!    printed and exported to `BENCH_mapping.csv`.
//!
//! Everything lands in `BENCH_mapping.json` at the workspace root so
//! the subsystem's behavior trajectory is tracked across PRs.
//!
//! ```bash
//! cargo bench --bench mapping_sweep
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use figaro_sim::experiments::{mapping_kinds, mapping_sweep, page_policies};
use figaro_sim::{ConfigKind, Kernel, MapKind, PageMapKind, RunStats, System, SystemConfig};
use figaro_workloads::{generate_trace, profile_by_name, Trace};

/// One run of the backlog-saturation shape (event kernel) under the
/// given placement: eight memory-intensive cores with deep MSHRs all
/// contending for a single channel — the regime where bank-level
/// parallelism (a pure function of the placement) dominates.
fn run_backlog(kind: &ConfigKind, map: MapKind, page_map: PageMapKind) -> (RunStats, f64) {
    let apps = ["mcf", "com", "tigr", "mum", "lbm", "mcf", "tigr", "com"];
    let traces: Vec<Trace> = apps
        .iter()
        .enumerate()
        .map(|(i, n)| generate_trace(&profile_by_name(n).unwrap(), 60_000, 31 + i as u64))
        .collect();
    let mut cfg = SystemConfig { kernel: Kernel::Event, ..SystemConfig::paper(8, kind.clone()) }
        .with_mapping(map)
        .with_page_map(page_map);
    cfg.channels = 1; // every request contends for one controller
    cfg.hierarchy.mshrs_per_core = 16; // 128 outstanding misses vs 64 queue slots
    let insts = 40_000u64;
    let mut sys = System::new(cfg, traces, &[insts; 8]);
    let t = Instant::now();
    let stats = sys.run(insts * 400);
    (stats, t.elapsed().as_secs_f64())
}

fn main() {
    if criterion::launched_as_test() {
        return;
    }
    let runner = figaro_bench::bench_runner("mapping_sweep");

    // 1. Per-placement behavior on the bank-contended shape.
    let mut placement_entries = String::new();
    for kind in [ConfigKind::Base, ConfigKind::FigCacheFast] {
        println!("--- placements (backlog saturation, {}) ---", kind.label());
        for map in mapping_kinds() {
            for page in page_policies() {
                let (stats, wall) = run_backlog(&kind, map, page);
                let ipc: f64 = (0..8).map(|c| stats.ipc(c)).sum();
                let row_hit = stats.row_hit_rate();
                let cache_hit = stats.cache_hit_rate();
                println!(
                    "{:<10} {:<8} {wall:>7.3} s   sum-IPC {ipc:.3}   row-hit {row_hit:.3}   \
                     cache-hit {cache_hit:.3}   cycles {}",
                    map.label(),
                    page.label(),
                    stats.cpu_cycles
                );
                let _ = write!(
                    placement_entries,
                    "{}    {{\"mechanism\": \"{}\", \"map\": \"{}\", \"page\": \"{}\", \
                     \"wall_s\": {wall:.6}, \"sum_ipc\": {ipc:.4}, \
                     \"row_hit_rate\": {row_hit:.4}, \"cache_hit_rate\": {cache_hit:.4}, \
                     \"cpu_cycles\": {}}}",
                    if placement_entries.is_empty() { "\n" } else { ",\n" },
                    kind.label(),
                    map.label(),
                    page.label(),
                    stats.cpu_cycles,
                );
            }
        }
    }

    // 2. The mapping x page x mechanism sweep (cached runner runs).
    let fig = figaro_bench::timed("mapping_sweep", || mapping_sweep(&runner));
    println!("{fig}");
    let csv_path = figaro_bench::artifact_path("BENCH_mapping.csv");
    fig.write_csv(&csv_path).expect("write BENCH_mapping.csv");
    println!("wrote {}", csv_path.display());

    let report = format!(
        "{{\n  \"bench\": \"mapping_sweep\",\n  \"scale\": \"{}\",\n  \
         \"placements\": [{placement_entries}\n  ]\n}}\n",
        runner.scale().label(),
    );
    let path = figaro_bench::artifact_path("BENCH_mapping.json");
    std::fs::write(&path, &report).expect("write BENCH_mapping.json");
    println!("wrote {}", path.display());
}
