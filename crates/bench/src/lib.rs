//! # figaro-bench — the paper-reproduction benchmark harness
//!
//! Each `cargo bench` target regenerates one table or figure of the
//! paper's evaluation section and prints the measured series next to the
//! paper's reported values (see `EXPERIMENTS.md` at the workspace root
//! for the recorded comparison). Targets share the on-disk result cache
//! under `target/figaro-cache`, so figures built from the same runs
//! (7/9/10/11 and 8/9/10/11) are cheap after the first one.
//!
//! Environment knobs:
//!
//! * `FIGARO_SCALE` = `tiny` | `small` (default) | `full` — instructions
//!   per core;
//! * `FIGARO_FULL_SWEEPS=1` — run sweep figures (12–15) and the
//!   `streaming_scenarios` sensitivity grid over the full set instead of
//!   the representative subset;
//! * `FIGARO_LONG_RUN=<ops>` — append long-run streaming mixes (that
//!   many memory operations per core, bounded memory at any length) to
//!   the `streaming_scenarios` target;
//! * `FIGARO_SCHED=frfcfs|fcfs|frfcfs-cap<N>|wdrain<H>-<L>` — the
//!   memory-controller scheduling policy (non-default policies get
//!   their own result-cache keys; the `sched_sweep` target compares
//!   them explicitly).
//!
//! The `micro` target contains Criterion micro-benchmarks of simulator
//! hot paths (DRAM command issue, controller scheduling, tag-store
//! operations, trace generation).

use std::path::PathBuf;
use std::time::Instant;

use figaro_sim::runner::Scale;
use figaro_sim::Runner;

/// Workspace-root path for a bench artifact (`BENCH_*.json`/`.csv`).
/// Bench binaries run with the *package* directory as cwd, so relative
/// paths would scatter artifacts under `crates/bench/`.
///
/// # Panics
///
/// Panics if the crate is not nested two levels below the workspace root.
#[must_use]
pub fn artifact_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join(name)
}

/// Builds the shared runner and prints the standard bench header.
#[must_use]
pub fn bench_runner(name: &str) -> Runner {
    let scale = Scale::from_env();
    println!("--- {name} (scale: {}, cache: target/figaro-cache) ---", scale.label());
    Runner::new(scale)
}

/// Runs `f`, printing its wall-clock duration.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let r = f();
    println!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    r
}
