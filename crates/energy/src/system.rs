//! System-level energy: cores, caches, off-chip interconnect, DRAM —
//! the components of the paper's Fig. 11 breakdown.

use crate::dram::DramEnergyBreakdown;

/// Constant-based energy model for the non-DRAM system components
/// (the role McPAT/CACTI/Orion play in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEnergyModel {
    /// Static power per core (W) — includes its share of uncore.
    pub core_static_w: f64,
    /// Dynamic energy per retired instruction (nJ).
    pub core_dyn_nj_per_inst: f64,
    /// Dynamic energy per L1 access (nJ).
    pub l1_nj: f64,
    /// Dynamic energy per L2 access (nJ).
    pub l2_nj: f64,
    /// Dynamic energy per LLC access (nJ).
    pub llc_nj: f64,
    /// L1+L2 static power per core (W).
    pub l1l2_static_w: f64,
    /// LLC static power per megabyte (W).
    pub llc_static_w_per_mb: f64,
    /// Off-chip transfer energy per byte (nJ).
    pub offchip_nj_per_byte: f64,
    /// CPU clock (GHz), to convert cycles to seconds for static energy.
    pub cpu_ghz: f64,
}

impl SystemEnergyModel {
    /// Values representative of a 22 nm 8-core part (the paper's
    /// technology node for its McPAT/CACTI runs).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            core_static_w: 0.9,
            core_dyn_nj_per_inst: 0.20,
            l1_nj: 0.012,
            l2_nj: 0.045,
            llc_nj: 0.16,
            l1l2_static_w: 0.05,
            llc_static_w_per_mb: 0.04,
            offchip_nj_per_byte: 0.12,
            cpu_ghz: 3.2,
        }
    }
}

impl Default for SystemEnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Activity counts of one simulation, fed into the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SystemActivity {
    /// Cores in the system.
    pub cores: u32,
    /// CPU cycles the run took (wall clock of the simulation).
    pub cpu_cycles: u64,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// L1 accesses across cores.
    pub l1_accesses: u64,
    /// L2 accesses across cores.
    pub l2_accesses: u64,
    /// LLC accesses.
    pub llc_accesses: u64,
    /// Bytes moved over the off-chip bus (fills + writebacks × 64 B).
    pub offchip_bytes: u64,
    /// LLC capacity (MB), for leakage.
    pub llc_mb: f64,
    /// DRAM energy (from [`crate::DramEnergyModel::breakdown`]).
    pub dram: DramEnergyBreakdown,
}

/// Fig. 11's components, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SystemEnergyBreakdown {
    /// Core static + dynamic.
    pub cpu: f64,
    /// Private L1 + L2 (dynamic + static).
    pub l1l2: f64,
    /// Shared LLC (dynamic + static).
    pub llc: f64,
    /// Off-chip interconnect.
    pub offchip: f64,
    /// DRAM (all components).
    pub dram: f64,
}

impl SystemEnergyBreakdown {
    /// Total system energy (nJ).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.cpu + self.l1l2 + self.llc + self.offchip + self.dram
    }

    /// Component fractions `(cpu, l1l2, llc, offchip, dram)` of the total.
    #[must_use]
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let t = self.total().max(1e-12);
        (self.cpu / t, self.l1l2 / t, self.llc / t, self.offchip / t, self.dram / t)
    }
}

impl SystemEnergyModel {
    /// Computes the full-system breakdown for `activity`.
    #[must_use]
    pub fn breakdown(&self, a: &SystemActivity) -> SystemEnergyBreakdown {
        let seconds = a.cpu_cycles as f64 / (self.cpu_ghz * 1e9);
        let nj_static = |watts: f64| watts * seconds * 1e9;
        let cpu = nj_static(self.core_static_w * f64::from(a.cores))
            + a.instructions as f64 * self.core_dyn_nj_per_inst;
        let l1l2 = nj_static(self.l1l2_static_w * f64::from(a.cores))
            + a.l1_accesses as f64 * self.l1_nj
            + a.l2_accesses as f64 * self.l2_nj;
        let llc =
            nj_static(self.llc_static_w_per_mb * a.llc_mb) + a.llc_accesses as f64 * self.llc_nj;
        let offchip = a.offchip_bytes as f64 * self.offchip_nj_per_byte;
        SystemEnergyBreakdown { cpu, l1l2, llc, offchip, dram: a.dram.total() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity() -> SystemActivity {
        SystemActivity {
            cores: 8,
            cpu_cycles: 4_000_000,
            instructions: 8_000_000,
            l1_accesses: 2_000_000,
            l2_accesses: 400_000,
            llc_accesses: 200_000,
            offchip_bytes: 64 * 100_000,
            llc_mb: 16.0,
            dram: DramEnergyBreakdown {
                act_pre: 1e6,
                rd: 4e5,
                background: 8e5,
                ..Default::default()
            },
        }
    }

    #[test]
    fn total_is_sum_of_parts() {
        let b = SystemEnergyModel::paper_default().breakdown(&activity());
        let sum = b.cpu + b.l1l2 + b.llc + b.offchip + b.dram;
        assert!((b.total() - sum).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = SystemEnergyModel::paper_default().breakdown(&activity());
        let (a, c, d, e, f) = b.fractions();
        assert!((a + c + d + e + f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_dominates_but_dram_is_substantial_for_intensive_runs() {
        // Sanity of calibration: on a memory-intensive profile, DRAM should
        // be a visible share (paper Fig. 11 shows roughly 15-40%).
        let b = SystemEnergyModel::paper_default().breakdown(&activity());
        let (cpu, .., dram) = b.fractions();
        assert!(cpu > 0.2, "cpu fraction {cpu}");
        assert!(dram > 0.1 && dram < 0.7, "dram fraction {dram}");
    }

    #[test]
    fn shorter_runtime_cuts_static_energy() {
        let m = SystemEnergyModel::paper_default();
        let mut a = activity();
        let long = m.breakdown(&a);
        a.cpu_cycles /= 2;
        let short = m.breakdown(&a);
        assert!(short.cpu < long.cpu);
        assert!(short.llc < long.llc);
    }
}
