//! # figaro-energy — energy and area models for the FIGARO evaluation
//!
//! The paper's energy results (Fig. 11, Sec. 8.2) combine DRAMPower-style
//! DRAM energy with McPAT/CACTI/Orion models for cores, caches and the
//! off-chip interconnect; its hardware-overhead results (Sec. 8.3) are
//! closed-form area/power calculations. This crate provides equivalents:
//!
//! * [`dram::DramEnergyModel`] — IDD-current-based per-command energies
//!   (ACT/PRE, RD, WR, REF, `RELOC`, LISA clone hops) plus
//!   active/precharge background power, following the Micron power
//!   calculator methodology;
//! * [`system::SystemEnergyModel`] — constant-based core/L1/L2/LLC/
//!   off-chip energy, producing the Fig. 11 breakdown;
//! * [`area`] — the Section 8.3 overhead model: FIGARO's per-subarray
//!   MUXes/latches, fast-subarray area, reserved-row capacity loss, and
//!   the FTS storage/area/power in the memory controller.
//!
//! All energies are reported in nanojoules; the models aim at faithful
//! *relative* behaviour (breakdowns and ratios), not absolute silicon
//! calibration.

pub mod area;
pub mod dram;
pub mod system;

pub use area::{AreaModel, FtsCost, OverheadReport};
pub use dram::{DramEnergyBreakdown, DramEnergyModel};
pub use system::{SystemActivity, SystemEnergyBreakdown, SystemEnergyModel};
