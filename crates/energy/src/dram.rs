//! IDD-based DRAM energy, following the Micron power-calculator
//! methodology (the paper uses a modified DRAMPower, which implements the
//! same formulas).

use figaro_dram::{DramStats, TimingParams};

/// Per-command and background energy model of one rank (eight x8 chips in
/// lockstep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Chips per rank.
    pub chips: f64,
    /// Activate/precharge cycling current, one bank (mA, per chip).
    pub idd0_ma: f64,
    /// Precharge standby current (mA).
    pub idd2n_ma: f64,
    /// Active standby current (mA).
    pub idd3n_ma: f64,
    /// Read burst current (mA).
    pub idd4r_ma: f64,
    /// Write burst current (mA).
    pub idd4w_ma: f64,
    /// Refresh current (mA).
    pub idd5b_ma: f64,
    /// Bus clock period (ns).
    pub t_ck_ns: f64,
    /// tRC in cycles (row-cycle energy window).
    pub t_rc: f64,
    /// tBL in cycles.
    pub t_bl: f64,
    /// tRFC in cycles.
    pub t_rfc: f64,
    /// Fast-subarray activation energy relative to a slow one (shorter
    /// bitlines move less charge).
    pub fast_act_scale: f64,
    /// `RELOC` column-transfer energy relative to a read burst (no
    /// external I/O is driven).
    pub reloc_vs_read: f64,
    /// Energy of one LISA row-buffer-movement hop relative to an
    /// activation.
    pub lisa_hop_vs_act: f64,
}

impl DramEnergyModel {
    /// DDR4-1600 parameters consistent with
    /// [`TimingParams::ddr4_1600`].
    #[must_use]
    pub fn ddr4_1600() -> Self {
        let t = TimingParams::ddr4_1600();
        Self {
            vdd: 1.2,
            chips: 8.0,
            idd0_ma: 55.0,
            idd2n_ma: 34.0,
            idd3n_ma: 42.0,
            idd4r_ma: 140.0,
            idd4w_ma: 130.0,
            idd5b_ma: 190.0,
            t_ck_ns: t.t_ck_ps as f64 / 1000.0,
            t_rc: f64::from(t.rc),
            t_bl: f64::from(t.bl),
            t_rfc: f64::from(t.rfc),
            fast_act_scale: 0.5,
            reloc_vs_read: 0.6,
            lisa_hop_vs_act: 0.4,
        }
    }

    fn rank_nj(&self, ma: f64, cycles: f64) -> f64 {
        // mA * V * ns = pJ; /1000 -> nJ; x chips.
        ma * self.vdd * cycles * self.t_ck_ns * self.chips / 1000.0
    }

    /// Energy of one slow-region ACT+PRE pair (nJ, rank level).
    #[must_use]
    pub fn act_pre_nj(&self) -> f64 {
        self.rank_nj(self.idd0_ma - self.idd3n_ma, self.t_rc)
    }

    /// Energy of one read burst above background (nJ).
    #[must_use]
    pub fn read_nj(&self) -> f64 {
        self.rank_nj(self.idd4r_ma - self.idd3n_ma, self.t_bl)
    }

    /// Energy of one write burst above background (nJ).
    #[must_use]
    pub fn write_nj(&self) -> f64 {
        self.rank_nj(self.idd4w_ma - self.idd3n_ma, self.t_bl)
    }

    /// Energy of one all-bank refresh above background (nJ).
    #[must_use]
    pub fn refresh_nj(&self) -> f64 {
        self.rank_nj(self.idd5b_ma - self.idd2n_ma, self.t_rfc)
    }

    /// Energy of one `RELOC` command (nJ): a column transfer through the
    /// GRB without driving the external bus.
    #[must_use]
    pub fn reloc_nj(&self) -> f64 {
        self.read_nj() * self.reloc_vs_read
    }

    /// Full energy of relocating one cache block into a *closed* bank
    /// (two activations, one `RELOC`, one precharge) — the quantity the
    /// paper estimates at 0.03 µJ (Sec. 4.2).
    #[must_use]
    pub fn one_block_relocation_nj(&self) -> f64 {
        2.0 * self.act_pre_nj() + self.reloc_nj()
    }

    /// Computes the breakdown for the given command counts over
    /// `total_cycles` bus cycles on `channels` channels.
    #[must_use]
    pub fn breakdown(
        &self,
        stats: &DramStats,
        total_cycles: u64,
        channels: u64,
    ) -> DramEnergyBreakdown {
        let act_slow = stats.activates + stats.merges;
        let act_fast = stats.activates_fast + stats.merges_fast;
        let act_pre = act_slow as f64 * self.act_pre_nj()
            + act_fast as f64 * self.act_pre_nj() * self.fast_act_scale;
        let rd = stats.reads as f64 * self.read_nj();
        let wr = stats.writes as f64 * self.write_nj();
        let refresh = stats.refreshes as f64 * self.refresh_nj();
        let reloc = stats.relocs as f64 * self.reloc_nj();
        let lisa = stats.lisa_hops as f64 * self.act_pre_nj() * self.lisa_hop_vs_act;
        // Background: a rank is in active standby while it has any open
        // bank. We track the sum of per-bank open intervals; overlapping
        // intervals are capped at the total (standard simplification).
        let total = (total_cycles * channels) as f64;
        let active_cycles = (stats.bank_open_cycles as f64).min(total);
        let precharge_cycles = total - active_cycles;
        let background = self.rank_nj(self.idd3n_ma, active_cycles)
            + self.rank_nj(self.idd2n_ma, precharge_cycles);
        DramEnergyBreakdown { act_pre, rd, wr, refresh, reloc, lisa, background }
    }
}

impl Default for DramEnergyModel {
    fn default() -> Self {
        Self::ddr4_1600()
    }
}

/// DRAM energy by component, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramEnergyBreakdown {
    /// Row cycling (ACT + PRE, including FIGARO merge activations).
    pub act_pre: f64,
    /// Read bursts.
    pub rd: f64,
    /// Write bursts.
    pub wr: f64,
    /// Refresh.
    pub refresh: f64,
    /// FIGARO `RELOC` transfers.
    pub reloc: f64,
    /// LISA clone hops.
    pub lisa: f64,
    /// Active + precharge standby.
    pub background: f64,
}

impl DramEnergyBreakdown {
    /// Total DRAM energy (nJ).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.act_pre + self.rd + self.wr + self.refresh + self.reloc + self.lisa + self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_command_energies_are_sane() {
        let m = DramEnergyModel::ddr4_1600();
        // Rank-level ACT/PRE in the nJ range.
        assert!(m.act_pre_nj() > 1.0 && m.act_pre_nj() < 50.0, "{}", m.act_pre_nj());
        assert!(m.read_nj() > 1.0 && m.read_nj() < 20.0);
        assert!(m.refresh_nj() > 100.0, "refresh is expensive: {}", m.refresh_nj());
    }

    #[test]
    fn one_block_relocation_order_matches_paper() {
        // Paper Sec 4.2: 0.03 uJ = 30 nJ. Same order of magnitude here.
        let nj = DramEnergyModel::ddr4_1600().one_block_relocation_nj();
        assert!(nj > 5.0 && nj < 60.0, "one-block relocation = {nj} nJ");
    }

    #[test]
    fn breakdown_scales_with_counts() {
        let m = DramEnergyModel::ddr4_1600();
        let mut s = DramStats { activates: 10, reads: 100, ..Default::default() };
        let b1 = m.breakdown(&s, 1000, 1);
        s.activates = 20;
        let b2 = m.breakdown(&s, 1000, 1);
        assert!((b2.act_pre - 2.0 * b1.act_pre).abs() < 1e-9);
        assert_eq!(b1.rd, b2.rd);
    }

    #[test]
    fn fast_activates_cost_less() {
        let m = DramEnergyModel::ddr4_1600();
        let slow = DramStats { activates: 100, ..Default::default() };
        let fast = DramStats { activates_fast: 100, ..Default::default() };
        let bs = m.breakdown(&slow, 1000, 1);
        let bf = m.breakdown(&fast, 1000, 1);
        assert!(bf.act_pre < bs.act_pre);
    }

    #[test]
    fn background_splits_on_open_cycles() {
        let m = DramEnergyModel::ddr4_1600();
        let idle = DramStats::default();
        let busy = DramStats { bank_open_cycles: 1000, ..Default::default() };
        let bi = m.breakdown(&idle, 1000, 1);
        let bb = m.breakdown(&busy, 1000, 1);
        assert!(bb.background > bi.background, "active standby exceeds precharge standby");
    }

    #[test]
    fn open_cycles_are_capped_at_total() {
        let m = DramEnergyModel::ddr4_1600();
        let s = DramStats { bank_open_cycles: 1_000_000, ..Default::default() };
        let b = m.breakdown(&s, 1000, 1);
        let all_active = m.rank_nj(m.idd3n_ma, 1000.0);
        assert!((b.background - all_active).abs() < 1e-9);
    }
}
