//! The Section 8.3 hardware-overhead model: FIGARO's DRAM-side
//! modifications, fast-subarray area, reserved-row capacity loss, and the
//! FIGCache tag store (FTS) in the memory controller.

/// Area/power constants at 22 nm (the paper's RTL evaluation numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Column-address MUX per subarray (µm²).
    pub col_mux_um2: f64,
    /// Column-address MUX power (µW).
    pub col_mux_uw: f64,
    /// Row-address MUX per subarray (µm²).
    pub row_mux_um2: f64,
    /// Row-address MUX power (µW).
    pub row_mux_uw: f64,
    /// 40-bit row-address latch per subarray (µm²).
    pub row_latch_um2: f64,
    /// Row-address latch power (µW).
    pub row_latch_uw: f64,
    /// Reference DRAM chip area (mm²).
    pub chip_area_mm2: f64,
    /// Fast subarray area relative to a slow subarray (cells + sense
    /// amplifiers; the paper: 22.6%).
    pub fast_subarray_ratio: f64,
    /// SRAM cost per FTS bit (µm²) — includes decoder/comparator overhead
    /// of the fully-associative lookup.
    pub fts_um2_per_bit: f64,
    /// FTS access time (ns) from CACTI.
    pub fts_access_ns: f64,
    /// FTS average power (mW) from CACTI.
    pub fts_power_mw: f64,
}

impl AreaModel {
    /// The paper's Section 8.3 constants.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            col_mux_um2: 4.7,
            col_mux_uw: 2.1,
            row_mux_um2: 18.8,
            row_mux_uw: 8.4,
            row_latch_um2: 35.2,
            row_latch_uw: 19.1,
            chip_area_mm2: 50.0,
            fast_subarray_ratio: 0.226,
            fts_um2_per_bit: 2.33,
            fts_access_ns: 0.11,
            fts_power_mw: 0.187,
        }
    }

    /// FIGARO's peripheral-logic area overhead as a fraction of the chip,
    /// for `banks` banks of `subarrays` subarrays.
    #[must_use]
    pub fn figaro_chip_overhead(&self, banks: u32, subarrays: u32) -> f64 {
        let per_subarray = self.col_mux_um2 + self.row_mux_um2 + self.row_latch_um2;
        let total_um2 = per_subarray * f64::from(banks) * f64::from(subarrays);
        total_um2 / (self.chip_area_mm2 * 1e6)
    }

    /// FIGARO's added power (mW) for the whole chip.
    #[must_use]
    pub fn figaro_power_mw(&self, banks: u32, subarrays: u32) -> f64 {
        let per_subarray = self.col_mux_uw + self.row_mux_uw + self.row_latch_uw;
        per_subarray * f64::from(banks) * f64::from(subarrays) / 1000.0
    }

    /// Chip-area overhead of adding `fast_count` fast subarrays per bank
    /// to banks of `slow_count` slow subarrays (fraction of the cell
    /// array, which dominates chip area). The paper: 0.7% for 2 per bank
    /// (FIGCache-Fast), 5.6% for 16 (LISA-VILLA).
    #[must_use]
    pub fn fast_subarray_overhead(&self, fast_count: u32, slow_count: u32) -> f64 {
        f64::from(fast_count) * self.fast_subarray_ratio / f64::from(slow_count)
    }

    /// Capacity overhead of reserving `reserved` of `total` rows per bank
    /// (FIGCache-Slow; the paper: 0.2%).
    #[must_use]
    pub fn reserved_row_overhead(&self, reserved: u32, total: u32) -> f64 {
        f64::from(reserved) / f64::from(total)
    }

    /// The FTS cost for a channel of `banks` banks with `entries` entries
    /// per bank, `segments_per_bank` cacheable segments (tag width
    /// derivation) and 5-bit benefit counters.
    #[must_use]
    pub fn fts_cost(&self, banks: u32, entries: u32, segments_per_bank: u64) -> FtsCost {
        // Tag identifies the source segment: ceil(log2(#segments)).
        let tag_bits = 64 - (segments_per_bank - 1).leading_zeros();
        let entry_bits = tag_bits + 5 + 1 + 1; // tag + benefit + valid + dirty
        let total_bits = u64::from(entry_bits) * u64::from(entries) * u64::from(banks);
        FtsCost {
            tag_bits,
            entry_bits,
            total_kib: total_bits as f64 / 8.0 / 1024.0,
            area_mm2: total_bits as f64 * self.fts_um2_per_bit / 1e6,
            access_ns: self.fts_access_ns,
            power_mw: self.fts_power_mw,
        }
    }

    /// Produces the full Section 8.3 report for the paper's configuration.
    #[must_use]
    pub fn paper_report(&self) -> OverheadReport {
        OverheadReport {
            figaro_chip_overhead: self.figaro_chip_overhead(16, 64),
            figaro_power_mw: self.figaro_power_mw(16, 64),
            figcache_fast_overhead: self.fast_subarray_overhead(2, 64),
            lisa_villa_overhead: self.fast_subarray_overhead(16, 64),
            figcache_slow_overhead: self.reserved_row_overhead(64, 32 * 1024),
            fts: self.fts_cost(16, 512, 256 * 1024),
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// FTS storage/area/power summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtsCost {
    /// Source-segment tag width (bits).
    pub tag_bits: u32,
    /// Bits per FTS entry.
    pub entry_bits: u32,
    /// Total storage per channel (KiB).
    pub total_kib: f64,
    /// Total area (mm²).
    pub area_mm2: f64,
    /// Access time (ns).
    pub access_ns: f64,
    /// Power (mW).
    pub power_mw: f64,
}

/// All Section 8.3 quantities for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// FIGARO peripheral logic vs chip area (paper: <0.3%).
    pub figaro_chip_overhead: f64,
    /// FIGARO peripheral power (mW).
    pub figaro_power_mw: f64,
    /// FIGCache-Fast fast subarrays vs chip (paper: 0.7%).
    pub figcache_fast_overhead: f64,
    /// LISA-VILLA fast subarrays vs chip (paper: 5.6%).
    pub lisa_villa_overhead: f64,
    /// FIGCache-Slow reserved rows vs capacity (paper: 0.2%).
    pub figcache_slow_overhead: f64,
    /// Tag-store cost (paper: 26.0 kB, 0.496 mm², 0.11 ns, 0.187 mW).
    pub fts: FtsCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figaro_overhead_is_below_paper_bound() {
        let r = AreaModel::paper_default().paper_report();
        assert!(r.figaro_chip_overhead < 0.003, "FIGARO overhead {}", r.figaro_chip_overhead);
    }

    #[test]
    fn fast_subarray_overheads_match_paper() {
        let r = AreaModel::paper_default().paper_report();
        assert!((r.figcache_fast_overhead - 0.007).abs() < 0.0005, "{}", r.figcache_fast_overhead);
        assert!((r.lisa_villa_overhead - 0.056).abs() < 0.002, "{}", r.lisa_villa_overhead);
        assert!((r.figcache_slow_overhead - 0.002).abs() < 0.0005);
    }

    #[test]
    fn fts_matches_paper_26kb_and_26bit_entries() {
        let r = AreaModel::paper_default().paper_report();
        assert_eq!(r.fts.tag_bits, 18); // 256K segments -> 18 bits to index
                                        // The paper states 19-bit tags and 26-bit entries (their tag spans
                                        // one extra bit); our derived entry is 25 bits, total ~25 kB.
        assert!(r.fts.entry_bits >= 25 && r.fts.entry_bits <= 26);
        assert!(r.fts.total_kib > 24.0 && r.fts.total_kib < 27.0, "{} KiB", r.fts.total_kib);
        assert!((r.fts.area_mm2 - 0.496).abs() < 0.05, "{} mm2", r.fts.area_mm2);
    }

    #[test]
    fn lisa_needs_eight_times_the_fast_area_of_figcache() {
        let m = AreaModel::paper_default();
        let ratio = m.fast_subarray_overhead(16, 64) / m.fast_subarray_overhead(2, 64);
        assert!((ratio - 8.0).abs() < 1e-9);
    }
}
