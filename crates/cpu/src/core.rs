//! The trace-driven core model: 3-wide issue/retire over a 256-entry
//! instruction window (the paper's Table 1 core).
//!
//! Modelled in the style of Ramulator's `Processor`: non-memory
//! instructions occupy window slots and retire at full width; loads hold
//! their slot until data returns (blocking retirement when they reach the
//! window head); stores are posted. The window plus per-core MSHRs bound
//! the memory-level parallelism.

use std::collections::VecDeque;

use figaro_workloads::{Trace, TraceOp, TraceSource};

use crate::hierarchy::{Access, CacheHierarchy};

/// Core width/window parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Instructions issued/retired per cycle.
    pub width: usize,
    /// Instruction-window (ROB) capacity.
    pub window: usize,
}

impl CoreParams {
    /// The paper's 3-wide, 256-entry configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { width: 3, window: 256 }
    }
}

/// End-of-run statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Memory operations sent to the hierarchy.
    pub mem_ops: u64,
    /// Loads that missed past the LLC (waited on DRAM).
    pub long_loads: u64,
    /// Cycles the core could not issue due to a full window.
    pub window_full_cycles: u64,
    /// Cycles lost to hierarchy structural stalls.
    pub stall_cycles: u64,
}

/// A trace-driven core. Drive it with [`TraceCore::tick`] once per CPU
/// cycle, and deliver load data with [`TraceCore::wake`].
///
/// The core pulls operations on demand from a [`TraceSource`] — a
/// wrapped finite [`Trace`] (see [`TraceCore::new`]), a streaming
/// generator, or a trace-file replay (see [`TraceCore::from_source`]) —
/// so run length never requires a materialized trace in memory.
#[derive(Debug)]
pub struct TraceCore {
    params: CoreParams,
    source: Box<dyn TraceSource>,
    id: usize,
    /// Non-memory instructions still to issue before the next memory op.
    nonmem_left: u32,
    /// The memory op awaiting issue (set when its leading non-memory
    /// instructions have been consumed, or on a structural stall).
    pending_mem: Option<TraceOp>,
    /// Whether the last attempt to issue `pending_mem` hit a structural
    /// stall (MSHRs full). While the hierarchy state is unchanged the
    /// retry is a fixed per-cycle counter bump, which is what lets
    /// [`TraceCore::next_event_at`] classify the core as blocked and
    /// [`TraceCore::skip_cycles`] batch the skipped cycles.
    stalled: bool,
    /// ready-at times of window entries, indexed by `seq - head_seq`.
    window: VecDeque<u64>,
    head_seq: u64,
    tail_seq: u64,
    /// Outstanding `(token, seq)` pairs for in-flight loads. A small
    /// linear vector: occupancy is bounded by the in-flight loads (MSHRs
    /// x merges), and this sits on the simulator's hottest path.
    token_seq: Vec<(u64, u64)>,
    target_insts: u64,
    finished_at: Option<u64>,
    stats: CoreStats,
    /// Operations pulled from `source` so far. Snapshots record this so a
    /// restore can fast-forward a freshly constructed (deterministic)
    /// source to the same position instead of serializing source
    /// internals.
    ops_pulled: u64,
}

/// Sentinel ready-at for loads still in flight.
const WAITING: u64 = u64::MAX;

impl TraceCore {
    /// Creates a core that will execute `target_insts` instructions from
    /// `trace` (wrapping around the trace as needed).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace or zero instruction target.
    #[must_use]
    pub fn new(id: usize, params: CoreParams, trace: Trace, target_insts: u64) -> Self {
        assert!(!trace.ops.is_empty(), "trace must be non-empty");
        Self::from_source(id, params, Box::new(trace.into_source()), target_insts)
    }

    /// Creates a core that pulls its operations from `source` — the
    /// streaming form of [`TraceCore::new`] for generators, phased
    /// workloads and trace-file replays.
    ///
    /// # Panics
    ///
    /// Panics on a zero instruction target.
    #[must_use]
    pub fn from_source(
        id: usize,
        params: CoreParams,
        source: Box<dyn TraceSource>,
        target_insts: u64,
    ) -> Self {
        assert!(target_insts > 0, "target_insts must be non-zero");
        Self {
            params,
            source,
            id,
            nonmem_left: 0,
            pending_mem: None,
            stalled: false,
            window: VecDeque::with_capacity(params.window),
            head_seq: 0,
            tail_seq: 0,
            token_seq: Vec::new(),
            target_insts,
            finished_at: None,
            stats: CoreStats::default(),
            ops_pulled: 0,
        }
    }

    /// Whether the core has retired its instruction target.
    #[inline]
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Cycle at which the core finished, if it has.
    #[must_use]
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// This core's id (its index in the hierarchy).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Delivers load data for `token` (from
    /// [`CacheHierarchy::on_completion`]) usable at cycle `ready_at`.
    pub fn wake(&mut self, token: u64, ready_at: u64) {
        if let Some(i) = self.token_seq.iter().position(|&(t, _)| t == token) {
            let (_, seq) = self.token_seq.swap_remove(i);
            if seq >= self.head_seq {
                let idx = (seq - self.head_seq) as usize;
                self.window[idx] = ready_at;
            }
        }
    }

    fn next_op(&mut self) -> TraceOp {
        self.ops_pulled += 1;
        self.source.next_op()
    }

    /// Operations pulled from the trace source so far (diagnostics and
    /// snapshot headers).
    #[must_use]
    pub fn ops_pulled(&self) -> u64 {
        self.ops_pulled
    }

    /// Current instruction-window occupancy (diagnostics).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Appends the core's live state to a snapshot word stream. The
    /// construction parameters (`params`, `id`, `target_insts`, the trace
    /// source) are *not* included: a restore rebuilds the core from the
    /// same run description and replays the source to `ops_pulled`.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.ops_pulled);
        out.push(u64::from(self.nonmem_left));
        match self.pending_mem {
            None => out.push(0),
            Some(op) => {
                out.push(1);
                out.push(u64::from(op.nonmem));
                out.push(op.addr);
                out.push(u64::from(op.is_write));
            }
        }
        out.push(u64::from(self.stalled));
        out.push(self.window.len() as u64);
        for &ready in &self.window {
            out.push(ready);
        }
        out.push(self.head_seq);
        out.push(self.tail_seq);
        out.push(self.token_seq.len() as u64);
        for &(token, seq) in &self.token_seq {
            out.push(token);
            out.push(seq);
        }
        match self.finished_at {
            None => out.push(0),
            Some(at) => {
                out.push(1);
                out.push(at);
            }
        }
        out.push(self.stats.retired);
        out.push(self.stats.mem_ops);
        out.push(self.stats.long_loads);
        out.push(self.stats.window_full_cycles);
        out.push(self.stats.stall_cycles);
    }

    /// Restores state saved by [`TraceCore::save_state`] into a freshly
    /// constructed core, fast-forwarding the (deterministic) trace source
    /// by the recorded pull count.
    ///
    /// # Panics
    ///
    /// Panics on a truncated word stream.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        let pulled = crate::take(src);
        for _ in self.ops_pulled..pulled {
            let _ = self.source.next_op();
        }
        self.ops_pulled = pulled;
        self.nonmem_left = crate::take(src) as u32;
        self.pending_mem = if crate::take(src) == 1 {
            let nonmem = crate::take(src) as u32;
            let addr = crate::take(src);
            let is_write = crate::take(src) != 0;
            Some(TraceOp { nonmem, addr, is_write })
        } else {
            None
        };
        self.stalled = crate::take(src) != 0;
        let window_len = crate::take(src) as usize;
        self.window.clear();
        for _ in 0..window_len {
            self.window.push_back(crate::take(src));
        }
        self.head_seq = crate::take(src);
        self.tail_seq = crate::take(src);
        let tokens = crate::take(src) as usize;
        self.token_seq.clear();
        for _ in 0..tokens {
            let token = crate::take(src);
            let seq = crate::take(src);
            self.token_seq.push((token, seq));
        }
        self.finished_at = if crate::take(src) == 1 { Some(crate::take(src)) } else { None };
        self.stats.retired = crate::take(src);
        self.stats.mem_ops = crate::take(src);
        self.stats.long_loads = crate::take(src);
        self.stats.window_full_cycles = crate::take(src);
        self.stats.stall_cycles = crate::take(src);
    }

    /// Functionally consumes up to `insts` instructions without modeling
    /// timing or issuing memory traffic — the fast-forward half of the
    /// sampled kernel. In-flight window entries retire first (their loads
    /// complete "during" the jump; any wake arriving later is ignored by
    /// [`TraceCore::wake`]'s `seq >= head_seq` guard), then fresh
    /// operations are pulled from the trace source so the resume point
    /// stays aligned with the stream. Returns the instructions consumed;
    /// the core finishes at `now` if it reaches its target.
    pub fn fast_forward(&mut self, insts: u64, now: u64) -> u64 {
        if self.finished_at.is_some() {
            return 0;
        }
        let budget = insts.min(self.target_insts - self.stats.retired);
        let mut done = 0u64;
        while done < budget && !self.window.is_empty() {
            self.window.pop_front();
            self.head_seq += 1;
            done += 1;
        }
        while done < budget {
            if self.nonmem_left > 0 {
                let k = u64::from(self.nonmem_left).min(budget - done);
                self.nonmem_left -= k as u32;
                done += k;
            } else if self.pending_mem.take().is_some() {
                self.stalled = false;
                self.stats.mem_ops += 1;
                done += 1;
            } else {
                let op = self.next_op();
                if op.nonmem > 0 {
                    self.nonmem_left = op.nonmem;
                    self.pending_mem = Some(op);
                } else {
                    self.stats.mem_ops += 1;
                    done += 1;
                }
            }
        }
        self.stats.retired += done;
        if self.stats.retired >= self.target_insts {
            self.finished_at = Some(now);
        }
        done
    }

    /// Cycles after `now` over which ticking is a deterministic full-width
    /// non-memory issue with no retirement — the batchable-active window
    /// replayed by [`TraceCore::skip_cycles`]. Zero when the next tick
    /// does anything else (retire, touch the hierarchy, fill the window).
    fn batchable_issue_cycles(&self, now: u64) -> u64 {
        let width = self.params.width as u64;
        // No retirement until the head entry's data is ready.
        let retire_k = match self.window.front() {
            None | Some(&WAITING) => u64::MAX,
            Some(&ready) => (ready.max(now) - now).saturating_sub(1),
        };
        let space_k = (self.params.window - self.window.len()) as u64 / width;
        let nonmem_k = u64::from(self.nonmem_left) / width;
        retire_k.min(space_k).min(nonmem_k)
    }

    /// The next CPU cycle strictly after `now` at which ticking this core
    /// could do anything beyond the batchable per-cycle effects handled by
    /// [`TraceCore::skip_cycles`] (blocked counters, or pure full-width
    /// non-memory issue), assuming no intervening [`TraceCore::wake`].
    /// `None` means the core is asleep until an external event: a wake, or
    /// a hierarchy change that unblocks a stalled access. The event-driven
    /// kernel re-evaluates after every event, so "assuming nothing
    /// external happens" is exactly the skipped-interval invariant.
    #[inline]
    #[must_use]
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        if self.finished_at.is_some() {
            return None;
        }
        let window_full = self.window.len() >= self.params.window;
        // Issue side: the core makes progress next cycle unless the window
        // is full or its pending memory op is a known structural stall.
        if !window_full && (self.nonmem_left > 0 || self.pending_mem.is_none() || !self.stalled) {
            return Some(now + 1 + self.batchable_issue_cycles(now));
        }
        // Retire side: the head entry's ready time, if data is en route.
        match self.window.front() {
            Some(&ready) if ready != WAITING => Some(ready.max(now + 1)),
            _ => None,
        }
    }

    /// Applies `cycles` skipped cycles (covering `now + 1 ..= now +
    /// cycles`) in one step — the exact per-cycle effects of
    /// [`TraceCore::tick`] over an interval in which every tick is
    /// batchable: `window_full_cycles` while the window is full,
    /// `stall_cycles` plus the hierarchy's per-retry miss counters while a
    /// memory op stalls on full MSHRs, or full-width non-memory issue into
    /// a window whose head is waiting on memory (entries are stamped with
    /// their exact issue cycles).
    ///
    /// Callers must only skip intervals with no core event (see
    /// [`TraceCore::next_event_at`]); a finished core ignores the call
    /// just as its `tick` does.
    pub fn skip_cycles(&mut self, now: u64, cycles: u64, hierarchy: &mut CacheHierarchy) {
        if cycles == 0 || self.finished_at.is_some() {
            return;
        }
        if self.window.len() >= self.params.window {
            self.stats.window_full_cycles += cycles;
        } else if self.stalled && self.nonmem_left == 0 {
            debug_assert!(self.pending_mem.is_some(), "stalled without a pending op");
            if let Some(op) = self.pending_mem {
                self.stats.stall_cycles += cycles;
                hierarchy.apply_stall_retries(self.id, op.addr, op.is_write, cycles);
            }
        } else {
            // Batched full-width non-memory issue.
            debug_assert!(
                cycles <= self.batchable_issue_cycles(now),
                "skip_cycles past the batchable-issue window"
            );
            let width = self.params.width as u64;
            for i in 1..=cycles {
                for _ in 0..self.params.width {
                    self.window.push_back(now + i);
                }
            }
            self.nonmem_left -= (width * cycles) as u32;
            self.tail_seq += width * cycles;
        }
    }

    /// Advances one CPU cycle: retires up to `width` ready instructions
    /// from the window head, then issues up to `width` new instructions,
    /// sending memory operations to `hierarchy`.
    pub fn tick(&mut self, now: u64, hierarchy: &mut CacheHierarchy) {
        if self.finished_at.is_some() {
            return;
        }
        // Retire.
        let mut retired_this_cycle = 0;
        while retired_this_cycle < self.params.width {
            match self.window.front() {
                Some(&ready) if ready <= now => {
                    self.window.pop_front();
                    self.head_seq += 1;
                    self.stats.retired += 1;
                    retired_this_cycle += 1;
                    if self.stats.retired >= self.target_insts {
                        self.finished_at = Some(now);
                        return;
                    }
                }
                _ => break,
            }
        }
        // Issue.
        let mut issued = 0;
        while issued < self.params.width {
            if self.window.len() >= self.params.window {
                self.stats.window_full_cycles += 1;
                break;
            }
            if self.nonmem_left > 0 {
                self.nonmem_left -= 1;
                self.window.push_back(now);
                self.tail_seq += 1;
                issued += 1;
                continue;
            }
            let op = match self.pending_mem.take() {
                Some(op) => op,
                None => {
                    let op = self.next_op();
                    if op.nonmem > 0 {
                        self.nonmem_left = op.nonmem;
                        self.pending_mem = Some(op);
                        continue; // issue the non-memory prefix first
                    }
                    op
                }
            };
            match hierarchy.access(self.id, op.addr, op.is_write, now) {
                Access::Hit { ready_at } => {
                    self.stalled = false;
                    self.stats.mem_ops += 1;
                    self.window.push_back(ready_at);
                    self.tail_seq += 1;
                    issued += 1;
                }
                Access::Pending { token } => {
                    self.stalled = false;
                    self.stats.mem_ops += 1;
                    self.stats.long_loads += 1;
                    self.token_seq.push((token, self.tail_seq));
                    self.window.push_back(WAITING);
                    self.tail_seq += 1;
                    issued += 1;
                }
                Access::Stall => {
                    self.pending_mem = Some(TraceOp { nonmem: 0, ..op });
                    self.stalled = true;
                    self.stats.stall_cycles += 1;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use figaro_workloads::TraceOp;

    fn tiny_trace(ops: Vec<TraceOp>) -> Trace {
        Trace { name: "test".into(), ops }
    }

    fn run(core: &mut TraceCore, h: &mut CacheHierarchy, cycles: u64) -> u64 {
        // Single-core harness with an idealized memory: completions return
        // after a fixed 50-cycle latency.
        let mut in_flight: Vec<(u64, u64)> = Vec::new(); // (req_id, due)
        for now in 0..cycles {
            core.tick(now, h);
            for r in h.take_outgoing().collect::<Vec<_>>() {
                if !r.is_write {
                    in_flight.push((r.id, now + 50));
                }
            }
            let due: Vec<u64> =
                in_flight.iter().filter(|&&(_, d)| d <= now).map(|&(id, _)| id).collect();
            in_flight.retain(|&(_, d)| d > now);
            for id in due {
                for token in h.on_completion(id) {
                    core.wake(token, now + 4);
                }
            }
            if core.finished() {
                return now;
            }
        }
        panic!("core did not finish in {cycles} cycles (retired {})", core.retired());
    }

    #[test]
    fn pure_nonmem_trace_runs_at_full_width() {
        // 299 non-memory + 1 memory instruction per op; memory always hits
        // after the first fill.
        let trace = tiny_trace(vec![TraceOp { nonmem: 299, addr: 0, is_write: false }]);
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        let mut core = TraceCore::new(0, CoreParams::paper_default(), trace, 30_000);
        let cycles = run(&mut core, &mut h, 200_000);
        let ipc = 30_000.0 / cycles as f64;
        assert!(ipc > 2.5, "IPC {ipc} should approach width 3");
    }

    #[test]
    fn dependent_long_loads_limit_ipc() {
        // Every op is a load to a new block with no non-memory work: the
        // window fills with waiting loads.
        let ops: Vec<TraceOp> =
            (0..4096).map(|i| TraceOp { nonmem: 0, addr: i * 64 * 131, is_write: false }).collect();
        let trace = tiny_trace(ops);
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        let mut core = TraceCore::new(0, CoreParams::paper_default(), trace, 3_000);
        let cycles = run(&mut core, &mut h, 400_000);
        let ipc = 3_000.0 / cycles as f64;
        assert!(ipc < 1.0, "all-miss IPC {ipc} must be low");
        assert!(core.stats().long_loads > 0);
    }

    #[test]
    fn finished_core_stops_ticking() {
        let trace = tiny_trace(vec![TraceOp { nonmem: 10, addr: 0, is_write: false }]);
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        let mut core = TraceCore::new(0, CoreParams::paper_default(), trace, 100);
        let at = run(&mut core, &mut h, 100_000);
        assert!(core.finished());
        assert_eq!(core.finished_at(), Some(at));
        let retired = core.retired();
        core.tick(at + 1, &mut h);
        assert_eq!(core.retired(), retired);
    }

    #[test]
    fn trace_wraps_around() {
        let trace = tiny_trace(vec![TraceOp { nonmem: 1, addr: 0, is_write: false }]);
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        // 2 instructions per op; ask for 1000 -> needs 500 wraps.
        let mut core = TraceCore::new(0, CoreParams::paper_default(), trace, 1000);
        run(&mut core, &mut h, 100_000);
        assert_eq!(core.retired(), 1000);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let ops = vec![TraceOp { nonmem: 2, addr: 4096, is_write: true }];
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        let mut core = TraceCore::new(0, CoreParams::paper_default(), tiny_trace(ops), 3_000);
        let cycles = run(&mut core, &mut h, 100_000);
        let ipc = 3_000.0 / cycles as f64;
        assert!(ipc > 2.0, "posted stores should keep IPC near width, got {ipc}");
    }

    #[test]
    fn next_event_at_is_never_in_the_past() {
        // A mix of hits, long loads and window pressure: at every cycle the
        // horizon must be strictly in the future (or absent), and a
        // finished core must report no events.
        let ops: Vec<TraceOp> =
            (0..512).map(|i| TraceOp { nonmem: 2, addr: i * 64 * 131, is_write: false }).collect();
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
        let mut core = TraceCore::new(0, CoreParams::paper_default(), tiny_trace(ops), 2_000);
        let mut in_flight: Vec<(u64, u64)> = Vec::new();
        for now in 0..200_000 {
            core.tick(now, &mut h);
            if let Some(t) = core.next_event_at(now) {
                assert!(t > now, "horizon {t} at cycle {now} is not in the future");
            }
            for r in h.take_outgoing().collect::<Vec<_>>() {
                if !r.is_write {
                    in_flight.push((r.id, now + 80));
                }
            }
            let due: Vec<u64> =
                in_flight.iter().filter(|&&(_, d)| d <= now).map(|&(id, _)| id).collect();
            in_flight.retain(|&(_, d)| d > now);
            for id in due {
                for token in h.on_completion(id) {
                    core.wake(token, now + 4);
                }
            }
            if core.finished() {
                assert_eq!(core.next_event_at(now), None, "finished cores have no events");
                return;
            }
        }
        panic!("core did not finish");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trace_panics() {
        let _ = TraceCore::new(0, CoreParams::paper_default(), tiny_trace(vec![]), 10);
    }

    #[test]
    fn streaming_source_matches_materialized_trace() {
        // A core pulling straight from the generator must behave exactly
        // like one running a (long enough to never wrap) materialized
        // prefix of the same generator.
        use figaro_workloads::{generate_trace, profile_by_name, TraceGenerator};
        let p = profile_by_name("mcf").unwrap();
        let insts = 5_000u64;
        let run_core = |mut core: TraceCore| {
            let mut h = CacheHierarchy::new(HierarchyConfig::paper_default(1), 1);
            let at = run(&mut core, &mut h, 2_000_000);
            (at, core.stats())
        };
        let materialized = run_core(TraceCore::new(
            0,
            CoreParams::paper_default(),
            generate_trace(&p, 50_000, 77),
            insts,
        ));
        let streamed = run_core(TraceCore::from_source(
            0,
            CoreParams::paper_default(),
            Box::new(TraceGenerator::new(&p, 77)),
            insts,
        ));
        assert_eq!(materialized, streamed);
    }
}
