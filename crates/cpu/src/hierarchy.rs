//! The three-level cache hierarchy with per-core MSHRs.
//!
//! Private L1/L2 per core, one shared LLC. Misses past the LLC allocate an
//! MSHR entry (merging same-block misses from the same core) and emit a
//! fill request toward the memory controllers; fills propagate back
//! through LLC → L2 → L1, pushing dirty victims downward (ultimately as
//! write requests to DRAM).

use std::collections::{HashMap, VecDeque};

use figaro_dram::PhysAddr;
use figaro_memctrl::Request;

use crate::cache::{CacheParams, CacheStats, SetAssocCache};

/// Hierarchy configuration (paper Table 1 defaults via
/// [`HierarchyConfig::paper_default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 (per core).
    pub l1: CacheParams,
    /// Private L2 (per core).
    pub l2: CacheParams,
    /// Shared LLC (total size; callers scale by core count).
    pub llc: CacheParams,
    /// MSHRs per core (outstanding LLC misses).
    pub mshrs_per_core: usize,
    /// Extra CPU cycles from LLC data arrival to the waiting load
    /// (fill-to-use).
    pub fill_latency: u32,
}

impl HierarchyConfig {
    /// The paper's hierarchy for `cores` cores: L1 64 kB 4-way (4 cycles),
    /// L2 256 kB 8-way (12 cycles), shared LLC 2 MB/core 16-way
    /// (38 cycles), 8 MSHRs/core.
    #[must_use]
    pub fn paper_default(cores: usize) -> Self {
        Self {
            l1: CacheParams { size_bytes: 64 << 10, ways: 4, block_bytes: 64, latency: 4 },
            l2: CacheParams { size_bytes: 256 << 10, ways: 8, block_bytes: 64, latency: 12 },
            llc: CacheParams {
                size_bytes: (2 << 20) * cores as u64,
                ways: 16,
                block_bytes: 64,
                latency: 38,
            },
            mshrs_per_core: 8,
            fill_latency: 4,
        }
    }
}

/// Outcome of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Served by some cache level; data usable at `ready_at` (CPU cycles).
    Hit {
        /// CPU cycle the data is available.
        ready_at: u64,
    },
    /// LLC miss in flight; `token` will be woken via
    /// [`CacheHierarchy::on_completion`].
    Pending {
        /// Wake-up token.
        token: u64,
    },
    /// Structural stall (MSHRs full); retry next cycle.
    Stall,
}

#[derive(Debug)]
struct MshrEntry {
    waiters: Vec<u64>,
    store: bool,
}

/// Aggregated hierarchy statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Per-core L1 counters.
    pub l1: Vec<CacheStats>,
    /// Per-core L2 counters.
    pub l2: Vec<CacheStats>,
    /// Shared LLC counters.
    pub llc: CacheStats,
    /// LLC misses (fills requested) per core — the MPKI numerator.
    pub llc_misses_per_core: Vec<u64>,
    /// Misses merged into an existing MSHR entry.
    pub mshr_merges: u64,
    /// Accesses rejected because the core's MSHRs were full.
    pub mshr_stalls: u64,
}

/// The shared cache hierarchy.
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    mshrs: Vec<HashMap<u64, MshrEntry>>,
    req_map: HashMap<u64, (usize, u64)>,
    outbox: VecDeque<Request>,
    next_req_id: u64,
    next_token: u64,
    llc_misses_per_core: Vec<u64>,
    mshr_merges: u64,
    mshr_stalls: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cores` cores.
    #[must_use]
    pub fn new(cfg: HierarchyConfig, cores: usize) -> Self {
        Self {
            cfg,
            l1: (0..cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            mshrs: (0..cores).map(|_| HashMap::new()).collect(),
            req_map: HashMap::new(),
            outbox: VecDeque::new(),
            next_req_id: 0,
            next_token: 0,
            llc_misses_per_core: vec![0; cores],
            mshr_merges: 0,
            mshr_stalls: 0,
        }
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr & !u64::from(self.cfg.l1.block_bytes - 1)
    }

    /// Demand access from `core`. Loads may return [`Access::Pending`];
    /// stores are posted, so they return [`Access::Hit`] even when the
    /// line is being fetched (the MSHR records that the eventual fill must
    /// be dirty). [`Access::Stall`] means the core must retry.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool, now: u64) -> Access {
        let block = self.block_of(addr);
        let lat1 = u64::from(self.cfg.l1.latency);
        if self.l1[core].access(block, is_write) {
            return Access::Hit { ready_at: now + lat1 };
        }
        let lat2 = lat1 + u64::from(self.cfg.l2.latency);
        if self.l2[core].access(block, false) {
            self.fill_l1(core, block, is_write);
            return Access::Hit { ready_at: now + lat2 };
        }
        let lat3 = lat2 + u64::from(self.cfg.llc.latency);
        if self.llc.access(block, false) {
            self.fill_l2(core, block);
            self.fill_l1(core, block, is_write);
            return Access::Hit { ready_at: now + lat3 };
        }
        // LLC miss → MSHR.
        if let Some(entry) = self.mshrs[core].get_mut(&block) {
            entry.store |= is_write;
            self.mshr_merges += 1;
            if is_write {
                return Access::Hit { ready_at: now + lat1 }; // posted
            }
            let token = self.next_token;
            self.next_token += 1;
            entry.waiters.push(token);
            return Access::Pending { token };
        }
        if self.mshrs[core].len() >= self.cfg.mshrs_per_core {
            self.mshr_stalls += 1;
            return Access::Stall;
        }
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.llc_misses_per_core[core] += 1;
        self.outbox.push_back(Request {
            id: req_id,
            addr: PhysAddr(block),
            is_write: false,
            core: core as u8,
            arrival: 0, // stamped by the sim when it reaches the controller
        });
        self.req_map.insert(req_id, (core, block));
        let mut entry = MshrEntry { waiters: Vec::new(), store: is_write };
        if is_write {
            self.mshrs[core].insert(block, entry);
            return Access::Hit { ready_at: now + lat1 }; // posted store
        }
        let token = self.next_token;
        self.next_token += 1;
        entry.waiters.push(token);
        self.mshrs[core].insert(block, entry);
        Access::Pending { token }
    }

    fn fill_l1(&mut self, core: usize, block: u64, dirty: bool) {
        if let Some(victim) = self.l1[core].fill(block, dirty) {
            self.fill_l2_dirty(core, victim);
        }
    }

    fn fill_l2(&mut self, core: usize, block: u64) {
        if let Some(victim) = self.l2[core].fill(block, false) {
            self.fill_llc_dirty(victim);
        }
    }

    fn fill_l2_dirty(&mut self, core: usize, block: u64) {
        if let Some(victim) = self.l2[core].fill(block, true) {
            self.fill_llc_dirty(victim);
        }
    }

    fn fill_llc_dirty(&mut self, block: u64) {
        if let Some(victim) = self.llc.fill(block, true) {
            self.push_writeback(victim);
        }
    }

    fn push_writeback(&mut self, block: u64) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.outbox.push_back(Request {
            id: req_id,
            addr: PhysAddr(block),
            is_write: true,
            core: 0,
            arrival: 0,
        });
    }

    /// A fill returned from memory: installs the block in LLC/L2/L1 and
    /// returns the load tokens to wake (the core adds
    /// [`HierarchyConfig::fill_latency`]).
    ///
    /// # Panics
    ///
    /// Panics on completions for unknown request ids (writes are posted
    /// and produce no completions).
    pub fn on_completion(&mut self, req_id: u64) -> Vec<u64> {
        let (core, block) = self.req_map.remove(&req_id).expect("completion for unknown request");
        let entry = self.mshrs[core].remove(&block).expect("MSHR entry must exist");
        if let Some(victim) = self.llc.fill(block, false) {
            self.push_writeback(victim);
        }
        self.fill_l2(core, block);
        self.fill_l1(core, block, entry.store);
        entry.waiters
    }

    /// Batched accounting for `cycles` consecutive retries of an access
    /// that stalls on full MSHRs: the exact per-cycle side effects of
    /// [`CacheHierarchy::access`] returning [`Access::Stall`] — an L1, L2
    /// and LLC miss plus one MSHR-stall count per cycle — without walking
    /// the lookup path each cycle. An event-driven system loop uses this
    /// to skip over stalled intervals while keeping every counter (and
    /// the caches' recency clocks) bit-identical to per-cycle ticking.
    ///
    /// Only valid while the hierarchy state is unchanged since the access
    /// last stalled (no fills, no other accesses by this core), which is
    /// exactly the skipped-interval invariant.
    pub fn apply_stall_retries(&mut self, core: usize, addr: u64, is_write: bool, cycles: u64) {
        let block = self.block_of(addr);
        debug_assert!(
            !self.l1[core].probe(block) && !self.l2[core].probe(block) && !self.llc.probe(block),
            "stall retries require the block to miss every level"
        );
        debug_assert!(
            !self.mshrs[core].contains_key(&block)
                && self.mshrs[core].len() >= self.cfg.mshrs_per_core,
            "stall retries require full MSHRs without a mergeable entry"
        );
        let _ = is_write; // misses count identically for loads and stores
        self.l1[core].note_misses(cycles);
        self.l2[core].note_misses(cycles);
        self.llc.note_misses(cycles);
        self.mshr_stalls += cycles;
    }

    /// The next CPU cycle strictly after `now` at which the hierarchy has
    /// work for the system loop: the bus boundary that will route pending
    /// outgoing requests toward the memory controllers. `None` when the
    /// outbox is empty (fills and wakes are driven externally via
    /// [`CacheHierarchy::on_completion`]).
    #[must_use]
    pub fn next_event_at(&self, now: u64, cpu_cycles_per_bus: u64) -> Option<u64> {
        self.has_outgoing().then(|| (now / cpu_cycles_per_bus + 1) * cpu_cycles_per_bus)
    }

    /// Drains fill/writeback requests headed to the memory controllers.
    pub fn take_outgoing(&mut self) -> std::collections::vec_deque::Drain<'_, Request> {
        self.outbox.drain(..)
    }

    /// Peeks whether any outgoing request is waiting.
    #[must_use]
    pub fn has_outgoing(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Outstanding LLC misses of `core`.
    #[must_use]
    pub fn outstanding(&self, core: usize) -> usize {
        self.mshrs[core].len()
    }

    /// Appends the hierarchy's live state (cache lines, MSHRs, in-flight
    /// request map, outbox, counters) to a snapshot word stream. Hash maps
    /// are walked in sorted-key order so the byte stream is deterministic.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        for c in &self.l1 {
            c.save_state(out);
        }
        for c in &self.l2 {
            c.save_state(out);
        }
        self.llc.save_state(out);
        for per_core in &self.mshrs {
            let mut blocks: Vec<u64> = per_core.keys().copied().collect();
            blocks.sort_unstable();
            out.push(blocks.len() as u64);
            for block in blocks {
                let entry = &per_core[&block];
                out.push(block);
                out.push(u64::from(entry.store));
                out.push(entry.waiters.len() as u64);
                out.extend_from_slice(&entry.waiters);
            }
        }
        let mut ids: Vec<u64> = self.req_map.keys().copied().collect();
        ids.sort_unstable();
        out.push(ids.len() as u64);
        for id in ids {
            let (core, block) = self.req_map[&id];
            out.push(id);
            out.push(core as u64);
            out.push(block);
        }
        out.push(self.outbox.len() as u64);
        for r in &self.outbox {
            out.push(r.id);
            out.push(r.addr.0);
            out.push(u64::from(r.is_write));
            out.push(u64::from(r.core));
            out.push(r.arrival);
        }
        out.push(self.next_req_id);
        out.push(self.next_token);
        out.push(self.llc_misses_per_core.len() as u64);
        out.extend_from_slice(&self.llc_misses_per_core);
        out.push(self.mshr_merges);
        out.push(self.mshr_stalls);
    }

    /// Restores state saved by [`CacheHierarchy::save_state`] into a
    /// hierarchy built with the same configuration and core count.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or geometry mismatch.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        for c in &mut self.l1 {
            c.load_state(src);
        }
        for c in &mut self.l2 {
            c.load_state(src);
        }
        self.llc.load_state(src);
        for per_core in &mut self.mshrs {
            per_core.clear();
            let n = crate::take(src) as usize;
            for _ in 0..n {
                let block = crate::take(src);
                let store = crate::take(src) != 0;
                let waiters = (0..crate::take(src)).map(|_| crate::take(src)).collect();
                per_core.insert(block, MshrEntry { waiters, store });
            }
        }
        self.req_map.clear();
        for _ in 0..crate::take(src) {
            let id = crate::take(src);
            let core = crate::take(src) as usize;
            let block = crate::take(src);
            self.req_map.insert(id, (core, block));
        }
        self.outbox.clear();
        for _ in 0..crate::take(src) {
            let id = crate::take(src);
            let addr = PhysAddr(crate::take(src));
            let is_write = crate::take(src) != 0;
            let core = crate::take(src) as u8;
            let arrival = crate::take(src);
            self.outbox.push_back(Request { id, addr, is_write, core, arrival });
        }
        self.next_req_id = crate::take(src);
        self.next_token = crate::take(src);
        let cores = crate::take(src) as usize;
        assert_eq!(cores, self.llc_misses_per_core.len(), "snapshot core-count mismatch");
        for v in &mut self.llc_misses_per_core {
            *v = crate::take(src);
        }
        self.mshr_merges = crate::take(src);
        self.mshr_stalls = crate::take(src);
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.iter().map(|c| c.stats).collect(),
            l2: self.l2.iter().map(|c| c.stats).collect(),
            llc: self.llc.stats,
            llc_misses_per_core: self.llc_misses_per_core.clone(),
            mshr_merges: self.mshr_merges,
            mshr_stalls: self.mshr_stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::paper_default(2), 2)
    }

    #[test]
    fn first_access_misses_to_memory_second_hits_l1() {
        let mut h = hierarchy();
        let a = h.access(0, 0x1000, false, 100);
        let Access::Pending { token } = a else { panic!("expected Pending, got {a:?}") };
        let reqs: Vec<Request> = h.take_outgoing().collect();
        assert_eq!(reqs.len(), 1);
        assert!(!reqs[0].is_write);
        let woken = h.on_completion(reqs[0].id);
        assert_eq!(woken, vec![token]);
        match h.access(0, 0x1000, false, 200) {
            Access::Hit { ready_at } => assert_eq!(ready_at, 204),
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn same_block_misses_merge_in_mshr() {
        let mut h = hierarchy();
        let Access::Pending { .. } = h.access(0, 0x2000, false, 0) else { panic!() };
        let Access::Pending { .. } = h.access(0, 0x2040 - 0x40, false, 1) else { panic!() };
        assert_eq!(h.take_outgoing().count(), 1, "one fill for two merged misses");
        assert_eq!(h.stats().mshr_merges, 1);
    }

    #[test]
    fn mshr_fills_up_then_stalls() {
        let mut h = hierarchy();
        for i in 0..8u64 {
            assert!(matches!(h.access(0, i * 0x10000, false, 0), Access::Pending { .. }));
        }
        assert_eq!(h.access(0, 99 * 0x10000, false, 0), Access::Stall);
        assert_eq!(h.stats().mshr_stalls, 1);
        // The other core has its own MSHRs.
        assert!(matches!(h.access(1, 99 * 0x10000, false, 0), Access::Pending { .. }));
    }

    #[test]
    fn apply_stall_retries_matches_per_cycle_stalling_accesses() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        for h in [&mut a, &mut b] {
            for i in 0..8u64 {
                assert!(matches!(h.access(0, i * 0x10000, false, 0), Access::Pending { .. }));
            }
        }
        let addr = 99 * 0x10000;
        for now in 0..6u64 {
            assert_eq!(a.access(0, addr, false, now), Access::Stall);
        }
        assert_eq!(b.access(0, addr, false, 0), Access::Stall);
        b.apply_stall_retries(0, addr, false, 5);
        assert_eq!(a.stats().mshr_stalls, b.stats().mshr_stalls);
        assert_eq!(a.stats().l1[0], b.stats().l1[0]);
        assert_eq!(a.stats().l2[0], b.stats().l2[0]);
        assert_eq!(a.stats().llc, b.stats().llc);
    }

    #[test]
    fn next_event_at_reflects_outbox_and_bus_alignment() {
        let mut h = hierarchy();
        assert_eq!(h.next_event_at(7, 4), None);
        let Access::Pending { .. } = h.access(0, 0x9000, false, 0) else { panic!() };
        // Pending outgoing request: routed at the next bus boundary.
        assert_eq!(h.next_event_at(7, 4), Some(8));
        assert_eq!(h.next_event_at(8, 4), Some(12), "a boundary routes only the next cycle over");
        let _ = h.take_outgoing().count();
        assert_eq!(h.next_event_at(7, 4), None);
    }

    #[test]
    fn store_miss_is_posted_and_fill_becomes_dirty() {
        let mut h = hierarchy();
        assert!(matches!(h.access(0, 0x3000, true, 0), Access::Hit { .. }));
        let reqs: Vec<Request> = h.take_outgoing().collect();
        assert_eq!(reqs.len(), 1);
        let woken = h.on_completion(reqs[0].id);
        assert!(woken.is_empty(), "no load waiters for a posted store");
        // Evict the line by filling enough conflicting blocks through L1.
        // Instead, verify via a second store hit: the line is in L1.
        assert!(
            matches!(h.access(0, 0x3000, true, 10), Access::Hit { ready_at } if ready_at == 14)
        );
    }

    #[test]
    fn l2_hit_latency_is_l1_plus_l2() {
        let mut h = hierarchy();
        let Access::Pending { .. } = h.access(0, 0x4000, false, 0) else { panic!() };
        let reqs: Vec<Request> = h.take_outgoing().collect();
        h.on_completion(reqs[0].id);
        // Evict from tiny L1 by filling 4 ways of its set + more.
        let l1_set_stride = 256 * 64u64; // 256 sets
        for i in 1..=4u64 {
            let Access::Pending { .. } = h.access(0, 0x4000 + i * l1_set_stride, false, 0) else {
                panic!()
            };
        }
        let reqs: Vec<Request> = h.take_outgoing().collect();
        for r in reqs {
            h.on_completion(r.id);
        }
        // 0x4000 fell out of L1 but sits in L2.
        match h.access(0, 0x4000, false, 1000) {
            Access::Hit { ready_at } => assert_eq!(ready_at, 1000 + 4 + 12),
            other => panic!("expected L2 hit, got {other:?}"),
        }
    }

    #[test]
    fn dirty_llc_eviction_emits_writeback() {
        // Tiny hierarchy to force LLC evictions quickly.
        let cfg = HierarchyConfig {
            l1: CacheParams { size_bytes: 256, ways: 1, block_bytes: 64, latency: 1 },
            l2: CacheParams { size_bytes: 512, ways: 1, block_bytes: 64, latency: 2 },
            llc: CacheParams { size_bytes: 1024, ways: 1, block_bytes: 64, latency: 3 },
            mshrs_per_core: 8,
            fill_latency: 1,
        };
        let mut h = CacheHierarchy::new(cfg, 1);
        // Write block A (posted store), fill it.
        assert!(matches!(h.access(0, 0, true, 0), Access::Hit { .. }));
        let reqs: Vec<Request> = h.take_outgoing().collect();
        h.on_completion(reqs[0].id);
        // Stream conflicting blocks through the same sets to push A out of
        // L1 -> L2 -> LLC -> memory.
        let mut wrote_back = false;
        for i in 1..64u64 {
            match h.access(0, i * 1024, false, i) {
                Access::Pending { .. } => {
                    let reqs: Vec<Request> = h.take_outgoing().collect();
                    for r in &reqs {
                        if r.is_write {
                            wrote_back = true;
                            assert_eq!(r.addr, PhysAddr(0));
                        }
                    }
                    for r in reqs.iter().filter(|r| !r.is_write) {
                        h.on_completion(r.id);
                    }
                    // Writebacks may also surface after fills.
                    for r in h.take_outgoing() {
                        if r.is_write && r.addr == PhysAddr(0) {
                            wrote_back = true;
                        }
                    }
                }
                Access::Hit { .. } => {}
                Access::Stall => panic!("unexpected stall"),
            }
            if wrote_back {
                break;
            }
        }
        assert!(wrote_back, "dirty block 0 must eventually be written back");
    }
}
