//! # figaro-cpu — trace-driven multi-core processor model
//!
//! The paper couples its DRAM simulator with an in-house processor
//! simulator: trace-driven cores (3-wide, 256-entry instruction window,
//! 8 MSHRs per core) behind a three-level cache hierarchy (L1 64 kB
//! 4-way, L2 256 kB 8-way private; shared 16-way LLC at 2 MB/core). This
//! crate is that substrate, built from scratch:
//!
//! * [`cache::SetAssocCache`] — set-associative, write-back,
//!   write-allocate cache with LRU replacement;
//! * [`hierarchy::CacheHierarchy`] — the private-L1/L2 + shared-LLC stack
//!   with per-core MSHRs (miss merging, structural stalls) and dirty
//!   writeback chains down to the memory controller;
//! * [`core::TraceCore`] — the instruction-window core model: non-memory
//!   instructions retire at full width, loads block retirement until
//!   their data returns, stores are posted.
//!
//! The sim crate connects [`hierarchy::CacheHierarchy::take_outgoing`] to
//! the per-channel memory controllers and routes completions back via
//! [`hierarchy::CacheHierarchy::on_completion`].

pub mod cache;
pub mod core;
pub mod hierarchy;

/// Pops the next word of a snapshot word stream (the `save_state` /
/// `load_state` convention shared with `figaro-sim`'s FGSN codec).
/// Truncation aborts loudly: resuming from a corrupt snapshot must never
/// silently produce a different run.
pub(crate) fn take(src: &mut &[u64]) -> u64 {
    assert!(!src.is_empty(), "snapshot word stream truncated");
    let w = src[0];
    *src = &src[1..];
    w
}

pub use crate::core::{CoreParams, CoreStats, TraceCore};
pub use cache::{CacheParams, CacheStats, SetAssocCache};
pub use hierarchy::{Access, CacheHierarchy, HierarchyConfig, HierarchyStats};
