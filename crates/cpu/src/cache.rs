//! A set-associative, write-back, write-allocate cache with LRU
//! replacement.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Lookup latency in CPU cycles.
    pub latency: u32,
}

impl CacheParams {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split.
    #[must_use]
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / u64::from(self.block_bytes) / u64::from(self.ways);
        assert!(sets > 0 && sets.is_power_of_two(), "cache sets must be a non-zero power of two");
        sets
    }
}

/// Hit/miss/eviction counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Evicted lines that were dirty (writebacks generated).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit rate over demand accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    params: CacheParams,
    sets: u64,
    /// `sets - 1`; sets are a power of two, so indexing is a mask/shift
    /// instead of a runtime div/mod (this is the simulator's hottest
    /// path).
    set_mask: u64,
    set_shift: u32,
    block_bits: u32,
    lines: Vec<Line>,
    clock: u64,
    /// Counters (public: the hierarchy reports them).
    pub stats: CacheStats,
}

impl SetAssocCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split.
    #[must_use]
    pub fn new(params: CacheParams) -> Self {
        let sets = params.sets();
        Self {
            params,
            sets,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            block_bits: params.block_bytes.trailing_zeros(),
            lines: vec![Line::default(); (sets * u64::from(params.ways)) as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's parameters.
    #[must_use]
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    fn index(&self, addr: u64) -> (u64, u64) {
        let block = addr >> self.block_bits;
        (block & self.set_mask, block >> self.set_shift)
    }

    fn set_lines(&mut self, set: u64) -> &mut [Line] {
        let ways = self.params.ways as usize;
        let base = set as usize * ways;
        &mut self.lines[base..base + ways]
    }

    /// Demand access; returns `true` on hit. Write hits mark the line
    /// dirty. Misses do **not** allocate (use [`SetAssocCache::fill`] when
    /// the data arrives).
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.index(addr);
        self.stats.accesses += 1;
        for line in self.set_lines(set) {
            if line.valid && line.tag == tag {
                line.lru = clock;
                if is_write {
                    line.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Records `times` demand misses without touching line state: the
    /// batched equivalent of `times` calls to [`SetAssocCache::access`]
    /// on an absent block. The internal recency clock advances exactly as
    /// it would have, so a cycle-skipping caller stays in lockstep with a
    /// per-cycle one.
    pub fn note_misses(&mut self, times: u64) {
        self.clock += times;
        self.stats.accesses += times;
        self.stats.misses += times;
    }

    /// Checks presence without updating any state.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let ways = self.params.ways as usize;
        let base = set as usize * ways;
        self.lines[base..base + ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts `addr`'s block (LRU victim). Returns the evicted block's
    /// address if the victim was dirty (the caller writes it back).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.index(addr);
        let sets = self.sets;
        let block_bits = self.block_bits;
        let lines = self.set_lines(set);
        // Already present (e.g. a racing fill): just update.
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            line.dirty |= dirty;
            return None;
        }
        let victim =
            lines.iter_mut().min_by_key(|l| if l.valid { l.lru } else { 0 }).expect("ways > 0");
        let mut writeback = None;
        let mut evicted = false;
        let mut evicted_dirty = false;
        if victim.valid {
            evicted = true;
            if victim.dirty {
                evicted_dirty = true;
                writeback = Some((victim.tag * sets + set) << block_bits);
            }
        }
        *victim = Line { tag, valid: true, dirty, lru: clock };
        if evicted {
            self.stats.evictions += 1;
        }
        if evicted_dirty {
            self.stats.dirty_evictions += 1;
        }
        writeback
    }

    /// Appends line/clock/stat state to a snapshot word stream (geometry
    /// is reconstructed from `params`, so only dynamic state crosses).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.clock);
        out.push(self.lines.len() as u64);
        for line in &self.lines {
            out.push(line.tag);
            out.push(u64::from(line.valid) | u64::from(line.dirty) << 1);
            out.push(line.lru);
        }
        out.push(self.stats.accesses);
        out.push(self.stats.hits);
        out.push(self.stats.misses);
        out.push(self.stats.evictions);
        out.push(self.stats.dirty_evictions);
    }

    /// Restores state saved by [`SetAssocCache::save_state`] into a cache
    /// built with the same parameters.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or a line-count mismatch (a snapshot
    /// from a different geometry).
    pub fn load_state(&mut self, src: &mut &[u64]) {
        self.clock = crate::take(src);
        let n = crate::take(src) as usize;
        assert_eq!(n, self.lines.len(), "snapshot cache geometry mismatch");
        for line in &mut self.lines {
            line.tag = crate::take(src);
            let flags = crate::take(src);
            line.valid = flags & 1 != 0;
            line.dirty = flags & 2 != 0;
            line.lru = crate::take(src);
        }
        self.stats.accesses = crate::take(src);
        self.stats.hits = crate::take(src);
        self.stats.misses = crate::take(src);
        self.stats.evictions = crate::take(src);
        self.stats.dirty_evictions = crate::take(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheParams { size_bytes: 1024, ways: 2, block_bytes: 64, latency: 1 })
    }

    #[test]
    fn paper_l1_geometry() {
        let c = SetAssocCache::new(CacheParams {
            size_bytes: 64 * 1024,
            ways: 4,
            block_bytes: 64,
            latency: 4,
        });
        assert_eq!(c.params().sets(), 256);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false));
        assert_eq!(c.fill(0x40, false), None);
        assert!(c.access(0x40, false));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(); // 8 sets x 2 ways
        let set_stride = 8 * 64;
        c.fill(0, false);
        c.fill(set_stride as u64, false); // same set, way 2
        c.access(0, false); // refresh line 0
        let wb = c.fill(2 * set_stride as u64, false); // evicts set_stride line
        assert_eq!(wb, None);
        assert!(c.probe(0));
        assert!(!c.probe(set_stride as u64));
        assert!(c.probe(2 * set_stride as u64));
    }

    #[test]
    fn note_misses_matches_repeated_missing_accesses() {
        let mut a = small();
        let mut b = small();
        a.fill(0x40, false);
        b.fill(0x40, false);
        for _ in 0..5 {
            assert!(!a.access(0x1000, false));
        }
        b.note_misses(5);
        assert_eq!(a.stats, b.stats);
        // Recency clocks stayed in lockstep: the next fill picks the same
        // victim stamps in both caches.
        a.access(0x40, false);
        b.access(0x40, false);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn dirty_eviction_returns_victim_address() {
        let mut c = small();
        let set_stride = 8 * 64u64;
        c.fill(0x40, false);
        c.access(0x40, true); // dirty it
        c.fill(0x40 + set_stride, false);
        let wb = c.fill(0x40 + 2 * set_stride, false);
        assert_eq!(wb, Some(0x40));
        assert_eq!(c.stats.dirty_evictions, 1);
    }

    #[test]
    fn fill_of_present_line_merges_dirty() {
        let mut c = small();
        c.fill(0x40, false);
        c.fill(0x40, true);
        let set_stride = 8 * 64u64;
        c.fill(0x40 + set_stride, false);
        let wb = c.fill(0x40 + 2 * set_stride, false);
        assert_eq!(wb, Some(0x40), "merged dirty bit must survive");
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0, false);
        let set_stride = 8 * 64u64;
        c.fill(set_stride, false);
        // Probing line 0 must not rescue it from eviction.
        assert!(c.probe(0));
        c.access(set_stride, false);
        c.fill(2 * set_stride, false);
        assert!(!c.probe(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = SetAssocCache::new(CacheParams {
            size_bytes: 192,
            ways: 1,
            block_bytes: 64,
            latency: 1,
        });
    }
}
