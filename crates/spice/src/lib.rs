//! # figaro-spice — circuit-level transient model of the RELOC path
//!
//! The paper (Section 4.2) derives the `RELOC` command latency from SPICE
//! simulations of the source local row buffer → global bitline → global
//! row buffer → destination local row buffer path, with 10⁸ Monte-Carlo
//! iterations at ±5% parameter variation, reporting a worst-case settle
//! time of **0.57 ns**, guard-banded by 43% to **1 ns**.
//!
//! This crate rebuilds that analysis as an explicit-Euler transient solver
//! over an RC + regenerative-sense-amplifier model:
//!
//! * the fully-driven source bitline charge-shares into the precharged
//!   (VDD/2) destination bitline through the global bitline resistance
//!   (the source voltage momentarily dips, as in the paper's Fig. 5);
//! * the global row buffer's high-gain amplifier drives the destination
//!   node toward the source value;
//! * once the destination sense amplifier sees a large-enough
//!   differential, its cross-coupled pair regenerates the level to VDD.
//!
//! [`montecarlo::run_monte_carlo`] perturbs every circuit parameter by a
//! uniform ±5% and reports the worst-case latency;
//! [`circuit::distance_sweep`] shows the *weak* dependence of latency on
//! subarray distance (metal global bitlines) versus the linear growth of
//! hop-based designs — FIGARO's key structural advantage.

pub mod circuit;
pub mod montecarlo;

pub use circuit::{distance_sweep, RelocCircuit, Transient};
pub use montecarlo::{run_monte_carlo, MonteCarloResult};
