//! The RC + sense-amplifier transient model of one `RELOC` transfer.

/// Circuit parameters of the RELOC path (22 nm-class values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocCircuit {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Local bitline capacitance (fF) — source and destination.
    pub c_local_ff: f64,
    /// Global bitline capacitance (fF), at the full bank length.
    pub c_global_ff: f64,
    /// Global bitline resistance per subarray slot (Ω) — metal, so small.
    pub r_global_per_slot: f64,
    /// Fixed resistance of the GRB drive path (Ω).
    pub r_drive: f64,
    /// GRB amplifier transconductance-equivalent drive (mA/V): how hard
    /// the high-gain amplifier pulls the destination toward the source
    /// value once it senses the perturbation.
    pub grb_drive_ma_per_v: f64,
    /// Destination sense-amp regeneration time constant (ps) once its
    /// differential exceeds `sense_threshold_v`.
    pub regen_tau_ps: f64,
    /// Differential (V) at which the destination latch starts
    /// regenerating.
    pub sense_threshold_v: f64,
    /// Settled fraction of VDD that counts as "latched".
    pub settle_fraction: f64,
    /// Number of subarray slots along the bank (global bitline length).
    pub bank_slots: u32,
}

impl RelocCircuit {
    /// Default parameters, calibrated so the worst case (maximum
    /// distance, worst Monte-Carlo corner) lands at the paper's 0.57 ns.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vdd: 1.2,
            c_local_ff: 85.0,
            c_global_ff: 45.0,
            r_global_per_slot: 50.0,
            r_drive: 10_000.0,
            grb_drive_ma_per_v: 0.06,
            regen_tau_ps: 90.0,
            sense_threshold_v: 0.15,
            settle_fraction: 0.95,
            bank_slots: 66, // 64 regular + 2 fast subarrays
        }
    }

    /// Simulates one transfer of a logic `1` across `distance_slots`
    /// subarray slots. Euler integration at 0.1 ps.
    ///
    /// # Panics
    ///
    /// Panics if the destination fails to settle within 10 ns — a
    /// mis-calibrated circuit, which callers should treat as a bug.
    #[must_use]
    pub fn simulate(&self, distance_slots: u32) -> Transient {
        let dt = 0.1e-12; // s
        let vdd = self.vdd;
        let c_src = self.c_local_ff * 1e-15;
        let c_dst = (self.c_local_ff + self.c_global_ff) * 1e-15;
        let r_path = self.r_drive + self.r_global_per_slot * f64::from(distance_slots.max(1));
        let g_drive = self.grb_drive_ma_per_v * 1e-3;
        let half = vdd / 2.0;

        let mut v_src = vdd; // fully restored source bitline
        let mut v_dst = half; // precharged destination
        let mut min_src = v_src;
        let mut t = 0.0f64;
        let target = vdd * self.settle_fraction;
        while v_dst < target {
            // Charge sharing through the global bitline path.
            let i_share = (v_src - v_dst) / r_path;
            // GRB high-gain assist: pushes dst toward VDD proportionally to
            // the sensed perturbation (bounded drive).
            let sensed = (v_dst - half).max(0.0);
            let i_grb = g_drive * (vdd - v_dst) * if sensed > 0.0 { 1.0 } else { 0.5 };
            // Destination SA regeneration past the threshold.
            let regen = if sensed > self.sense_threshold_v {
                (v_dst - half) / (self.regen_tau_ps * 1e-12)
            } else {
                0.0
            };
            let dv_dst = (i_share + i_grb) / c_dst + regen;
            // Source dips while sharing charge, then its SA restores it.
            let restore = (vdd - v_src) / (self.regen_tau_ps * 4.0 * 1e-12);
            let dv_src = -i_share / c_src + restore;
            v_dst = (v_dst + dv_dst * dt).min(vdd);
            v_src = (v_src + dv_src * dt).min(vdd);
            min_src = min_src.min(v_src);
            t += dt;
            assert!(t < 10e-9, "RELOC transient failed to settle (mis-calibrated circuit)");
        }
        Transient { latency_ns: t * 1e9, src_dip_v: vdd - min_src, final_dst_v: v_dst }
    }
}

impl Default for RelocCircuit {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of one transient simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transient {
    /// Time for the destination LRB to latch the value (ns).
    pub latency_ns: f64,
    /// Momentary source-bitline dip during charge sharing (V),
    /// cf. the paper's Fig. 5.
    pub src_dip_v: f64,
    /// Final destination voltage (V).
    pub final_dst_v: f64,
}

/// Latency versus subarray distance for FIGARO (global bitline) and for a
/// hop-based substrate (LISA-style, `hop_ns` per intermediate subarray).
/// Returns `(distance, figaro_ns, hop_based_ns)` rows.
#[must_use]
pub fn distance_sweep(circuit: &RelocCircuit, hop_ns: f64) -> Vec<(u32, f64, f64)> {
    (1..=circuit.bank_slots)
        .step_by(8)
        .map(|d| {
            let t = circuit.simulate(d);
            (d, t.latency_ns, hop_ns * f64::from(d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_worst_case_is_near_half_nanosecond() {
        let c = RelocCircuit::paper_default();
        let t = c.simulate(c.bank_slots);
        assert!(
            t.latency_ns > 0.3 && t.latency_ns < 0.6,
            "nominal worst-distance latency = {} ns",
            t.latency_ns
        );
    }

    #[test]
    fn destination_settles_to_vdd() {
        let c = RelocCircuit::paper_default();
        let t = c.simulate(10);
        assert!(t.final_dst_v >= c.vdd * c.settle_fraction);
    }

    #[test]
    fn source_dips_but_does_not_collapse() {
        let c = RelocCircuit::paper_default();
        let t = c.simulate(c.bank_slots);
        assert!(t.src_dip_v > 0.0, "charge sharing must dip the source");
        assert!(t.src_dip_v < c.vdd / 2.0, "source must stay above the sensing point");
    }

    #[test]
    fn distance_dependence_is_weak() {
        // The paper's argument: global bitlines are metal, so RELOC latency
        // barely grows with distance (unlike hop-based relocation).
        let c = RelocCircuit::paper_default();
        let near = c.simulate(1).latency_ns;
        let far = c.simulate(c.bank_slots).latency_ns;
        assert!(far >= near);
        assert!(far / near < 1.6, "distance sensitivity too strong: {near} -> {far}");
    }

    #[test]
    fn sweep_shows_figaro_flat_and_hops_linear() {
        let c = RelocCircuit::paper_default();
        let rows = distance_sweep(&c, 5.0);
        let (d0, f0, h0) = rows[0];
        let (d1, f1, h1) = *rows.last().unwrap();
        assert!(d1 > d0);
        assert!(h1 / h0 > 6.0, "hop-based latency grows linearly");
        assert!(f1 / f0 < 1.6, "FIGARO latency stays near-flat");
    }

    #[test]
    fn longer_bitline_raises_latency() {
        let base = RelocCircuit::paper_default();
        let heavy = RelocCircuit { c_global_ff: base.c_global_ff * 2.0, ..base };
        assert!(heavy.simulate(32).latency_ns > base.simulate(32).latency_ns);
    }
}
