//! Monte-Carlo parameter variation around the nominal RELOC circuit.
//!
//! The paper runs 10⁸ SPICE iterations with ±5% on every component to
//! cover process variation and worst-case cells, takes the worst-case
//! latency (0.57 ns), and adds a 43% guardband to set the `RELOC` timing
//! parameter at 1 ns. The same procedure runs here (with a configurable
//! iteration count — the model is analytic, so far fewer samples reach the
//! tail).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::RelocCircuit;

/// Outcome of a Monte-Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Iterations run.
    pub iterations: u32,
    /// Worst-case latency over all iterations (ns).
    pub worst_ns: f64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// All iterations latched the correct value.
    pub all_correct: bool,
    /// Worst latency plus the paper's 43% guardband (ns).
    pub guardbanded_ns: f64,
}

/// Runs `iterations` samples at worst-case distance, perturbing every
/// parameter uniformly by ±`variation` (the paper: 0.05).
///
/// # Panics
///
/// Panics if `iterations` is zero or `variation` is not in `[0, 0.5)`.
#[must_use]
pub fn run_monte_carlo(
    nominal: &RelocCircuit,
    iterations: u32,
    variation: f64,
    seed: u64,
) -> MonteCarloResult {
    assert!(iterations > 0, "need at least one iteration");
    assert!((0.0..0.5).contains(&variation), "variation out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut all_correct = true;
    for _ in 0..iterations {
        let mut p = |v: f64| v * (1.0 + rng.gen_range(-variation..=variation));
        let c = RelocCircuit {
            vdd: p(nominal.vdd),
            c_local_ff: p(nominal.c_local_ff),
            c_global_ff: p(nominal.c_global_ff),
            r_global_per_slot: p(nominal.r_global_per_slot),
            r_drive: p(nominal.r_drive),
            grb_drive_ma_per_v: p(nominal.grb_drive_ma_per_v),
            regen_tau_ps: p(nominal.regen_tau_ps),
            sense_threshold_v: p(nominal.sense_threshold_v),
            settle_fraction: nominal.settle_fraction,
            bank_slots: nominal.bank_slots,
        };
        let t = c.simulate(c.bank_slots);
        worst = worst.max(t.latency_ns);
        sum += t.latency_ns;
        all_correct &= t.final_dst_v >= c.vdd * c.settle_fraction;
    }
    MonteCarloResult {
        iterations,
        worst_ns: worst,
        mean_ns: sum / f64::from(iterations),
        all_correct,
        guardbanded_ns: worst * 1.43,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_lands_near_paper_value() {
        let r = run_monte_carlo(&RelocCircuit::paper_default(), 400, 0.05, 1);
        assert!(r.all_correct);
        assert!(
            r.worst_ns > 0.4 && r.worst_ns < 0.7,
            "worst-case RELOC latency {} ns (paper: 0.57 ns)",
            r.worst_ns
        );
        assert!(r.guardbanded_ns < 1.25, "guardbanded {} ns (paper: 1 ns)", r.guardbanded_ns);
    }

    #[test]
    fn worst_exceeds_mean() {
        let r = run_monte_carlo(&RelocCircuit::paper_default(), 200, 0.05, 2);
        assert!(r.worst_ns >= r.mean_ns);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_monte_carlo(&RelocCircuit::paper_default(), 50, 0.05, 3);
        let b = run_monte_carlo(&RelocCircuit::paper_default(), 50, 0.05, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_variation_collapses_to_nominal() {
        let nominal = RelocCircuit::paper_default();
        let r = run_monte_carlo(&nominal, 5, 0.0, 4);
        let t = nominal.simulate(nominal.bank_slots);
        assert!((r.worst_ns - t.latency_ns).abs() < 1e-9);
        assert!((r.mean_ns - t.latency_ns).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panic() {
        let _ = run_monte_carlo(&RelocCircuit::paper_default(), 0, 0.05, 5);
    }
}
