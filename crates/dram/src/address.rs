//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The paper interleaves addresses as `{row, rank, bankgroup, bank,
//! channel, column}` (most-significant field first), at cache-block
//! granularity: consecutive blocks walk the columns of one row first,
//! then spread across channels, banks, bank groups and ranks, and only
//! then move to the next row.

use crate::geometry::DramGeometry;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address of the cache block containing this address.
    #[must_use]
    pub fn block_base(self, block_bytes: u32) -> PhysAddr {
        PhysAddr(self.0 & !u64::from(block_bytes - 1))
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// Fully decoded DRAM coordinates of one cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bankgroup: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Block-granularity column within the row.
    pub col: u32,
}

impl DramLocation {
    /// Flat bank index within the channel (`rank`, `bankgroup`, `bank`).
    #[must_use]
    pub fn flat_bank(&self, geometry: &DramGeometry) -> u32 {
        (self.rank * geometry.bankgroups + self.bankgroup) * geometry.banks_per_group + self.bank
    }
}

/// Bit-slicing address map implementing the paper's
/// `{row, rank, bankgroup, bank, channel, column}` interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    geometry: DramGeometry,
    block_bits: u32,
    col_bits: u32,
    channel_bits: u32,
    bank_bits: u32,
    bankgroup_bits: u32,
    rank_bits: u32,
}

impl AddressMapping {
    /// Builds the mapping for `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate (all field counts must be
    /// powers of two).
    #[must_use]
    pub fn new(geometry: DramGeometry) -> Self {
        geometry.validate().expect("geometry must validate");
        Self {
            geometry,
            block_bits: geometry.block_bytes.trailing_zeros(),
            col_bits: geometry.blocks_per_row().trailing_zeros(),
            channel_bits: geometry.channels.trailing_zeros(),
            bank_bits: geometry.banks_per_group.trailing_zeros(),
            bankgroup_bits: geometry.bankgroups.trailing_zeros(),
            rank_bits: geometry.ranks.trailing_zeros(),
        }
    }

    /// The geometry this mapping was built for.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Decodes a physical address into DRAM coordinates.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DramLocation {
        let mut bits = addr.0 >> self.block_bits;
        let mut take = |n: u32| -> u32 {
            let v = (bits & ((1u64 << n) - 1)) as u32;
            bits >>= n;
            v
        };
        let col = take(self.col_bits);
        let channel = take(self.channel_bits);
        let bank = take(self.bank_bits);
        let bankgroup = take(self.bankgroup_bits);
        let rank = take(self.rank_bits);
        let row = bits as u32;
        DramLocation { channel, rank, bankgroup, bank, row, col }
    }

    /// Encodes DRAM coordinates back into the base physical address of the
    /// block (inverse of [`AddressMapping::decode`]).
    #[must_use]
    pub fn encode(&self, loc: DramLocation) -> PhysAddr {
        let mut bits = u64::from(loc.row);
        let mut put = |v: u32, n: u32| {
            bits = (bits << n) | u64::from(v);
        };
        put(loc.rank, self.rank_bits);
        put(loc.bankgroup, self.bankgroup_bits);
        put(loc.bank, self.bank_bits);
        put(loc.channel, self.channel_bits);
        put(loc.col, self.col_bits);
        PhysAddr(bits << self.block_bits)
    }

    /// Number of row-index bits available for `rows` addressable rows per
    /// bank (callers cap workload addresses with this).
    #[must_use]
    pub fn addr_space_bytes(&self, rows_per_bank: u32) -> u64 {
        u64::from(rows_per_bank)
            * u64::from(self.geometry.channels)
            * u64::from(self.geometry.ranks)
            * u64::from(self.geometry.bankgroups)
            * u64::from(self.geometry.banks_per_group)
            * u64::from(self.geometry.row_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMapping {
        AddressMapping::new(DramGeometry::paper_default())
    }

    #[test]
    fn consecutive_blocks_walk_columns_first() {
        let m = map();
        let a = m.decode(PhysAddr(0));
        let b = m.decode(PhysAddr(64));
        assert_eq!(a.col, 0);
        assert_eq!(b.col, 1);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn after_row_of_columns_comes_the_bank_field() {
        let m = map();
        // 128 blocks per row, 1 channel -> next field is bank.
        let a = m.decode(PhysAddr(128 * 64));
        assert_eq!(a.col, 0);
        assert_eq!(a.bank, 1);
        assert_eq!(a.row, 0);
    }

    #[test]
    fn row_is_most_significant() {
        let m = map();
        let g = DramGeometry::paper_default();
        let blocks_per_row_all_banks = u64::from(g.blocks_per_row())
            * u64::from(g.banks_per_channel())
            * u64::from(g.channels);
        let a = m.decode(PhysAddr(blocks_per_row_all_banks * 64));
        assert_eq!(a.row, 1);
        assert_eq!(a.col, 0);
        assert_eq!(a.bank, 0);
        assert_eq!(a.bankgroup, 0);
    }

    #[test]
    fn four_channel_mapping_spreads_blocks_across_channels() {
        let m = AddressMapping::new(DramGeometry::paper_default().with_channels(4));
        // Channel bits sit right above the column bits.
        let same_row_next_channel = m.decode(PhysAddr(128 * 64));
        assert_eq!(same_row_next_channel.channel, 1);
        assert_eq!(same_row_next_channel.col, 0);
    }

    #[test]
    fn encode_decode_round_trip_spot_checks() {
        let m = map();
        for addr in [0u64, 64, 8128, 1 << 20, (4u64 << 30) - 64] {
            let loc = m.decode(PhysAddr(addr));
            assert_eq!(m.encode(loc), PhysAddr(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn flat_bank_covers_all_banks() {
        let g = DramGeometry::paper_default();
        let m = AddressMapping::new(g);
        let mut seen = std::collections::HashSet::new();
        for block in 0..(128 * 16) {
            let loc = m.decode(PhysAddr(block * 64));
            seen.insert(loc.flat_bank(&g));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn addr_space_matches_capacity() {
        let m = map();
        assert_eq!(m.addr_space_bytes(32768), 4 << 30);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip_any_block_aligned_address(block in 0u64..(4u64 << 30) / 64) {
            let m = AddressMapping::new(DramGeometry::paper_default());
            let addr = PhysAddr(block * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr);
        }

        #[test]
        fn round_trip_four_channels(block in 0u64..(16u64 << 30) / 64) {
            let m = AddressMapping::new(DramGeometry::paper_default().with_channels(4));
            let addr = PhysAddr(block * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr);
        }

        #[test]
        fn decoded_fields_in_range(block in 0u64..(4u64 << 30) / 64) {
            let g = DramGeometry::paper_default();
            let m = AddressMapping::new(g);
            let loc = m.decode(PhysAddr(block * 64));
            prop_assert!(loc.col < g.blocks_per_row());
            prop_assert!(loc.bank < g.banks_per_group);
            prop_assert!(loc.bankgroup < g.bankgroups);
            prop_assert!(loc.rank < g.ranks);
            prop_assert!(loc.channel < g.channels);
        }

        /// decode∘encode = id for *any* power-of-two geometry, not just
        /// the paper's: channels 1/2/4, ranks 1/2, bank groups 2/4, banks
        /// per group 2/4, and both 4 kB and 8 kB rows.
        #[test]
        fn round_trip_across_geometries(
            shape in (0u32..3, 0u32..2, 1u32..3, 1u32..3, 0u32..2),
            block in 0u64..u64::MAX / 2,
        ) {
            let (ch, rk, bg, bk, rb) = shape;
            let g = DramGeometry {
                channels: 1 << ch,
                ranks: 1 << rk,
                bankgroups: 1 << bg,
                banks_per_group: 1 << bk,
                row_bytes: 4096 << rb,
                ..DramGeometry::paper_default()
            };
            prop_assert!(g.validate().is_ok(), "geometry {g:?} must validate");
            let m = AddressMapping::new(g);
            let space_blocks = m.addr_space_bytes(32768) / 64;
            let addr = PhysAddr((block % space_blocks) * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr, "geometry {:?}", g);
            prop_assert!(loc.col < g.blocks_per_row());
            prop_assert!(loc.bank < g.banks_per_group);
            prop_assert!(loc.bankgroup < g.bankgroups);
            prop_assert!(loc.rank < g.ranks);
            prop_assert!(loc.channel < g.channels);
        }

        /// Encoding is injective: two distinct in-range locations of the
        /// same geometry never alias to one physical address.
        #[test]
        fn adjacent_blocks_decode_to_distinct_locations(
            block in 0u64..(4u64 << 30) / 64 - 1,
        ) {
            let m = AddressMapping::new(DramGeometry::paper_default());
            let a = m.decode(PhysAddr(block * 64));
            let b = m.decode(PhysAddr((block + 1) * 64));
            prop_assert!(a != b, "consecutive blocks must not alias");
        }
    }
}
