//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The paper interleaves addresses as `{row, rank, bankgroup, bank,
//! channel, column}` (most-significant field first), at cache-block
//! granularity: consecutive blocks walk the columns of one row first,
//! then spread across channels, banks, bank groups and ranks, and only
//! then move to the next row.
//!
//! That interleaving is one point in a large design space, and FIGCache
//! hit rates, relocation locality and bank-level parallelism are all
//! functions of where blocks land — so the mapping is a pluggable
//! subsystem here. [`MapKind`] selects one of three base bit-slice
//! schemes ([`MapScheme`]) plus an optional XOR bank-permutation hash
//! layered over any of them:
//!
//! * [`MapScheme::Paper`] — the paper's `{row, rank, bankgroup, bank,
//!   channel, column}` slice (the default; kept bit-identical to the
//!   original hardcoded mapping).
//! * [`MapScheme::ChFirst`] — `{row, column, rank, bankgroup, bank,
//!   channel}`: consecutive cache blocks spread across channels first,
//!   then banks, maximizing fine-grained parallelism at the cost of row
//!   locality (a `RoCoRaBgBaCh`-style block interleaving).
//! * [`MapScheme::RowInt`] — `{channel, rank, bankgroup, bank, row,
//!   column}`: whole rows stay contiguous *within one bank* and
//!   consecutive rows pile onto the same bank, so streams serialize on
//!   one bank — the cache-hostile, parallelism-poor extreme. Note the
//!   channel field is most significant, so a footprint smaller than one
//!   channel's capacity also lands entirely on channel 0 (idling the
//!   others) — deliberately the worst case on *both* parallelism axes;
//!   pair it with a `rand<seed>` page placement to spread frames back
//!   across channels.
//! * `xor_bank` — XORs the combined bank-group/bank index with the low
//!   row bits after the base slice (the classic permutation-based page
//!   interleaving of Zhang et al.), breaking row-to-bank resonance
//!   without moving channel, row or column bits. The XOR is an
//!   involution, so `encode` stays the exact inverse of `decode`.

use crate::channel::BankAddr;
use crate::geometry::DramGeometry;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The address of the cache block containing this address.
    ///
    /// `block_bytes` must be a non-zero power of two (debug-asserted):
    /// the mask below silently aliases unrelated addresses otherwise.
    #[must_use]
    pub fn block_base(self, block_bytes: u32) -> PhysAddr {
        debug_assert!(
            block_bytes.is_power_of_two(),
            "block_bytes = {block_bytes} must be a non-zero power of two"
        );
        PhysAddr(self.0 & !u64::from(block_bytes - 1))
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// Fully decoded DRAM coordinates of one cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bankgroup: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Block-granularity column within the row.
    pub col: u32,
}

impl DramLocation {
    /// The location's bank coordinates within its channel.
    #[must_use]
    pub fn bank_addr(&self) -> BankAddr {
        BankAddr { rank: self.rank, bankgroup: self.bankgroup, bank: self.bank }
    }

    /// Flat bank index within the channel (`rank`, `bankgroup`, `bank`).
    /// This delegates to [`BankAddr::flat_bank`] — the one shared
    /// flat-index formula in the workspace.
    #[must_use]
    pub fn flat_bank(&self, geometry: &DramGeometry) -> u32 {
        self.bank_addr().flat_bank(geometry)
    }
}

/// Base bit-slice interleaving scheme (most-significant field first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapScheme {
    /// `{row, rank, bankgroup, bank, channel, column}` — the paper's
    /// interleaving and the default.
    #[default]
    Paper,
    /// `{row, column, rank, bankgroup, bank, channel}` — consecutive
    /// blocks spread across channels, then banks (block interleaving).
    ChFirst,
    /// `{channel, rank, bankgroup, bank, row, column}` — whole rows per
    /// bank, consecutive rows in the same bank (bank-sequential).
    RowInt,
}

impl MapScheme {
    /// Stable label fragment for reports, cache keys and `FIGARO_MAP`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MapScheme::Paper => "paper",
            MapScheme::ChFirst => "chfirst",
            MapScheme::RowInt => "rowint",
        }
    }
}

/// Complete identification of an address mapping: a base scheme plus
/// the optional XOR bank-permutation layer. This is the value form
/// carried by controller/system configs and result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MapKind {
    /// The base bit-slice scheme.
    pub scheme: MapScheme,
    /// XOR the bank-group/bank index with the low row bits.
    pub xor_bank: bool,
}

impl MapKind {
    /// The paper's default mapping (no XOR layer).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// Stable label for reports, cache keys and `FIGARO_MAP`:
    /// `paper` | `chfirst` | `rowint`, with an `-xor` suffix when the
    /// bank-permutation layer is on (e.g. `paper-xor`).
    #[must_use]
    pub fn label(&self) -> String {
        if self.xor_bank {
            format!("{}-xor", self.scheme.label())
        } else {
            self.scheme.label().to_string()
        }
    }

    /// Parses a [`MapKind::label`]-style name (case-insensitive); bare
    /// `xor` means `paper-xor`. `None` for anything else.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let name = name.trim().to_ascii_lowercase();
        if name == "xor" {
            return Some(MapKind { scheme: MapScheme::Paper, xor_bank: true });
        }
        let (base, xor_bank) = match name.strip_suffix("-xor") {
            Some(base) => (base, true),
            None => (name.as_str(), false),
        };
        let scheme = match base {
            "paper" | "default" => MapScheme::Paper,
            "chfirst" | "ch-first" | "blockch" => MapScheme::ChFirst,
            "rowint" | "row-int" | "rowseq" => MapScheme::RowInt,
            _ => return None,
        };
        Some(MapKind { scheme, xor_bank })
    }

    /// Reads `FIGARO_MAP` (a [`MapKind::from_name`] label), defaulting
    /// to the paper mapping when unset. Read once per process — the
    /// selector sits on system-construction paths.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: the override exists to pick the
    /// mapping under study, so a typo must fail loudly rather than
    /// silently measure the default.
    #[must_use]
    pub fn from_env() -> Self {
        static MAP: std::sync::OnceLock<MapKind> = std::sync::OnceLock::new();
        *MAP.get_or_init(|| {
            let raw = std::env::var("FIGARO_MAP").unwrap_or_default();
            if raw.is_empty() {
                return MapKind::default();
            }
            MapKind::from_name(&raw).unwrap_or_else(|| {
                panic!(
                    "unrecognized FIGARO_MAP `{raw}` \
                     (use paper | chfirst | rowint, optionally with an -xor suffix)"
                )
            })
        })
    }
}

/// Rows per bank assumed by [`AddressMapping::new`] (the repo's fixed
/// 4 GB-per-channel device: 64 regular subarrays × 512 rows). Callers
/// with other layouts use [`AddressMapping::with_kind`].
pub const DEFAULT_ROWS_PER_BANK: u32 = 64 * 512;

/// Bit-slicing address map implementing the [`MapKind`] schemes (the
/// paper's `{row, rank, bankgroup, bank, channel, column}` interleaving
/// by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    geometry: DramGeometry,
    kind: MapKind,
    rows_per_bank: u32,
    block_bits: u32,
    col_bits: u32,
    channel_bits: u32,
    bank_bits: u32,
    bankgroup_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds the paper's default mapping for `geometry` (the repo's
    /// fixed [`DEFAULT_ROWS_PER_BANK`] addressable rows per bank).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate (all field counts must be
    /// powers of two).
    #[must_use]
    pub fn new(geometry: DramGeometry) -> Self {
        Self::with_kind(geometry, MapKind::default(), DEFAULT_ROWS_PER_BANK)
    }

    /// Builds the mapping `kind` for `geometry` with `rows_per_bank`
    /// addressable (regular) rows per bank.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate or `rows_per_bank` is
    /// not a non-zero power of two (the row field must be a bit slice).
    #[must_use]
    pub fn with_kind(geometry: DramGeometry, kind: MapKind, rows_per_bank: u32) -> Self {
        geometry.validate().expect("geometry must validate");
        assert!(
            rows_per_bank.is_power_of_two(),
            "rows_per_bank = {rows_per_bank} must be a non-zero power of two"
        );
        Self {
            geometry,
            kind,
            rows_per_bank,
            block_bits: geometry.block_bytes.trailing_zeros(),
            col_bits: geometry.blocks_per_row().trailing_zeros(),
            channel_bits: geometry.channels.trailing_zeros(),
            bank_bits: geometry.banks_per_group.trailing_zeros(),
            bankgroup_bits: geometry.bankgroups.trailing_zeros(),
            rank_bits: geometry.ranks.trailing_zeros(),
            row_bits: rows_per_bank.trailing_zeros(),
        }
    }

    /// The geometry this mapping was built for.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The mapping kind in force.
    #[must_use]
    pub fn kind(&self) -> MapKind {
        self.kind
    }

    /// Addressable rows per bank this mapping slices row bits for.
    #[must_use]
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// XOR bank-permutation layer: fold the low row bits into the
    /// combined bank-group/bank index. An involution (XOR twice is the
    /// identity), so it is its own inverse in [`AddressMapping::encode`].
    fn xor_permute(&self, loc: &mut DramLocation) {
        let width = self.bank_bits + self.bankgroup_bits;
        if width == 0 {
            return;
        }
        let mask = (1u32 << width) - 1;
        let mut combined = (loc.bankgroup << self.bank_bits) | loc.bank;
        combined ^= loc.row & mask;
        loc.bank = combined & ((1u32 << self.bank_bits) - 1);
        loc.bankgroup = combined >> self.bank_bits;
    }

    /// Decodes a physical address into DRAM coordinates.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DramLocation {
        let mut bits = addr.0 >> self.block_bits;
        let mut take = |n: u32| -> u32 {
            let v = (bits & ((1u64 << n) - 1)) as u32;
            bits >>= n;
            v
        };
        let mut loc = match self.kind.scheme {
            MapScheme::Paper => {
                let col = take(self.col_bits);
                let channel = take(self.channel_bits);
                let bank = take(self.bank_bits);
                let bankgroup = take(self.bankgroup_bits);
                let rank = take(self.rank_bits);
                let row = bits as u32;
                DramLocation { channel, rank, bankgroup, bank, row, col }
            }
            MapScheme::ChFirst => {
                let channel = take(self.channel_bits);
                let bank = take(self.bank_bits);
                let bankgroup = take(self.bankgroup_bits);
                let rank = take(self.rank_bits);
                let col = take(self.col_bits);
                let row = bits as u32;
                DramLocation { channel, rank, bankgroup, bank, row, col }
            }
            MapScheme::RowInt => {
                let col = take(self.col_bits);
                let row = take(self.row_bits);
                let bank = take(self.bank_bits);
                let bankgroup = take(self.bankgroup_bits);
                let rank = take(self.rank_bits);
                let channel = bits as u32;
                DramLocation { channel, rank, bankgroup, bank, row, col }
            }
        };
        if self.kind.xor_bank {
            self.xor_permute(&mut loc);
        }
        loc
    }

    /// Encodes DRAM coordinates back into the base physical address of the
    /// block (inverse of [`AddressMapping::decode`]).
    ///
    /// All coordinates must be in range for the geometry (and `row` below
    /// [`AddressMapping::rows_per_bank`]); out-of-range fields would
    /// silently alias other blocks, so they are debug-asserted.
    #[must_use]
    pub fn encode(&self, loc: DramLocation) -> PhysAddr {
        debug_assert!(
            loc.col < self.geometry.blocks_per_row(),
            "col {} out of range (< {})",
            loc.col,
            self.geometry.blocks_per_row()
        );
        debug_assert!(loc.channel < self.geometry.channels, "channel {} out of range", loc.channel);
        debug_assert!(loc.bank < self.geometry.banks_per_group, "bank {} out of range", loc.bank);
        debug_assert!(
            loc.bankgroup < self.geometry.bankgroups,
            "bankgroup {} out of range",
            loc.bankgroup
        );
        debug_assert!(loc.rank < self.geometry.ranks, "rank {} out of range", loc.rank);
        debug_assert!(
            loc.row < self.rows_per_bank,
            "row {} out of range (< {})",
            loc.row,
            self.rows_per_bank
        );
        let mut loc = loc;
        if self.kind.xor_bank {
            self.xor_permute(&mut loc); // involution: undoes decode's XOR
        }
        let mut bits: u64;
        let put = |bits: &mut u64, v: u32, n: u32| {
            *bits = (*bits << n) | u64::from(v);
        };
        match self.kind.scheme {
            MapScheme::Paper => {
                bits = u64::from(loc.row);
                put(&mut bits, loc.rank, self.rank_bits);
                put(&mut bits, loc.bankgroup, self.bankgroup_bits);
                put(&mut bits, loc.bank, self.bank_bits);
                put(&mut bits, loc.channel, self.channel_bits);
                put(&mut bits, loc.col, self.col_bits);
            }
            MapScheme::ChFirst => {
                bits = u64::from(loc.row);
                put(&mut bits, loc.col, self.col_bits);
                put(&mut bits, loc.rank, self.rank_bits);
                put(&mut bits, loc.bankgroup, self.bankgroup_bits);
                put(&mut bits, loc.bank, self.bank_bits);
                put(&mut bits, loc.channel, self.channel_bits);
            }
            MapScheme::RowInt => {
                bits = u64::from(loc.channel);
                put(&mut bits, loc.rank, self.rank_bits);
                put(&mut bits, loc.bankgroup, self.bankgroup_bits);
                put(&mut bits, loc.bank, self.bank_bits);
                put(&mut bits, loc.row, self.row_bits);
                put(&mut bits, loc.col, self.col_bits);
            }
        }
        PhysAddr(bits << self.block_bits)
    }

    /// Bytes of address space this mapping slices bits for (its own
    /// [`AddressMapping::rows_per_bank`] rows). Identical for every
    /// mapping kind — schemes permute the space, never resize it.
    #[must_use]
    pub fn addr_space(&self) -> u64 {
        self.addr_space_bytes(self.rows_per_bank)
    }

    /// Bytes of address space covered by `rows_per_bank` addressable rows
    /// per bank (callers with a foreign row count; prefer
    /// [`AddressMapping::addr_space`], which uses the row count this
    /// mapping was actually built with). Identical for every mapping
    /// kind — schemes permute the space, never resize it.
    #[must_use]
    pub fn addr_space_bytes(&self, rows_per_bank: u32) -> u64 {
        u64::from(rows_per_bank)
            * u64::from(self.geometry.channels)
            * u64::from(self.geometry.ranks)
            * u64::from(self.geometry.bankgroups)
            * u64::from(self.geometry.banks_per_group)
            * u64::from(self.geometry.row_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMapping {
        AddressMapping::new(DramGeometry::paper_default())
    }

    fn map_kind(kind: MapKind) -> AddressMapping {
        AddressMapping::with_kind(DramGeometry::paper_default(), kind, DEFAULT_ROWS_PER_BANK)
    }

    fn all_kinds() -> Vec<MapKind> {
        vec![
            MapKind::paper(),
            MapKind { scheme: MapScheme::ChFirst, xor_bank: false },
            MapKind { scheme: MapScheme::RowInt, xor_bank: false },
            MapKind { scheme: MapScheme::Paper, xor_bank: true },
            MapKind { scheme: MapScheme::ChFirst, xor_bank: true },
            MapKind { scheme: MapScheme::RowInt, xor_bank: true },
        ]
    }

    #[test]
    fn consecutive_blocks_walk_columns_first() {
        let m = map();
        let a = m.decode(PhysAddr(0));
        let b = m.decode(PhysAddr(64));
        assert_eq!(a.col, 0);
        assert_eq!(b.col, 1);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn after_row_of_columns_comes_the_bank_field() {
        let m = map();
        // 128 blocks per row, 1 channel -> next field is bank.
        let a = m.decode(PhysAddr(128 * 64));
        assert_eq!(a.col, 0);
        assert_eq!(a.bank, 1);
        assert_eq!(a.row, 0);
    }

    #[test]
    fn row_is_most_significant() {
        let m = map();
        let g = DramGeometry::paper_default();
        let blocks_per_row_all_banks = u64::from(g.blocks_per_row())
            * u64::from(g.banks_per_channel())
            * u64::from(g.channels);
        let a = m.decode(PhysAddr(blocks_per_row_all_banks * 64));
        assert_eq!(a.row, 1);
        assert_eq!(a.col, 0);
        assert_eq!(a.bank, 0);
        assert_eq!(a.bankgroup, 0);
    }

    #[test]
    fn four_channel_mapping_spreads_blocks_across_channels() {
        let m = AddressMapping::new(DramGeometry::paper_default().with_channels(4));
        // Channel bits sit right above the column bits.
        let same_row_next_channel = m.decode(PhysAddr(128 * 64));
        assert_eq!(same_row_next_channel.channel, 1);
        assert_eq!(same_row_next_channel.col, 0);
    }

    #[test]
    fn encode_decode_round_trip_spot_checks() {
        let m = map();
        for addr in [0u64, 64, 8128, 1 << 20, (4u64 << 30) - 64] {
            let loc = m.decode(PhysAddr(addr));
            assert_eq!(m.encode(loc), PhysAddr(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn flat_bank_covers_all_banks() {
        let g = DramGeometry::paper_default();
        let m = AddressMapping::new(g);
        let mut seen = std::collections::HashSet::new();
        for block in 0..(128 * 16) {
            let loc = m.decode(PhysAddr(block * 64));
            seen.insert(loc.flat_bank(&g));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn addr_space_matches_capacity() {
        let m = map();
        assert_eq!(m.addr_space_bytes(32768), 4 << 30);
    }

    #[test]
    fn chfirst_spreads_consecutive_blocks_across_banks_first() {
        let kind = MapKind { scheme: MapScheme::ChFirst, xor_bank: false };
        let m = AddressMapping::with_kind(
            DramGeometry::paper_default().with_channels(4),
            kind,
            DEFAULT_ROWS_PER_BANK,
        );
        // Block 0 -> channel 0; block 1 -> channel 1 (channel bits lowest).
        let b1 = m.decode(PhysAddr(64));
        assert_eq!(b1.channel, 1);
        assert_eq!((b1.bank, b1.col, b1.row), (0, 0, 0));
        // After the 4 channels, the bank field increments.
        let b4 = m.decode(PhysAddr(4 * 64));
        assert_eq!(b4.channel, 0);
        assert_eq!(b4.bank, 1);
        // Column bits sit above rank: one channel's consecutive same-bank
        // blocks are 4 * 16 blocks apart.
        let col1 = m.decode(PhysAddr(4 * 16 * 64));
        assert_eq!((col1.channel, col1.bank, col1.bankgroup), (0, 0, 0));
        assert_eq!(col1.col, 1);
    }

    #[test]
    fn rowint_keeps_consecutive_rows_in_one_bank() {
        let kind = MapKind { scheme: MapScheme::RowInt, xor_bank: false };
        let m = map_kind(kind);
        // One full row of blocks stays in bank 0, then row 1 of bank 0.
        let next_row = m.decode(PhysAddr(8192));
        assert_eq!((next_row.bank, next_row.bankgroup, next_row.row, next_row.col), (0, 0, 1, 0));
        // Only after all 32768 rows does the bank field change.
        let next_bank = m.decode(PhysAddr(8192 * u64::from(DEFAULT_ROWS_PER_BANK)));
        assert_eq!((next_bank.bank, next_bank.row), (1, 0));
    }

    #[test]
    fn xor_layer_moves_banks_but_not_channel_row_col() {
        let base = map_kind(MapKind::paper());
        let xored = map_kind(MapKind { scheme: MapScheme::Paper, xor_bank: true });
        let mut moved = 0;
        for block in 0..(4 * 128 * 16 * 4u64) {
            let addr = PhysAddr(block * 64 * 1031 % (4 << 30));
            let a = base.decode(addr);
            let b = xored.decode(addr);
            assert_eq!((a.channel, a.rank, a.row, a.col), (b.channel, b.rank, b.row, b.col));
            if (a.bank, a.bankgroup) != (b.bank, b.bankgroup) {
                moved += 1;
            }
        }
        assert!(moved > 0, "the XOR layer must actually permute banks");
    }

    #[test]
    fn labels_round_trip_through_from_name() {
        for kind in all_kinds() {
            assert_eq!(MapKind::from_name(&kind.label()), Some(kind), "{}", kind.label());
        }
        assert_eq!(
            MapKind::from_name("xor"),
            Some(MapKind { scheme: MapScheme::Paper, xor_bank: true })
        );
        assert_eq!(MapKind::from_name("bogus"), None);
        assert_eq!(MapKind::default().label(), "paper");
    }

    #[test]
    fn default_kind_is_bit_identical_to_new() {
        let a = AddressMapping::new(DramGeometry::paper_default());
        let b = map_kind(MapKind::default());
        for block in 0..(128 * 16 * 8u64) {
            let addr = PhysAddr(block * 64);
            assert_eq!(a.decode(addr), b.decode(addr));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_kind_rejects_non_power_of_two_rows() {
        let _ = AddressMapping::with_kind(DramGeometry::paper_default(), MapKind::default(), 1000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_out_of_range_coordinates() {
        let m = map();
        let _ = m.encode(DramLocation {
            channel: 1, // paper default has one channel
            rank: 0,
            bankgroup: 0,
            bank: 0,
            row: 0,
            col: 0,
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "power of two")]
    fn block_base_rejects_non_power_of_two_blocks() {
        let _ = PhysAddr(4096).block_base(48);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn kind_for(idx: usize) -> MapKind {
        let schemes = [MapScheme::Paper, MapScheme::ChFirst, MapScheme::RowInt];
        MapKind { scheme: schemes[idx % 3], xor_bank: idx >= 3 }
    }

    proptest! {
        #[test]
        fn round_trip_any_block_aligned_address(block in 0u64..(4u64 << 30) / 64) {
            let m = AddressMapping::new(DramGeometry::paper_default());
            let addr = PhysAddr(block * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr);
        }

        #[test]
        fn round_trip_four_channels(block in 0u64..(16u64 << 30) / 64) {
            let m = AddressMapping::new(DramGeometry::paper_default().with_channels(4));
            let addr = PhysAddr(block * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr);
        }

        #[test]
        fn decoded_fields_in_range(block in 0u64..(4u64 << 30) / 64) {
            let g = DramGeometry::paper_default();
            let m = AddressMapping::new(g);
            let loc = m.decode(PhysAddr(block * 64));
            prop_assert!(loc.col < g.blocks_per_row());
            prop_assert!(loc.bank < g.banks_per_group);
            prop_assert!(loc.bankgroup < g.bankgroups);
            prop_assert!(loc.rank < g.ranks);
            prop_assert!(loc.channel < g.channels);
        }

        /// Every scheme (with and without the XOR layer) is a bijection
        /// on the address space: decode∘encode = id, all decoded fields
        /// in range, and rows below the addressable row count.
        #[test]
        fn every_kind_round_trips_and_stays_in_range(
            kind_idx in 0usize..6,
            channels_log2 in 0u32..3,
            block in 0u64..u64::MAX / 2,
        ) {
            let g = DramGeometry::paper_default().with_channels(1 << channels_log2);
            let kind = kind_for(kind_idx);
            let m = AddressMapping::with_kind(g, kind, DEFAULT_ROWS_PER_BANK);
            let space_blocks = m.addr_space_bytes(DEFAULT_ROWS_PER_BANK) / 64;
            let addr = PhysAddr((block % space_blocks) * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr, "kind {}", kind.label());
            prop_assert!(loc.col < g.blocks_per_row());
            prop_assert!(loc.bank < g.banks_per_group);
            prop_assert!(loc.bankgroup < g.bankgroups);
            prop_assert!(loc.rank < g.ranks);
            prop_assert!(loc.channel < g.channels);
            prop_assert!(loc.row < DEFAULT_ROWS_PER_BANK);
        }

        /// Bijectivity across kinds: adjacent blocks never alias under
        /// any scheme (injectivity on consecutive pairs over the space).
        #[test]
        fn every_kind_maps_adjacent_blocks_to_distinct_locations(
            kind_idx in 0usize..6,
            block in 0u64..(4u64 << 30) / 64 - 1,
        ) {
            let kind = kind_for(kind_idx);
            let m = AddressMapping::with_kind(
                DramGeometry::paper_default(),
                kind,
                DEFAULT_ROWS_PER_BANK,
            );
            let a = m.decode(PhysAddr(block * 64));
            let b = m.decode(PhysAddr((block + 1) * 64));
            prop_assert!(a != b, "consecutive blocks alias under {}", kind.label());
        }

        /// decode∘encode = id for *any* power-of-two geometry, not just
        /// the paper's: channels 1/2/4, ranks 1/2, bank groups 2/4, banks
        /// per group 2/4, and both 4 kB and 8 kB rows.
        #[test]
        fn round_trip_across_geometries(
            shape in (0u32..3, 0u32..2, 1u32..3, 1u32..3, 0u32..2),
            block in 0u64..u64::MAX / 2,
        ) {
            let (ch, rk, bg, bk, rb) = shape;
            let g = DramGeometry {
                channels: 1 << ch,
                ranks: 1 << rk,
                bankgroups: 1 << bg,
                banks_per_group: 1 << bk,
                row_bytes: 4096 << rb,
                ..DramGeometry::paper_default()
            };
            prop_assert!(g.validate().is_ok(), "geometry {g:?} must validate");
            let m = AddressMapping::new(g);
            let space_blocks = m.addr_space_bytes(32768) / 64;
            let addr = PhysAddr((block % space_blocks) * 64);
            let loc = m.decode(addr);
            prop_assert_eq!(m.encode(loc), addr, "geometry {:?}", g);
            prop_assert!(loc.col < g.blocks_per_row());
            prop_assert!(loc.bank < g.banks_per_group);
            prop_assert!(loc.bankgroup < g.bankgroups);
            prop_assert!(loc.rank < g.ranks);
            prop_assert!(loc.channel < g.channels);
        }

        /// Encoding is injective: two distinct in-range locations of the
        /// same geometry never alias to one physical address.
        #[test]
        fn adjacent_blocks_decode_to_distinct_locations(
            block in 0u64..(4u64 << 30) / 64 - 1,
        ) {
            let m = AddressMapping::new(DramGeometry::paper_default());
            let a = m.decode(PhysAddr(block * 64));
            let b = m.decode(PhysAddr((block + 1) * 64));
            prop_assert!(a != b, "consecutive blocks must not alias");
        }
    }
}
