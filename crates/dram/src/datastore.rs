//! Optional functional model of DRAM contents: sparse row storage, one
//! local row buffer (LRB) per subarray, and the FIGARO merge semantics of
//! the paper's Figure 4.
//!
//! Performance simulations run without a data store; unit tests, the
//! quickstart example and functional verification enable it to check that
//! `RELOC` + `ACTIVATE`-merge really move bytes the way the paper
//! describes — including **unaligned** copies (source column ≠ destination
//! column) and the preservation of untouched destination columns.

use std::collections::{BTreeMap, HashMap};

use crate::geometry::DramGeometry;
use crate::layout::SubarrayLayout;
use crate::RowId;

/// Sparse functional model of one channel's data.
///
/// Rows that were never written read as zero. The store tracks, per bank
/// and per subarray, the LRB contents and which row the LRB caches, plus
/// the set of columns that `RELOC`s have deposited and that the next merge
/// activation will commit.
#[derive(Debug, Clone, Default)]
pub struct DataStore {
    row_bytes: usize,
    block_bytes: usize,
    rows: HashMap<(u32, RowId), Box<[u8]>>,
    /// (bank, subarray) → LRB contents.
    lrb: HashMap<(u32, u32), Box<[u8]>>,
    /// (bank, subarray) → row currently latched in the LRB.
    lrb_row: HashMap<(u32, u32), RowId>,
    /// (bank, subarray) → columns deposited by RELOC, awaiting a merge.
    /// `BTreeMap` (not `HashMap`): [`Self::activate_merge`] iterates the
    /// inner map, and figlint's FIG001 bans order-nondeterministic walks
    /// in result-affecting crates. (The merge writes disjoint column
    /// ranges, so the order never changed bytes — but a deterministic
    /// container makes that a non-theorem we don't have to re-prove.)
    pending: BTreeMap<(u32, u32), BTreeMap<u32, Vec<u8>>>,
}

impl DataStore {
    /// Creates an empty (all-zero) store for `geometry`.
    #[must_use]
    pub fn new(geometry: &DramGeometry) -> Self {
        Self {
            row_bytes: geometry.row_bytes as usize,
            block_bytes: geometry.block_bytes as usize,
            ..Self::default()
        }
    }

    fn zero_row(&self) -> Box<[u8]> {
        vec![0u8; self.row_bytes].into_boxed_slice()
    }

    /// Directly writes a whole row (test/workload initialization).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one row long.
    pub fn store_row(&mut self, bank: u32, row: RowId, data: &[u8]) {
        assert_eq!(data.len(), self.row_bytes, "row data must be {} bytes", self.row_bytes);
        self.rows.insert((bank, row), data.to_vec().into_boxed_slice());
    }

    /// Reads a whole row from the array (not through the LRB).
    #[must_use]
    pub fn row(&self, bank: u32, row: RowId) -> Vec<u8> {
        self.rows.get(&(bank, row)).map_or_else(|| vec![0u8; self.row_bytes], |r| r.to_vec())
    }

    /// Reads one block of a row directly from the array.
    #[must_use]
    pub fn block(&self, bank: u32, row: RowId, col: u32) -> Vec<u8> {
        let start = col as usize * self.block_bytes;
        self.row(bank, row)[start..start + self.block_bytes].to_vec()
    }

    /// Models `ACTIVATE`: latch `row` into its subarray's LRB.
    pub fn activate(&mut self, layout: &SubarrayLayout, bank: u32, row: RowId) {
        let sa = layout.subarray_id(row);
        let data = self.rows.get(&(bank, row)).cloned().unwrap_or_else(|| self.zero_row());
        self.lrb.insert((bank, sa), data);
        self.lrb_row.insert((bank, sa), row);
        self.pending.remove(&(bank, sa));
    }

    /// Models `READ` of `col` from the open row's LRB.
    ///
    /// # Panics
    ///
    /// Panics if no row is latched in `open_row`'s subarray LRB.
    #[must_use]
    pub fn read(&self, layout: &SubarrayLayout, bank: u32, open_row: RowId, col: u32) -> Vec<u8> {
        let sa = layout.subarray_id(open_row);
        let lrb = self.lrb.get(&(bank, sa)).expect("READ from a subarray with no latched row");
        let start = col as usize * self.block_bytes;
        lrb[start..start + self.block_bytes].to_vec()
    }

    /// Models `WRITE` of `col` into the open row (LRB + restore).
    ///
    /// # Panics
    ///
    /// Panics if no row is latched, or `data` is not one block long.
    pub fn write(
        &mut self,
        layout: &SubarrayLayout,
        bank: u32,
        open_row: RowId,
        col: u32,
        data: &[u8],
    ) {
        assert_eq!(data.len(), self.block_bytes);
        let sa = layout.subarray_id(open_row);
        let start = col as usize * self.block_bytes;
        let lrb = self.lrb.get_mut(&(bank, sa)).expect("WRITE to a subarray with no latched row");
        lrb[start..start + self.block_bytes].copy_from_slice(data);
        let row = self
            .rows
            .entry((bank, open_row))
            .or_insert_with(|| vec![0u8; self.row_bytes].into_boxed_slice());
        row[start..start + self.block_bytes].copy_from_slice(data);
    }

    /// Models FIGARO `RELOC`: copy `src_col` of the open row's LRB through
    /// the global row buffer into (`dst_subarray`, `dst_col`), recording the
    /// column for the next merge activation. Unaligned copies
    /// (`src_col != dst_col`) are the point of the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if no row is latched in the source subarray.
    pub fn reloc(
        &mut self,
        layout: &SubarrayLayout,
        bank: u32,
        open_row: RowId,
        src_col: u32,
        dst_subarray: u32,
        dst_col: u32,
    ) {
        let src_sa = layout.subarray_id(open_row);
        let src_lrb =
            self.lrb.get(&(bank, src_sa)).expect("RELOC from a subarray with no latched row");
        let s = src_col as usize * self.block_bytes;
        let block = src_lrb[s..s + self.block_bytes].to_vec();
        // The destination LRB senses and latches the block (paper Fig. 4 step 4).
        let row_bytes = self.row_bytes;
        let dst_lrb = self
            .lrb
            .entry((bank, dst_subarray))
            .or_insert_with(|| vec![0u8; row_bytes].into_boxed_slice());
        let d = dst_col as usize * self.block_bytes;
        dst_lrb[d..d + self.block_bytes].copy_from_slice(&block);
        self.pending.entry((bank, dst_subarray)).or_default().insert(dst_col, block);
    }

    /// Models the merge `ACTIVATE` (paper Fig. 4 step 5): cells of `row`
    /// whose bitlines were driven by `RELOC`s are overwritten; every other
    /// column keeps its original value.
    ///
    /// # Panics
    ///
    /// Panics if no `RELOC` deposited columns into `row`'s subarray.
    pub fn activate_merge(&mut self, layout: &SubarrayLayout, bank: u32, row: RowId) {
        let sa = layout.subarray_id(row);
        let pending =
            self.pending.remove(&(bank, sa)).expect("merge activation without preceding RELOCs");
        let mut data = self.rows.get(&(bank, row)).cloned().unwrap_or_else(|| self.zero_row());
        for (col, block) in &pending {
            let d = *col as usize * self.block_bytes;
            data[d..d + self.block_bytes].copy_from_slice(block);
        }
        self.lrb.insert((bank, sa), data.clone());
        self.lrb_row.insert((bank, sa), row);
        self.rows.insert((bank, row), data);
    }

    /// Models a LISA row clone: the destination row becomes a copy of the
    /// source row.
    pub fn lisa_clone(&mut self, bank: u32, src_row: RowId, dst_row: RowId) {
        let data = self.rows.get(&(bank, src_row)).cloned().unwrap_or_else(|| self.zero_row());
        self.rows.insert((bank, dst_row), data);
    }

    /// Which row a subarray's LRB currently latches, if any.
    #[must_use]
    pub fn latched_row(&self, bank: u32, subarray: u32) -> Option<RowId> {
        self.lrb_row.get(&(bank, subarray)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SubarrayLayout, DataStore) {
        let layout = SubarrayLayout::homogeneous(8, 64);
        let geo = DramGeometry { row_bytes: 512, block_bytes: 64, ..DramGeometry::paper_default() };
        (layout, DataStore::new(&geo))
    }

    fn patterned_row(tag: u8, row_bytes: usize) -> Vec<u8> {
        (0..row_bytes).map(|i| tag ^ (i as u8)).collect()
    }

    #[test]
    fn activate_then_read_returns_row_contents() {
        let (layout, mut ds) = setup();
        let row_a = patterned_row(0xAA, 512);
        ds.store_row(0, 5, &row_a);
        ds.activate(&layout, 0, 5);
        assert_eq!(ds.read(&layout, 0, 5, 2), row_a[128..192].to_vec());
    }

    #[test]
    fn write_updates_lrb_and_array() {
        let (layout, mut ds) = setup();
        ds.activate(&layout, 0, 5);
        let block = vec![7u8; 64];
        ds.write(&layout, 0, 5, 3, &block);
        assert_eq!(ds.read(&layout, 0, 5, 3), block);
        assert_eq!(ds.block(0, 5, 3), block);
    }

    #[test]
    fn figure4_unaligned_reloc_and_merge() {
        // Reproduces paper Fig. 4: copy column 3 of subarray-0's open row
        // into column 1 of a row in subarray 5; all other destination
        // columns keep their values.
        let (layout, mut ds) = setup();
        let src_row = 7; // subarray 0
        let dst_row = 5 * 64 + 9; // subarray 5
        let src = patterned_row(0xA0, 512);
        let dst = patterned_row(0xB0, 512);
        ds.store_row(0, src_row, &src);
        ds.store_row(0, dst_row, &dst);

        ds.activate(&layout, 0, src_row);
        ds.reloc(&layout, 0, src_row, 3, 5, 1);
        ds.activate_merge(&layout, 0, dst_row);

        let merged = ds.row(0, dst_row);
        // Column 1 now holds source column 3.
        assert_eq!(&merged[64..128], &src[192..256]);
        // Every other column is untouched.
        assert_eq!(&merged[0..64], &dst[0..64]);
        assert_eq!(&merged[128..], &dst[128..]);
        // Source row is unchanged (RELOC is a copy, not a move).
        assert_eq!(ds.row(0, src_row), src);
    }

    #[test]
    fn multiple_relocs_merge_together() {
        let (layout, mut ds) = setup();
        let src_row = 0;
        let dst_row = 2 * 64; // subarray 2
        let src = patterned_row(0x11, 512);
        ds.store_row(0, src_row, &src);
        ds.activate(&layout, 0, src_row);
        for col in 0..4 {
            ds.reloc(&layout, 0, src_row, col, 2, col + 4);
        }
        ds.activate_merge(&layout, 0, dst_row);
        let merged = ds.row(0, dst_row);
        assert_eq!(&merged[4 * 64..8 * 64], &src[0..4 * 64]);
        assert_eq!(&merged[0..4 * 64], &vec![0u8; 256][..]);
    }

    #[test]
    fn merge_latches_destination_row_in_its_lrb() {
        let (layout, mut ds) = setup();
        ds.store_row(0, 0, &patterned_row(1, 512));
        ds.activate(&layout, 0, 0);
        ds.reloc(&layout, 0, 0, 0, 3, 0);
        let dst_row = 3 * 64 + 1;
        ds.activate_merge(&layout, 0, dst_row);
        assert_eq!(ds.latched_row(0, 3), Some(dst_row));
        assert_eq!(ds.latched_row(0, 0), Some(0));
    }

    #[test]
    fn lisa_clone_copies_whole_row() {
        let (_, mut ds) = setup();
        let src = patterned_row(0x42, 512);
        ds.store_row(1, 10, &src);
        ds.lisa_clone(1, 10, 200);
        assert_eq!(ds.row(1, 200), src);
    }

    #[test]
    fn unwritten_rows_read_zero() {
        let (_, ds) = setup();
        assert_eq!(ds.row(0, 99), vec![0u8; 512]);
    }

    #[test]
    #[should_panic(expected = "merge activation without preceding RELOCs")]
    fn merge_without_reloc_panics() {
        let (layout, mut ds) = setup();
        ds.activate_merge(&layout, 0, 5);
    }
}
