//! The per-channel timing-constraint engine: tracks bank/bank-group/rank
//! state and enforces every inter-command timing constraint (tRCD, tRP,
//! tRAS, tRC, tCCD_S/L, tRRD_S/L, tFAW, tRTP, tWR, tWTR_S/L, read↔write bus
//! turnaround, tREFI/tRFC) plus the FIGARO-specific rules:
//!
//! * `RELOC` may only follow a fully-restored activation (tRAS elapsed) and
//!   consecutive `RELOC`s are spaced by the internal column cycle. The
//!   first `RELOC` *pins* the source subarray: FIGARO's per-subarray
//!   row-address latches keep the source row latched in its local row
//!   buffer, so the bank can precharge and serve demand to **other
//!   subarrays** while the relocation train is in flight (only the two
//!   pinned subarrays are off-limits, and each `RELOC` occupies the
//!   column path for one internal cycle);
//! * `ACTIVATE`-merge may only follow at least one `RELOC` and must target
//!   the subarray those `RELOC`s wrote; it ends the pin;
//! * `LISA_CLONE` occupies the whole precharged bank for a hop-distance-
//!   dependent duration — it moves data through the local bitlines of
//!   every intermediate subarray, which is exactly the inefficiency
//!   FIGARO's global-row-buffer path removes.

use crate::command::DramCommand;
use crate::layout::Region;
use crate::stats::DramStats;
use crate::{Cycle, DramConfig, RowId};

/// Never-satisfied issue time returned for commands that are illegal in the
/// current bank state (e.g. `READ` on a closed bank).
pub const ILLEGAL: Cycle = Cycle::MAX;

/// Coordinates of one bank within a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank group within the rank.
    pub bankgroup: u32,
    /// Bank within the bank group.
    pub bank: u32,
}

impl BankAddr {
    /// Flat bank index within the channel — **the** shared flat-index
    /// formula of the workspace; every per-bank table (controller queue
    /// buckets, channel bank state, cache engines) indexes through it
    /// rather than re-deriving the arithmetic.
    #[must_use]
    pub fn flat_bank(&self, g: &crate::geometry::DramGeometry) -> u32 {
        debug_assert!(
            self.rank < g.ranks && self.bankgroup < g.bankgroups && self.bank < g.banks_per_group
        );
        (self.rank * g.bankgroups + self.bankgroup) * g.banks_per_group + self.bank
    }

    /// Inverse of [`BankAddr::flat_bank`]: the bank coordinates of flat
    /// index `flat`.
    #[must_use]
    pub fn from_flat(flat: u32, g: &crate::geometry::DramGeometry) -> Self {
        debug_assert!(flat < g.banks_per_channel(), "flat bank {flat} out of range");
        let rem = flat % g.banks_per_rank();
        Self {
            rank: flat / g.banks_per_rank(),
            bankgroup: rem / g.banks_per_group,
            bank: rem % g.banks_per_group,
        }
    }
}

/// What the caller learns from a successful [`DramChannel::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// When the command's effect completes: data burst end for column
    /// commands, tRCD for activations, operation end for composite
    /// commands.
    pub completes_at: Cycle,
}

/// An in-flight FIGARO relocation's hold on two subarrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pin {
    /// Source subarray (its LRB holds the pinned row).
    src_subarray: u32,
    /// Destination subarray (its LRB accumulates relocated columns).
    dst_subarray: u32,
}

#[derive(Debug, Clone)]
struct BankState {
    open_row: Option<RowId>,
    /// Deprecated-by-pinning; kept for `PrechargeAll` bookkeeping.
    must_precharge: bool,
    /// Active FIGARO relocation hold, if any.
    pinned: Option<Pin>,
    act_at: Cycle,
    next_act: Cycle,
    next_rd: Cycle,
    next_wr: Cycle,
    next_pre: Cycle,
    next_reloc: Cycle,
    /// Earliest merge activation (last `RELOC` completion), if any `RELOC`
    /// has been issued since the current activation.
    merge_ready: Option<Cycle>,
    /// Destination subarray of the in-flight `RELOC` sequence.
    reloc_dst: Option<u32>,
    /// Composite-operation occupancy (LISA clone, refresh).
    busy_until: Cycle,
}

impl BankState {
    fn new() -> Self {
        Self {
            open_row: None,
            must_precharge: false,
            pinned: None,
            act_at: 0,
            next_act: 0,
            next_rd: 0,
            next_wr: 0,
            next_pre: 0,
            next_reloc: 0,
            merge_ready: None,
            reloc_dst: None,
            busy_until: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct RankState {
    /// Earliest ACT anywhere in the rank (tRRD_S).
    next_act_s: Cycle,
    /// Earliest ACT per bank group (tRRD_L).
    next_act_l: Vec<Cycle>,
    /// Ring buffer of the four most recent ACT issue times (tFAW).
    faw: [Cycle; 4],
    faw_idx: usize,
    /// Total ACTs recorded; the tFAW constraint only applies once four
    /// activations exist.
    faw_count: u64,
    /// Earliest READ anywhere in the rank (tCCD_S, tWTR_S, turnaround).
    next_rd_s: Cycle,
    /// Earliest READ per bank group (tCCD_L, tWTR_L).
    next_rd_l: Vec<Cycle>,
    /// Earliest WRITE anywhere in the rank.
    next_wr_s: Cycle,
    /// Earliest WRITE per bank group.
    next_wr_l: Vec<Cycle>,
}

impl RankState {
    fn new(bankgroups: u32) -> Self {
        Self {
            next_act_s: 0,
            next_act_l: vec![0; bankgroups as usize],
            faw: [0; 4],
            faw_idx: 0,
            faw_count: 0,
            next_rd_s: 0,
            next_rd_l: vec![0; bankgroups as usize],
            next_wr_s: 0,
            next_wr_l: vec![0; bankgroups as usize],
        }
    }

    fn faw_earliest(&self, faw: u32) -> Cycle {
        if self.faw_count < 4 {
            return 0;
        }
        // The oldest of the last four ACTs bounds the fifth.
        self.faw[self.faw_idx].saturating_add(Cycle::from(faw))
    }

    fn record_act(&mut self, t: Cycle, bg: usize, rrd_s: u32, rrd_l: u32) {
        self.next_act_s = self.next_act_s.max(t + Cycle::from(rrd_s));
        self.next_act_l[bg] = self.next_act_l[bg].max(t + Cycle::from(rrd_l));
        self.faw[self.faw_idx] = t;
        self.faw_idx = (self.faw_idx + 1) % 4;
        self.faw_count += 1;
    }
}

/// One DRAM channel: all ranks/banks behind one command/data bus, plus the
/// timing-legality checker and statistics.
///
/// The controller drives it with three calls: [`DramChannel::can_issue`] /
/// [`DramChannel::earliest_issue`] to query legality and
/// [`DramChannel::issue`] to commit a command.
#[derive(Debug, Clone)]
pub struct DramChannel {
    config: DramConfig,
    ranks: Vec<RankState>,
    banks: Vec<BankState>,
    stats: DramStats,
}

impl DramChannel {
    /// Builds a channel for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate.
    #[must_use]
    pub fn new(config: &DramConfig) -> Self {
        config.validate().expect("DramConfig must validate");
        let g = &config.geometry;
        let ranks = (0..g.ranks).map(|_| RankState::new(g.bankgroups)).collect();
        let banks = (0..g.banks_per_channel()).map(|_| BankState::new()).collect();
        Self { config: config.clone(), ranks, banks, stats: DramStats::default() }
    }

    /// The device configuration this channel models.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated command/occupancy statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Mutable statistics access (the controller adds request-level stats).
    pub fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }

    fn bank_index(&self, b: BankAddr) -> usize {
        b.flat_bank(&self.config.geometry) as usize
    }

    /// The currently open row of a bank, if any.
    #[must_use]
    pub fn open_row(&self, b: BankAddr) -> Option<RowId> {
        self.banks[self.bank_index(b)].open_row
    }

    /// Whether a bank has performed `ActivateMerge` and must be precharged
    /// before any other bank command.
    #[must_use]
    pub fn must_precharge(&self, b: BankAddr) -> bool {
        self.banks[self.bank_index(b)].must_precharge
    }

    /// Whether a FIGARO relocation currently pins two of the bank's
    /// subarrays (source LRB latched, destination LRB accumulating).
    #[must_use]
    pub fn is_pinned(&self, b: BankAddr) -> bool {
        self.banks[self.bank_index(b)].pinned.is_some()
    }

    /// Whether a composite operation (LISA clone / refresh) occupies the
    /// bank at `now`.
    #[must_use]
    pub fn is_busy(&self, b: BankAddr, now: Cycle) -> bool {
        self.banks[self.bank_index(b)].busy_until > now
    }

    /// Earliest cycle **no earlier than `now`** at which `cmd` may issue
    /// to bank `b`, or [`ILLEGAL`] if the bank state makes the command
    /// impossible regardless of time (wrong open/closed state, missing
    /// `RELOC` prerequisite, etc.). Legal results are clamped to `now`, so
    /// a constraint that elapsed long ago never reports an issue time in
    /// the past — `earliest_issue` and [`DramChannel::next_ready`] agree
    /// on every legal command.
    #[must_use]
    pub fn earliest_issue(&self, b: BankAddr, cmd: &DramCommand, now: Cycle) -> Cycle {
        let e = self.earliest_unclamped(b, cmd);
        if e == ILLEGAL {
            ILLEGAL
        } else {
            e.max(now)
        }
    }

    /// The raw timing-constraint bound behind [`DramChannel::earliest_issue`]
    /// (may lie in the past once the constraints have elapsed).
    fn earliest_unclamped(&self, b: BankAddr, cmd: &DramCommand) -> Cycle {
        let t = &self.config.timing;
        let bank = &self.banks[self.bank_index(b)];
        let rank = &self.ranks[b.rank as usize];
        let bg = b.bankgroup as usize;
        match cmd {
            DramCommand::Activate { row } => {
                if bank.open_row.is_some() || bank.must_precharge {
                    return ILLEGAL;
                }
                if let Some(pin) = bank.pinned {
                    let sa = self.config.layout.subarray_id(*row);
                    if sa == pin.src_subarray || sa == pin.dst_subarray {
                        return ILLEGAL; // those LRBs are mid-relocation
                    }
                }
                bank.next_act
                    .max(rank.next_act_s)
                    .max(rank.next_act_l[bg])
                    .max(rank.faw_earliest(t.faw))
                    .max(bank.busy_until)
            }
            DramCommand::Precharge => {
                if bank.open_row.is_none() && !bank.must_precharge {
                    return ILLEGAL;
                }
                bank.next_pre.max(bank.busy_until)
            }
            DramCommand::PrechargeAll => {
                // Earliest time every open bank in the rank may precharge.
                let mut earliest = 0;
                for (i, other) in self.banks.iter().enumerate() {
                    if self.rank_of_index(i) == b.rank
                        && (other.open_row.is_some() || other.must_precharge)
                    {
                        earliest = earliest.max(other.next_pre.max(other.busy_until));
                    }
                }
                earliest
            }
            DramCommand::Read { .. } => {
                if bank.open_row.is_none() || bank.must_precharge {
                    return ILLEGAL;
                }
                bank.next_rd.max(rank.next_rd_s).max(rank.next_rd_l[bg]).max(bank.busy_until)
            }
            DramCommand::Write { .. } => {
                if bank.open_row.is_none() || bank.must_precharge {
                    return ILLEGAL;
                }
                bank.next_wr.max(rank.next_wr_s).max(rank.next_wr_l[bg]).max(bank.busy_until)
            }
            DramCommand::Refresh => {
                let mut earliest = 0;
                for (i, other) in self.banks.iter().enumerate() {
                    if self.rank_of_index(i) == b.rank {
                        if other.open_row.is_some()
                            || other.must_precharge
                            || other.pinned.is_some()
                        {
                            return ILLEGAL; // all banks must be quiescent first
                        }
                        earliest = earliest.max(other.next_act).max(other.busy_until);
                    }
                }
                earliest
            }
            DramCommand::RelocBurst { dst_subarray, .. } => {
                // Same preconditions as the first RELOC of a sequence;
                // one train at a time per bank.
                if bank.pinned.is_some() {
                    return ILLEGAL;
                }
                let Some(open) = bank.open_row else { return ILLEGAL };
                if bank.must_precharge {
                    return ILLEGAL;
                }
                if self.config.layout.subarray_id(open) == *dst_subarray {
                    return ILLEGAL;
                }
                bank.next_reloc.max(bank.busy_until)
            }
            DramCommand::Reloc { dst_subarray, .. } => {
                if let Some(pin) = bank.pinned {
                    // Train in progress: the pinned source LRB feeds the
                    // GRB regardless of what the rest of the bank is doing.
                    if pin.dst_subarray != *dst_subarray {
                        return ILLEGAL; // one destination LRB per sequence
                    }
                    return bank.next_reloc.max(bank.busy_until);
                }
                // First RELOC of a sequence: needs the source row open and
                // fully restored.
                let Some(open) = bank.open_row else { return ILLEGAL };
                if bank.must_precharge {
                    return ILLEGAL;
                }
                if self.config.layout.subarray_id(open) == *dst_subarray {
                    return ILLEGAL; // FIGARO cannot relocate within one subarray
                }
                bank.next_reloc.max(bank.busy_until)
            }
            DramCommand::ActivateMerge { row } => {
                let Some(pin) = bank.pinned else { return ILLEGAL };
                let Some(ready) = bank.merge_ready else { return ILLEGAL };
                if pin.dst_subarray != self.config.layout.subarray_id(*row) {
                    return ILLEGAL; // must merge into the relocated-to subarray
                }
                ready
                    .max(rank.next_act_s)
                    .max(rank.next_act_l[bg])
                    .max(rank.faw_earliest(t.faw))
                    .max(bank.busy_until)
            }
            DramCommand::LisaClone { .. } => {
                if bank.open_row.is_some() || bank.must_precharge {
                    return ILLEGAL;
                }
                bank.next_act
                    .max(rank.next_act_s)
                    .max(rank.next_act_l[bg])
                    .max(rank.faw_earliest(t.faw))
                    .max(bank.busy_until)
            }
        }
    }

    fn rank_of_index(&self, bank_index: usize) -> u32 {
        bank_index as u32 / self.config.geometry.banks_per_rank()
    }

    /// Whether `cmd` may issue to `b` exactly at `now`.
    #[must_use]
    pub fn can_issue(&self, b: BankAddr, cmd: &DramCommand, now: Cycle) -> bool {
        let e = self.earliest_issue(b, cmd, now);
        e != ILLEGAL && e <= now
    }

    /// Event-horizon form of [`DramChannel::earliest_issue`]: the earliest
    /// cycle **no earlier than `from`** at which `cmd` could issue to `b`,
    /// or `None` when the bank state makes the command illegal regardless
    /// of time. Timing state only changes when commands issue, so the
    /// returned cycle stays valid until the next [`DramChannel::issue`] on
    /// the channel — this is what lets an event-driven scheduler sleep
    /// until the horizon instead of re-polling every cycle.
    #[must_use]
    pub fn next_ready(&self, b: BankAddr, cmd: &DramCommand, from: Cycle) -> Option<Cycle> {
        let e = self.earliest_issue(b, cmd, from);
        (e != ILLEGAL).then_some(e)
    }

    /// Duration of a LISA clone between the subarrays of `src_row` and
    /// `dst_row`: source restoration + one row-buffer-movement step per
    /// hop + destination settle + precharge. This is the
    /// distance-**dependent** cost FIGARO's global-row-buffer path avoids.
    #[must_use]
    pub fn lisa_clone_duration(&self, src_row: RowId, dst_row: RowId) -> Cycle {
        let t = &self.config.timing;
        let l = &self.config.layout;
        let (src_sa, dst_sa) = (l.subarray_id(src_row), l.subarray_id(dst_row));
        // When exactly one side is a fast subarray, VILLA uses the fast
        // subarray nearest to the regular one (the cache-slot bookkeeping
        // abstracts which physical fast subarray holds the row).
        let src_fast = matches!(l.region(src_row), Region::Fast) && !l.all_fast;
        let dst_fast = matches!(l.region(dst_row), Region::Fast) && !l.all_fast;
        let hops = match (src_fast, dst_fast) {
            (true, false) => l.nearest_fast_hops(dst_sa),
            (false, true) => l.nearest_fast_hops(src_sa),
            _ => l.hop_distance(src_sa, dst_sa),
        }
        .max(1);
        let src_ras = t.ras_of(l.region(src_row));
        let dst_settle = t.rcd_of(l.region(dst_row));
        let pre = t.rp_of(l.region(dst_row)).max(t.rp_of(l.region(src_row)));
        Cycle::from(src_ras + hops * t.lisa_hop + dst_settle + pre)
    }

    /// Appends all timing state (per-bank registers, per-rank tRRD/tFAW/
    /// tCCD/tWTR trackers) and the command statistics to a snapshot word
    /// stream. The configuration itself does not cross — it is part of
    /// the snapshot's config hash and rebuilt by the restoring side.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.banks.len() as u64);
        for bank in &self.banks {
            match bank.open_row {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    out.push(u64::from(r));
                }
            }
            out.push(u64::from(bank.must_precharge));
            match bank.pinned {
                None => out.push(0),
                Some(pin) => {
                    out.push(1);
                    out.push(u64::from(pin.src_subarray));
                    out.push(u64::from(pin.dst_subarray));
                }
            }
            out.push(bank.act_at);
            out.push(bank.next_act);
            out.push(bank.next_rd);
            out.push(bank.next_wr);
            out.push(bank.next_pre);
            out.push(bank.next_reloc);
            match bank.merge_ready {
                None => out.push(0),
                Some(t) => {
                    out.push(1);
                    out.push(t);
                }
            }
            match bank.reloc_dst {
                None => out.push(0),
                Some(sa) => {
                    out.push(1);
                    out.push(u64::from(sa));
                }
            }
            out.push(bank.busy_until);
        }
        out.push(self.ranks.len() as u64);
        for rank in &self.ranks {
            out.push(rank.next_act_s);
            out.push(rank.next_act_l.len() as u64);
            for &t in &rank.next_act_l {
                out.push(t);
            }
            out.extend_from_slice(&rank.faw);
            out.push(rank.faw_idx as u64);
            out.push(rank.faw_count);
            out.push(rank.next_rd_s);
            for &t in &rank.next_rd_l {
                out.push(t);
            }
            out.push(rank.next_wr_s);
            for &t in &rank.next_wr_l {
                out.push(t);
            }
        }
        out.push(self.stats.activates);
        out.push(self.stats.activates_fast);
        out.push(self.stats.precharges);
        out.push(self.stats.reads);
        out.push(self.stats.writes);
        out.push(self.stats.refreshes);
        out.push(self.stats.relocs);
        out.push(self.stats.merges);
        out.push(self.stats.merges_fast);
        out.push(self.stats.lisa_clones);
        out.push(self.stats.lisa_hops);
        out.push(self.stats.bank_open_cycles);
    }

    /// Restores state saved by [`DramChannel::save_state`] into a channel
    /// built from the same [`DramConfig`].
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or a geometry mismatch.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        let banks = crate::take(src) as usize;
        assert_eq!(banks, self.banks.len(), "snapshot channel bank-count mismatch");
        for bank in &mut self.banks {
            bank.open_row = (crate::take(src) != 0).then(|| crate::take(src) as RowId);
            bank.must_precharge = crate::take(src) != 0;
            bank.pinned = (crate::take(src) != 0).then(|| Pin {
                src_subarray: crate::take(src) as u32,
                dst_subarray: crate::take(src) as u32,
            });
            bank.act_at = crate::take(src);
            bank.next_act = crate::take(src);
            bank.next_rd = crate::take(src);
            bank.next_wr = crate::take(src);
            bank.next_pre = crate::take(src);
            bank.next_reloc = crate::take(src);
            bank.merge_ready = (crate::take(src) != 0).then(|| crate::take(src));
            bank.reloc_dst = (crate::take(src) != 0).then(|| crate::take(src) as u32);
            bank.busy_until = crate::take(src);
        }
        let ranks = crate::take(src) as usize;
        assert_eq!(ranks, self.ranks.len(), "snapshot channel rank-count mismatch");
        for rank in &mut self.ranks {
            rank.next_act_s = crate::take(src);
            let groups = crate::take(src) as usize;
            assert_eq!(groups, rank.next_act_l.len(), "snapshot channel bank-group mismatch");
            for t in &mut rank.next_act_l {
                *t = crate::take(src);
            }
            for f in &mut rank.faw {
                *f = crate::take(src);
            }
            rank.faw_idx = crate::take(src) as usize;
            rank.faw_count = crate::take(src);
            rank.next_rd_s = crate::take(src);
            for t in &mut rank.next_rd_l {
                *t = crate::take(src);
            }
            rank.next_wr_s = crate::take(src);
            for t in &mut rank.next_wr_l {
                *t = crate::take(src);
            }
        }
        self.stats.activates = crate::take(src);
        self.stats.activates_fast = crate::take(src);
        self.stats.precharges = crate::take(src);
        self.stats.reads = crate::take(src);
        self.stats.writes = crate::take(src);
        self.stats.refreshes = crate::take(src);
        self.stats.relocs = crate::take(src);
        self.stats.merges = crate::take(src);
        self.stats.merges_fast = crate::take(src);
        self.stats.lisa_clones = crate::take(src);
        self.stats.lisa_hops = crate::take(src);
        self.stats.bank_open_cycles = crate::take(src);
    }

    /// Issues `cmd` to bank `b` at cycle `now`, updating all timing state
    /// and statistics.
    ///
    /// # Panics
    ///
    /// Panics if the command is not issuable at `now`
    /// (see [`DramChannel::can_issue`]); the scheduler must check first.
    pub fn issue(&mut self, b: BankAddr, cmd: &DramCommand, now: Cycle) -> IssueOutcome {
        assert!(
            self.can_issue(b, cmd, now),
            "illegal issue of {cmd:?} to {b:?} at {now} (earliest {})",
            self.earliest_issue(b, cmd, now)
        );
        let t = self.config.timing;
        let layout = self.config.layout;
        let bg = b.bankgroup as usize;
        let idx = self.bank_index(b);
        match *cmd {
            DramCommand::Activate { row } => {
                let region = layout.region(row);
                let (rcd, ras, rp) = (t.rcd_of(region), t.ras_of(region), t.rp_of(region));
                let bank = &mut self.banks[idx];
                bank.open_row = Some(row);
                bank.act_at = now;
                bank.next_rd = now + Cycle::from(rcd);
                bank.next_wr = now + Cycle::from(rcd);
                bank.next_pre = now + Cycle::from(ras);
                bank.next_act = now + Cycle::from(ras + rp).max(Cycle::from(t.rc));
                bank.next_reloc = bank.next_reloc.max(now + Cycle::from(ras));
                if bank.pinned.is_none() {
                    bank.merge_ready = None;
                    bank.reloc_dst = None;
                }
                self.ranks[b.rank as usize].record_act(now, bg, t.rrd_s, t.rrd_l);
                self.stats.record_act(region);
                IssueOutcome { completes_at: now + Cycle::from(rcd) }
            }
            DramCommand::Precharge => {
                let bank = &mut self.banks[idx];
                let region = bank.open_row.map_or(Region::Slow, |r| layout.region(r));
                if let Some(_row) = bank.open_row {
                    self.stats.bank_open_cycles += now.saturating_sub(bank.act_at);
                }
                bank.open_row = None;
                bank.must_precharge = false;
                if bank.pinned.is_none() {
                    bank.merge_ready = None;
                    bank.reloc_dst = None;
                }
                let rp = t.rp_of(region);
                bank.next_act = bank.next_act.max(now + Cycle::from(rp));
                self.stats.precharges += 1;
                IssueOutcome { completes_at: now + Cycle::from(rp) }
            }
            DramCommand::PrechargeAll => {
                let mut completes = now;
                for i in 0..self.banks.len() {
                    if self.rank_of_index(i) != b.rank {
                        continue;
                    }
                    let bank = &mut self.banks[i];
                    if bank.open_row.is_some() || bank.must_precharge {
                        let region = bank.open_row.map_or(Region::Slow, |r| layout.region(r));
                        self.stats.bank_open_cycles += now.saturating_sub(bank.act_at);
                        bank.open_row = None;
                        bank.must_precharge = false;
                        bank.merge_ready = None;
                        bank.reloc_dst = None;
                        let rp = t.rp_of(region);
                        bank.next_act = bank.next_act.max(now + Cycle::from(rp));
                        completes = completes.max(now + Cycle::from(rp));
                        self.stats.precharges += 1;
                    }
                }
                IssueOutcome { completes_at: completes }
            }
            DramCommand::Read { auto_pre, .. } => {
                let rank = &mut self.ranks[b.rank as usize];
                rank.next_rd_s = rank.next_rd_s.max(now + Cycle::from(t.ccd_s));
                rank.next_rd_l[bg] = rank.next_rd_l[bg].max(now + Cycle::from(t.ccd_l));
                let turnaround = now + Cycle::from(t.rd_to_wr());
                rank.next_wr_s = rank.next_wr_s.max(turnaround);
                rank.next_wr_l[bg] = rank.next_wr_l[bg].max(turnaround);
                let bank = &mut self.banks[idx];
                bank.next_pre = bank.next_pre.max(now + Cycle::from(t.rtp));
                bank.next_reloc = bank.next_reloc.max(now + Cycle::from(t.ccd_l));
                self.stats.reads += 1;
                if auto_pre {
                    let region = bank.open_row.map_or(Region::Slow, |r| layout.region(r));
                    self.stats.bank_open_cycles += now.saturating_sub(bank.act_at);
                    bank.open_row = None;
                    bank.next_act =
                        bank.next_act.max(now + Cycle::from(t.rtp) + Cycle::from(t.rp_of(region)));
                    self.stats.precharges += 1;
                }
                IssueOutcome { completes_at: now + Cycle::from(t.cl + t.bl) }
            }
            DramCommand::Write { auto_pre, .. } => {
                let rank = &mut self.ranks[b.rank as usize];
                rank.next_wr_s = rank.next_wr_s.max(now + Cycle::from(t.ccd_s));
                rank.next_wr_l[bg] = rank.next_wr_l[bg].max(now + Cycle::from(t.ccd_l));
                rank.next_rd_s = rank.next_rd_s.max(now + Cycle::from(t.cwl + t.bl + t.wtr_s));
                rank.next_rd_l[bg] =
                    rank.next_rd_l[bg].max(now + Cycle::from(t.cwl + t.bl + t.wtr_l));
                let write_recovery = now + Cycle::from(t.cwl + t.bl + t.wr);
                let bank = &mut self.banks[idx];
                bank.next_pre = bank.next_pre.max(write_recovery);
                bank.next_reloc = bank.next_reloc.max(now + Cycle::from(t.ccd_l));
                self.stats.writes += 1;
                if auto_pre {
                    let region = bank.open_row.map_or(Region::Slow, |r| layout.region(r));
                    self.stats.bank_open_cycles += now.saturating_sub(bank.act_at);
                    bank.open_row = None;
                    bank.next_act =
                        bank.next_act.max(write_recovery + Cycle::from(t.rp_of(region)));
                    self.stats.precharges += 1;
                }
                IssueOutcome { completes_at: now + Cycle::from(t.cwl + t.bl) }
            }
            DramCommand::Refresh => {
                for i in 0..self.banks.len() {
                    if self.rank_of_index(i) == b.rank {
                        let bank = &mut self.banks[i];
                        bank.next_act = bank.next_act.max(now + Cycle::from(t.rfc));
                        bank.busy_until = bank.busy_until.max(now + Cycle::from(t.rfc));
                    }
                }
                self.stats.refreshes += 1;
                IssueOutcome { completes_at: now + Cycle::from(t.rfc) }
            }
            DramCommand::RelocBurst { dst_subarray, count, .. } => {
                let dur = Cycle::from(t.reloc_to_reloc) * Cycle::from(count.max(1));
                let bank = &mut self.banks[idx];
                let open = bank.open_row.expect("RELOC burst requires the source row open");
                bank.pinned = Some(Pin { src_subarray: layout.subarray_id(open), dst_subarray });
                bank.next_reloc = now + dur;
                bank.next_rd = bank.next_rd.max(now + dur);
                bank.next_wr = bank.next_wr.max(now + dur);
                bank.merge_ready = Some(now + dur);
                bank.reloc_dst = Some(dst_subarray);
                self.stats.relocs += u64::from(count);
                IssueOutcome { completes_at: now + dur }
            }
            DramCommand::Reloc { dst_subarray, .. } => {
                let bank = &mut self.banks[idx];
                if bank.pinned.is_none() {
                    // First RELOC of the sequence: latch the source row in
                    // its subarray (FIGARO's per-subarray row-address
                    // latch). The bank's demand row may now close and
                    // other subarrays may activate freely.
                    let open = bank.open_row.expect("first RELOC requires the source row open");
                    bank.pinned =
                        Some(Pin { src_subarray: layout.subarray_id(open), dst_subarray });
                }
                bank.next_reloc = now + Cycle::from(t.reloc_to_reloc);
                // The column path (decoders + GRB) is occupied briefly.
                bank.next_rd = bank.next_rd.max(now + Cycle::from(t.reloc_to_reloc));
                bank.next_wr = bank.next_wr.max(now + Cycle::from(t.reloc_to_reloc));
                bank.merge_ready = Some(now + Cycle::from(t.reloc));
                bank.reloc_dst = Some(dst_subarray);
                self.stats.relocs += 1;
                IssueOutcome { completes_at: now + Cycle::from(t.reloc) }
            }
            DramCommand::ActivateMerge { row } => {
                let region = layout.region(row);
                let settle = t.rcd_of(region);
                let bank = &mut self.banks[idx];
                // The destination subarray captures the relocated columns
                // and locally precharges; the pin is released. The row
                // decoder is busy for the settle time, holding off other
                // bank commands briefly.
                bank.pinned = None;
                bank.merge_ready = None;
                bank.reloc_dst = None;
                // The destination subarray precharges its own bitlines
                // locally after capturing the columns; other subarrays only
                // wait out the row-decoder occupancy (settle time).
                bank.next_act = bank.next_act.max(now + Cycle::from(settle));
                bank.next_rd = bank.next_rd.max(now + Cycle::from(settle));
                bank.next_wr = bank.next_wr.max(now + Cycle::from(settle));
                self.ranks[b.rank as usize].record_act(now, bg, t.rrd_s, t.rrd_l);
                self.stats.record_merge(region);
                IssueOutcome { completes_at: now + Cycle::from(settle) }
            }
            DramCommand::LisaClone { src_row, dst_row } => {
                let dur = self.lisa_clone_duration(src_row, dst_row);
                let l = self.config.layout;
                let hops = l.hop_distance(l.subarray_id(src_row), l.subarray_id(dst_row)).max(1);
                let bank = &mut self.banks[idx];
                bank.busy_until = bank.busy_until.max(now + dur);
                bank.next_act = bank.next_act.max(now + dur);
                self.stats.bank_open_cycles += dur;
                self.ranks[b.rank as usize].record_act(now, bg, t.rrd_s, t.rrd_l);
                self.stats.lisa_clones += 1;
                self.stats.lisa_hops += u64::from(hops);
                IssueOutcome { completes_at: now + dur }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubarrayLayout;

    fn channel() -> DramChannel {
        DramChannel::new(&DramConfig::ddr4_paper_default())
    }

    fn bank0() -> BankAddr {
        BankAddr { rank: 0, bankgroup: 0, bank: 0 }
    }

    #[test]
    fn read_requires_open_row() {
        let c = channel();
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        assert_eq!(c.earliest_issue(bank0(), &rd, 0), ILLEGAL);
    }

    #[test]
    fn activate_then_read_waits_trcd() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        let rd = DramCommand::Read { col: 3, auto_pre: false };
        assert_eq!(c.earliest_issue(bank0(), &rd, 0), 11);
        assert!(!c.can_issue(bank0(), &rd, 10));
        assert!(c.can_issue(bank0(), &rd, 11));
        let out = c.issue(bank0(), &rd, 11);
        assert_eq!(out.completes_at, 11 + 11 + 4);
    }

    #[test]
    fn next_ready_floors_at_from_and_maps_illegal_to_none() {
        let mut c = channel();
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        assert_eq!(c.next_ready(bank0(), &rd, 5), None, "closed bank cannot read");
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        // tRCD gates the read at 11; asking from an earlier cycle returns
        // the constraint, asking from a later cycle returns `from` itself.
        assert_eq!(c.next_ready(bank0(), &rd, 3), Some(11));
        assert_eq!(c.next_ready(bank0(), &rd, 40), Some(40));
    }

    #[test]
    fn earliest_issue_never_reports_the_past_and_matches_next_ready() {
        // Regression: `earliest_issue` used to ignore `now` and could
        // report an issue time long in the past once the constraints had
        // elapsed, disagreeing with `next_ready`. Legal commands must be
        // clamped to `now`; illegal ones stay ILLEGAL at any `now`.
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        let pre = DramCommand::Precharge;
        for now in [0u64, 5, 11, 100, 10_000] {
            for cmd in [&rd, &pre] {
                let e = c.earliest_issue(bank0(), cmd, now);
                assert_ne!(e, ILLEGAL);
                assert!(e >= now, "{cmd:?} at now={now} reported past cycle {e}");
                assert_eq!(c.next_ready(bank0(), cmd, now), Some(e), "{cmd:?} at now={now}");
            }
        }
        // tRCD still gates the read when asked before it elapses.
        assert_eq!(c.earliest_issue(bank0(), &rd, 0), 11);
        // Illegal regardless of time: ACT on the open bank.
        let act = DramCommand::Activate { row: 9 };
        assert_eq!(c.earliest_issue(bank0(), &act, 10_000), ILLEGAL);
        assert_eq!(c.next_ready(bank0(), &act, 10_000), None);
    }

    #[test]
    fn double_activate_same_bank_is_illegal_without_precharge() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Activate { row: 8 }, 100), ILLEGAL);
    }

    #[test]
    fn precharge_respects_tras_then_act_waits_trp() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Precharge, 0), 28);
        c.issue(bank0(), &DramCommand::Precharge, 28);
        let act = DramCommand::Activate { row: 8 };
        assert_eq!(c.earliest_issue(bank0(), &act, 28), 39); // tRC = tRAS + tRP
        c.issue(bank0(), &act, 39);
        assert_eq!(c.open_row(bank0()), Some(8));
    }

    #[test]
    fn read_to_pre_respects_trtp() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        // Read late in the open interval: PRE gated by rtp not ras.
        c.issue(bank0(), &DramCommand::Read { col: 0, auto_pre: false }, 30);
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Precharge, 30), 36);
    }

    #[test]
    fn faw_limits_fifth_activate() {
        let mut c = channel();
        let t = c.config().timing;
        // Four ACTs to different bank groups, spaced by tRRD_S.
        let mut now = 0;
        for bg in 0..4 {
            let b = BankAddr { rank: 0, bankgroup: bg, bank: 0 };
            now = c.earliest_issue(b, &DramCommand::Activate { row: 1 }, now).max(now);
            c.issue(b, &DramCommand::Activate { row: 1 }, now);
        }
        // Fifth ACT (different bank, bankgroup 0) must wait for the FAW window.
        let b5 = BankAddr { rank: 0, bankgroup: 0, bank: 1 };
        let e = c.earliest_issue(b5, &DramCommand::Activate { row: 1 }, now);
        assert!(e >= Cycle::from(t.faw), "fifth ACT at {e}, expected >= tFAW {}", t.faw);
    }

    #[test]
    fn ccd_long_within_bankgroup_short_across() {
        let mut c = channel();
        let b_same = BankAddr { rank: 0, bankgroup: 0, bank: 1 };
        let b_diff = BankAddr { rank: 0, bankgroup: 1, bank: 0 };
        c.issue(bank0(), &DramCommand::Activate { row: 1 }, 0);
        c.issue(b_same, &DramCommand::Activate { row: 1 }, 5); // tRRD_L within the group
        c.issue(b_diff, &DramCommand::Activate { row: 1 }, 9);
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        c.issue(bank0(), &rd, 19);
        // Same bank group: tCCD_L = 5; different: tCCD_S = 4.
        assert_eq!(c.earliest_issue(b_same, &rd, 19), 24);
        assert_eq!(c.earliest_issue(b_diff, &rd, 19), 23);
    }

    #[test]
    fn write_to_read_turnaround_uses_wtr() {
        let mut c = channel();
        let t = c.config().timing;
        c.issue(bank0(), &DramCommand::Activate { row: 1 }, 0);
        c.issue(bank0(), &DramCommand::Write { col: 0, auto_pre: false }, 11);
        let rd = DramCommand::Read { col: 1, auto_pre: false };
        let e = c.earliest_issue(bank0(), &rd, 11);
        assert_eq!(e, 11 + Cycle::from(t.cwl + t.bl + t.wtr_l));
    }

    #[test]
    fn reloc_waits_for_full_restoration() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        let reloc = DramCommand::Reloc { src_col: 3, dst_subarray: 5, dst_col: 1 };
        // row 7 is in subarray 0; dst 5 is fine, but must wait tRAS = 28.
        assert_eq!(c.earliest_issue(bank0(), &reloc, 0), 28);
        c.issue(bank0(), &reloc, 28);
        // Back-to-back RELOCs spaced by the internal column cycle.
        let gap = u64::from(c.config().timing.reloc_to_reloc);
        assert_eq!(c.earliest_issue(bank0(), &reloc, 28), 28 + gap);
    }

    #[test]
    fn reloc_within_same_subarray_is_illegal() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        let reloc = DramCommand::Reloc { src_col: 3, dst_subarray: 0, dst_col: 1 };
        assert_eq!(c.earliest_issue(bank0(), &reloc, 28), ILLEGAL);
    }

    #[test]
    fn merge_requires_reloc_and_matching_subarray_then_unpins() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        let merge_row = 5 * 512 + 3; // a row in subarray 5
        let merge = DramCommand::ActivateMerge { row: merge_row };
        assert_eq!(c.earliest_issue(bank0(), &merge, 28), ILLEGAL); // no RELOC yet
        c.issue(bank0(), &DramCommand::Reloc { src_col: 3, dst_subarray: 5, dst_col: 1 }, 28);
        assert!(c.is_pinned(bank0()));
        // Wrong subarray is illegal.
        let wrong = DramCommand::ActivateMerge { row: 9 * 512 };
        assert_eq!(c.earliest_issue(bank0(), &wrong, 40), ILLEGAL);
        // The last RELOC completed at 29; asked from 40 the merge is ready
        // immediately (clamped to `now`, never in the past).
        assert_eq!(c.earliest_issue(bank0(), &merge, 29), 29);
        let e = c.earliest_issue(bank0(), &merge, 40);
        assert_eq!(e, 40);
        c.issue(bank0(), &merge, 40);
        assert!(!c.is_pinned(bank0()), "merge releases the pin");
        // The demand row is still open and servable.
        assert_eq!(c.open_row(bank0()), Some(7));
        let rd_at = c.earliest_issue(bank0(), &DramCommand::Read { col: 0, auto_pre: false }, 40);
        assert_ne!(rd_at, ILLEGAL);
    }

    #[test]
    fn pinned_bank_serves_other_subarrays_during_relocation() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0); // subarray 0
        c.issue(bank0(), &DramCommand::Reloc { src_col: 0, dst_subarray: 5, dst_col: 0 }, 28);
        // Demand precharges the source row and opens a row in subarray 9 —
        // legal mid-train thanks to FIGARO's per-subarray latches.
        c.issue(bank0(), &DramCommand::Precharge, 29);
        let other = DramCommand::Activate { row: 9 * 512 };
        let t = c.earliest_issue(bank0(), &other, 29);
        assert_ne!(t, ILLEGAL);
        c.issue(bank0(), &other, t.max(29));
        // The train continues while subarray 9 is open.
        let reloc = DramCommand::Reloc { src_col: 1, dst_subarray: 5, dst_col: 1 };
        let rt = c.earliest_issue(bank0(), &reloc, t + 1);
        assert_ne!(rt, ILLEGAL);
        c.issue(bank0(), &reloc, rt.max(t + 1));
        // Close subarray 9's row; the pinned subarrays stay off-limits.
        let pt = c.earliest_issue(bank0(), &DramCommand::Precharge, rt + 40).max(rt + 40);
        c.issue(bank0(), &DramCommand::Precharge, pt);
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Activate { row: 3 }, 200), ILLEGAL); // subarray 0 pinned
        assert_eq!(
            c.earliest_issue(bank0(), &DramCommand::Activate { row: 5 * 512 }, 200),
            ILLEGAL
        ); // subarray 5 pinned
           // Finish the train: merge into subarray 5, pin released.
        let merge = DramCommand::ActivateMerge { row: 5 * 512 };
        let mt = c.earliest_issue(bank0(), &merge, 200);
        assert_ne!(mt, ILLEGAL);
        c.issue(bank0(), &merge, mt.max(200));
        assert!(!c.is_pinned(bank0()));
        let at = c.earliest_issue(bank0(), &DramCommand::Activate { row: 3 }, 300);
        assert_ne!(at, ILLEGAL);
    }

    #[test]
    fn reloc_sequence_must_keep_one_destination() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        c.issue(bank0(), &DramCommand::Reloc { src_col: 0, dst_subarray: 5, dst_col: 0 }, 28);
        let other_dst = DramCommand::Reloc { src_col: 1, dst_subarray: 6, dst_col: 1 };
        assert_eq!(c.earliest_issue(bank0(), &other_dst, 40), ILLEGAL);
    }

    #[test]
    fn lisa_clone_duration_grows_with_distance() {
        let cfg = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let c = DramChannel::new(&cfg);
        let fast0_row = cfg.layout.fast_row_base(0); // near regular subarray 3
        let near = c.lisa_clone_duration(3 * 512, fast0_row);
        let far = c.lisa_clone_duration(0, fast0_row);
        assert!(far > near, "far {far} should exceed near {near}");
    }

    #[test]
    fn lisa_clone_occupies_the_bank() {
        let cfg = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let mut c = DramChannel::new(&cfg);
        let dst = cfg.layout.fast_row_base(0);
        let clone = DramCommand::LisaClone { src_row: 0, dst_row: dst };
        let out = c.issue(bank0(), &clone, 0);
        assert!(c.is_busy(bank0(), out.completes_at - 1));
        assert!(!c.is_busy(bank0(), out.completes_at));
        let e = c.earliest_issue(bank0(), &DramCommand::Activate { row: 1 }, 0);
        assert_eq!(e, out.completes_at);
    }

    #[test]
    fn refresh_requires_all_banks_closed_and_blocks_activates() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Refresh, 50), ILLEGAL);
        c.issue(bank0(), &DramCommand::Precharge, 28);
        let e = c.earliest_issue(bank0(), &DramCommand::Refresh, 28);
        assert_ne!(e, ILLEGAL);
        let t_ref = e.max(28);
        let out = c.issue(bank0(), &DramCommand::Refresh, t_ref);
        assert_eq!(out.completes_at, t_ref + 280);
        let other = BankAddr { rank: 0, bankgroup: 3, bank: 3 };
        let act_e = c.earliest_issue(other, &DramCommand::Activate { row: 0 }, t_ref);
        assert!(act_e >= out.completes_at);
    }

    #[test]
    fn auto_precharge_closes_the_bank() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        c.issue(bank0(), &DramCommand::Read { col: 0, auto_pre: true }, 11);
        assert_eq!(c.open_row(bank0()), None);
        let e = c.earliest_issue(bank0(), &DramCommand::Activate { row: 9 }, 11);
        assert!(e >= 11 + 6 + 11); // rtp + rp
    }

    #[test]
    fn fast_region_rows_use_reduced_timing() {
        let cfg = DramConfig {
            layout: SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32),
            ..DramConfig::ddr4_paper_default()
        };
        let mut c = DramChannel::new(&cfg);
        let fast_row = cfg.layout.fast_row_base(0);
        c.issue(bank0(), &DramCommand::Activate { row: fast_row }, 0);
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        assert_eq!(c.earliest_issue(bank0(), &rd, 0), 6); // fast tRCD
        assert_eq!(c.earliest_issue(bank0(), &DramCommand::Precharge, 0), 11); // fast tRAS
    }

    #[test]
    fn stats_count_commands() {
        let mut c = channel();
        c.issue(bank0(), &DramCommand::Activate { row: 7 }, 0);
        c.issue(bank0(), &DramCommand::Read { col: 0, auto_pre: false }, 11);
        c.issue(bank0(), &DramCommand::Precharge, 28);
        let s = c.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.precharges, 1);
        assert!(s.bank_open_cycles >= 28);
    }
}
