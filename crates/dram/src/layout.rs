//! Subarray layout of a DRAM bank: how many regular (slow) subarrays a bank
//! has, whether fast subarrays exist, and where they sit physically.
//!
//! Three layouts cover all configurations the paper evaluates:
//!
//! * **Homogeneous** — only regular subarrays (`Base`, `FIGCache-Slow`).
//! * **Appended fast subarrays** — a small number of fast subarrays placed
//!   at the edge of the bank (`FIGCache-Fast`; FIGARO's relocation latency
//!   is distance-independent so placement does not matter).
//! * **Interleaved fast subarrays** — fast subarrays spread evenly among the
//!   regular ones (`LISA-VILLA`; its relocation latency grows with hop
//!   distance, so interleaving is required to bound it).
//!
//! Row-id convention: regular rows occupy ids `0..regular_rows()`; fast rows
//! are appended after them, so fast row ids are
//! `regular_rows()..total_rows()`. `LL-DRAM` (all subarrays fast) is
//! expressed with [`SubarrayLayout::all_fast`].

use crate::RowId;

/// Latency class of a row's subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Regular long-bitline subarray (full DDR4 latency).
    Slow,
    /// Short-bitline fast subarray (reduced tRCD/tRP/tRAS).
    Fast,
}

/// Where fast subarrays sit within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FastLayout {
    /// No fast subarrays.
    None,
    /// `count` fast subarrays appended at the edge of the bank
    /// (FIGCache-Fast; FIGARO does not care about distance).
    Appended {
        /// Number of fast subarrays.
        count: u32,
        /// Rows in each fast subarray (the paper: 32).
        rows_each: u32,
    },
    /// `count` fast subarrays interleaved evenly among the regular
    /// subarrays (LISA-VILLA's distance-bounding placement).
    Interleaved {
        /// Number of fast subarrays.
        count: u32,
        /// Rows in each fast subarray (the paper: 32).
        rows_each: u32,
    },
}

/// Decoded placement of a row id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowPlace {
    /// A row in regular subarray `subarray` at index `index` within it.
    Regular {
        /// Regular subarray index, `0..regular_subarrays`.
        subarray: u32,
        /// Row index within the subarray.
        index: u32,
    },
    /// A row in fast subarray `fast` at index `index` within it.
    Fast {
        /// Fast subarray index, `0..fast_count()`.
        fast: u32,
        /// Row index within the fast subarray.
        index: u32,
    },
}

/// Subarray layout of one bank (identical across all banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubarrayLayout {
    /// Number of regular (slow) subarrays per bank (the paper: 64).
    pub regular_subarrays: u32,
    /// Rows per regular subarray (the paper: 512).
    pub rows_per_subarray: u32,
    /// Fast-subarray placement.
    pub fast: FastLayout,
    /// When `true`, *regular* subarrays also use fast timing (the paper's
    /// idealized `LL-DRAM` configuration).
    pub all_fast: bool,
}

impl SubarrayLayout {
    /// A homogeneous bank with `subarrays` regular subarrays of
    /// `rows_per_subarray` rows each and no fast region.
    #[must_use]
    pub fn homogeneous(subarrays: u32, rows_per_subarray: u32) -> Self {
        Self {
            regular_subarrays: subarrays,
            rows_per_subarray,
            fast: FastLayout::None,
            all_fast: false,
        }
    }

    /// The paper's FIGCache-Fast layout: the homogeneous bank plus `count`
    /// appended fast subarrays of `rows_each` rows.
    #[must_use]
    pub fn with_appended_fast(mut self, count: u32, rows_each: u32) -> Self {
        self.fast = FastLayout::Appended { count, rows_each };
        self
    }

    /// The LISA-VILLA layout: `count` fast subarrays of `rows_each` rows
    /// interleaved among the regular subarrays.
    #[must_use]
    pub fn with_interleaved_fast(mut self, count: u32, rows_each: u32) -> Self {
        self.fast = FastLayout::Interleaved { count, rows_each };
        self
    }

    /// The paper's `LL-DRAM` idealized layout: every subarray is fast.
    #[must_use]
    pub fn all_fast(subarrays: u32, rows_per_subarray: u32) -> Self {
        Self {
            regular_subarrays: subarrays,
            rows_per_subarray,
            fast: FastLayout::None,
            all_fast: true,
        }
    }

    /// Number of fast subarrays.
    #[must_use]
    pub fn fast_count(&self) -> u32 {
        match self.fast {
            FastLayout::None => 0,
            FastLayout::Appended { count, .. } | FastLayout::Interleaved { count, .. } => count,
        }
    }

    /// Rows per fast subarray (0 when there are none).
    #[must_use]
    pub fn fast_rows_each(&self) -> u32 {
        match self.fast {
            FastLayout::None => 0,
            FastLayout::Appended { rows_each, .. } | FastLayout::Interleaved { rows_each, .. } => {
                rows_each
            }
        }
    }

    /// Rows in regular subarrays.
    #[must_use]
    pub fn regular_rows(&self) -> u32 {
        self.regular_subarrays * self.rows_per_subarray
    }

    /// Total rows per bank: regular rows plus appended fast rows.
    #[must_use]
    pub fn total_rows(&self) -> u32 {
        self.regular_rows() + self.fast_count() * self.fast_rows_each()
    }

    /// First row id of fast subarray `fast`.
    ///
    /// # Panics
    ///
    /// Panics if `fast >= fast_count()`.
    #[must_use]
    pub fn fast_row_base(&self, fast: u32) -> RowId {
        assert!(fast < self.fast_count(), "fast subarray {fast} out of range");
        self.regular_rows() + fast * self.fast_rows_each()
    }

    /// Decodes a row id to its subarray placement.
    ///
    /// # Panics
    ///
    /// Panics if `row >= total_rows()`.
    #[must_use]
    pub fn place(&self, row: RowId) -> RowPlace {
        let regular = self.regular_rows();
        if row < regular {
            RowPlace::Regular {
                subarray: row / self.rows_per_subarray,
                index: row % self.rows_per_subarray,
            }
        } else {
            let off = row - regular;
            let each = self.fast_rows_each();
            assert!(each > 0 && row < self.total_rows(), "row {row} out of range");
            RowPlace::Fast { fast: off / each, index: off % each }
        }
    }

    /// Latency region of a row: `Fast` for fast-subarray rows (or for every
    /// row under `all_fast`), `Slow` otherwise.
    #[must_use]
    pub fn region(&self, row: RowId) -> Region {
        if self.all_fast {
            return Region::Fast;
        }
        match self.place(row) {
            RowPlace::Regular { .. } => Region::Slow,
            RowPlace::Fast { .. } => Region::Fast,
        }
    }

    /// A dense identifier for a row's subarray that is unique across both
    /// regular and fast subarrays (regular subarrays first). FIGARO cannot
    /// relocate within a single subarray, so engines use this to detect
    /// same-subarray source/destination pairs.
    #[must_use]
    pub fn subarray_id(&self, row: RowId) -> u32 {
        match self.place(row) {
            RowPlace::Regular { subarray, .. } => subarray,
            RowPlace::Fast { fast, .. } => self.regular_subarrays + fast,
        }
    }

    /// Physical position of a subarray (regular or fast) along the bank, in
    /// subarray-slot units, used to compute LISA hop distances.
    ///
    /// * `Appended` fast subarrays sit after the last regular subarray.
    /// * `Interleaved` fast subarray `k` (of `n`) sits between regular
    ///   subarrays, after regular slot `(k + 1) * regular / n - 1`.
    #[must_use]
    pub fn physical_slot(&self, subarray_id: u32) -> u32 {
        let regular = self.regular_subarrays;
        if subarray_id < regular {
            // A regular subarray is displaced by every fast subarray
            // inserted before it.
            match self.fast {
                FastLayout::Interleaved { count, .. } if count > 0 => {
                    let stride = regular.div_ceil(count);
                    subarray_id + subarray_id / stride
                }
                _ => subarray_id,
            }
        } else {
            let k = subarray_id - regular;
            match self.fast {
                FastLayout::None => unreachable!("no fast subarrays"),
                FastLayout::Appended { .. } => regular + k,
                FastLayout::Interleaved { count, .. } => {
                    let stride = regular.div_ceil(count);
                    // Fast k sits right after regular subarray (k+1)*stride - 1,
                    // whose displaced slot is that id + k (k fast subarrays
                    // inserted before it).
                    (k + 1) * stride + k
                }
            }
        }
    }

    /// LISA hop distance (in subarray slots) between two subarrays.
    #[must_use]
    pub fn hop_distance(&self, subarray_a: u32, subarray_b: u32) -> u32 {
        self.physical_slot(subarray_a).abs_diff(self.physical_slot(subarray_b))
    }

    /// Hop distance from `subarray_id` to the **nearest** fast subarray —
    /// the distance a LISA-VILLA clone actually travels, because VILLA
    /// allocates cache rows in the closest fast subarray (that is the
    /// whole point of interleaving them).
    #[must_use]
    pub fn nearest_fast_hops(&self, subarray_id: u32) -> u32 {
        let n = self.fast_count();
        assert!(n > 0, "no fast subarrays in this layout");
        (0..n)
            .map(|k| self.hop_distance(subarray_id, self.regular_subarrays + k))
            .min()
            .expect("fast_count > 0")
    }

    /// Checks layout consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// subarrays, zero rows, or a fast layout with zero-count/zero-rows).
    pub fn validate(&self) -> Result<(), String> {
        if self.regular_subarrays == 0 {
            return Err("layout must have at least one regular subarray".into());
        }
        if self.rows_per_subarray == 0 {
            return Err("rows_per_subarray must be non-zero".into());
        }
        match self.fast {
            FastLayout::None => {}
            FastLayout::Appended { count, rows_each }
            | FastLayout::Interleaved { count, rows_each } => {
                if count == 0 || rows_each == 0 {
                    return Err("fast layout must have non-zero count and rows_each".into());
                }
                if matches!(self.fast, FastLayout::Interleaved { .. })
                    && count > self.regular_subarrays
                {
                    return Err(format!(
                        "cannot interleave {count} fast subarrays among {} regular ones",
                        self.regular_subarrays
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fast() -> SubarrayLayout {
        SubarrayLayout::homogeneous(64, 512).with_appended_fast(2, 32)
    }

    fn paper_lisa() -> SubarrayLayout {
        SubarrayLayout::homogeneous(64, 512).with_interleaved_fast(16, 32)
    }

    #[test]
    fn row_counts() {
        assert_eq!(paper_fast().total_rows(), 64 * 512 + 64);
        assert_eq!(paper_lisa().total_rows(), 64 * 512 + 512);
        assert_eq!(SubarrayLayout::homogeneous(64, 512).total_rows(), 32768);
    }

    #[test]
    fn place_regular_and_fast() {
        let l = paper_fast();
        assert_eq!(l.place(0), RowPlace::Regular { subarray: 0, index: 0 });
        assert_eq!(l.place(513), RowPlace::Regular { subarray: 1, index: 1 });
        assert_eq!(l.place(32768), RowPlace::Fast { fast: 0, index: 0 });
        assert_eq!(l.place(32768 + 33), RowPlace::Fast { fast: 1, index: 1 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn place_out_of_range_panics() {
        let l = SubarrayLayout::homogeneous(4, 8);
        let _ = l.place(32);
    }

    #[test]
    fn regions() {
        let l = paper_fast();
        assert_eq!(l.region(100), Region::Slow);
        assert_eq!(l.region(32768), Region::Fast);
        let ll = SubarrayLayout::all_fast(64, 512);
        assert_eq!(ll.region(100), Region::Fast);
    }

    #[test]
    fn subarray_ids_are_dense() {
        let l = paper_fast();
        assert_eq!(l.subarray_id(0), 0);
        assert_eq!(l.subarray_id(512), 1);
        assert_eq!(l.subarray_id(32768), 64);
        assert_eq!(l.subarray_id(32768 + 32), 65);
    }

    #[test]
    fn interleaved_slots_bound_hop_distance() {
        let l = paper_lisa();
        // stride = 64/16 = 4: fast k sits after regular 4k+3.
        // Every regular subarray should be within 4 slots of some fast one.
        for s in 0..64 {
            let min_hops = (0..16).map(|k| l.hop_distance(s, 64 + k)).min().unwrap();
            assert!(min_hops <= 4, "regular subarray {s} is {min_hops} hops from nearest fast");
        }
    }

    #[test]
    fn appended_fast_is_far_from_subarray_zero() {
        let l = paper_fast();
        assert_eq!(l.hop_distance(0, 64), 64);
        assert_eq!(l.hop_distance(63, 64), 1);
    }

    #[test]
    fn physical_slots_are_unique() {
        for l in [paper_fast(), paper_lisa()] {
            let total = l.regular_subarrays + l.fast_count();
            let mut slots: Vec<u32> = (0..total).map(|s| l.physical_slot(s)).collect();
            slots.sort_unstable();
            slots.dedup();
            assert_eq!(slots.len() as u32, total, "slots must be unique in {l:?}");
        }
    }

    #[test]
    fn validate_catches_bad_interleave() {
        let l = SubarrayLayout::homogeneous(4, 8).with_interleaved_fast(8, 4);
        assert!(l.validate().is_err());
    }
}
