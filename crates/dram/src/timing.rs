//! DDR4 timing parameters in bus cycles, fast-region scaling, and the
//! FIGARO `RELOC` timing additions.

use crate::layout::Region;

/// JEDEC-style DDR4 timing parameters, expressed in **bus cycles**
/// (the command clock; one cycle = `t_ck_ps` picoseconds).
///
/// The `fast_*` fields hold the reduced activation/precharge/restoration
/// latencies of fast (short-bitline) subarrays. Per the paper (which reuses
/// the LISA-VILLA SPICE model): tRCD −45.5%, tRP −38.2%, tRAS −62.9%.
///
/// The FIGARO additions are `reloc` (the guard-banded `RELOC` command
/// latency — 1 ns in the paper, i.e. one 1.25 ns bus cycle) and
/// `reloc_to_reloc` (the internal column-cycle gap between consecutive
/// `RELOC`s; `RELOC` never drives the external data bus so this can be
/// shorter than `tCCD_S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Bus clock period in picoseconds (DDR4-1600: 1250 ps).
    pub t_ck_ps: u64,
    /// CAS (read) latency.
    pub cl: u32,
    /// Write latency (CWL).
    pub cwl: u32,
    /// ACT → column command, slow region.
    pub rcd: u32,
    /// PRE duration, slow region.
    pub rp: u32,
    /// ACT → PRE minimum (restoration), slow region.
    pub ras: u32,
    /// ACT → ACT same bank (`ras + rp`).
    pub rc: u32,
    /// Data burst duration on the bus (BL8 on DDR: 4 cycles).
    pub bl: u32,
    /// Column → column, different bank group.
    pub ccd_s: u32,
    /// Column → column, same bank group.
    pub ccd_l: u32,
    /// ACT → ACT, different bank group, same rank.
    pub rrd_s: u32,
    /// ACT → ACT, same bank group, same rank.
    pub rrd_l: u32,
    /// Four-activate window per rank.
    pub faw: u32,
    /// READ → PRE same bank.
    pub rtp: u32,
    /// Write recovery: end of write data → PRE same bank.
    pub wr: u32,
    /// Write → read turnaround (end of write data → READ), different bank group.
    pub wtr_s: u32,
    /// Write → read turnaround, same bank group.
    pub wtr_l: u32,
    /// Average refresh interval.
    pub refi: u32,
    /// Refresh cycle time (all-bank REF duration).
    pub rfc: u32,
    /// ACT → column command, fast region.
    pub fast_rcd: u32,
    /// PRE duration, fast region.
    pub fast_rp: u32,
    /// ACT → PRE minimum, fast region.
    pub fast_ras: u32,
    /// `RELOC` command latency (guard-banded GRB sense + destination LRB
    /// drive). The paper's SPICE analysis: 0.57 ns worst case, +43%
    /// guardband → 1 ns → 1 bus cycle.
    pub reloc: u32,
    /// Minimum gap between consecutive `RELOC` commands in the same bank
    /// (internal column cycle; no external bus burst is involved).
    pub reloc_to_reloc: u32,
    /// Per-hop latency of a LISA row-buffer-movement step, used by the
    /// LISA-VILLA baseline's row-granularity clone (distance-dependent).
    pub lisa_hop: u32,
}

impl TimingParams {
    /// DDR4-1600 (800 MHz bus) timing used throughout the paper's
    /// evaluation. tRAS = 28 cycles = 35 ns matches the paper's Section 4.2.
    #[must_use]
    pub fn ddr4_1600() -> Self {
        let rcd = 11;
        let rp = 11;
        let ras = 28;
        Self {
            t_ck_ps: 1250,
            cl: 11,
            cwl: 9,
            rcd,
            rp,
            ras,
            rc: ras + rp,
            bl: 4,
            ccd_s: 4,
            ccd_l: 5,
            rrd_s: 4,
            rrd_l: 5,
            faw: 20,
            rtp: 6,
            wr: 12,
            wtr_s: 2,
            wtr_l: 6,
            refi: 6240, // 7.8 us
            rfc: 280,   // 350 ns (8 Gb device class)
            fast_rcd: scale_down(rcd, 0.455),
            fast_rp: scale_down(rp, 0.382),
            fast_ras: scale_down(ras, 0.629),
            reloc: 1,
            reloc_to_reloc: 1,
            lisa_hop: 4,
        }
    }

    /// tRCD of `region`.
    #[must_use]
    pub fn rcd_of(&self, region: Region) -> u32 {
        match region {
            Region::Slow => self.rcd,
            Region::Fast => self.fast_rcd,
        }
    }

    /// tRP of `region`.
    #[must_use]
    pub fn rp_of(&self, region: Region) -> u32 {
        match region {
            Region::Slow => self.rp,
            Region::Fast => self.fast_rp,
        }
    }

    /// tRAS of `region`.
    #[must_use]
    pub fn ras_of(&self, region: Region) -> u32 {
        match region {
            Region::Slow => self.ras,
            Region::Fast => self.fast_ras,
        }
    }

    /// Read-to-write bus turnaround: `cl + bl + 2 - cwl`, clamped at zero.
    #[must_use]
    pub fn rd_to_wr(&self) -> u32 {
        (self.cl + self.bl + 2).saturating_sub(self.cwl)
    }

    /// Converts a cycle count to nanoseconds under this clock.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.t_ck_ps as f64 / 1000.0
    }

    /// Checks basic sanity relations between parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relation
    /// (e.g. `rc < ras + rp`, or a fast latency exceeding its slow one).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ck_ps == 0 {
            return Err("t_ck_ps must be non-zero".into());
        }
        if self.rc < self.ras + self.rp {
            return Err(format!("rc ({}) < ras + rp ({})", self.rc, self.ras + self.rp));
        }
        if self.fast_rcd > self.rcd || self.fast_rp > self.rp || self.fast_ras > self.ras {
            return Err("fast-region latencies must not exceed slow-region ones".into());
        }
        for (name, v) in [
            ("cl", self.cl),
            ("rcd", self.rcd),
            ("rp", self.rp),
            ("ras", self.ras),
            ("bl", self.bl),
            ("reloc", self.reloc),
            ("reloc_to_reloc", self.reloc_to_reloc),
            ("refi", self.refi),
            ("rfc", self.rfc),
        ] {
            if v == 0 {
                return Err(format!("timing parameter `{name}` must be non-zero"));
            }
        }
        if self.refi <= self.rfc {
            return Err(format!("refi ({}) must exceed rfc ({})", self.refi, self.rfc));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_1600()
    }
}

/// Reduces `cycles` by `fraction` (e.g. 0.455 for −45.5%), rounding up so
/// the reduced latency never under-waits the analog settling time.
fn scale_down(cycles: u32, fraction: f64) -> u32 {
    let scaled = f64::from(cycles) * (1.0 - fraction);
    (scaled.ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_1600_is_valid() {
        TimingParams::ddr4_1600().validate().unwrap();
    }

    #[test]
    fn fast_region_scaling_matches_paper() {
        let t = TimingParams::ddr4_1600();
        // tRCD 11 * (1 - 0.455) = 5.995 -> 6; tRP 11 * 0.618 = 6.798 -> 7;
        // tRAS 28 * 0.371 = 10.388 -> 11.
        assert_eq!(t.fast_rcd, 6);
        assert_eq!(t.fast_rp, 7);
        assert_eq!(t.fast_ras, 11);
    }

    #[test]
    fn ras_is_35ns() {
        let t = TimingParams::ddr4_1600();
        assert!((t.cycles_to_ns(u64::from(t.ras)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn one_column_relocation_is_about_63_5_ns() {
        // Paper Sec 4.2: ACT(src, tRAS) + RELOC + ACT(dst, tRCD) + PRE(tRP)
        // = 35 + 1 + 13.75 + 13.75 = 63.5 ns. Our cycle-quantized version:
        let t = TimingParams::ddr4_1600();
        let cycles = u64::from(t.ras + t.reloc + t.rcd + t.rp);
        let ns = t.cycles_to_ns(cycles);
        assert!((ns - 63.5).abs() < 1.5, "one-column relocation = {ns} ns");
    }

    #[test]
    fn region_accessors_pick_fast_values() {
        let t = TimingParams::ddr4_1600();
        assert_eq!(t.rcd_of(Region::Fast), t.fast_rcd);
        assert_eq!(t.rp_of(Region::Slow), t.rp);
        assert_eq!(t.ras_of(Region::Fast), t.fast_ras);
    }

    #[test]
    fn validate_rejects_fast_slower_than_slow() {
        let t = TimingParams { fast_rcd: 99, ..TimingParams::ddr4_1600() };
        assert!(t.validate().is_err());
    }

    #[test]
    fn rd_to_wr_turnaround_positive() {
        let t = TimingParams::ddr4_1600();
        assert_eq!(t.rd_to_wr(), 11 + 4 + 2 - 9);
    }
}
