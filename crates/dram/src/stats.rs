//! Command-level DRAM statistics used for reporting and energy modelling.

use crate::layout::Region;

/// Counters accumulated by a [`crate::DramChannel`] as commands issue.
///
/// `bank_open_cycles` is the sum over banks of (precharge time − activate
/// time); the energy model uses it to split background power between
/// active-standby and precharge-standby, which is the standard
/// Micron-power-calculator simplification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// `ACTIVATE`s issued to slow-region rows.
    pub activates: u64,
    /// `ACTIVATE`s issued to fast-region rows.
    pub activates_fast: u64,
    /// Single-bank and all-bank precharges (each closed bank counts once).
    pub precharges: u64,
    /// `READ`/`RDA` bursts.
    pub reads: u64,
    /// `WRITE`/`WRA` bursts.
    pub writes: u64,
    /// All-bank refreshes.
    pub refreshes: u64,
    /// FIGARO `RELOC` commands (one cache block each).
    pub relocs: u64,
    /// FIGARO merge activations into slow-region rows.
    pub merges: u64,
    /// FIGARO merge activations into fast-region rows.
    pub merges_fast: u64,
    /// LISA row clones (LISA-VILLA baseline).
    pub lisa_clones: u64,
    /// Total subarray hops across all LISA clones (energy scales with it).
    pub lisa_hops: u64,
    /// Σ over banks of cycles spent with a row open.
    pub bank_open_cycles: u64,
}

impl DramStats {
    /// Records an activate in `region`.
    pub fn record_act(&mut self, region: Region) {
        match region {
            Region::Slow => self.activates += 1,
            Region::Fast => self.activates_fast += 1,
        }
    }

    /// Records a FIGARO merge activation in `region`.
    pub fn record_merge(&mut self, region: Region) {
        match region {
            Region::Slow => self.merges += 1,
            Region::Fast => self.merges_fast += 1,
        }
    }

    /// All activations (slow + fast + merges), which is what row-cycle
    /// energy scales with.
    #[must_use]
    pub fn total_activates(&self) -> u64 {
        self.activates + self.activates_fast + self.merges + self.merges_fast
    }

    /// Element-wise accumulation (used to aggregate channels).
    pub fn merge_from(&mut self, other: &DramStats) {
        self.activates += other.activates;
        self.activates_fast += other.activates_fast;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.relocs += other.relocs;
        self.merges += other.merges;
        self.merges_fast += other.merges_fast;
        self.lisa_clones += other.lisa_clones;
        self.lisa_hops += other.lisa_hops;
        self.bank_open_cycles += other.bank_open_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_helpers_split_by_region() {
        let mut s = DramStats::default();
        s.record_act(Region::Slow);
        s.record_act(Region::Fast);
        s.record_merge(Region::Fast);
        assert_eq!(s.activates, 1);
        assert_eq!(s.activates_fast, 1);
        assert_eq!(s.merges_fast, 1);
        assert_eq!(s.total_activates(), 3);
    }

    #[test]
    fn merge_from_accumulates_every_field() {
        let mut a = DramStats { activates: 1, reads: 2, relocs: 3, ..Default::default() };
        let b =
            DramStats { activates: 10, reads: 20, relocs: 30, lisa_hops: 5, ..Default::default() };
        a.merge_from(&b);
        assert_eq!(a.activates, 11);
        assert_eq!(a.reads, 22);
        assert_eq!(a.relocs, 33);
        assert_eq!(a.lisa_hops, 5);
    }
}
