//! The DRAM command set, including the FIGARO `RELOC` command and the
//! LISA-VILLA row-clone composite used by the baseline.

use crate::RowId;

/// A command the memory controller can issue to one bank (or rank, for
/// `Refresh`/`PrechargeAll`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open `row` into its subarray's local row buffer.
    Activate {
        /// Row to open.
        row: RowId,
    },
    /// Close the bank's open row and precharge its bitlines.
    Precharge,
    /// Precharge every bank in the rank.
    PrechargeAll,
    /// Burst-read the cache block at column `col` of the open row.
    Read {
        /// Block-granularity column index within the row.
        col: u32,
        /// Issue an implicit precharge after the read (RDA).
        auto_pre: bool,
    },
    /// Burst-write the cache block at column `col` of the open row.
    Write {
        /// Block-granularity column index within the row.
        col: u32,
        /// Issue an implicit precharge after the write (WRA).
        auto_pre: bool,
    },
    /// All-bank refresh (rank-level).
    Refresh,
    /// FIGARO: copy one column from the open row's local row buffer,
    /// through the global row buffer, into `dst_subarray`'s local row
    /// buffer at `dst_col` (unaligned copy allowed: `src_col` need not
    /// equal `dst_col`). Requires the source row to be fully restored
    /// (tRAS elapsed since its ACT).
    Reloc {
        /// Source column in the bank's open row.
        src_col: u32,
        /// Destination subarray id (dense id per
        /// [`crate::SubarrayLayout::subarray_id`]).
        dst_subarray: u32,
        /// Destination column within the destination local row buffer.
        dst_col: u32,
    },
    /// FIGARO: a controller-compounded train of `count` consecutive
    /// `RELOC`s (`src_col+i` to `dst_col+i`). Occupies one command-bus
    /// slot; the column path and the pinned subarrays stay busy for the
    /// train's duration. Semantically identical to issuing `count`
    /// individual [`DramCommand::Reloc`]s back to back.
    RelocBurst {
        /// First source column in the bank's open row.
        src_col: u32,
        /// Destination subarray id.
        dst_subarray: u32,
        /// First destination column.
        dst_col: u32,
        /// Number of consecutive columns to move.
        count: u32,
    },
    /// FIGARO: the second activation (paper Fig. 4, step 5) that commits
    /// previously `RELOC`ed columns into `row` of the destination
    /// subarray. The bank's original open row stays latched (FIGARO adds a
    /// per-subarray row-address latch); the bank must be precharged before
    /// any further activation.
    ActivateMerge {
        /// Destination row (must live in the subarray the preceding
        /// `RELOC`s targeted).
        row: RowId,
    },
    /// LISA-VILLA baseline: clone the whole `src_row` into `dst_row`
    /// (different subarray) using chained row-buffer movements. A
    /// composite, bank-occupying operation whose duration grows with the
    /// subarray hop distance. Requires the bank to be precharged.
    LisaClone {
        /// Source row.
        src_row: RowId,
        /// Destination row.
        dst_row: RowId,
    },
}

/// Discriminant-only view of [`DramCommand`], used for stats and timing
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// `ACTIVATE`.
    Activate,
    /// `PRECHARGE` (single bank).
    Precharge,
    /// `PRECHARGE` (all banks).
    PrechargeAll,
    /// `READ` / `RDA`.
    Read,
    /// `WRITE` / `WRA`.
    Write,
    /// `REFRESH`.
    Refresh,
    /// FIGARO `RELOC`.
    Reloc,
    /// FIGARO compound `RELOC` train.
    RelocBurst,
    /// FIGARO merge activation.
    ActivateMerge,
    /// LISA row clone.
    LisaClone,
}

impl DramCommand {
    /// The command's kind.
    #[must_use]
    pub fn kind(&self) -> CommandKind {
        match self {
            DramCommand::Activate { .. } => CommandKind::Activate,
            DramCommand::Precharge => CommandKind::Precharge,
            DramCommand::PrechargeAll => CommandKind::PrechargeAll,
            DramCommand::Read { .. } => CommandKind::Read,
            DramCommand::Write { .. } => CommandKind::Write,
            DramCommand::Refresh => CommandKind::Refresh,
            DramCommand::Reloc { .. } => CommandKind::Reloc,
            DramCommand::RelocBurst { .. } => CommandKind::RelocBurst,
            DramCommand::ActivateMerge { .. } => CommandKind::ActivateMerge,
            DramCommand::LisaClone { .. } => CommandKind::LisaClone,
        }
    }

    /// Whether this command transfers data on the external bus
    /// (`RELOC`/`LisaClone` move data entirely inside the chip).
    #[must_use]
    pub fn uses_data_bus(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip() {
        let cmds = [
            DramCommand::Activate { row: 1 },
            DramCommand::Precharge,
            DramCommand::PrechargeAll,
            DramCommand::Read { col: 0, auto_pre: false },
            DramCommand::Write { col: 0, auto_pre: true },
            DramCommand::Refresh,
            DramCommand::Reloc { src_col: 1, dst_subarray: 64, dst_col: 2 },
            DramCommand::ActivateMerge { row: 9 },
            DramCommand::LisaClone { src_row: 1, dst_row: 2 },
        ];
        let kinds: Vec<CommandKind> = cmds.iter().map(DramCommand::kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommandKind::Activate,
                CommandKind::Precharge,
                CommandKind::PrechargeAll,
                CommandKind::Read,
                CommandKind::Write,
                CommandKind::Refresh,
                CommandKind::Reloc,
                CommandKind::ActivateMerge,
                CommandKind::LisaClone,
            ]
        );
    }

    #[test]
    fn only_column_accesses_use_the_bus() {
        assert!(DramCommand::Read { col: 0, auto_pre: false }.uses_data_bus());
        assert!(DramCommand::Write { col: 0, auto_pre: false }.uses_data_bus());
        assert!(!DramCommand::Reloc { src_col: 0, dst_subarray: 1, dst_col: 0 }.uses_data_bus());
        assert!(!DramCommand::LisaClone { src_row: 0, dst_row: 1 }.uses_data_bus());
        assert!(!DramCommand::Activate { row: 0 }.uses_data_bus());
    }
}
