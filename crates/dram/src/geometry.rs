//! Physical DRAM organization: channels, ranks, bank groups, banks, rows,
//! columns and cache-block widths.

/// Physical organization of one DRAM channel (and how many channels exist).
///
/// All counts must be powers of two so the address mapping can slice plain
/// bit fields out of a physical address; [`DramGeometry::validate`] enforces
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of independent memory channels (1 for single-core runs,
    /// 4 for the paper's eight-core configuration).
    pub channels: u32,
    /// Ranks per channel (the paper uses 1).
    pub ranks: u32,
    /// Bank groups per rank (DDR4: 4).
    pub bankgroups: u32,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u32,
    /// Bytes per DRAM row across the rank (the paper: 8 kB).
    pub row_bytes: u32,
    /// Bytes per cache block / column at rank granularity (64 B; one
    /// column per x8 chip is 64 bits, and eight data chips operate in
    /// lockstep).
    pub block_bytes: u32,
}

impl DramGeometry {
    /// The paper's Table 1 geometry for one channel.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            bankgroups: 4,
            banks_per_group: 4,
            row_bytes: 8 * 1024,
            block_bytes: 64,
        }
    }

    /// Same geometry with a different channel count (the paper uses 4
    /// channels for eight-core workloads).
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels;
        self
    }

    /// Total banks in one rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> u32 {
        self.bankgroups * self.banks_per_group
    }

    /// Total banks in one channel.
    #[must_use]
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.banks_per_rank()
    }

    /// Cache blocks (columns at rank granularity) per row.
    #[must_use]
    pub fn blocks_per_row(&self) -> u32 {
        self.row_bytes / self.block_bytes
    }

    /// Checks that every field is a non-zero power of two and that a row
    /// holds at least one block.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("bankgroups", self.bankgroups),
            ("banks_per_group", self.banks_per_group),
            ("row_bytes", self.row_bytes),
            ("block_bytes", self.block_bytes),
        ];
        for (name, v) in fields {
            if v == 0 || !v.is_power_of_two() {
                return Err(format!(
                    "geometry field `{name}` = {v} must be a non-zero power of two"
                ));
            }
        }
        if self.block_bytes > self.row_bytes {
            return Err(format!(
                "block_bytes ({}) exceeds row_bytes ({})",
                self.block_bytes, self.row_bytes
            ));
        }
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_counts() {
        let g = DramGeometry::paper_default();
        assert_eq!(g.banks_per_rank(), 16);
        assert_eq!(g.banks_per_channel(), 16);
        assert_eq!(g.blocks_per_row(), 128);
        g.validate().unwrap();
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let g = DramGeometry { channels: 3, ..DramGeometry::paper_default() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_block_larger_than_row() {
        let g = DramGeometry { block_bytes: 16 * 1024, ..DramGeometry::paper_default() };
        assert!(g.validate().is_err());
    }

    #[test]
    fn with_channels_only_changes_channels() {
        let g = DramGeometry::paper_default().with_channels(4);
        assert_eq!(g.channels, 4);
        assert_eq!(g.ranks, 1);
    }
}
