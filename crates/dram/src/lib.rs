//! # figaro-dram — cycle-level DDR4 DRAM model with FIGARO support
//!
//! This crate is the DRAM substrate for the FIGARO / FIGCache reproduction
//! (Wang et al., *FIGARO: Improving System Performance via Fine-Grained
//! In-DRAM Data Relocation and Caching*, MICRO 2020). It models a DDR4
//! memory device at the granularity the paper's evaluation requires:
//!
//! * **Geometry** ([`DramGeometry`]): channels → ranks → bank groups → banks
//!   → subarrays → rows → columns, with the paper's default organization
//!   (4 bank groups × 4 banks, 64 subarrays × 512 rows per bank, 8 kB rows).
//! * **Address mapping** ([`AddressMapping`]): a pluggable interleaving
//!   subsystem ([`MapKind`]) — the paper's
//!   `{row, rank, bankgroup, bank, channel, column}` slice (default),
//!   channel/bank-first block interleaving, a bank-sequential
//!   row-interleaved scheme, and an XOR bank-permutation hash layered
//!   over any of them — plus the inverse mapping.
//! * **Timing** ([`TimingParams`]): JEDEC-style DDR4-1600 timing parameters
//!   in bus cycles, including the new `RELOC` latency, and the fast-region
//!   scaling used for fast subarrays (tRCD −45.5%, tRP −38.2%, tRAS −62.9%).
//! * **Commands** ([`DramCommand`]): `ACTIVATE`, `PRECHARGE`, `READ`,
//!   `WRITE`, `REFRESH`, and the FIGARO additions: `RELOC` (one-column
//!   inter-subarray copy through the global row buffer), `ACTIVATE-merge`
//!   (the second activation that commits relocated columns into the
//!   destination row), and `LISA_CLONE` (the row-granularity,
//!   distance-dependent inter-subarray copy used by the LISA-VILLA
//!   baseline).
//! * **Timing-constraint engine** ([`DramChannel`]): per-bank, per-bank-group
//!   and per-rank legality checks (tCCD_S/L, tRRD_S/L, tFAW, tWTR, bus
//!   turnaround, tRFC/tREFI) in the style of Ramulator's checker, built from
//!   scratch.
//! * **Functional data store** ([`DataStore`]): an optional sparse model of
//!   row contents, local row buffers and the global row buffer that
//!   reproduces the unaligned-copy semantics of the paper's Figure 4.
//!
//! The crate knows nothing about caching policy; FIGCache and LISA-VILLA
//! live in `figaro-core`, and request scheduling lives in `figaro-memctrl`.
//!
//! ## Example
//!
//! ```
//! use figaro_dram::{DramChannel, DramCommand, DramConfig, BankAddr};
//!
//! let config = DramConfig::ddr4_paper_default();
//! let mut channel = DramChannel::new(&config);
//! let bank = BankAddr { rank: 0, bankgroup: 0, bank: 0 };
//!
//! // Activate row 3, then read column 5 as soon as timing allows.
//! assert!(channel.can_issue(bank, &DramCommand::Activate { row: 3 }, 0));
//! channel.issue(bank, &DramCommand::Activate { row: 3 }, 0);
//! let rd = DramCommand::Read { col: 5, auto_pre: false };
//! let t = channel.earliest_issue(bank, &rd, 0);
//! assert_eq!(t, u64::from(config.timing.rcd)); // gated by tRCD
//! channel.issue(bank, &rd, t);
//! ```

/// Pops the next word of a snapshot word stream (the `save_state` /
/// `load_state` convention shared with `figaro-sim`'s FGSN codec).
/// Truncation aborts loudly: resuming from a corrupt snapshot must never
/// silently produce a different run.
pub(crate) fn take(src: &mut &[u64]) -> u64 {
    assert!(!src.is_empty(), "snapshot word stream truncated");
    let w = src[0];
    *src = &src[1..];
    w
}

pub mod address;
pub mod channel;
pub mod command;
pub mod datastore;
pub mod geometry;
pub mod layout;
pub mod stats;
pub mod timing;

pub use address::{AddressMapping, DramLocation, MapKind, MapScheme, PhysAddr};
pub use channel::{BankAddr, DramChannel, IssueOutcome};
pub use command::{CommandKind, DramCommand};
pub use datastore::DataStore;
pub use geometry::DramGeometry;
pub use layout::{FastLayout, Region, RowPlace, SubarrayLayout};
pub use stats::DramStats;
pub use timing::TimingParams;

/// A point in time, measured in DRAM **bus cycles** (800 MHz for the
/// paper's DDR4-1600 configuration, i.e. 1.25 ns per cycle).
pub type Cycle = u64;

/// Index of a DRAM row within a bank.
///
/// Regular (slow-subarray) rows occupy `0..layout.regular_rows()`; fast
/// cache rows added by FIGCache-Fast or LISA-VILLA are appended after them
/// (see [`SubarrayLayout`]).
pub type RowId = u32;

/// Complete static description of a DRAM device: geometry, timing and
/// subarray layout. This is the single value the rest of the stack passes
/// around to construct channels, address maps and energy models.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical organization (channels/ranks/bank groups/banks/row size).
    pub geometry: DramGeometry,
    /// Timing parameters in bus cycles.
    pub timing: TimingParams,
    /// Subarray layout of every bank (regular + fast subarrays).
    pub layout: SubarrayLayout,
}

impl DramConfig {
    /// The paper's Table 1 DDR4 configuration: 800 MHz bus, 1 rank,
    /// 4 bank groups × 4 banks, 64 subarrays × 512 rows per bank, 8 kB rows,
    /// 4 GB per channel, homogeneous (no fast subarrays).
    #[must_use]
    pub fn ddr4_paper_default() -> Self {
        Self {
            geometry: DramGeometry::paper_default(),
            timing: TimingParams::ddr4_1600(),
            layout: SubarrayLayout::homogeneous(64, 512),
        }
    }

    /// Rows per bank including any fast-subarray rows appended by the layout.
    #[must_use]
    pub fn rows_per_bank(&self) -> u32 {
        self.layout.total_rows()
    }

    /// The address mapping of `kind` for this device: sliced over the
    /// geometry and the layout's *regular* rows (fast cache rows are not
    /// directly addressable — they are reached only through cache-engine
    /// redirects).
    #[must_use]
    pub fn address_mapping(&self, kind: MapKind) -> AddressMapping {
        AddressMapping::with_kind(self.geometry, kind, self.layout.regular_rows())
    }

    /// Validates internal consistency (geometry vs layout vs timing).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found, e.g. a zero-sized row or a timing table that violates
    /// `tRAS + tRP ≤ tRC`.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.layout.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = DramConfig::ddr4_paper_default();
        c.validate().expect("paper default must validate");
        assert_eq!(c.rows_per_bank(), 64 * 512);
    }

    #[test]
    fn paper_default_capacity_is_4gb_per_channel() {
        let c = DramConfig::ddr4_paper_default();
        let bytes = u64::from(c.geometry.ranks)
            * u64::from(c.geometry.banks_per_rank())
            * u64::from(c.layout.regular_rows())
            * u64::from(c.geometry.row_bytes);
        assert_eq!(bytes, 4 << 30);
    }
}
