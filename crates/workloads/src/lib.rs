//! # figaro-workloads — deterministic synthetic memory traces
//!
//! The paper evaluates FIGCache on Pin-collected traces of twenty
//! applications (SPEC CPU 2006, TPC, MediaBench, BioBench, and the Memory
//! Scheduling Championship; paper Table 2), twenty 8-core multiprogrammed
//! mixes (25/50/75/100% memory-intensive), and three multithreaded
//! programs. Those traces are not redistributable, so this crate provides
//! **parameterised synthetic generators** — one profile per named
//! benchmark — that reproduce the trace properties the evaluated
//! mechanisms are sensitive to:
//!
//! * **memory intensity** (non-memory instructions per memory operation →
//!   LLC misses per kilo-instruction),
//! * **row-buffer locality** (how many consecutive blocks a row visit
//!   touches — the paper's key observation is that this is *small*, so
//!   caching whole rows wastes in-DRAM cache space),
//! * **DRAM-level reuse** (a hot set of row *segments*, larger than the
//!   last-level cache, revisited across phases),
//! * **footprint** and **write fraction**.
//!
//! Traces are sequences of [`TraceOp`]s: `nonmem` non-memory instructions
//! followed by one memory access. Generation is fully deterministic given
//! a seed. Addresses are laid out so that one contiguous 8 kB page maps to
//! exactly one DRAM row under the paper's
//! `{row, rank, bankgroup, bank, channel, column}` interleaving, letting
//! profiles place "hot segments" in distinct rows spread across banks and
//! channels.
//!
//! The OS side of data placement lives in [`pagemap`]: deterministic,
//! bijective page-frame allocation policies (identity, seeded-random,
//! bank/channel coloring) applied to any [`TraceSource`] via
//! [`PageMappedSource`].

pub mod apps;
pub mod arrival;
pub mod generator;
pub mod mixes;
pub mod pagemap;
pub mod phased;
pub mod trace_io;

pub use apps::{app_profiles, multithreaded_profiles, profile_by_name, AppProfile};
pub use arrival::{ArrivalKind, ArrivalSchedule};
pub use generator::{generate_trace, TraceGenerator};
pub use mixes::{eight_core_mixes, Mix, MixCategory};
pub use pagemap::{PageMapKind, PageMappedSource, PageMapper};
pub use phased::{phased_profiles, Phase, PhaseKind, PhasedGenerator, PhasedProfile};
pub use trace_io::{
    read_trace_file, read_varint, write_trace_file, write_varint, FileReplay, RecordingSource,
    TraceWriter,
};

/// One trace record: `nonmem` non-memory instructions, then a memory
/// access to `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions executed before the access.
    pub nonmem: u32,
    /// Byte address of the access (block alignment is the consumer's job).
    pub addr: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

/// A named instruction/memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Benchmark name the trace models.
    pub name: String,
    /// The operations, in program order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Total instructions the trace represents (memory + non-memory).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(|o| u64::from(o.nonmem) + 1).sum()
    }

    /// Fraction of memory operations that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_write).count() as f64 / self.ops.len() as f64
    }

    /// Turns the materialized trace into a streaming [`TraceSource`] that
    /// wraps around at the end (the classic trace-driven-core behavior).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace (an op source must be infinite).
    #[must_use]
    pub fn into_source(self) -> TraceReplay {
        TraceReplay::new(self)
    }
}

/// A pull-based, **infinite** supplier of trace operations.
///
/// This is what a trace-driven core consumes: instead of materializing a
/// whole `Vec<TraceOp>` up front (whose length costs memory), a source
/// hands out one operation at a time from a bounded internal window — a
/// generator's current burst buffer, a file reader's read-ahead buffer,
/// or a wrapped finite [`Trace`]. Sources never end; finite backing
/// stores wrap around. Implementations must be deterministic: the same
/// construction yields the same op sequence, which is what keeps
/// streaming runs reproducible and replayable.
pub trait TraceSource: std::fmt::Debug + Send {
    /// Name of the workload the source models (reports, cache keys).
    fn name(&self) -> &str;

    /// The next operation in program order.
    fn next_op(&mut self) -> TraceOp;
}

/// [`TraceSource`] over a materialized [`Trace`], wrapping at the end.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
}

impl TraceReplay {
    /// Wraps `trace` into an endless source.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.ops.is_empty(), "trace must be non-empty");
        Self { trace, pos: 0 }
    }
}

impl TraceSource for TraceReplay {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn next_op(&mut self) -> TraceOp {
        let op = self.trace.ops[self.pos];
        self.pos = (self.pos + 1) % self.trace.ops.len();
        op
    }
}

impl TraceSource for TraceGenerator {
    fn name(&self) -> &str {
        self.profile_name()
    }

    fn next_op(&mut self) -> TraceOp {
        self.next().expect("trace generators are endless")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instructions_count_nonmem_plus_access() {
        let t = Trace {
            name: "t".into(),
            ops: vec![
                TraceOp { nonmem: 3, addr: 0, is_write: false },
                TraceOp { nonmem: 0, addr: 64, is_write: true },
            ],
        };
        assert_eq!(t.instructions(), 5);
        assert!((t.write_fraction() - 0.5).abs() < 1e-12);
    }
}
