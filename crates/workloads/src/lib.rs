//! # figaro-workloads — deterministic synthetic memory traces
//!
//! The paper evaluates FIGCache on Pin-collected traces of twenty
//! applications (SPEC CPU 2006, TPC, MediaBench, BioBench, and the Memory
//! Scheduling Championship; paper Table 2), twenty 8-core multiprogrammed
//! mixes (25/50/75/100% memory-intensive), and three multithreaded
//! programs. Those traces are not redistributable, so this crate provides
//! **parameterised synthetic generators** — one profile per named
//! benchmark — that reproduce the trace properties the evaluated
//! mechanisms are sensitive to:
//!
//! * **memory intensity** (non-memory instructions per memory operation →
//!   LLC misses per kilo-instruction),
//! * **row-buffer locality** (how many consecutive blocks a row visit
//!   touches — the paper's key observation is that this is *small*, so
//!   caching whole rows wastes in-DRAM cache space),
//! * **DRAM-level reuse** (a hot set of row *segments*, larger than the
//!   last-level cache, revisited across phases),
//! * **footprint** and **write fraction**.
//!
//! Traces are sequences of [`TraceOp`]s: `nonmem` non-memory instructions
//! followed by one memory access. Generation is fully deterministic given
//! a seed. Addresses are laid out so that one contiguous 8 kB page maps to
//! exactly one DRAM row under the paper's
//! `{row, rank, bankgroup, bank, channel, column}` interleaving, letting
//! profiles place "hot segments" in distinct rows spread across banks and
//! channels.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod generator;
pub mod mixes;

pub use apps::{app_profiles, multithreaded_profiles, profile_by_name, AppProfile};
pub use generator::{generate_trace, TraceGenerator};
pub use mixes::{eight_core_mixes, Mix, MixCategory};

/// One trace record: `nonmem` non-memory instructions, then a memory
/// access to `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions executed before the access.
    pub nonmem: u32,
    /// Byte address of the access (block alignment is the consumer's job).
    pub addr: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

/// A named instruction/memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Benchmark name the trace models.
    pub name: String,
    /// The operations, in program order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Total instructions the trace represents (memory + non-memory).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(|o| u64::from(o.nonmem) + 1).sum()
    }

    /// Fraction of memory operations that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_write).count() as f64 / self.ops.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instructions_count_nonmem_plus_access() {
        let t = Trace {
            name: "t".into(),
            ops: vec![
                TraceOp { nonmem: 3, addr: 0, is_write: false },
                TraceOp { nonmem: 0, addr: 64, is_write: true },
            ],
        };
        assert_eq!(t.instructions(), 5);
        assert!((t.write_fraction() - 0.5).abs() < 1e-12);
    }
}
