//! Compact on-disk trace format with streaming record/replay.
//!
//! The format is designed for *long* traces (hundreds of millions of
//! operations): records are delta- and varint-encoded, written through a
//! plain buffered writer and read back through a plain buffered reader —
//! no mmap, no whole-file materialization — so both sides run in
//! constant memory regardless of trace length.
//!
//! ## Layout (`FIGT` version 1)
//!
//! ```text
//! magic   : 4 bytes  b"FIGT"
//! version : 1 byte   0x01
//! name    : u16 LE length + UTF-8 bytes (workload name)
//! records : until EOF, per TraceOp:
//!   varint( nonmem << 1 | is_write )
//!   varint( zigzag(addr - prev_addr) )      // prev_addr starts at 0
//! ```
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation); address
//! deltas are zigzag-mapped so the short back-and-forth strides of real
//! access streams encode in one or two bytes. A synthetic-trace record
//! averages ~4 bytes against 16 in memory.
//!
//! Three interfaces sit on top:
//!
//! * [`TraceWriter`] / [`TraceReader`] — streaming op-at-a-time I/O;
//! * [`write_trace_file`] / [`read_trace_file`] — whole-[`Trace`]
//!   convenience round trip;
//! * [`FileReplay`] (a [`TraceSource`] that loops the file) and
//!   [`RecordingSource`] (a tee that captures any live source to disk),
//!   which together give bit-exact record→replay of simulator runs.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::{Trace, TraceOp, TraceSource};

const MAGIC: [u8; 4] = *b"FIGT";
const VERSION: u8 = 1;

/// Writes one LEB128 varint. Public because the `FGSN` snapshot codec in
/// `figaro-sim` reuses the FIGT varint machinery.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one varint; `Ok(None)` on clean EOF at the first byte.
///
/// # Errors
///
/// Fails on I/O errors, truncation mid-varint, or u64 overflow.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<Option<u64>> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut buf = [0u8; 1];
    loop {
        match r.read(&mut buf)? {
            0 if shift == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "trace record truncated mid-varint",
                ))
            }
            _ => {}
        }
        if shift >= 64 || (shift == 63 && buf[0] & 0x7e != 0) {
            // The tenth byte may only carry bit 63; higher payload bits
            // would shift out silently and decode a *different* value —
            // corruption must be loud, never a changed op stream.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        v |= u64::from(buf[0] & 0x7f) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value so small magnitudes varint-encode short.
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming writer of the `FIGT` format.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    prev_addr: u64,
    ops: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns a writer ready for ops.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer; rejects names
    /// longer than `u16::MAX` bytes.
    pub fn new(mut w: W, name: &str) -> io::Result<Self> {
        let name_len = u16::try_from(name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "trace name too long"))?;
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&name_len.to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        Ok(Self { w, prev_addr: 0, ops: 0 })
    }

    /// Appends one operation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_op(&mut self, op: TraceOp) -> io::Result<()> {
        write_varint(&mut self.w, u64::from(op.nonmem) << 1 | u64::from(op.is_write))?;
        let delta = op.addr.wrapping_sub(self.prev_addr) as i64;
        write_varint(&mut self.w, zigzag(delta))?;
        self.prev_addr = op.addr;
        self.ops += 1;
        Ok(())
    }

    /// Operations written so far.
    #[must_use]
    pub fn ops_written(&self) -> u64 {
        self.ops
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming reader of the `FIGT` format.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    r: R,
    name: String,
    prev_addr: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Parses the header and returns a reader positioned at the first op.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/mismatched header.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a FIGT trace file"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported FIGT version {}", version[0]),
            ));
        }
        let mut len = [0u8; 2];
        r.read_exact(&mut len)?;
        let mut name = vec![0u8; usize::from(u16::from_le_bytes(len))];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "trace name not UTF-8"))?;
        Ok(Self { r, name, prev_addr: 0 })
    }

    /// The recorded workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads the next operation; `Ok(None)` at end of file.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a truncated record.
    pub fn next_op(&mut self) -> io::Result<Option<TraceOp>> {
        let Some(head) = read_varint(&mut self.r)? else { return Ok(None) };
        let Some(dz) = read_varint(&mut self.r)? else {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "trace record truncated"));
        };
        let nonmem = u32::try_from(head >> 1)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "nonmem overflows u32"))?;
        let addr = self.prev_addr.wrapping_add(unzigzag(dz) as u64);
        self.prev_addr = addr;
        Ok(Some(TraceOp { nonmem, addr, is_write: head & 1 == 1 }))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = io::Result<TraceOp>;

    fn next(&mut self) -> Option<io::Result<TraceOp>> {
        self.next_op().transpose()
    }
}

/// Writes a whole [`Trace`] to `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_trace_file(path: impl AsRef<Path>, trace: &Trace) -> io::Result<()> {
    let mut w = TraceWriter::new(BufWriter::new(File::create(path)?), &trace.name)?;
    for &op in &trace.ops {
        w.write_op(op)?;
    }
    w.finish()?.flush()
}

/// Reads a whole [`Trace`] from `path` (tests and small traces; long
/// traces should stream through [`FileReplay`] instead).
///
/// # Errors
///
/// Propagates open/read errors and format violations.
pub fn read_trace_file(path: impl AsRef<Path>) -> io::Result<Trace> {
    let mut r = TraceReader::new(BufReader::new(File::open(path)?))?;
    let name = r.name().to_string();
    let mut ops = Vec::new();
    while let Some(op) = r.next_op()? {
        ops.push(op);
    }
    Ok(Trace { name, ops })
}

/// A [`TraceSource`] that streams a `FIGT` file through a buffered
/// reader, seeking back to the first record at end of file (traces wrap,
/// like every source). Constant memory regardless of file size.
#[derive(Debug)]
pub struct FileReplay {
    reader: TraceReader<BufReader<File>>,
    /// Byte offset of the first record (seek target for wrap-around).
    data_start: u64,
    /// Whether at least one record was seen (guards empty files).
    saw_op: bool,
}

impl FileReplay {
    /// Opens `path` for streaming replay.
    ///
    /// # Errors
    ///
    /// Fails on open errors or a malformed header.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut reader = TraceReader::new(BufReader::new(File::open(path)?))?;
        let data_start = reader.r.stream_position()?;
        Ok(Self { reader, data_start, saw_op: false })
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.reader.r.seek(SeekFrom::Start(self.data_start))?;
        self.reader.prev_addr = 0;
        Ok(())
    }
}

impl TraceSource for FileReplay {
    fn name(&self) -> &str {
        self.reader.name()
    }

    /// # Panics
    ///
    /// Panics on I/O errors or an empty trace file: a trace that vanishes
    /// or corrupts mid-simulation is unrecoverable, and silently
    /// substituting ops would poison the run's determinism.
    fn next_op(&mut self) -> TraceOp {
        match self.reader.next_op() {
            Ok(Some(op)) => {
                self.saw_op = true;
                op
            }
            Ok(None) => {
                assert!(self.saw_op, "trace file `{}` has no records", self.reader.name());
                self.rewind().expect("trace file must stay seekable");
                match self.reader.next_op() {
                    Ok(Some(op)) => op,
                    other => panic!("trace file lost its records on rewind: {other:?}"),
                }
            }
            Err(e) => panic!("trace file read failed mid-replay: {e}"),
        }
    }
}

/// A tee: pulls from any inner [`TraceSource`] and records every op to a
/// `FIGT` file as a side effect. Dropping the source flushes the file,
/// so a finished simulation leaves a complete recording behind for later
/// [`FileReplay`]; a flush failure on drop is reported loudly on stderr
/// (drops cannot return errors). Call [`RecordingSource::finish`] where
/// a checkable flush result matters.
#[derive(Debug)]
pub struct RecordingSource<S: TraceSource> {
    inner: S,
    /// `None` only after [`RecordingSource::finish`].
    writer: Option<TraceWriter<BufWriter<File>>>,
}

impl<S: TraceSource> RecordingSource<S> {
    /// Starts recording `inner` to `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created.
    pub fn create(inner: S, path: impl AsRef<Path>) -> io::Result<Self> {
        let writer = TraceWriter::new(BufWriter::new(File::create(path)?), inner.name())?;
        Ok(Self { inner, writer: Some(writer) })
    }

    /// Stops recording and flushes, surfacing any flush error (unlike a
    /// plain drop, which can only report it on stderr).
    ///
    /// # Errors
    ///
    /// Propagates the final flush error.
    pub fn finish(mut self) -> io::Result<()> {
        match self.writer.take() {
            Some(w) => w.finish().map(|_| ()),
            None => Ok(()),
        }
    }
}

impl<S: TraceSource> Drop for RecordingSource<S> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.take() {
            if let Err(e) = w.finish() {
                // A silently truncated recording would replay as a
                // *different* run; failing the flush must at least be
                // loud even though Drop cannot return the error.
                eprintln!("figaro-workloads: trace recording flush failed on drop: {e}");
            }
        }
    }
}

impl<S: TraceSource> TraceSource for RecordingSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// # Panics
    ///
    /// Panics if the recording file cannot be written (a partial
    /// recording that silently drops ops would replay a different run).
    fn next_op(&mut self) -> TraceOp {
        let op = self.inner.next_op();
        self.writer
            .as_mut()
            .expect("recording already finished")
            .write_op(op)
            .expect("trace recording write failed");
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, profile_by_name, TraceGenerator};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("figaro-trace-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn varint_round_trips_extremes() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v).unwrap();
        }
        let mut r = &buf[..];
        for &v in &values {
            assert_eq!(read_varint(&mut r).unwrap(), Some(v));
        }
        assert_eq!(read_varint(&mut r).unwrap(), None);
    }

    #[test]
    fn varint_rejects_overflow_instead_of_truncating() {
        // Ten continuation bytes: shift reaches 70.
        let mut r: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert!(read_varint(&mut r).is_err());
        // Tenth byte carrying payload above bit 63 must error, not drop bits.
        let mut r: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7e];
        assert!(read_varint(&mut r).is_err());
        // Bit 63 alone in the tenth byte is u64::MAX's legitimate encoding.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
        let mut r = &buf[..];
        assert_eq!(read_varint(&mut r).unwrap(), Some(u64::MAX));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn trace_file_round_trips_bit_identically() {
        let p = profile_by_name("mcf").unwrap();
        let trace = generate_trace(&p, 10_000, 42);
        let path = tmp("roundtrip.figt");
        write_trace_file(&path, &trace).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn format_is_compact() {
        let p = profile_by_name("zeusmp").unwrap();
        let trace = generate_trace(&p, 20_000, 7);
        let path = tmp("compact.figt");
        write_trace_file(&path, &trace).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        let in_memory = trace.ops.len() as u64 * std::mem::size_of::<TraceOp>() as u64;
        assert!(
            on_disk * 2 < in_memory,
            "on-disk {on_disk} B should be well under half the in-memory {in_memory} B"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn file_replay_streams_and_wraps() {
        let p = profile_by_name("grep").unwrap();
        let trace = generate_trace(&p, 500, 3);
        let path = tmp("replay.figt");
        write_trace_file(&path, &trace).unwrap();
        let mut src = FileReplay::open(&path).unwrap();
        assert_eq!(src.name(), "grep");
        // Two full passes: the source must wrap seamlessly.
        for lap in 0..2 {
            for (i, &op) in trace.ops.iter().enumerate() {
                assert_eq!(src.next_op(), op, "lap {lap} op {i}");
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn recording_source_tees_exactly_what_was_pulled() {
        let p = profile_by_name("lbm").unwrap();
        let path = tmp("record.figt");
        let mut rec = RecordingSource::create(TraceGenerator::new(&p, 99), &path).unwrap();
        let pulled: Vec<TraceOp> = (0..2_000).map(|_| rec.next_op()).collect();
        rec.finish().unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.name, "lbm");
        assert_eq!(back.ops, pulled);
        // Replaying the recording yields the identical stream.
        let mut replay = FileReplay::open(&path).unwrap();
        for (i, &op) in pulled.iter().enumerate() {
            assert_eq!(replay.next_op(), op, "op {i}");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let path = tmp("bad.figt");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(FileReplay::open(&path).is_err());
        std::fs::write(&path, [&MAGIC[..], &[9u8], &0u16.to_le_bytes()[..]].concat()).unwrap();
        assert!(FileReplay::open(&path).is_err(), "unknown version must be rejected");
        let _ = std::fs::remove_file(path);
    }
}
