//! Per-benchmark trace profiles modelling the paper's Table 2 suite.
//!
//! Parameters are chosen so each application lands in the paper's
//! intensity class (>10 or <10 LLC misses per kilo-instruction on the
//! simulated hierarchy) and exhibits the row-buffer locality the paper's
//! motivation describes (only a small part of each opened row is touched).

/// Tuning knobs of one synthetic application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Benchmark name the profile models.
    pub name: &'static str,
    /// Expected classification (paper Table 2).
    pub memory_intensive: bool,
    /// Mean non-memory instructions between memory operations.
    pub nonmem_per_mem: f64,
    /// Total bytes the trace may touch.
    pub footprint_bytes: u64,
    /// Probability an access targets the hot set (vs streaming/cold).
    pub hot_fraction: f64,
    /// Number of hot row segments (each lives in its own 8 kB page/row).
    pub hot_segments: u32,
    /// Bytes of hot data within each hot page (the "row segment" that
    /// FIGCache would want to cache; the rest of the row stays cold).
    pub hot_segment_bytes: u32,
    /// Mean consecutive blocks touched per hot-segment visit
    /// (row-buffer locality within the segment).
    pub hot_burst: f64,
    /// Mean consecutive blocks touched per streaming visit.
    pub stream_burst: f64,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Number of hot segments active in one phase (temporal clustering;
    /// RowBenefit exploits this).
    pub phase_segments: u32,
    /// Memory operations per phase before the active set is redrawn.
    pub phase_len_ops: u32,
    /// Zipf exponent of segment popularity within a phase.
    pub zipf_exponent: f64,
    /// Mean number of segments touched per *group* visit. Hot segments
    /// form groups of eight whose pages share a DRAM bank; a group visit
    /// walks several of them back to back — the correlated accesses to
    /// small fragments of different rows that the paper's Section 5.1
    /// replacement policy is designed to co-locate.
    pub group_span: f64,
}

impl AppProfile {
    /// Sanity-checks the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(format!("{}: hot_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.write_frac) {
            return Err(format!("{}: write_frac out of range", self.name));
        }
        if self.hot_segments == 0 || self.phase_segments == 0 || self.phase_len_ops == 0 {
            return Err(format!("{}: zero-sized hot set or phase", self.name));
        }
        if self.phase_segments > self.hot_segments {
            return Err(format!("{}: phase larger than hot set", self.name));
        }
        if u64::from(self.hot_segments) * 8192 > self.footprint_bytes {
            return Err(format!("{}: hot pages exceed footprint", self.name));
        }
        if self.hot_segment_bytes == 0 || self.hot_segment_bytes > 8192 {
            return Err(format!("{}: hot_segment_bytes out of range", self.name));
        }
        if self.nonmem_per_mem < 0.0 {
            return Err(format!("{}: negative nonmem_per_mem", self.name));
        }
        if !self.hot_segments.is_multiple_of(8) || !self.phase_segments.is_multiple_of(8) {
            return Err(format!(
                "{}: hot/phase segments must be multiples of the group size (8)",
                self.name
            ));
        }
        if self.group_span < 1.0 || self.group_span > 8.0 {
            return Err(format!("{}: group_span out of range [1, 8]", self.name));
        }
        let pages = self.footprint_bytes / 8192;
        let groups = u64::from(self.hot_segments / 8);
        let classes = groups.div_ceil(64).max(1);
        if pages / 64 < classes * 8 {
            return Err(format!(
                "{}: footprint too small for same-bank group placement",
                self.name
            ));
        }
        Ok(())
    }
}

const MB: u64 = 1 << 20;

/// A memory-intensive profile template; `f(...)` args override the defaults.
#[allow(clippy::too_many_arguments)]
const fn intensive(
    name: &'static str,
    nonmem: f64,
    footprint_mb: u64,
    hot_fraction: f64,
    hot_segments: u32,
    hot_segment_bytes: u32,
    hot_burst: f64,
    stream_burst: f64,
    write_frac: f64,
    phase_segments: u32,
    group_span: f64,
) -> AppProfile {
    AppProfile {
        name,
        memory_intensive: true,
        nonmem_per_mem: nonmem,
        footprint_bytes: footprint_mb * MB,
        hot_fraction,
        hot_segments,
        hot_segment_bytes,
        hot_burst,
        stream_burst,
        write_frac,
        phase_segments,
        phase_len_ops: 60_000,
        zipf_exponent: 0.8,
        group_span,
    }
}

#[allow(clippy::too_many_arguments)]
const fn light(
    name: &'static str,
    nonmem: f64,
    footprint_mb: u64,
    hot_fraction: f64,
    hot_segments: u32,
    hot_segment_bytes: u32,
    hot_burst: f64,
    stream_burst: f64,
    write_frac: f64,
    group_span: f64,
) -> AppProfile {
    AppProfile {
        name,
        memory_intensive: false,
        nonmem_per_mem: nonmem,
        footprint_bytes: footprint_mb * MB,
        hot_fraction,
        hot_segments,
        hot_segment_bytes,
        hot_burst,
        stream_burst,
        write_frac,
        phase_segments: hot_segments,
        phase_len_ops: 40_000,
        zipf_exponent: 1.1,
        group_span,
    }
}

/// The twenty single-core profiles of paper Table 2.
///
/// Memory-intensive applications have low instruction counts per access,
/// hot sets well beyond the 2 MB/core LLC, and short row bursts; the
/// non-intensive ones are largely cache-resident.
#[must_use]
pub fn app_profiles() -> Vec<AppProfile> {
    vec![
        // --- memory intensive (paper: zeusmp, leslie3d, mcf, GemsFDTD,
        //     libquantum, bwaves, lbm, com, tigr, mum) ---
        // zeusmp: CFD stencil, moderate bursts, sizable hot working set.
        intensive("zeusmp", 9.0, 512, 0.70, 7168, 1024, 3.0, 4.0, 0.30, 4608, 3.5),
        // leslie3d: stencil with slightly better spatial locality.
        intensive("leslie3d", 9.5, 384, 0.72, 6144, 1024, 3.5, 5.0, 0.28, 4096, 4.0),
        // mcf: pointer chasing, near-random single-block visits.
        intensive("mcf", 7.0, 768, 0.65, 9216, 512, 1.2, 1.5, 0.20, 6144, 3.0),
        // GemsFDTD: large grids, phase-heavy.
        intensive("GemsFDTD", 9.0, 640, 0.68, 7168, 1024, 2.8, 4.0, 0.32, 4608, 3.5),
        // libquantum: streaming over a large vector, little reuse.
        intensive("libquantum", 8.0, 256, 0.25, 4096, 2048, 4.0, 10.0, 0.25, 2048, 1.5),
        // bwaves: blocked solver.
        intensive("bwaves", 9.5, 512, 0.70, 6656, 1024, 3.0, 5.0, 0.30, 4096, 3.5),
        // lbm: lattice-Boltzmann, write-heavy streaming + hot cells.
        intensive("lbm", 8.0, 512, 0.55, 6144, 1024, 2.5, 6.0, 0.45, 4096, 3.0),
        // com (MSC commercial trace): transactional, scattered small reads.
        intensive("com", 7.5, 896, 0.66, 9216, 512, 1.5, 2.0, 0.35, 6144, 2.5),
        // tigr (BioBench): genome assembly, irregular with hot index.
        intensive("tigr", 7.5, 640, 0.68, 8192, 512, 1.4, 2.0, 0.22, 5632, 3.0),
        // mum (BioBench): suffix-tree matching, irregular.
        intensive("mum", 7.5, 640, 0.66, 8192, 512, 1.3, 2.0, 0.20, 5632, 3.0),
        // --- memory non-intensive (h264ref, bzip2, gromacs, gcc, bfssandy,
        //     grep, wc-8443, sjeng, tpcc64, tpch2) ---
        light("h264ref", 18.0, 24, 0.965, 1536, 512, 6.0, 8.0, 0.30, 2.5),
        light("bzip2", 16.0, 32, 0.960, 1536, 512, 5.0, 8.0, 0.35, 2.5),
        light("gromacs", 22.0, 16, 0.970, 1024, 512, 4.0, 6.0, 0.28, 2.0),
        light("gcc", 14.0, 48, 0.955, 2048, 512, 3.0, 4.0, 0.32, 2.5),
        light("bfssandy", 10.0, 96, 0.962, 1280, 512, 1.5, 2.0, 0.15, 2.0),
        light("grep", 15.0, 40, 0.955, 1536, 512, 6.0, 10.0, 0.10, 2.0),
        light("wc-8443", 17.0, 24, 0.960, 1536, 512, 6.0, 10.0, 0.12, 2.0),
        light("sjeng", 24.0, 12, 0.970, 1024, 512, 2.0, 3.0, 0.25, 2.0),
        light("tpcc64", 11.0, 112, 0.965, 1536, 512, 1.5, 2.0, 0.40, 2.5),
        light("tpch2", 12.0, 96, 0.968, 1536, 512, 2.5, 6.0, 0.15, 3.0),
    ]
}

/// Profiles for the paper's multithreaded workloads (canneal,
/// fluidanimate, radix); every thread of a run shares one footprint, so
/// mixes built from one of these model one parallel program.
#[must_use]
pub fn multithreaded_profiles() -> Vec<AppProfile> {
    vec![
        // canneal: random exchanges over a huge netlist.
        intensive("canneal", 8.0, 768, 0.60, 9216, 512, 1.3, 1.5, 0.30, 6144, 2.5),
        // fluidanimate: partitioned grid, decent locality.
        intensive("fluidanimate", 9.5, 384, 0.72, 6144, 1024, 3.0, 4.0, 0.35, 4096, 3.5),
        // radix: streaming counting sort with hot histogram.
        intensive("radix", 8.5, 512, 0.45, 6144, 1024, 2.0, 8.0, 0.40, 4096, 2.0),
    ]
}

/// Finds a profile by benchmark name (single-core or multithreaded).
#[must_use]
pub fn profile_by_name(name: &str) -> Option<AppProfile> {
    app_profiles().into_iter().chain(multithreaded_profiles()).find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_profiles_ten_per_class() {
        let apps = app_profiles();
        assert_eq!(apps.len(), 20);
        assert_eq!(apps.iter().filter(|a| a.memory_intensive).count(), 10);
    }

    #[test]
    fn all_profiles_validate() {
        for p in app_profiles().iter().chain(multithreaded_profiles().iter()) {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = app_profiles().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn intensive_profiles_have_big_hot_sets() {
        for p in app_profiles() {
            let hot_bytes = u64::from(p.hot_segments) * u64::from(p.hot_segment_bytes);
            if p.memory_intensive {
                // Hot set must exceed a 2 MB single-core LLC to generate
                // DRAM-level reuse.
                assert!(hot_bytes > 2 * MB, "{} hot set too small", p.name);
            } else {
                assert!(hot_bytes <= 2 * MB, "{} hot set too large", p.name);
            }
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(profile_by_name("mcf").is_some());
        assert!(profile_by_name("canneal").is_some());
        assert!(profile_by_name("nonexistent").is_none());
    }
}
