//! Phase-switching application profiles: workloads that alternate
//! between qualitatively different access regimes — a hot-set regime
//! (the FIGCache-friendly scattered-fragment reuse of the base
//! profiles), a streaming regime (long sequential sweeps, little reuse)
//! and a pointer-chase regime (single-block visits, no spatial
//! locality) — on a fixed schedule.
//!
//! Real applications move through such phases (the PIM-methodology
//! literature calls this out as a property synthetic traces routinely
//! miss), and phase changes are exactly what stresses an in-DRAM cache's
//! insertion/replacement machinery: the hot set built during one phase
//! turns worthless in the next. Each phase derives its parameters from
//! one base [`AppProfile`], keeping the footprint and hot-segment
//! placement identical across phases so regimes contend for the *same*
//! rows rather than disjoint address spaces.

use crate::apps::AppProfile;
use crate::generator::TraceGenerator;
use crate::{TraceOp, TraceSource};

/// The access regime of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// The base profile's own hot-set behavior, intensified: almost every
    /// access targets the hot fragments.
    HotSet,
    /// Sequential sweeps across the footprint with restarts; the hot set
    /// is barely touched.
    Streaming,
    /// Dependent single-block visits over the hot pages: no bursts, no
    /// spatial locality, group span 1.
    PointerChase,
}

impl PhaseKind {
    /// Label for scenario names and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::HotSet => "hot",
            PhaseKind::Streaming => "stream",
            PhaseKind::PointerChase => "chase",
        }
    }

    /// Derives this regime's generator profile from `base`. Footprint,
    /// hot-segment count/size and phase structure stay untouched (same
    /// address layout); only the regime knobs move.
    #[must_use]
    pub fn derive(&self, base: &AppProfile) -> AppProfile {
        match self {
            PhaseKind::HotSet => {
                AppProfile { hot_fraction: base.hot_fraction.clamp(0.9, 0.98), ..*base }
            }
            PhaseKind::Streaming => AppProfile {
                hot_fraction: 0.05,
                stream_burst: base.stream_burst.max(12.0),
                ..*base
            },
            PhaseKind::PointerChase => AppProfile {
                hot_fraction: 0.9,
                hot_burst: 1.0,
                stream_burst: 1.0,
                group_span: 1.0,
                ..*base
            },
        }
    }
}

/// One phase of a schedule: a regime held for `ops` memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// The access regime.
    pub kind: PhaseKind,
    /// Memory operations before switching to the next phase.
    pub ops: u64,
}

/// A named phase-switching workload built over one base profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedProfile {
    /// Workload name (e.g. `mcf-phased`).
    pub name: String,
    /// The base profile phases derive from.
    pub base: AppProfile,
    /// The phase schedule, cycled forever.
    pub phases: Vec<Phase>,
}

impl PhasedProfile {
    /// The default three-regime schedule over `base`: hot-set, streaming,
    /// pointer-chase, each held for `phase_ops` operations.
    #[must_use]
    pub fn standard(base: AppProfile, phase_ops: u64) -> Self {
        Self {
            name: format!("{}-phased", base.name),
            base,
            phases: vec![
                Phase { kind: PhaseKind::HotSet, ops: phase_ops },
                Phase { kind: PhaseKind::Streaming, ops: phase_ops },
                Phase { kind: PhaseKind::PointerChase, ops: phase_ops },
            ],
        }
    }

    /// Sanity-checks the schedule and every derived phase profile.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: empty phase schedule", self.name));
        }
        if let Some(p) = self.phases.iter().find(|p| p.ops == 0) {
            return Err(format!("{}: zero-length {} phase", self.name, p.kind.label()));
        }
        for p in &self.phases {
            p.kind.derive(&self.base).validate()?;
        }
        Ok(())
    }
}

/// Streaming generator over a [`PhasedProfile`]: one [`TraceGenerator`]
/// per **schedule slot**, switched on the schedule. A slot's internal
/// state (Zipf phase sets, stream pointers) persists each time the
/// schedule cycles back to that slot; two slots sharing a regime are
/// still independent generators with distinct seeds. Infinite and
/// deterministic, with the same bounded lookahead as the underlying
/// generators.
#[derive(Debug, Clone)]
pub struct PhasedGenerator {
    profile: PhasedProfile,
    /// Generator per schedule slot (slots sharing a regime share state
    /// only if they are literally the same slot; regimes are cheap).
    gens: Vec<TraceGenerator>,
    phase_idx: usize,
    ops_left: u64,
    /// Phase transitions so far (observability for tests/reports).
    switches: u64,
}

impl PhasedGenerator {
    /// Creates a deterministic phased generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`PhasedProfile::validate`].
    #[must_use]
    pub fn new(profile: &PhasedProfile, seed: u64) -> Self {
        profile.validate().unwrap_or_else(|e| panic!("{e}"));
        let gens = profile
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Distinct seeds per slot keep regimes decorrelated while
                // the whole schedule stays a pure function of `seed`.
                TraceGenerator::new(&p.kind.derive(&profile.base), seed ^ (i as u64) << 32)
            })
            .collect();
        let ops_left = profile.phases[0].ops;
        Self { profile: profile.clone(), gens, phase_idx: 0, ops_left, switches: 0 }
    }

    /// The schedule slot currently generating.
    #[must_use]
    pub fn current_phase(&self) -> PhaseKind {
        self.profile.phases[self.phase_idx].kind
    }

    /// Phase transitions performed so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl Iterator for PhasedGenerator {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.ops_left == 0 {
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
            self.ops_left = self.profile.phases[self.phase_idx].ops;
            self.switches += 1;
        }
        self.ops_left -= 1;
        self.gens[self.phase_idx].next()
    }
}

impl TraceSource for PhasedGenerator {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn next_op(&mut self) -> TraceOp {
        self.next().expect("phased generators are endless")
    }
}

/// A default set of phased workloads: one per representative intensive
/// base profile, with a schedule short enough that tiny-scale runs cross
/// several phase boundaries.
#[must_use]
pub fn phased_profiles() -> Vec<PhasedProfile> {
    ["mcf", "zeusmp", "lbm"]
        .iter()
        .map(|n| {
            let base = crate::apps::profile_by_name(n).expect("base profile exists");
            PhasedProfile::standard(base, 20_000)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::profile_by_name;

    fn mcf_phased() -> PhasedProfile {
        PhasedProfile::standard(profile_by_name("mcf").unwrap(), 1_000)
    }

    #[test]
    fn default_profiles_validate() {
        for p in phased_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_and_endless() {
        let p = mcf_phased();
        let a: Vec<TraceOp> = PhasedGenerator::new(&p, 11).take(10_000).collect();
        let b: Vec<TraceOp> = PhasedGenerator::new(&p, 11).take(10_000).collect();
        assert_eq!(a, b);
        let c: Vec<TraceOp> = PhasedGenerator::new(&p, 12).take(10_000).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn phases_switch_on_schedule() {
        let p = mcf_phased();
        let mut gen = PhasedGenerator::new(&p, 5);
        assert_eq!(gen.current_phase(), PhaseKind::HotSet);
        for _ in 0..1_000 {
            let _ = gen.next();
        }
        // The 1001st op belongs to the next phase.
        let _ = gen.next();
        assert_eq!(gen.current_phase(), PhaseKind::Streaming);
        for _ in 0..(2 * 1_000) {
            let _ = gen.next();
        }
        assert_eq!(gen.current_phase(), PhaseKind::HotSet, "schedule must wrap");
        assert_eq!(gen.switches(), 3);
    }

    #[test]
    fn regimes_differ_in_access_character() {
        // Discriminate the regimes by sequentiality: the fraction of
        // accesses that continue the previous block. Streaming sweeps are
        // highly sequential, pointer chasing is not at all.
        let base = profile_by_name("zeusmp").unwrap();
        let sequential_fraction = |kind: PhaseKind| {
            let p = PhasedProfile {
                name: "probe".into(),
                base,
                phases: vec![Phase { kind, ops: 8_000 }],
            };
            let ops: Vec<TraceOp> = PhasedGenerator::new(&p, 7).take(8_000).collect();
            let seq = ops.windows(2).filter(|w| w[1].addr == w[0].addr + 64).count();
            seq as f64 / (ops.len() - 1) as f64
        };
        let stream = sequential_fraction(PhaseKind::Streaming);
        let chase = sequential_fraction(PhaseKind::PointerChase);
        assert!(
            stream > 0.7 && chase < 0.1,
            "streaming must be sequential, chasing must not (stream {stream:.3}, chase {chase:.3})"
        );
    }

    #[test]
    fn addresses_stay_in_footprint_across_phases() {
        let p = mcf_phased();
        for op in PhasedGenerator::new(&p, 3).take(20_000) {
            assert!(op.addr < p.base.footprint_bytes);
        }
    }

    #[test]
    fn empty_schedule_is_rejected() {
        let p = PhasedProfile {
            name: "bad".into(),
            base: profile_by_name("mcf").unwrap(),
            phases: vec![],
        };
        assert!(p.validate().is_err());
    }
}
