//! Open-loop arrival pacing for streamed sources.
//!
//! A [`TraceSource`]'s `nonmem` gaps encode how fast the *application*
//! issues memory operations — a closed loop, where a slow memory system
//! slows the injection rate with it. Service studies need the opposite:
//! an **open-loop** arrival process where the offered load is a free
//! axis, so saturation shows up as growing queues and tail latency
//! instead of a politely self-throttling core. [`ArrivalSchedule`] wraps
//! any source (generator, phased, replay, page-mapped) and replaces each
//! op's `nonmem` gap with a draw from a configured arrival process,
//! keeping the address/write stream untouched.
//!
//! With core width `w`, a gap of `g` non-memory instructions takes
//! ⌈`g`/`w`⌉ issue cycles, so the offered load is roughly
//! `w · 1000 / (g + 1)` memory ops per kilo-cycle of CPU time
//! (upper-bounded by MSHR back-pressure once the memory system
//! saturates — that back-pressure is exactly what the serving sweeps
//! measure).
//!
//! Pacing is a pure, seeded source transform: the same construction
//! yields the same op sequence, so event/reference kernel equivalence
//! holds for paced sources exactly as for raw ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{TraceOp, TraceSource};

/// An open-loop arrival process: how many non-memory instructions
/// separate consecutive memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Every op separated by exactly `gap` non-memory instructions.
    Fixed {
        /// Inter-arrival gap (non-memory instructions).
        gap: u32,
    },
    /// Exponential (memoryless) gaps with mean `mean_gap` — a Poisson
    /// arrival process in instruction time. Samples are clamped at
    /// 8× the mean like the generator's own exponential draws.
    Poisson {
        /// Mean inter-arrival gap (non-memory instructions), ≥ 1.
        mean_gap: u32,
    },
    /// On/off bursts: `burst_ops` back-to-back ops at `gap_on`, then one
    /// idle period of `gap_idle` before the next burst — the classic
    /// bursty open-loop shape whose time-average load understates its
    /// queueing impact.
    Bursty {
        /// Gap between ops inside a burst.
        gap_on: u32,
        /// Ops per burst, ≥ 1.
        burst_ops: u32,
        /// Gap preceding each burst (the off period).
        gap_idle: u32,
    },
}

impl ArrivalKind {
    /// Stable label for cache keys, reports and CSV columns.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ArrivalKind::Fixed { gap } => format!("fixed{gap}"),
            ArrivalKind::Poisson { mean_gap } => format!("poisson{mean_gap}"),
            ArrivalKind::Bursty { gap_on, burst_ops, gap_idle } => {
                format!("bursty{gap_on}x{burst_ops}i{gap_idle}")
            }
        }
    }

    /// Expected inter-arrival gap in non-memory instructions (the
    /// time-average of the process — offered load per core is roughly
    /// `width · 1000 / (mean_gap() + 1)` ops per kilo-cycle).
    #[must_use]
    pub fn mean_gap(&self) -> f64 {
        match self {
            ArrivalKind::Fixed { gap } => f64::from(*gap),
            ArrivalKind::Poisson { mean_gap } => f64::from(*mean_gap),
            ArrivalKind::Bursty { gap_on, burst_ops, gap_idle } => {
                (f64::from(*gap_on) * f64::from(burst_ops.saturating_sub(1)) + f64::from(*gap_idle))
                    / f64::from((*burst_ops).max(1))
            }
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalKind::Fixed { .. } => Ok(()),
            ArrivalKind::Poisson { mean_gap } => {
                if *mean_gap == 0 {
                    Err("poisson mean_gap must be >= 1".into())
                } else {
                    Ok(())
                }
            }
            ArrivalKind::Bursty { burst_ops, .. } => {
                if *burst_ops == 0 {
                    Err("bursty burst_ops must be >= 1".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Parses the `FIGARO_LOAD` syntax: `fixed:GAP`, `poisson:MEAN_GAP`,
    /// or `bursty:GAP_ON,BURST_OPS,GAP_IDLE`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on any malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let usage = "use `fixed:GAP`, `poisson:MEAN_GAP`, or `bursty:GAP_ON,BURST_OPS,GAP_IDLE`";
        let (kind, args) = spec.split_once(':').ok_or_else(|| format!("missing `:` — {usage}"))?;
        let num =
            |s: &str| s.trim().parse::<u32>().map_err(|_| format!("bad number `{s}` — {usage}"));
        let parsed = match kind.trim().to_lowercase().as_str() {
            "fixed" => ArrivalKind::Fixed { gap: num(args)? },
            "poisson" => ArrivalKind::Poisson { mean_gap: num(args)? },
            "bursty" => {
                let parts: Vec<&str> = args.split(',').collect();
                if parts.len() != 3 {
                    return Err(format!("bursty needs 3 parameters — {usage}"));
                }
                ArrivalKind::Bursty {
                    gap_on: num(parts[0])?,
                    burst_ops: num(parts[1])?,
                    gap_idle: num(parts[2])?,
                }
            }
            other => return Err(format!("unrecognized arrival kind `{other}` — {usage}")),
        };
        parsed.validate()?;
        Ok(parsed)
    }

    /// Reads the process-wide `FIGARO_LOAD` override once: `None` when
    /// unset (closed-loop default — sources keep their own gaps).
    ///
    /// # Panics
    ///
    /// Panics on a malformed value: the override exists to pin the
    /// offered load under study, so a typo must fail loudly rather than
    /// silently run closed-loop.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        static LOAD: std::sync::OnceLock<Option<ArrivalKind>> = std::sync::OnceLock::new();
        *LOAD.get_or_init(|| {
            let raw = std::env::var("FIGARO_LOAD").unwrap_or_default();
            if raw.is_empty() {
                return None;
            }
            match ArrivalKind::parse(&raw) {
                Ok(kind) => Some(kind),
                Err(e) => panic!("unrecognized FIGARO_LOAD `{raw}`: {e}"),
            }
        })
    }
}

/// A [`TraceSource`] adapter that re-paces its inner source with an
/// open-loop [`ArrivalKind`] (see the module docs).
#[derive(Debug)]
pub struct ArrivalSchedule {
    inner: Box<dyn TraceSource>,
    kind: ArrivalKind,
    rng: StdRng,
    /// Ops left in the current burst (bursty kind only).
    burst_left: u32,
    name: String,
}

impl ArrivalSchedule {
    /// Wraps `inner`, replacing each op's `nonmem` gap with a draw from
    /// `kind` (seeded, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `kind` fails [`ArrivalKind::validate`].
    #[must_use]
    pub fn new(inner: Box<dyn TraceSource>, kind: ArrivalKind, seed: u64) -> Self {
        kind.validate().expect("arrival kind must validate");
        let name = format!("{}+{}", inner.name(), kind.label());
        Self { inner, kind, rng: StdRng::seed_from_u64(seed), burst_left: 0, name }
    }

    /// The arrival process this schedule applies.
    #[must_use]
    pub fn kind(&self) -> ArrivalKind {
        self.kind
    }

    fn sample_gap(&mut self) -> u32 {
        match self.kind {
            ArrivalKind::Fixed { gap } => gap,
            ArrivalKind::Poisson { mean_gap } => {
                let mean = f64::from(mean_gap);
                let u: f64 = self.rng.gen_range(1e-9..1.0);
                let v = -mean * u.ln();
                v.min(mean * 8.0) as u32
            }
            ArrivalKind::Bursty { gap_on, burst_ops, gap_idle } => {
                if self.burst_left == 0 {
                    self.burst_left = burst_ops - 1;
                    gap_idle
                } else {
                    self.burst_left -= 1;
                    gap_on
                }
            }
        }
    }
}

impl TraceSource for ArrivalSchedule {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> TraceOp {
        let op = self.inner.next_op();
        TraceOp { nonmem: self.sample_gap(), ..op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profile_by_name, TraceGenerator};

    fn paced(kind: ArrivalKind, seed: u64) -> ArrivalSchedule {
        let inner = TraceGenerator::new(&profile_by_name("mcf").unwrap(), 7);
        ArrivalSchedule::new(Box::new(inner), kind, seed)
    }

    #[test]
    fn pacing_preserves_the_address_stream() {
        let mut raw = TraceGenerator::new(&profile_by_name("mcf").unwrap(), 7);
        let mut fixed = paced(ArrivalKind::Fixed { gap: 10 }, 1);
        for _ in 0..5_000 {
            let a = raw.next().unwrap();
            let b = fixed.next_op();
            assert_eq!((a.addr, a.is_write), (b.addr, b.is_write));
            assert_eq!(b.nonmem, 10);
        }
    }

    #[test]
    fn pacing_is_deterministic_per_seed() {
        let collect = |seed| -> Vec<TraceOp> {
            let mut s = paced(ArrivalKind::Poisson { mean_gap: 16 }, seed);
            (0..2_000).map(|_| s.next_op()).collect()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(
            collect(3).iter().map(|o| o.nonmem).collect::<Vec<_>>(),
            collect(4).iter().map(|o| o.nonmem).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn poisson_mean_tracks_the_parameter() {
        let mut s = paced(ArrivalKind::Poisson { mean_gap: 32 }, 11);
        let n = 50_000;
        let mean = (0..n).map(|_| f64::from(s.next_op().nonmem)).sum::<f64>() / f64::from(n);
        assert!((mean - 32.0).abs() / 32.0 < 0.1, "mean gap {mean} vs 32");
    }

    #[test]
    fn bursty_alternates_on_and_idle_gaps() {
        let kind = ArrivalKind::Bursty { gap_on: 0, burst_ops: 4, gap_idle: 100 };
        let mut s = paced(kind, 5);
        let gaps: Vec<u32> = (0..12).map(|_| s.next_op().nonmem).collect();
        assert_eq!(gaps, vec![100, 0, 0, 0, 100, 0, 0, 0, 100, 0, 0, 0]);
    }

    #[test]
    fn labels_and_parse_round_trip() {
        for kind in [
            ArrivalKind::Fixed { gap: 8 },
            ArrivalKind::Poisson { mean_gap: 64 },
            ArrivalKind::Bursty { gap_on: 2, burst_ops: 16, gap_idle: 4096 },
        ] {
            let spec = match kind {
                ArrivalKind::Fixed { gap } => format!("fixed:{gap}"),
                ArrivalKind::Poisson { mean_gap } => format!("poisson:{mean_gap}"),
                ArrivalKind::Bursty { gap_on, burst_ops, gap_idle } => {
                    format!("bursty:{gap_on},{burst_ops},{gap_idle}")
                }
            };
            assert_eq!(ArrivalKind::parse(&spec), Ok(kind), "{spec}");
        }
        assert!(ArrivalKind::parse("poisson:0").is_err(), "zero mean must be rejected");
        assert!(ArrivalKind::parse("bursty:1,0,1").is_err(), "empty burst must be rejected");
        assert!(ArrivalKind::parse("warp:9").is_err());
        assert!(ArrivalKind::parse("fixed").is_err());
    }

    #[test]
    fn schedule_name_composes_inner_and_kind() {
        let s = paced(ArrivalKind::Fixed { gap: 3 }, 0);
        assert_eq!(s.name(), "mcf+fixed3");
    }
}
