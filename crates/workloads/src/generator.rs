//! The trace generator: turns an [`AppProfile`] into a deterministic
//! stream of [`TraceOp`]s.
//!
//! Address layout: the footprint is divided into 8 kB *pages*; one
//! contiguous page is exactly one DRAM row under the paper's address
//! interleaving. Each hot segment owns a distinct page (chosen by a
//! pseudo-random permutation over the footprint) and a segment-aligned
//! slot inside it; the hot region of a page is small, so rows are mostly
//! cold — the property that makes row-granularity in-DRAM caching
//! wasteful and segment-granularity caching effective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::AppProfile;
use crate::{Trace, TraceOp};

const PAGE_BYTES: u64 = 8192;
const BLOCK_BYTES: u64 = 64;
const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;
/// Hot segments per correlated group (one in-DRAM cache row's worth).
const GROUP: u32 = 8;
/// Page residues that share one bank under the paper's interleaving for
/// both the 1-channel and 4-channel geometries (lcm of 16 and 64 banks).
const BANK_RESIDUES: u64 = 64;

/// Streaming generator over an application profile. Implements
/// [`Iterator`] (and [`crate::TraceSource`]) and never ends; its only
/// buffered state is the burst in progress — a bounded lookahead window
/// of at most a few hundred operations — so a consumer pulling ops on
/// demand simulates arbitrarily long traces in constant memory. Use
/// [`generate_trace`] for a fixed-length materialized [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    rng: StdRng,
    pages: u64,
    /// Hot segment popularity CDF within the current phase.
    zipf_cdf: Vec<f64>,
    /// Active hot segments this phase (indices into the hot-segment space).
    phase_set: Vec<u32>,
    ops_left_in_phase: u32,
    /// Remaining (addr, is_write)s of the burst in progress — the bounded
    /// lookahead window (one group/stream visit's worth of accesses).
    burst: Vec<(u64, bool)>,
    /// Streaming pointer (block index within the footprint).
    stream_block: u64,
}

impl TraceGenerator {
    /// Creates a deterministic generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`].
    #[must_use]
    pub fn new(profile: &AppProfile, seed: u64) -> Self {
        profile.validate().expect("profile must validate");
        let pages = profile.footprint_bytes / PAGE_BYTES;
        let n = (profile.phase_segments / GROUP) as usize;
        // Zipf CDF over the phase set.
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(profile.zipf_exponent);
            total += w;
            weights.push(total);
        }
        for w in &mut weights {
            *w /= total;
        }
        let mut gen = Self {
            profile: *profile,
            rng: StdRng::seed_from_u64(seed),
            pages,
            zipf_cdf: weights,
            phase_set: Vec::new(),
            ops_left_in_phase: 0,
            burst: Vec::new(),
            stream_block: 0,
        };
        gen.redraw_phase();
        gen
    }

    /// Name of the profile being generated.
    #[must_use]
    pub fn profile_name(&self) -> &'static str {
        self.profile.name
    }

    /// The page (row) a hot segment lives in. Placement rules:
    ///
    /// * every hot segment gets a **distinct** page, so hot fragments are
    ///   scattered small pieces of many rows (the paper's premise — if
    ///   two hot segments shared a row, the baseline would already enjoy
    ///   the co-location FIGCache has to create);
    /// * the eight segments of a *group* land in pages of the **same DRAM
    ///   bank** (page numbers congruent mod 64), so a group visit is a
    ///   burst of same-bank row conflicts that an in-DRAM cache row can
    ///   absorb.
    fn hot_page(&self, segment: u32) -> u64 {
        let group = u64::from(segment / GROUP);
        let member = u64::from(segment % GROUP);
        let residue = group % BANK_RESIDUES;
        let class_index = group / BANK_RESIDUES; // k-th group in its residue class
        let groups = u64::from(self.profile.hot_segments / GROUP);
        let classes = groups.div_ceil(BANK_RESIDUES).max(1);
        let q_space = self.pages / BANK_RESIDUES;
        let base_q = class_index * q_space / classes;
        ((base_q + member) * BANK_RESIDUES + residue) % self.pages
    }

    /// Block offset of the hot slot within its page: segment-aligned,
    /// derived from the segment id so it is stable across phases.
    fn hot_slot_block(&self, segment: u32) -> u64 {
        let hot_blocks = u64::from(self.profile.hot_segment_bytes) / BLOCK_BYTES;
        let slots = (BLOCKS_PER_PAGE / hot_blocks).max(1);
        (u64::from(segment).wrapping_mul(0x85EB_CA6B) % slots) * hot_blocks
    }

    fn redraw_phase(&mut self) {
        let n = self.profile.phase_segments / GROUP;
        let universe = self.profile.hot_segments / GROUP;
        // A random contiguous window of the group space (cheap,
        // deterministic, and temporally clustered: neighbouring phases
        // overlap only by chance).
        let start = self.rng.gen_range(0..universe);
        self.phase_set = (0..n).map(|i| (start + i) % universe).collect();
        self.ops_left_in_phase = self.profile.phase_len_ops;
    }

    /// Samples a hot *group* from the phase's Zipf distribution.
    fn sample_zipf(&mut self) -> u32 {
        let u: f64 = self.rng.gen();
        let idx = self.zipf_cdf.partition_point(|&c| c < u).min(self.zipf_cdf.len() - 1);
        self.phase_set[idx]
    }

    /// One group visit: walk `span` consecutive members of one hot group
    /// (same bank, different rows), touching a short run of blocks in each
    /// member's hot slot.
    fn push_hot_burst(&mut self) {
        let group = self.sample_zipf();
        let span = self.sample_burst(self.profile.group_span).min(GROUP);
        let first = self.rng.gen_range(0..GROUP);
        let hot_blocks = (u64::from(self.profile.hot_segment_bytes) / BLOCK_BYTES).max(1);
        for m in 0..span {
            let seg = group * GROUP + (first + m) % GROUP;
            let page = self.hot_page(seg);
            let slot = self.hot_slot_block(seg);
            let burst_len = self.sample_burst(self.profile.hot_burst).min(hot_blocks as u32).max(1);
            let start = self.rng.gen_range(0..hot_blocks.saturating_sub(u64::from(burst_len)) + 1);
            for i in 0..u64::from(burst_len) {
                let block = slot + start + i;
                let addr = page * PAGE_BYTES + block * BLOCK_BYTES;
                let is_write = self.rng.gen_bool(self.profile.write_frac);
                self.burst.push((addr, is_write));
            }
        }
        self.burst.reverse(); // pop from the back in order
    }

    fn push_stream_burst(&mut self) {
        let total_blocks = self.pages * BLOCKS_PER_PAGE;
        let burst_len = self.sample_burst(self.profile.stream_burst).max(1);
        // Occasionally jump to a random position (streaming with restarts).
        if self.rng.gen_bool(0.05) {
            self.stream_block = self.rng.gen_range(0..total_blocks);
        }
        for _ in 0..burst_len {
            let addr = (self.stream_block % total_blocks) * BLOCK_BYTES;
            let is_write = self.rng.gen_bool(self.profile.write_frac);
            self.burst.push((addr, is_write));
            self.stream_block += 1;
        }
        self.burst.reverse();
    }

    /// Geometric-ish burst length around `mean`.
    fn sample_burst(&mut self, mean: f64) -> u32 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let mut len = 1u32;
        while len < 64 && !self.rng.gen_bool(p) {
            len += 1;
        }
        len
    }

    fn sample_nonmem(&mut self) -> u32 {
        // Exponential around the mean, clamped; keeps issue pressure bursty
        // like real instruction streams.
        let mean = self.profile.nonmem_per_mem;
        if mean <= 0.0 {
            return 0;
        }
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let v = -mean * u.ln();
        v.min(mean * 8.0) as u32
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.burst.is_empty() {
            if self.ops_left_in_phase == 0 {
                self.redraw_phase();
            }
            if self.rng.gen_bool(self.profile.hot_fraction) {
                self.push_hot_burst();
            } else {
                self.push_stream_burst();
            }
        }
        let (addr, is_write) = self.burst.pop().expect("burst refilled above");
        self.ops_left_in_phase = self.ops_left_in_phase.saturating_sub(1);
        Some(TraceOp { nonmem: self.sample_nonmem(), addr, is_write })
    }
}

/// Generates a fixed-length trace for `profile`.
#[must_use]
pub fn generate_trace(profile: &AppProfile, ops: usize, seed: u64) -> Trace {
    let gen = TraceGenerator::new(profile, seed);
    Trace { name: profile.name.to_string(), ops: gen.take(ops).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{app_profiles, profile_by_name};

    #[test]
    fn generation_is_deterministic() {
        let p = profile_by_name("mcf").unwrap();
        let a = generate_trace(&p, 5000, 7);
        let b = generate_trace(&p, 5000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = profile_by_name("mcf").unwrap();
        let a = generate_trace(&p, 1000, 1);
        let b = generate_trace(&p, 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for p in app_profiles() {
            let t = generate_trace(&p, 2000, 3);
            for op in &t.ops {
                assert!(op.addr < p.footprint_bytes, "{}: {:#x}", p.name, op.addr);
            }
        }
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let p = profile_by_name("lbm").unwrap();
        let t = generate_trace(&p, 20_000, 11);
        assert!((t.write_fraction() - p.write_frac).abs() < 0.05);
    }

    #[test]
    fn mean_nonmem_tracks_profile() {
        let p = profile_by_name("sjeng").unwrap();
        let t = generate_trace(&p, 20_000, 13);
        let mean = t.ops.iter().map(|o| f64::from(o.nonmem)).sum::<f64>() / t.ops.len() as f64;
        assert!(
            (mean - p.nonmem_per_mem).abs() / p.nonmem_per_mem < 0.15,
            "mean nonmem {mean} vs {}",
            p.nonmem_per_mem
        );
    }

    #[test]
    fn hot_accesses_touch_limited_part_of_each_page() {
        // The paper's premise: within an opened row only a small fragment
        // is accessed. Verify: per page, the distinct blocks touched by hot
        // accesses stay within one hot-segment extent.
        use std::collections::HashMap;
        let p = profile_by_name("mcf").unwrap();
        let t = generate_trace(&p, 50_000, 17);
        let mut per_page: HashMap<u64, std::collections::HashSet<u64>> = HashMap::new();
        for op in &t.ops {
            per_page.entry(op.addr / 8192).or_default().insert((op.addr % 8192) / 64);
        }
        // Pages visited by the hot component repeatedly should show a
        // bounded footprint. Check the median page's touched-block count.
        let mut counts: Vec<usize> =
            per_page.values().map(std::collections::HashSet::len).filter(|&c| c > 1).collect();
        counts.sort_unstable();
        if !counts.is_empty() {
            let median = counts[counts.len() / 2];
            assert!(
                median as u64 <= u64::from(p.hot_segment_bytes) / 64 + 2,
                "median touched blocks per reused page = {median}"
            );
        }
    }

    #[test]
    fn hot_pages_spread_across_banks() {
        // With the paper's mapping, bits 13.. of the address select
        // bank/bank-group; hot pages should cover many of the 16 banks.
        let p = profile_by_name("zeusmp").unwrap();
        let t = generate_trace(&p, 30_000, 19);
        let mut banks = std::collections::HashSet::new();
        for op in &t.ops {
            banks.insert((op.addr >> 13) & 0xF);
        }
        assert!(banks.len() >= 12, "only {} banks touched", banks.len());
    }

    #[test]
    fn iterator_is_endless() {
        let p = profile_by_name("grep").unwrap();
        let mut gen = TraceGenerator::new(&p, 23);
        for _ in 0..100_000 {
            assert!(gen.next().is_some());
        }
    }
}
