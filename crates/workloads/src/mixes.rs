//! The paper's twenty eight-core multiprogrammed mixes, grouped by the
//! fraction of memory-intensive applications (25%, 50%, 75%, 100%).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::apps::{app_profiles, AppProfile};

/// Memory-intensity category of a mix (paper Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MixCategory {
    /// 2 of 8 applications memory-intensive.
    Intensive25,
    /// 4 of 8.
    Intensive50,
    /// 6 of 8.
    Intensive75,
    /// 8 of 8.
    Intensive100,
}

impl MixCategory {
    /// All categories in paper order.
    #[must_use]
    pub fn all() -> [MixCategory; 4] {
        [Self::Intensive25, Self::Intensive50, Self::Intensive75, Self::Intensive100]
    }

    /// Number of memory-intensive applications out of eight.
    #[must_use]
    pub fn intensive_count(&self) -> usize {
        match self {
            Self::Intensive25 => 2,
            Self::Intensive50 => 4,
            Self::Intensive75 => 6,
            Self::Intensive100 => 8,
        }
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Intensive25 => "25%",
            Self::Intensive50 => "50%",
            Self::Intensive75 => "75%",
            Self::Intensive100 => "100%",
        }
    }
}

/// One eight-application multiprogrammed workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Mix name, e.g. `mix50-2`.
    pub name: String,
    /// Intensity category.
    pub category: MixCategory,
    /// The eight applications, one per core.
    pub apps: Vec<AppProfile>,
}

/// Builds the paper's twenty mixes: five per category, drawn
/// deterministically from the Table 2 applications.
#[must_use]
pub fn eight_core_mixes() -> Vec<Mix> {
    let apps = app_profiles();
    let intensive: Vec<&AppProfile> = apps.iter().filter(|a| a.memory_intensive).collect();
    let light: Vec<&AppProfile> = apps.iter().filter(|a| !a.memory_intensive).collect();
    let mut mixes = Vec::with_capacity(20);
    let mut rng = StdRng::seed_from_u64(0x00F1_6CA0);
    for category in MixCategory::all() {
        let n_int = category.intensive_count();
        for i in 0..5 {
            let mut chosen: Vec<AppProfile> = Vec::with_capacity(8);
            // Sample with replacement only if the class is exhausted.
            let mut int_pool: Vec<&AppProfile> = intensive.clone();
            let mut light_pool: Vec<&AppProfile> = light.clone();
            int_pool.shuffle(&mut rng);
            light_pool.shuffle(&mut rng);
            for k in 0..n_int {
                chosen.push(*int_pool[k % int_pool.len()]);
            }
            for k in 0..(8 - n_int) {
                chosen.push(*light_pool[k % light_pool.len()]);
            }
            chosen.shuffle(&mut rng);
            mixes.push(Mix {
                name: format!("mix{}-{}", category.label().trim_end_matches('%'), i + 1),
                category,
                apps: chosen,
            });
        }
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_mixes_five_per_category() {
        let mixes = eight_core_mixes();
        assert_eq!(mixes.len(), 20);
        for cat in MixCategory::all() {
            assert_eq!(mixes.iter().filter(|m| m.category == cat).count(), 5);
        }
    }

    #[test]
    fn mixes_have_the_declared_intensity() {
        for m in eight_core_mixes() {
            assert_eq!(m.apps.len(), 8);
            let n_int = m.apps.iter().filter(|a| a.memory_intensive).count();
            assert_eq!(n_int, m.category.intensive_count(), "{}", m.name);
        }
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = eight_core_mixes();
        let b = eight_core_mixes();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = eight_core_mixes().into_iter().map(|m| m.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
