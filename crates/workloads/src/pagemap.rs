//! OS page-frame placement policies.
//!
//! The DRAM address mapping decides where a *physical* page lands; the
//! OS decides which physical frame backs each *virtual* page. Both
//! knobs move FIGCache hit rates and bank-level parallelism, so the
//! frame-allocation policy is modeled here as a deterministic bijection
//! over page frames, applied where traces and generators emit
//! addresses (see [`PageMappedSource`]).
//!
//! Three policies ([`PageMapKind`]):
//!
//! * **Identity** — virtual frame = physical frame (the default; keeps
//!   every run bit-identical to the pre-subsystem behavior).
//! * **Random** — seeded pseudo-random frame allocation: an invertible
//!   multiply-XOR scramble of the frame index, modeling a long-running
//!   system whose free list has lost all contiguity.
//! * **Color** — bank/channel page coloring: consecutive virtual pages
//!   share one frame color (frame index modulo the color count, which
//!   is what selects banks/channels under block-interleaved DRAM
//!   mappings), so each contiguous region of the address space is
//!   pinned to one bank/channel set — the OS-side cache-hostile
//!   extreme.
//!
//! Every policy is a bijection on the frame space (a power of two), so
//! distinct blocks never alias and footprints are preserved; frame bits
//! above the space and the in-page offset pass through untouched.

use crate::{TraceOp, TraceSource};

/// Odd multiplier (64-bit golden ratio) — multiplication by an odd
/// constant is invertible modulo any power of two.
const SCRAMBLE_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Identifies an OS page-frame placement policy — the value form
/// carried by system configs, scenario overrides and result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageMapKind {
    /// Virtual frame = physical frame (the default).
    #[default]
    Identity,
    /// Seeded pseudo-random frame allocation (fragmented free list).
    Random {
        /// Scramble seed; different seeds give different placements.
        seed: u64,
    },
    /// Bank/channel page coloring with `colors` colors: consecutive
    /// virtual pages keep one frame color per contiguous region.
    Color {
        /// Number of colors (a power of two; clamped to the frame
        /// count). Under the paper's mapping, 16 colors = the banks of
        /// one channel, 64 covers 4-channel bank selection.
        colors: u32,
    },
}

impl PageMapKind {
    /// Stable label for reports, cache keys and `FIGARO_PAGEMAP`:
    /// `ident` | `rand<seed>` | `color<N>`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PageMapKind::Identity => "ident".into(),
            PageMapKind::Random { seed } => format!("rand{seed}"),
            PageMapKind::Color { colors } => format!("color{colors}"),
        }
    }

    /// Parses a [`PageMapKind::label`]-style name (case-insensitive);
    /// bare `rand` means seed 1. `None` for anything else.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let name = name.trim().to_ascii_lowercase();
        match name.as_str() {
            "ident" | "identity" => return Some(PageMapKind::Identity),
            "rand" | "random" => return Some(PageMapKind::Random { seed: 1 }),
            _ => {}
        }
        if let Some(n) = name.strip_prefix("rand") {
            return n.parse().ok().map(|seed| PageMapKind::Random { seed });
        }
        if let Some(n) = name.strip_prefix("color") {
            let colors: u32 = n.parse().ok()?;
            if !colors.is_power_of_two() {
                return None;
            }
            return Some(PageMapKind::Color { colors });
        }
        None
    }

    /// Reads `FIGARO_PAGEMAP` (a [`PageMapKind::from_name`] label),
    /// defaulting to [`PageMapKind::Identity`] when unset. Read once per
    /// process — the selector sits on system-construction paths.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: the override exists to pick the
    /// placement under study, so a typo must fail loudly rather than
    /// silently measure the default.
    #[must_use]
    pub fn from_env() -> Self {
        static PAGEMAP: std::sync::OnceLock<PageMapKind> = std::sync::OnceLock::new();
        *PAGEMAP.get_or_init(|| {
            let raw = std::env::var("FIGARO_PAGEMAP").unwrap_or_default();
            if raw.is_empty() {
                return PageMapKind::Identity;
            }
            PageMapKind::from_name(&raw).unwrap_or_else(|| {
                panic!(
                    "unrecognized FIGARO_PAGEMAP `{raw}` \
                     (use ident | rand<seed> | color<N>, N a power of two)"
                )
            })
        })
    }
}

/// The frame permutation a [`PageMapper`] applies, precomputed to pure
/// mask/shift/multiply form (this sits on the per-memory-op hot path of
/// every non-identity run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameOp {
    Identity,
    /// `(low ^ xor) * SCRAMBLE_MUL, masked` (seed pre-masked).
    Scramble {
        xor: u64,
    },
    /// Transpose of the `(frames / colors) × colors` matrix: virtual
    /// frames `0..frames/colors` land on color 0, the next run on
    /// color 1, … — bijective because both factors are powers of two.
    Transpose {
        run_mask: u64,
        run_shift: u32,
        color_shift: u32,
    },
}

/// A deterministic, bijective virtual-frame → physical-frame map over a
/// power-of-two frame space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapper {
    kind: PageMapKind,
    op: FrameOp,
    page_shift: u32,
    /// `frames - 1`; the policy permutes only the low frame bits so
    /// addresses beyond the frame space stay bijective too.
    frame_mask: u64,
}

impl PageMapper {
    /// A mapper for `kind` over `addr_space_bytes / page_bytes` frames.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two with at least one
    /// frame in the space, or if `kind` is [`PageMapKind::Color`] with a
    /// non-power-of-two color count (the transpose would alias distinct
    /// pages otherwise — the same invariant `from_name` enforces).
    #[must_use]
    pub fn new(kind: PageMapKind, page_bytes: u64, addr_space_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page_bytes must be a power of two");
        assert!(addr_space_bytes.is_power_of_two(), "addr space must be a power of two");
        assert!(addr_space_bytes >= page_bytes, "address space smaller than one page");
        let frames = addr_space_bytes / page_bytes;
        let op = match kind {
            PageMapKind::Identity => FrameOp::Identity,
            PageMapKind::Random { seed } => FrameOp::Scramble { xor: seed & (frames - 1) },
            PageMapKind::Color { colors } => {
                assert!(
                    colors.is_power_of_two(),
                    "colors = {colors} must be a non-zero power of two"
                );
                let colors = u64::from(colors).min(frames);
                let run = frames / colors;
                FrameOp::Transpose {
                    run_mask: run - 1,
                    run_shift: run.trailing_zeros(),
                    color_shift: colors.trailing_zeros(),
                }
            }
        };
        Self { kind, op, page_shift: page_bytes.trailing_zeros(), frame_mask: frames - 1 }
    }

    /// The policy this mapper applies.
    #[must_use]
    pub fn kind(&self) -> PageMapKind {
        self.kind
    }

    /// Maps one byte address: the containing frame is remapped by the
    /// policy, the in-page offset is preserved.
    #[must_use]
    pub fn map_addr(&self, addr: u64) -> u64 {
        let frame = addr >> self.page_shift;
        let low = frame & self.frame_mask;
        let mapped = match self.op {
            FrameOp::Identity => return addr,
            FrameOp::Scramble { xor } => (low ^ xor).wrapping_mul(SCRAMBLE_MUL) & self.frame_mask,
            FrameOp::Transpose { run_mask, run_shift, color_shift } => {
                ((low & run_mask) << color_shift) | (low >> run_shift)
            }
        };
        let high = frame & !self.frame_mask;
        ((high | mapped) << self.page_shift) | (addr & ((1 << self.page_shift) - 1))
    }
}

/// A [`TraceSource`] adapter that routes every emitted address through a
/// [`PageMapper`] — the point where OS frame placement meets the
/// workload stream.
#[derive(Debug)]
pub struct PageMappedSource {
    inner: Box<dyn TraceSource>,
    mapper: PageMapper,
}

impl PageMappedSource {
    /// Wraps `inner`, remapping each op's address through `mapper`.
    #[must_use]
    pub fn new(inner: Box<dyn TraceSource>, mapper: PageMapper) -> Self {
        Self { inner, mapper }
    }
}

impl TraceSource for PageMappedSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_op(&mut self) -> TraceOp {
        let op = self.inner.next_op();
        TraceOp { addr: self.mapper.map_addr(op.addr), ..op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 8192;
    const SPACE: u64 = 256 * PAGE;

    fn kinds() -> Vec<PageMapKind> {
        vec![
            PageMapKind::Identity,
            PageMapKind::Random { seed: 7 },
            PageMapKind::Random { seed: 8 },
            PageMapKind::Color { colors: 16 },
            PageMapKind::Color { colors: 64 },
        ]
    }

    #[test]
    fn every_policy_is_a_bijection_on_the_frame_space() {
        for kind in kinds() {
            let m = PageMapper::new(kind, PAGE, SPACE);
            let mut seen = std::collections::HashSet::new();
            for frame in 0..SPACE / PAGE {
                let mapped = m.map_addr(frame * PAGE);
                assert_eq!(mapped % PAGE, 0, "{kind:?}: page alignment lost");
                assert!(mapped < SPACE, "{kind:?}: frame mapped outside the space");
                assert!(seen.insert(mapped), "{kind:?}: frame collision at {frame}");
            }
            assert_eq!(seen.len() as u64, SPACE / PAGE);
        }
    }

    #[test]
    fn offsets_within_a_page_are_preserved() {
        for kind in kinds() {
            let m = PageMapper::new(kind, PAGE, SPACE);
            let a = m.map_addr(3 * PAGE);
            let b = m.map_addr(3 * PAGE + 4095);
            assert_eq!(b - a, 4095, "{kind:?}: offset not preserved");
        }
    }

    #[test]
    fn identity_is_a_no_op_and_random_seeds_differ() {
        let ident = PageMapper::new(PageMapKind::Identity, PAGE, SPACE);
        assert_eq!(ident.map_addr(123_456), 123_456);
        let a = PageMapper::new(PageMapKind::Random { seed: 1 }, PAGE, SPACE);
        let b = PageMapper::new(PageMapKind::Random { seed: 2 }, PAGE, SPACE);
        assert!(
            (0..32).any(|f| a.map_addr(f * PAGE) != b.map_addr(f * PAGE)),
            "different seeds must place frames differently"
        );
    }

    #[test]
    fn coloring_keeps_consecutive_pages_on_one_color() {
        let colors = 16u64;
        let m = PageMapper::new(PageMapKind::Color { colors: colors as u32 }, PAGE, SPACE);
        let run = SPACE / PAGE / colors; // virtual pages per color run
        for frame in 0..run {
            assert_eq!(
                (m.map_addr(frame * PAGE) / PAGE) % colors,
                0,
                "first run must stay on color 0"
            );
        }
        assert_eq!((m.map_addr(run * PAGE) / PAGE) % colors, 1, "next run moves to color 1");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_colors_are_rejected_programmatically() {
        // Regression: only from_name used to validate; a programmatic
        // Color{12} silently aliased distinct pages (frames 1 and 252
        // both landed on frame 12 in a 256-frame space).
        let _ = PageMapper::new(PageMapKind::Color { colors: 12 }, PAGE, SPACE);
    }

    #[test]
    fn addresses_above_the_space_stay_bijective() {
        let m = PageMapper::new(PageMapKind::Random { seed: 3 }, PAGE, SPACE);
        let lo = m.map_addr(5 * PAGE);
        let hi = m.map_addr(SPACE + 5 * PAGE);
        assert_eq!(hi - lo, SPACE, "high frame bits must pass through");
    }

    #[test]
    fn labels_round_trip_through_from_name() {
        for kind in kinds() {
            assert_eq!(PageMapKind::from_name(&kind.label()), Some(kind), "{}", kind.label());
        }
        assert_eq!(PageMapKind::from_name("rand"), Some(PageMapKind::Random { seed: 1 }));
        assert_eq!(PageMapKind::from_name("color3"), None, "colors must be a power of two");
        assert_eq!(PageMapKind::from_name("bogus"), None);
        assert_eq!(PageMapKind::default(), PageMapKind::Identity);
    }

    #[test]
    fn mapped_source_rewrites_addresses_and_keeps_the_rest() {
        use crate::{Trace, TraceOp};
        let trace = Trace {
            name: "t".into(),
            ops: vec![
                TraceOp { nonmem: 3, addr: 2 * PAGE + 64, is_write: false },
                TraceOp { nonmem: 0, addr: 9 * PAGE, is_write: true },
            ],
        };
        let mapper = PageMapper::new(PageMapKind::Random { seed: 5 }, PAGE, SPACE);
        let mut src = PageMappedSource::new(Box::new(trace.clone().into_source()), mapper);
        assert_eq!(src.name(), "t");
        let a = src.next_op();
        assert_eq!(a.addr, mapper.map_addr(2 * PAGE + 64));
        assert_eq!((a.nonmem, a.is_write), (3, false));
        let b = src.next_op();
        assert_eq!(b.addr, mapper.map_addr(9 * PAGE));
        assert!(b.is_write);
    }
}
