//! Per-bank controller state.
//!
//! The controller keeps one [`BankState`] per bank of its channel: the
//! bank's (precomputed) address, the relocation-job slot the cache
//! engine's jobs execute in, and the [`BankAgg`] scratch the flat-scan
//! event-horizon path aggregates queue entries into. The DRAM-side row
//! state (open row, must-precharge, pinned subarrays) lives in
//! [`figaro_dram::DramChannel`]; `BankAgg` caches a snapshot of it for
//! the duration of one horizon scan.

use figaro_core::RelocationJob;
use figaro_dram::{BankAddr, DramGeometry, RowId};

/// Controller-side state of one bank.
#[derive(Debug)]
pub struct BankState {
    /// The bank's decoded address (precomputed from the flat index).
    pub addr: BankAddr,
    /// The relocation job currently executing on this bank, if any.
    pub job: Option<RelocationJob>,
    /// Scratch for the flat-scan horizon aggregation (reset per scan).
    pub agg: BankAgg,
}

impl BankState {
    /// State for flat bank index `flat` of `geometry`.
    #[must_use]
    pub fn new(flat: u32, geometry: &DramGeometry) -> Self {
        Self { addr: BankAddr::from_flat(flat, geometry), job: None, agg: BankAgg::default() }
    }
}

/// Per-bank aggregate of one queue for the event-horizon scan: DRAM
/// timing for column commands is column-independent and for ACT/PRE
/// row-independent (pinned banks excepted), so one `earliest_issue` per
/// bank and command class covers every queued entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankAgg {
    /// The bank appeared in the scanned queue.
    pub seen: bool,
    /// The bank's open row, read once at first touch.
    pub open: Option<RowId>,
    /// Some entry's serve row is the open row (suppresses prep for the
    /// whole bank, exactly like the prep scan's same-row check).
    pub has_hit: bool,
    /// A read entry hits the open row.
    pub read_hit: bool,
    /// A write entry hits the open row.
    pub write_hit: bool,
    /// Serve row of the first entry needing ACT/PRE, if any.
    pub prep_row: Option<RowId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_dram::DramConfig;

    #[test]
    fn flat_index_round_trips_through_bank_addr() {
        let g = DramConfig::ddr4_paper_default().geometry;
        for flat in 0..g.banks_per_channel() {
            let st = BankState::new(flat, &g);
            assert_eq!(st.addr.flat_bank(&g), flat);
            assert!(st.job.is_none());
        }
    }
}
