//! Pluggable demand-scheduling policies.
//!
//! The controller's tick ladder delegates its two demand decisions —
//! which ready **column command** to issue (priority 1) and which
//! **ACT/PRE preparation** to issue (priority 3) — to a
//! [`SchedPolicy`]. The selection and event-horizon algorithms live
//! here as functions over the per-bank [`IndexedQueue`]; policies steer
//! them through small hooks, so the default [`FrFcfs`] reproduces the
//! classic first-ready / first-come-first-serve ladder bit for bit
//! while [`Fcfs`], [`FrFcfsCap`] and [`WriteDrainTuned`] reuse the same
//! machinery.
//!
//! Each selection exists in two strategies:
//!
//! * **indexed** (default): walk only the banks that have queued
//!   entries, probing DRAM timing once per bank and command class;
//! * **flat** ([`crate::McConfig::flat_scan`]): the pre-refactor global
//!   queue scans, kept as the honest wall-clock baseline for the
//!   `sched_sweep` bench. Both strategies pick the identical command.
//!
//! The policy in force is chosen by [`crate::McConfig::sched`]; the
//! `FIGARO_SCHED` environment variable overrides the default at system
//! construction (see [`SchedPolicyKind::from_env`]).

use figaro_dram::{Cycle, DramChannel, DramCommand};

use crate::bank::{BankAgg, BankState};
use crate::queues::{Entry, IndexedQueue};

/// Identifies a scheduling policy — the value form carried by
/// [`crate::McConfig`], scenario overrides and result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicyKind {
    /// First-ready FCFS: ready row hits bypass older requests, then
    /// oldest-first ACT/PRE (the paper's controller; the default).
    #[default]
    FrFcfs,
    /// Strict in-order service: only the oldest queued request of the
    /// active queue is ever a candidate.
    Fcfs,
    /// FR-FCFS with a cap on consecutive row hits per bank: once `cap`
    /// column commands in a row hit a bank's open row while a
    /// conflicting request waits on the same bank, row hits stop
    /// bypassing and the row is closed (starvation freedom).
    FrFcfsCap {
        /// Maximum consecutive row hits per bank while a conflicting
        /// request waits (≥ 1; 0 is treated as 1).
        cap: u32,
    },
    /// FR-FCFS selection with tunable write-drain watermarks replacing
    /// [`crate::McConfig::wq_high`]/[`crate::McConfig::wq_low`].
    WriteDrain {
        /// Enter write-drain mode at this write-queue occupancy.
        high: u32,
        /// Leave write-drain mode at this occupancy (< `high`).
        low: u32,
    },
}

impl SchedPolicyKind {
    /// Stable label for reports, cache keys and `FIGARO_SCHED`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedPolicyKind::FrFcfs => "frfcfs".into(),
            SchedPolicyKind::Fcfs => "fcfs".into(),
            SchedPolicyKind::FrFcfsCap { cap } => format!("frfcfs-cap{cap}"),
            SchedPolicyKind::WriteDrain { high, low } => format!("wdrain{high}-{low}"),
        }
    }

    /// Parses a [`SchedPolicyKind::label`]-style name:
    /// `frfcfs` | `fcfs` | `frfcfs-capN` (or `capN`) | `wdrainH-L`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        let name = name.trim().to_ascii_lowercase();
        match name.as_str() {
            "frfcfs" | "fr-fcfs" => return Some(SchedPolicyKind::FrFcfs),
            "fcfs" => return Some(SchedPolicyKind::Fcfs),
            _ => {}
        }
        if let Some(n) = name.strip_prefix("frfcfs-cap").or_else(|| name.strip_prefix("cap")) {
            return n.parse().ok().map(|cap| SchedPolicyKind::FrFcfsCap { cap });
        }
        if let Some(rest) = name.strip_prefix("wdrain") {
            let (h, l) = rest.split_once('-')?;
            let (high, low) = (h.parse().ok()?, l.parse().ok()?);
            if low >= high {
                return None;
            }
            return Some(SchedPolicyKind::WriteDrain { high, low });
        }
        None
    }

    /// Reads `FIGARO_SCHED` (a [`SchedPolicyKind::from_name`] label),
    /// defaulting to [`SchedPolicyKind::FrFcfs`] when unset. Read once
    /// per process — the selector sits on system-construction paths.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: the override exists to pick the
    /// policy under study, so a typo must fail loudly rather than
    /// silently benchmark the default.
    #[must_use]
    pub fn from_env() -> Self {
        static SCHED: std::sync::OnceLock<SchedPolicyKind> = std::sync::OnceLock::new();
        *SCHED.get_or_init(|| {
            let raw = std::env::var("FIGARO_SCHED").unwrap_or_default();
            if raw.is_empty() {
                return SchedPolicyKind::FrFcfs;
            }
            SchedPolicyKind::from_name(&raw).unwrap_or_else(|| {
                panic!(
                    "unrecognized FIGARO_SCHED `{raw}` \
                     (use frfcfs | fcfs | frfcfs-cap<N> | wdrain<H>-<L>)"
                )
            })
        })
    }

    /// Builds the policy for a channel with `banks` banks.
    #[must_use]
    pub fn build(self, banks: usize) -> Box<dyn SchedPolicy> {
        match self {
            SchedPolicyKind::FrFcfs => Box::new(FrFcfs),
            SchedPolicyKind::Fcfs => Box::new(Fcfs),
            SchedPolicyKind::FrFcfsCap { cap } => {
                Box::new(FrFcfsCap { cap: cap.max(1), streak: vec![0; banks] })
            }
            SchedPolicyKind::WriteDrain { high, low } => {
                assert!(low < high, "write-drain watermarks need low < high");
                Box::new(WriteDrainTuned { high, low })
            }
        }
    }
}

/// A demand-scheduling policy: small hooks steering the shared
/// selection/horizon machinery ([`pick_column`], [`pick_prep`],
/// [`queue_horizon`]). Every hook has the FR-FCFS default, so the
/// trivial implementation *is* FR-FCFS.
pub trait SchedPolicy: std::fmt::Debug + Send {
    /// The policy's identifying value form.
    fn kind(&self) -> SchedPolicyKind;

    /// Write-drain watermarks `(enter, leave)` given the configured ones.
    fn watermarks(&self, high: usize, low: usize) -> (usize, usize) {
        (high, low)
    }

    /// Strict in-order service: only the oldest entry of the active
    /// queue is ever a candidate (no row-hit bypassing).
    fn in_order_only(&self) -> bool {
        false
    }

    /// May a row hit on `flat_bank` bypass older waiting requests?
    /// `bank_has_conflict` reports whether the active queue holds a
    /// request for a *different* row of this (open) bank.
    fn allow_row_hit(&self, flat_bank: u32, bank_has_conflict: bool) -> bool {
        let _ = (flat_bank, bank_has_conflict);
        true
    }

    /// Do queued same-row hits keep `flat_bank`'s row open, i.e.
    /// suppress closing it on behalf of a conflicting request?
    fn hits_suppress_prep(&self, flat_bank: u32, bank_has_conflict: bool) -> bool {
        let _ = (flat_bank, bank_has_conflict);
        true
    }

    /// Notification of every DRAM command the controller issues
    /// (row-hit streak tracking).
    fn on_issue(&mut self, flat_bank: u32, cmd: &DramCommand) {
        let _ = (flat_bank, cmd);
    }

    /// Appends the policy's mutable state (if any) to a snapshot word
    /// stream. Stateless policies — the default — write nothing.
    fn save_state(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Restores state saved by [`SchedPolicy::save_state`] into a policy
    /// built from the same [`SchedPolicyKind`].
    fn load_state(&mut self, src: &mut &[u64]) {
        let _ = src;
    }
}

/// First-ready FCFS — the paper's scheduler and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl SchedPolicy for FrFcfs {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::FrFcfs
    }
}

/// Strict first-come-first-serve (no row-hit reordering).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedPolicy for Fcfs {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::Fcfs
    }

    fn in_order_only(&self) -> bool {
        true
    }
}

/// FR-FCFS with a per-bank cap on consecutive row hits (starvation
/// freedom for conflicting requests behind a hit streak).
#[derive(Debug)]
pub struct FrFcfsCap {
    cap: u32,
    /// Consecutive column commands served from each bank's open row
    /// since it was last activated/precharged.
    streak: Vec<u32>,
}

impl SchedPolicy for FrFcfsCap {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::FrFcfsCap { cap: self.cap }
    }

    fn allow_row_hit(&self, flat_bank: u32, bank_has_conflict: bool) -> bool {
        !(bank_has_conflict && self.streak[flat_bank as usize] >= self.cap)
    }

    fn hits_suppress_prep(&self, flat_bank: u32, bank_has_conflict: bool) -> bool {
        self.allow_row_hit(flat_bank, bank_has_conflict)
    }

    fn on_issue(&mut self, flat_bank: u32, cmd: &DramCommand) {
        match cmd {
            DramCommand::Read { .. } | DramCommand::Write { .. } => {
                self.streak[flat_bank as usize] += 1;
            }
            DramCommand::Activate { .. }
            | DramCommand::ActivateMerge { .. }
            | DramCommand::Precharge
            | DramCommand::PrechargeAll => self.streak[flat_bank as usize] = 0,
            DramCommand::Refresh => self.streak.fill(0),
            _ => {}
        }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.streak.len() as u64);
        for &s in &self.streak {
            out.push(u64::from(s));
        }
    }

    fn load_state(&mut self, src: &mut &[u64]) {
        let n = crate::take(src) as usize;
        assert_eq!(n, self.streak.len(), "snapshot scheduler bank-count mismatch");
        for s in &mut self.streak {
            *s = crate::take(src) as u32;
        }
    }
}

/// FR-FCFS selection with tunable write-drain watermarks.
#[derive(Debug, Clone, Copy)]
pub struct WriteDrainTuned {
    high: u32,
    low: u32,
}

impl SchedPolicy for WriteDrainTuned {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::WriteDrain { high: self.high, low: self.low }
    }

    fn watermarks(&self, _high: usize, _low: usize) -> (usize, usize) {
        (self.high as usize, self.low as usize)
    }
}

/// The ACT/PRE decision of a prep pass (slot id of the entry the action
/// is issued on behalf of).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepAction {
    /// Activate the entry's serve row (its bank is closed).
    Act(u32),
    /// Precharge the entry's bank (row conflict).
    Pre(u32),
}

/// The demand column command serving `e`.
#[must_use]
pub(crate) fn column_cmd(e: &Entry) -> DramCommand {
    if e.req.is_write {
        DramCommand::Write { col: e.serve_col, auto_pre: false }
    } else {
        DramCommand::Read { col: e.serve_col, auto_pre: false }
    }
}

/// Whether the (open) bank `flat_bank` has a queued entry for a
/// different row — the conflict signal fed to the policy hooks.
fn bank_has_conflict(q: &IndexedQueue, flat_bank: u32, open: figaro_dram::RowId) -> bool {
    q.iter_bank(flat_bank).any(|(_, e)| e.serve_row != open)
}

/// Priority 1: the queued demand entry whose column command is ready to
/// issue this cycle, or `None`. FR-FCFS picks the oldest ready row hit
/// (ties by queue position); hooks restrict the candidate set.
pub(crate) fn pick_column(
    policy: &dyn SchedPolicy,
    q: &IndexedQueue,
    chan: &DramChannel,
    now: Cycle,
    flat_scan: bool,
) -> Option<u32> {
    if q.is_empty() {
        return None;
    }
    if policy.in_order_only() {
        let id = q.head_id()?;
        let e = q.entry(id);
        if chan.open_row(e.bank) == Some(e.serve_row)
            && !chan.must_precharge(e.bank)
            && chan.can_issue(e.bank, &column_cmd(e), now)
        {
            return Some(id);
        }
        return None;
    }
    // Oldest ready row hit = min (arrival, enqueue seq) over candidates.
    let mut best: Option<(Cycle, u64, u32)> = None;
    let mut consider = |arrival: Cycle, seq: u64, id: u32| {
        if best.is_none_or(|(a, s, _)| (arrival, seq) < (a, s)) {
            best = Some((arrival, seq, id));
        }
    };
    if flat_scan {
        // Pre-refactor baseline: probe every entry against the channel.
        for (id, e) in q.iter() {
            let Some(open) = chan.open_row(e.bank) else { continue };
            if open != e.serve_row || chan.must_precharge(e.bank) {
                continue;
            }
            if !policy.allow_row_hit(e.flat_bank, bank_has_conflict(q, e.flat_bank, open)) {
                continue;
            }
            if chan.can_issue(e.bank, &column_cmd(e), now) {
                consider(e.req.arrival, q.seq(id), id);
            }
        }
    } else {
        // Indexed: one timing probe per bank, entries via the bank list.
        for b in q.touched_banks() {
            let (_, first) = q.iter_bank(b).next().expect("touched bank has entries");
            let Some(open) = chan.open_row(first.bank) else { continue };
            if chan.must_precharge(first.bank) {
                continue;
            }
            let mut hit: Option<(Cycle, u64, u32)> = None;
            let mut has_conflict = false;
            for (id, e) in q.iter_bank(b) {
                if e.serve_row == open {
                    let key = (e.req.arrival, q.seq(id));
                    if hit.is_none_or(|(a, s, _)| key < (a, s)) {
                        hit = Some((key.0, key.1, id));
                    }
                } else {
                    has_conflict = true;
                }
            }
            let Some((arrival, seq, id)) = hit else { continue };
            if !policy.allow_row_hit(b, has_conflict) {
                continue;
            }
            if chan.can_issue(first.bank, &column_cmd(q.entry(id)), now) {
                consider(arrival, seq, id);
            }
        }
    }
    best.map(|(_, _, id)| id)
}

/// Priority 3: the oldest queued entry whose ACT or PRE can issue this
/// cycle, subject to the FR-FCFS skip rules (job-owned banks wait;
/// same-row hits keep a row open unless the policy says otherwise).
pub(crate) fn pick_prep(
    policy: &dyn SchedPolicy,
    q: &IndexedQueue,
    banks: &[BankState],
    chan: &DramChannel,
    now: Cycle,
    flat_scan: bool,
) -> Option<PrepAction> {
    if q.is_empty() {
        return None;
    }
    if policy.in_order_only() {
        return pick_prep_in_order(q, banks, chan, now);
    }
    if flat_scan {
        return pick_prep_flat(policy, q, banks, chan, now);
    }
    let mut best: Option<(u64, PrepAction)> = None;
    let mut consider = |seq: u64, act: PrepAction| {
        if best.is_none_or(|(s, _)| seq < s) {
            best = Some((seq, act));
        }
    };
    for b in q.touched_banks() {
        let st = &banks[b as usize];
        let pinned = chan.is_pinned(st.addr);
        if st.job.is_some() && !pinned {
            continue; // the bank belongs to a job still setting up
        }
        match chan.open_row(st.addr) {
            Some(open) => {
                let mut has_hit = false;
                let mut first_conflict: Option<(u64, u32)> = None;
                for (id, e) in q.iter_bank(b) {
                    if e.serve_row == open {
                        has_hit = true;
                    } else if first_conflict.is_none() {
                        first_conflict = Some((q.seq(id), id));
                    }
                    if has_hit && first_conflict.is_some() {
                        break;
                    }
                }
                let Some((seq, id)) = first_conflict else { continue };
                if has_hit && policy.hits_suppress_prep(b, true) {
                    continue;
                }
                if chan.can_issue(st.addr, &DramCommand::Precharge, now) {
                    consider(seq, PrepAction::Pre(id));
                }
            }
            None => {
                // ACT timing is row-independent on an unpinned bank, so
                // only the oldest entry need be probed; a pinned bank's
                // legality is per-subarray, so walk its entries.
                for (id, e) in q.iter_bank(b) {
                    let act = DramCommand::Activate { row: e.serve_row };
                    if chan.can_issue(st.addr, &act, now) {
                        consider(q.seq(id), PrepAction::Act(id));
                        break;
                    }
                    if !pinned {
                        break;
                    }
                }
            }
        }
    }
    best.map(|(_, act)| act)
}

/// Strict-FCFS prep: the head entry drives; a must-precharge bank is
/// precharged first (it cannot serve anything until then).
fn pick_prep_in_order(
    q: &IndexedQueue,
    banks: &[BankState],
    chan: &DramChannel,
    now: Cycle,
) -> Option<PrepAction> {
    let id = q.head_id()?;
    let e = q.entry(id);
    let st = &banks[e.flat_bank as usize];
    let pinned = chan.is_pinned(st.addr);
    if st.job.is_some() && !pinned {
        return None; // wait for the job to finish
    }
    let open = chan.open_row(st.addr);
    if chan.must_precharge(st.addr) || open.is_some_and(|r| r != e.serve_row) {
        return chan
            .can_issue(st.addr, &DramCommand::Precharge, now)
            .then_some(PrepAction::Pre(id));
    }
    if open.is_none() {
        let act = DramCommand::Activate { row: e.serve_row };
        return chan.can_issue(st.addr, &act, now).then_some(PrepAction::Act(id));
    }
    None // head is a row hit; priority 1 handles it
}

/// Pre-refactor flat prep scan (the `sched_sweep` baseline): global
/// queue order, per-entry probes, O(queue) same-bank hit re-scans.
fn pick_prep_flat(
    policy: &dyn SchedPolicy,
    q: &IndexedQueue,
    banks: &[BankState],
    chan: &DramChannel,
    now: Cycle,
) -> Option<PrepAction> {
    'outer: for (id, e) in q.iter() {
        let st = &banks[e.flat_bank as usize];
        if st.job.is_some() && !chan.is_pinned(e.bank) {
            continue; // the bank belongs to a job still setting up
        }
        match chan.open_row(e.bank) {
            Some(r) if r == e.serve_row => continue, // handled as a row hit
            Some(open) => {
                // Conflict: close the row, but not while other queued
                // requests can still hit it (unless the policy lifted
                // that protection for this bank).
                if policy.hits_suppress_prep(e.flat_bank, true) {
                    for (_, o) in q.iter() {
                        if o.flat_bank == e.flat_bank && o.serve_row == open {
                            continue 'outer;
                        }
                    }
                }
                if chan.can_issue(e.bank, &DramCommand::Precharge, now) {
                    return Some(PrepAction::Pre(id));
                }
            }
            None => {
                let act = DramCommand::Activate { row: e.serve_row };
                if chan.can_issue(e.bank, &act, now) {
                    return Some(PrepAction::Act(id));
                }
            }
        }
    }
    None
}

/// Earliest cycle `>= from` at which [`pick_column`] or [`pick_prep`]
/// over the active queue could return `Some` — the demand half of the
/// controller's event horizon. A lower bound for every policy: a
/// too-early horizon only costs a no-op tick.
pub(crate) fn queue_horizon(
    policy: &dyn SchedPolicy,
    q: &IndexedQueue,
    banks: &mut [BankState],
    agg_touched: &mut Vec<u32>,
    chan: &DramChannel,
    from: Cycle,
    flat_scan: bool,
) -> Cycle {
    if q.is_empty() {
        return Cycle::MAX;
    }
    if policy.in_order_only() {
        return in_order_horizon(q, banks, chan, from);
    }
    // Aggregate the queue per bank (flat: one global pass into the
    // BankState scratch; indexed: per-bank list walks), then probe each
    // touched bank once per command class.
    let mut best = Cycle::MAX;
    if flat_scan {
        for &b in agg_touched.iter() {
            banks[b as usize].agg = BankAgg::default();
        }
        agg_touched.clear();
        for (_, e) in q.iter() {
            // The open row is read once at first touch, exactly like the
            // pre-refactor scan this path preserves as a baseline.
            if !banks[e.flat_bank as usize].agg.seen {
                let open = chan.open_row(e.bank);
                let agg = &mut banks[e.flat_bank as usize].agg;
                agg.seen = true;
                agg.open = open;
                agg_touched.push(e.flat_bank);
            }
            fold_entry(&mut banks[e.flat_bank as usize].agg, e);
        }
        for &b in agg_touched.iter() {
            let agg = banks[b as usize].agg;
            best = best.min(bank_horizon(policy, q, banks, b, &agg, chan, from));
        }
    } else {
        for b in q.touched_banks() {
            let mut agg = BankAgg::default();
            let (_, first) = q.iter_bank(b).next().expect("touched bank has entries");
            agg.seen = true;
            agg.open = chan.open_row(first.bank);
            for (_, e) in q.iter_bank(b) {
                fold_entry(&mut agg, e);
            }
            best = best.min(bank_horizon(policy, q, banks, b, &agg, chan, from));
        }
    }
    best
}

/// Folds one queued entry into its bank's aggregate.
fn fold_entry(agg: &mut BankAgg, e: &Entry) {
    if agg.open == Some(e.serve_row) {
        agg.has_hit = true;
        if e.req.is_write {
            agg.write_hit = true;
        } else {
            agg.read_hit = true;
        }
    } else if agg.prep_row.is_none() {
        agg.prep_row = Some(e.serve_row);
    }
}

/// Horizon candidates of one aggregated bank.
fn bank_horizon(
    policy: &dyn SchedPolicy,
    q: &IndexedQueue,
    banks: &[BankState],
    b: u32,
    agg: &BankAgg,
    chan: &DramChannel,
    from: Cycle,
) -> Cycle {
    let addr = banks[b as usize].addr;
    let mut best = Cycle::MAX;
    let has_conflict = agg.open.is_some() && agg.prep_row.is_some();
    if agg.has_hit {
        // Row-hit candidates; a must-precharge bank serves nothing (and
        // its same-row entries suppress prep regardless).
        if !chan.must_precharge(addr) && policy.allow_row_hit(b, has_conflict) {
            if agg.read_hit {
                let rd = DramCommand::Read { col: 0, auto_pre: false };
                if let Some(t) = chan.next_ready(addr, &rd, from) {
                    best = best.min(t);
                }
            }
            if agg.write_hit {
                let wr = DramCommand::Write { col: 0, auto_pre: false };
                if let Some(t) = chan.next_ready(addr, &wr, from) {
                    best = best.min(t);
                }
            }
        }
        // An entry that can still hit the open row suppresses the prep
        // scan for every conflicting entry on this bank — unless the
        // policy lifted that protection (row-hit cap reached).
        if policy.hits_suppress_prep(b, has_conflict) {
            return best;
        }
    }
    let Some(prep_row) = agg.prep_row else { return best };
    let pinned = chan.is_pinned(addr);
    if banks[b as usize].job.is_some() && !pinned {
        return best; // the bank belongs to a job still setting up
    }
    if agg.open.is_some() {
        if let Some(t) = chan.next_ready(addr, &DramCommand::Precharge, from) {
            best = best.min(t);
        }
    } else if !pinned {
        let act = DramCommand::Activate { row: prep_row };
        if let Some(t) = chan.next_ready(addr, &act, from) {
            best = best.min(t);
        }
    } else {
        // Pinned + closed: ACT legality is per-subarray, so check each
        // of this bank's entries.
        for (_, e) in q.iter_bank(b) {
            let act = DramCommand::Activate { row: e.serve_row };
            if let Some(t) = chan.next_ready(addr, &act, from) {
                best = best.min(t);
            }
        }
    }
    best
}

/// Strict-FCFS horizon: the head entry's one possible command.
fn in_order_horizon(
    q: &IndexedQueue,
    banks: &[BankState],
    chan: &DramChannel,
    from: Cycle,
) -> Cycle {
    let Some(id) = q.head_id() else { return Cycle::MAX };
    let e = q.entry(id);
    let st = &banks[e.flat_bank as usize];
    let open = chan.open_row(st.addr);
    let must_pre = chan.must_precharge(st.addr);
    if open == Some(e.serve_row) && !must_pre {
        // Head is a row hit; job ownership never gates column commands.
        return chan.next_ready(st.addr, &column_cmd(e), from).unwrap_or(Cycle::MAX);
    }
    // Prep half: a job still setting up owns the bank (the job-step
    // horizon covers the unblock).
    if st.job.is_some() && !chan.is_pinned(st.addr) {
        return Cycle::MAX;
    }
    let cmd = if must_pre || open.is_some() {
        DramCommand::Precharge
    } else {
        DramCommand::Activate { row: e.serve_row }
    };
    chan.next_ready(st.addr, &cmd, from).unwrap_or(Cycle::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_from_name() {
        let kinds = [
            SchedPolicyKind::FrFcfs,
            SchedPolicyKind::Fcfs,
            SchedPolicyKind::FrFcfsCap { cap: 4 },
            SchedPolicyKind::WriteDrain { high: 48, low: 8 },
        ];
        for k in kinds {
            assert_eq!(SchedPolicyKind::from_name(&k.label()), Some(k), "{}", k.label());
        }
        assert_eq!(SchedPolicyKind::from_name("cap2"), Some(SchedPolicyKind::FrFcfsCap { cap: 2 }));
        assert_eq!(SchedPolicyKind::from_name("bogus"), None);
        assert_eq!(SchedPolicyKind::from_name("wdrain8-8"), None, "low must be < high");
        assert_eq!(SchedPolicyKind::default(), SchedPolicyKind::FrFcfs);
    }

    #[test]
    fn cap_policy_tracks_streaks_per_bank() {
        let mut p = SchedPolicyKind::FrFcfsCap { cap: 2 }.build(4);
        let rd = DramCommand::Read { col: 0, auto_pre: false };
        assert!(p.allow_row_hit(0, true));
        p.on_issue(0, &rd);
        p.on_issue(0, &rd);
        assert!(!p.allow_row_hit(0, true), "streak of 2 with a conflict must cap");
        assert!(p.allow_row_hit(0, false), "no conflict: streak may continue");
        assert!(p.allow_row_hit(1, true), "other banks unaffected");
        assert!(!p.hits_suppress_prep(0, true), "capped bank lets prep close the row");
        p.on_issue(0, &DramCommand::Activate { row: 7 });
        assert!(p.allow_row_hit(0, true), "activation resets the streak");
    }

    #[test]
    fn write_drain_policy_overrides_watermarks() {
        let p = SchedPolicyKind::WriteDrain { high: 48, low: 8 }.build(4);
        assert_eq!(p.watermarks(40, 16), (48, 8));
        let d = SchedPolicyKind::FrFcfs.build(4);
        assert_eq!(d.watermarks(40, 16), (40, 16));
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn write_drain_rejects_inverted_watermarks() {
        let _ = SchedPolicyKind::WriteDrain { high: 8, low: 8 }.build(4);
    }
}
