//! # figaro-memctrl — modular memory controller with in-DRAM cache hooks
//!
//! One [`MemoryController`] drives one DRAM channel. The crate is split
//! into four modules, one per concern:
//!
//! | Module | Owns |
//! |---|---|
//! | [`queues`] | per-bank **indexed** transaction queues (intrusive FIFO + per-bank lists, O(1) bank occupancy) |
//! | [`bank`] | per-bank state: the relocation-job slot and horizon scratch |
//! | [`scheduler`] | the pluggable [`SchedPolicy`](scheduler::SchedPolicy) demand policies and the selection/horizon algorithms |
//! | [`controller`] | queue admission, write drain, refresh, job execution, the event-horizon contract |
//!
//! Behavior:
//!
//! * 64-entry read and write queues with write-drain watermarks
//!   (writes are buffered and drained in bursts, with block-aligned
//!   read-around-write forwarding from the write queue);
//! * pluggable demand scheduling ([`McConfig::sched`], overridable per
//!   process via `FIGARO_SCHED`): **FR-FCFS** (default — ready row-hit
//!   column commands first, then oldest-first activation/precharge),
//!   strict **FCFS**, **FR-FCFS with a row-hit cap** (starvation
//!   freedom), and FR-FCFS with **tunable write-drain watermarks**;
//! * periodic all-bank **refresh** (tREFI/tRFC) with bank draining;
//! * a pluggable [`figaro_core::CacheEngine`]: every demand request is
//!   looked up (and possibly redirected into the in-DRAM cache region),
//!   and the controller executes the engine's relocation jobs on the
//!   banks, giving demand row hits priority over relocation commands —
//!   exactly the policy the paper's Section 8.1 describes (`RELOC`s are
//!   issued while the row serving the miss is still open);
//! * optional activation monitoring for the RowHammer analysis
//!   (Section 6).
//!
//! The controller is clocked in DRAM bus cycles via
//! [`MemoryController::tick`]; at most one command issues per cycle
//! (single command bus). Event-driven callers use
//! [`MemoryController::next_event_at`], whose horizon is policy-aware.

/// Pops the next word of a snapshot word stream (the `save_state` /
/// `load_state` convention shared with `figaro-sim`'s FGSN codec).
/// Truncation aborts loudly: resuming from a corrupt snapshot must never
/// silently produce a different run.
pub(crate) fn take(src: &mut &[u64]) -> u64 {
    assert!(!src.is_empty(), "snapshot word stream truncated");
    let w = src[0];
    *src = &src[1..];
    w
}

pub mod bank;
pub mod controller;
pub mod histogram;
pub mod queues;
pub mod request;
pub mod scheduler;

pub use controller::{free_reloc_active, McConfig, McStats, MemoryController};
pub use histogram::LatencyHistogram;
pub use request::{Completion, Request, BLOCK_BYTES};
pub use scheduler::{SchedPolicy, SchedPolicyKind};
