//! # figaro-memctrl — FR-FCFS memory controller with in-DRAM cache hooks
//!
//! One [`MemoryController`] drives one DRAM channel:
//!
//! * 64-entry read and write queues with write-drain watermarks
//!   (writes are buffered and drained in bursts, with read-around-write
//!   forwarding from the write queue);
//! * **FR-FCFS** scheduling: ready row-hit column commands first, then
//!   oldest-first activation/precharge for waiting requests;
//! * periodic all-bank **refresh** (tREFI/tRFC) with bank draining;
//! * a pluggable [`figaro_core::CacheEngine`]: every demand request is
//!   looked up (and possibly redirected into the in-DRAM cache region),
//!   and the controller executes the engine's relocation jobs on the
//!   banks, giving demand row hits priority over relocation commands —
//!   exactly the policy the paper's Section 8.1 describes (`RELOC`s are
//!   issued while the row serving the miss is still open);
//! * optional activation monitoring for the RowHammer analysis
//!   (Section 6).
//!
//! The controller is clocked in DRAM bus cycles via
//! [`MemoryController::tick`]; at most one command issues per cycle
//! (single command bus).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod request;

pub use controller::{McConfig, McStats, MemoryController};
pub use request::{Completion, Request};
