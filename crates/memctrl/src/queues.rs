//! Per-bank indexed transaction queues.
//!
//! [`IndexedQueue`] stores queued demand transactions in arrival (FIFO)
//! order while simultaneously threading every entry onto an intrusive
//! per-bank list. Schedulers and event-horizon scans can therefore walk
//! *only* the entries of one bank (and ask "does bank `b` have demand?"
//! in O(1)) instead of filtering the whole queue per bank — the
//! O(queue × banks) pattern the flat `Vec<Entry>` scans forced.
//!
//! All links are slot indices into one slab, so enqueue and removal are
//! O(1) with no allocation after construction (slots are recycled
//! through a free list and the slab never exceeds the queue capacity).
//!
//! Ordering invariant: entries are pushed with non-decreasing `arrival`
//! stamps (the controller enqueues from a monotone clock), so "first in
//! FIFO order" and "oldest arrival, ties broken by queue position" agree
//! — schedulers rely on this to pick candidates per bank without
//! re-deriving global order.

use figaro_dram::{BankAddr, PhysAddr, RowId};

use crate::request::Request;

/// One queued demand transaction: the original request plus the decoded
/// bank coordinates and the serve location the cache engine chose
/// (which may differ from the decoded row when the request was
/// redirected into the in-DRAM cache).
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// The original request.
    pub req: Request,
    /// Decoded bank address.
    pub bank: BankAddr,
    /// Flat bank index within the channel.
    pub flat_bank: u32,
    /// Row that serves the request (post engine redirect).
    pub serve_row: RowId,
    /// Column that serves the request (post engine redirect).
    pub serve_col: u32,
    /// An activation was issued on behalf of this entry.
    pub saw_act: bool,
    /// A precharge (row conflict) was issued on behalf of this entry.
    pub saw_conflict: bool,
}

/// Sentinel for "no slot" in the intrusive links.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: Entry,
    /// Monotone enqueue sequence number (global age; smaller = older).
    seq: u64,
    prev: u32,
    next: u32,
    bank_prev: u32,
    bank_next: u32,
}

/// A FIFO transaction queue with intrusive per-bank index lists.
#[derive(Debug)]
pub struct IndexedQueue {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    bank_head: Vec<u32>,
    bank_tail: Vec<u32>,
    bank_count: Vec<u32>,
    len: usize,
    next_seq: u64,
}

impl IndexedQueue {
    /// An empty queue for a channel with `banks` banks, sized for `cap`
    /// entries (the slab never grows beyond the high-water mark).
    #[must_use]
    pub fn new(banks: usize, cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            bank_head: vec![NIL; banks],
            bank_tail: vec![NIL; banks],
            bank_count: vec![0; banks],
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued entries on `flat_bank` — O(1).
    #[must_use]
    pub fn bank_len(&self, flat_bank: u32) -> usize {
        self.bank_count[flat_bank as usize] as usize
    }

    /// Appends `entry`, returning its slot id.
    pub fn push_back(&mut self, entry: Entry) -> u32 {
        let b = entry.flat_bank as usize;
        debug_assert!(
            self.tail == NIL || self.slot(self.tail).entry.req.arrival <= entry.req.arrival,
            "entries must arrive in non-decreasing arrival order"
        );
        let slot = Slot {
            entry,
            seq: self.next_seq,
            prev: self.tail,
            next: NIL,
            bank_prev: self.bank_tail[b],
            bank_next: NIL,
        };
        self.next_seq += 1;
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                u32::try_from(self.slots.len() - 1).expect("queue capacity fits u32")
            }
        };
        if self.tail == NIL {
            self.head = id;
        } else {
            self.slot_mut(self.tail).next = id;
        }
        self.tail = id;
        if self.bank_tail[b] == NIL {
            self.bank_head[b] = id;
        } else {
            self.slot_mut(self.bank_tail[b]).bank_next = id;
        }
        self.bank_tail[b] = id;
        self.bank_count[b] += 1;
        self.len += 1;
        id
    }

    /// Unlinks and returns the entry in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live slot.
    pub fn remove(&mut self, id: u32) -> Entry {
        let slot = self.slots[id as usize].take().expect("remove of a live slot");
        if slot.prev == NIL {
            self.head = slot.next;
        } else {
            self.slot_mut(slot.prev).next = slot.next;
        }
        if slot.next == NIL {
            self.tail = slot.prev;
        } else {
            self.slot_mut(slot.next).prev = slot.prev;
        }
        let b = slot.entry.flat_bank as usize;
        if slot.bank_prev == NIL {
            self.bank_head[b] = slot.bank_next;
        } else {
            self.slot_mut(slot.bank_prev).bank_next = slot.bank_next;
        }
        if slot.bank_next == NIL {
            self.bank_tail[b] = slot.bank_prev;
        } else {
            self.slot_mut(slot.bank_next).bank_prev = slot.bank_prev;
        }
        self.bank_count[b] -= 1;
        self.len -= 1;
        self.free.push(id);
        slot.entry
    }

    fn slot(&self, id: u32) -> &Slot {
        self.slots[id as usize].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, id: u32) -> &mut Slot {
        self.slots[id as usize].as_mut().expect("live slot")
    }

    /// The entry in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live slot.
    #[must_use]
    pub fn entry(&self, id: u32) -> &Entry {
        &self.slot(id).entry
    }

    /// Mutable access to the entry in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live slot.
    pub fn entry_mut(&mut self, id: u32) -> &mut Entry {
        &mut self.slot_mut(id).entry
    }

    /// Global age of the entry in slot `id` (smaller = enqueued earlier).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live slot.
    #[must_use]
    pub fn seq(&self, id: u32) -> u64 {
        self.slot(id).seq
    }

    /// Slot id of the oldest entry, if any.
    #[must_use]
    pub fn head_id(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Iterates `(slot id, entry)` in global FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Entry)> {
        QueueIter { q: self, cur: self.head, bank: false }
    }

    /// Iterates `(slot id, entry)` of `flat_bank` in FIFO order.
    pub fn iter_bank(&self, flat_bank: u32) -> impl Iterator<Item = (u32, &Entry)> {
        QueueIter { q: self, cur: self.bank_head[flat_bank as usize], bank: true }
    }

    /// Flat indices of the banks that currently have queued entries.
    pub fn touched_banks(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.bank_count.len() as u32).filter(|&b| self.bank_count[b as usize] > 0)
    }

    /// Whether any queued entry matches `addr` at cache-block granularity
    /// on `flat_bank` (the read-around-write forwarding probe: a block
    /// maps to exactly one bank, so only that bank's bucket is scanned).
    #[must_use]
    pub fn bank_has_block(&self, flat_bank: u32, addr: PhysAddr) -> bool {
        let block = Request::block_of(addr);
        self.iter_bank(flat_bank).any(|(_, e)| Request::block_of(e.req.addr) == block)
    }

    /// Appends the exact slab image to a snapshot word stream: slots
    /// (including recycled holes), the free list *in order*, all intrusive
    /// links and `next_seq`. Anything less than the exact image would let
    /// a resumed run hand out different slot ids or seq numbers than the
    /// uninterrupted run, breaking bit-identity.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                None => out.push(0),
                Some(s) => {
                    out.push(1);
                    out.push(s.entry.req.id);
                    out.push(s.entry.req.addr.0);
                    out.push(u64::from(s.entry.req.is_write));
                    out.push(u64::from(s.entry.req.core));
                    out.push(s.entry.req.arrival);
                    out.push(u64::from(s.entry.bank.rank));
                    out.push(u64::from(s.entry.bank.bankgroup));
                    out.push(u64::from(s.entry.bank.bank));
                    out.push(u64::from(s.entry.flat_bank));
                    out.push(u64::from(s.entry.serve_row));
                    out.push(u64::from(s.entry.serve_col));
                    out.push(u64::from(s.entry.saw_act) | u64::from(s.entry.saw_conflict) << 1);
                    out.push(s.seq);
                    out.push(u64::from(s.prev));
                    out.push(u64::from(s.next));
                    out.push(u64::from(s.bank_prev));
                    out.push(u64::from(s.bank_next));
                }
            }
        }
        out.push(self.free.len() as u64);
        for &id in &self.free {
            out.push(u64::from(id));
        }
        out.push(u64::from(self.head));
        out.push(u64::from(self.tail));
        out.push(self.bank_head.len() as u64);
        for b in 0..self.bank_head.len() {
            out.push(u64::from(self.bank_head[b]));
            out.push(u64::from(self.bank_tail[b]));
            out.push(u64::from(self.bank_count[b]));
        }
        out.push(self.len as u64);
        out.push(self.next_seq);
    }

    /// Restores state saved by [`IndexedQueue::save_state`] into a queue
    /// built for the same channel geometry.
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream or a bank-count mismatch (a snapshot
    /// from a different geometry).
    pub fn load_state(&mut self, src: &mut &[u64]) {
        let n_slots = crate::take(src) as usize;
        self.slots.clear();
        for _ in 0..n_slots {
            if crate::take(src) == 0 {
                self.slots.push(None);
                continue;
            }
            let req = Request {
                id: crate::take(src),
                addr: PhysAddr(crate::take(src)),
                is_write: crate::take(src) != 0,
                core: crate::take(src) as u8,
                arrival: crate::take(src),
            };
            let bank = BankAddr {
                rank: crate::take(src) as u32,
                bankgroup: crate::take(src) as u32,
                bank: crate::take(src) as u32,
            };
            let entry = Entry {
                req,
                bank,
                flat_bank: crate::take(src) as u32,
                serve_row: crate::take(src) as RowId,
                serve_col: crate::take(src) as u32,
                saw_act: false,
                saw_conflict: false,
            };
            let flags = crate::take(src);
            let mut slot = Slot {
                entry,
                seq: crate::take(src),
                prev: crate::take(src) as u32,
                next: crate::take(src) as u32,
                bank_prev: crate::take(src) as u32,
                bank_next: crate::take(src) as u32,
            };
            slot.entry.saw_act = flags & 1 != 0;
            slot.entry.saw_conflict = flags & 2 != 0;
            self.slots.push(Some(slot));
        }
        let n_free = crate::take(src) as usize;
        self.free.clear();
        for _ in 0..n_free {
            self.free.push(crate::take(src) as u32);
        }
        self.head = crate::take(src) as u32;
        self.tail = crate::take(src) as u32;
        let banks = crate::take(src) as usize;
        assert_eq!(banks, self.bank_head.len(), "snapshot queue bank-count mismatch");
        for b in 0..banks {
            self.bank_head[b] = crate::take(src) as u32;
            self.bank_tail[b] = crate::take(src) as u32;
            self.bank_count[b] = crate::take(src) as u32;
        }
        self.len = crate::take(src) as usize;
        self.next_seq = crate::take(src);
    }
}

struct QueueIter<'a> {
    q: &'a IndexedQueue,
    cur: u32,
    bank: bool,
}

impl<'a> Iterator for QueueIter<'a> {
    type Item = (u32, &'a Entry);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let id = self.cur;
        let slot = self.q.slot(id);
        self.cur = if self.bank { slot.bank_next } else { slot.next };
        Some((id, &slot.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figaro_dram::Cycle;

    fn entry(id: u64, flat_bank: u32, row: u32, arrival: Cycle) -> Entry {
        Entry {
            req: Request { id, addr: PhysAddr(id * 64), is_write: false, core: 0, arrival },
            bank: BankAddr { rank: 0, bankgroup: 0, bank: flat_bank },
            flat_bank,
            serve_row: row,
            serve_col: 0,
            saw_act: false,
            saw_conflict: false,
        }
    }

    #[test]
    fn fifo_order_is_preserved_globally_and_per_bank() {
        let mut q = IndexedQueue::new(4, 8);
        for (i, b) in [(0u64, 0u32), (1, 1), (2, 0), (3, 2), (4, 0)] {
            q.push_back(entry(i, b, 0, i));
        }
        let global: Vec<u64> = q.iter().map(|(_, e)| e.req.id).collect();
        assert_eq!(global, vec![0, 1, 2, 3, 4]);
        let bank0: Vec<u64> = q.iter_bank(0).map(|(_, e)| e.req.id).collect();
        assert_eq!(bank0, vec![0, 2, 4]);
        assert_eq!(q.bank_len(0), 3);
        assert_eq!(q.bank_len(3), 0);
        assert_eq!(q.touched_banks().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn removal_relinks_both_lists_and_recycles_slots() {
        let mut q = IndexedQueue::new(2, 4);
        let ids: Vec<u32> = (0..4).map(|i| q.push_back(entry(i, (i % 2) as u32, 0, i))).collect();
        let removed = q.remove(ids[2]);
        assert_eq!(removed.req.id, 2);
        assert_eq!(q.iter().map(|(_, e)| e.req.id).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(q.iter_bank(0).map(|(_, e)| e.req.id).collect::<Vec<_>>(), vec![0]);
        // The freed slot is recycled; order and seq stay coherent.
        let new_id = q.push_back(entry(9, 0, 0, 9));
        assert_eq!(new_id, ids[2], "slab slot must be recycled");
        assert_eq!(q.iter().map(|(_, e)| e.req.id).collect::<Vec<_>>(), vec![0, 1, 3, 9]);
        assert!(q.seq(new_id) > q.seq(ids[3]), "recycled slot gets a fresh seq");
        // Drain everything through the head.
        while let Some(h) = q.head_id() {
            q.remove(h);
        }
        assert!(q.is_empty());
        assert_eq!(q.bank_len(0), 0);
        assert_eq!(q.bank_len(1), 0);
    }

    #[test]
    fn block_probe_matches_sub_block_offsets() {
        let mut q = IndexedQueue::new(2, 4);
        let mut e = entry(1, 0, 0, 0);
        e.req.addr = PhysAddr(4096);
        q.push_back(e);
        assert!(q.bank_has_block(0, PhysAddr(4096)));
        assert!(q.bank_has_block(0, PhysAddr(4100)), "sub-block offset must match");
        assert!(!q.bank_has_block(0, PhysAddr(4160)));
        assert!(!q.bank_has_block(1, PhysAddr(4096)));
    }
}
