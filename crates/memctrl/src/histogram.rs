//! Fixed-bucket HDR-style latency histogram.
//!
//! Per-read latencies span four-plus orders of magnitude once a channel
//! saturates (a row hit costs ~tens of bus cycles; a read stuck behind a
//! refresh storm plus a full write drain costs tens of thousands), so a
//! linear histogram is hopeless and a plain log2 histogram too coarse to
//! read a p99 from. The classic HDR compromise: log2 major buckets, each
//! split into `2^SUB_BITS` linear sub-buckets, giving O(1) recording, a
//! bounded relative error of `2^-SUB_BITS` (12.5% here), and a small
//! fixed footprint that keeps the containing stats `Copy`.
//!
//! Layout: values `0..8` get exact unit buckets; a value with most
//! significant bit `m >= 3` lands in sub-bucket `(v >> (m - 3)) - 8` of
//! major bucket `m`. Major buckets are clamped at `m = 20`, so anything
//! past ~2M bus cycles (≈ 2.6 ms at DDR4-1600 — far beyond any simulated
//! latency) collapses into the last bucket. The exact maximum is kept
//! separately, so the clamp only widens interior percentiles.

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear buckets (relative quantization error `2^-SUB_BITS`
/// = 12.5%).
const SUB_BITS: u32 = 3;
/// Sub-buckets per major (power-of-two) bucket.
const SUBS: usize = 1 << SUB_BITS;
/// Largest distinguished most-significant-bit position; values with a
/// higher msb clamp into the final bucket.
const MAX_MSB: u32 = 20;
/// Total bucket count: `SUBS` exact unit buckets for `0..SUBS`, then
/// `SUBS` sub-buckets per msb in `SUB_BITS..=MAX_MSB`.
pub const BUCKETS: usize = SUBS + (MAX_MSB - SUB_BITS + 1) as usize * SUBS;

/// A mergeable latency distribution with O(1) recording and ≤ 12.5%
/// bucket-quantization error (see the module docs for the layout).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    /// Exact largest recorded value (the clamp above never loses it).
    max: u64,
}

impl Default for LatencyHistogram {
    // Derived `Default` for arrays stops at 32 elements; spell it out.
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], max: 0 }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    // 152 mostly-zero counters are noise in a `{:?}` dump of the stats;
    // print the summary a reader actually wants.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// Bucket index for value `v` (total function; overflow clamps).
    fn index_of(v: u64) -> usize {
        if v < SUBS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        if msb > MAX_MSB {
            return BUCKETS - 1;
        }
        let sub = (v >> (msb - SUB_BITS)) as usize - SUBS;
        SUBS + (msb - SUB_BITS) as usize * SUBS + sub
    }

    /// Inclusive lower bound of bucket `i` (the value `percentile`
    /// reports).
    fn bucket_floor(i: usize) -> u64 {
        if i < SUBS {
            return i as u64;
        }
        let major = (i - SUBS) / SUBS;
        let sub = (i - SUBS) % SUBS;
        ((SUBS + sub) as u64) << major
    }

    /// Records one value. O(1), no allocation.
    pub fn record(&mut self, v: u64) {
        self.max = self.max.max(v);
        self.buckets[Self::index_of(v)] += 1;
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Lower bound of the bucket holding the `p`-quantile (`p` in
    /// `(0, 1]`; the rank is `ceil(p * count)`). Underestimates by at
    /// most the 12.5% bucket width. Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return Self::bucket_floor(i);
            }
        }
        // Unreachable: cum == total >= target after the last bucket.
        self.max
    }

    /// Appends the bucket counters and the exact max to a snapshot word
    /// stream (all counters are integers, so the round-trip is exact).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.buckets);
        out.push(self.max);
    }

    /// Restores state saved by [`LatencyHistogram::save_state`].
    ///
    /// # Panics
    ///
    /// Panics on a truncated stream.
    pub fn load_state(&mut self, src: &mut &[u64]) {
        for b in &mut self.buckets {
            *b = crate::take(src);
        }
        self.max = crate::take(src);
    }

    /// Element-wise accumulation (counts add; max takes the larger).
    pub fn merge_from(&mut self, o: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(o.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::default();
        for v in 0..SUBS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUBS as u64);
        // Each unit bucket holds exactly its value.
        for v in 0..SUBS as u64 {
            assert_eq!(LatencyHistogram::index_of(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_contiguous() {
        // Indices never decrease with the value, never skip, and floors
        // invert the mapping (floor of v's bucket is <= v, and re-mapping
        // the floor lands in the same bucket).
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = LatencyHistogram::index_of(v);
            assert!(i == prev || i == prev + 1, "index jumped at v={v}");
            prev = i;
            let floor = LatencyHistogram::bucket_floor(i);
            assert!(floor <= v);
            assert_eq!(LatencyHistogram::index_of(floor), i);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [9u64, 100, 1_000, 12_345, 999_999] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::index_of(v));
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 0.125, "v={v} floor={floor} err={err}");
        }
    }

    #[test]
    fn overflow_clamps_into_last_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        h.record(1 << 40);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(LatencyHistogram::index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = LatencyHistogram::default();
        // 99 fast ops at 4 cycles, one straggler at 4096.
        for _ in 0..99 {
            h.record(4);
        }
        h.record(4096);
        assert_eq!(h.percentile(0.50), 4);
        assert_eq!(h.percentile(0.99), 4);
        assert_eq!(h.percentile(1.0), 4096);
        assert_eq!(h.max(), 4096);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(20_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 20_000);
        assert_eq!(
            a.percentile(0.5),
            LatencyHistogram::bucket_floor(LatencyHistogram::index_of(10))
        );
    }
}
